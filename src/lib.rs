//! # slingshot-repro
//!
//! Umbrella crate of the Slingshot (SIGCOMM 2023) reproduction: re-exports
//! every workspace crate and hosts the workspace-level examples, the
//! integration tests, and the property-test suite. See `README.md` for an
//! overview, `DESIGN.md` for the system inventory and hardware→simulation
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The five-minute tour — build the full testbed, run traffic, crash the
//! primary PHY, and confirm the UE never noticed:
//!
//! ```
//! use slingshot::{DeploymentBuilder, OrionL2Node};
//! use slingshot_ran::{CellConfig, Fidelity, UeConfig, UeNode, UeState};
//! use slingshot_sim::Nanos;
//! use slingshot_transport::{UdpCbrSource, UdpSink};
//!
//! let mut d = DeploymentBuilder::new()
//!     .seed(1)
//!     .cell(CellConfig {
//!         num_prbs: 24,                 // small cell keeps the doctest fast
//!         fidelity: Fidelity::Sampled,  // real LDPC on a representative block
//!         ..CellConfig::default()
//!     })
//!     .ue(UeConfig::new(100, 0, "ue", 22.0))
//!     .build();
//! d.add_flow(
//!     0,
//!     100,
//!     Box::new(UdpCbrSource::new(1_000_000, 600, Nanos::ZERO)),   // at the UE
//!     Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))), // at the server
//! );
//! d.kill_primary_at(Nanos::from_millis(300));
//! d.engine.run_until(Nanos::from_millis(700));
//!
//! // The in-switch detector fired within its 450 µs + tick budget…
//! let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
//! let detect = orion.last_failure_notified.unwrap() - Nanos::from_millis(300);
//! assert!(detect < Nanos::from_millis(1));
//! // …and the UE rode through the failover without radio-link failure.
//! let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
//! assert_eq!(ue.state, UeState::Connected);
//! assert_eq!(ue.rlf_count, 0);
//! ```

pub use slingshot as core;
pub use slingshot_baseline as baseline;
pub use slingshot_fapi as fapi;
pub use slingshot_fronthaul as fronthaul;
pub use slingshot_netsim as netsim;
pub use slingshot_phy_dsp as phy_dsp;
pub use slingshot_ran as ran;
pub use slingshot_sim as sim;
pub use slingshot_switch as switch;
pub use slingshot_transport as transport;
