#!/usr/bin/env bash
# Line-coverage gate: runs the workspace test suite under cargo-llvm-cov
# and enforces the per-crate line-coverage floors checked in at
# crates/bench/baselines/coverage.floors.
#
# Gracefully skips (exit 0) when cargo-llvm-cov is not installed, so the
# local ./ci.sh --coverage hook never forces an install; the nightly
# coverage workflow installs the tool and runs this same script, so the
# floors are enforced in exactly one place.
#
# Knobs:
#   COVERAGE_FLOORS=<path>   floors file (default the checked-in one)
#   COVERAGE_OUT=<dir>       where the lcov report goes
#                            (default target/llvm-cov)
set -euo pipefail
cd "$(dirname "$0")/.."

FLOORS="${COVERAGE_FLOORS:-crates/bench/baselines/coverage.floors}"
OUT="${COVERAGE_OUT:-target/llvm-cov}"

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "==> coverage: cargo-llvm-cov not installed; skipping"
    echo "    (install locally with: cargo install cargo-llvm-cov)"
    exit 0
fi

mkdir -p "$OUT"
LCOV="$OUT/coverage.lcov"

echo "==> cargo llvm-cov --workspace (tests, no report yet)"
cargo llvm-cov --workspace --no-report

# Fold a tiny scale_bench run into the same profile so the sharded
# leaf/spine execution paths (lane windows, barrier sync, spine
# drain) are exercised end-to-end, not only through unit tests. The
# sweep is shrunk far below the CI gate's quick mode — this is a
# coverage probe, not a capacity measurement, so no baseline is set.
echo "==> scale smoke under coverage (sharded fabric paths)"
SCALE_CELLS=8 SCALE_GROUPS=2 SCALE_SHARDS=1,2 SCALE_MS=5 SCALE_REPS=1 \
    cargo llvm-cov run --no-report -p slingshot-bench --bin scale_bench

echo "==> cargo llvm-cov report (lcov -> $LCOV)"
cargo llvm-cov report --lcov --output-path "$LCOV"

# Aggregate LCOV LF/LH records per floored path prefix. LCOV is the
# stable interchange format; the summary table's column layout is not.
fail=0
while read -r prefix floor; do
    case "$prefix" in '' | '#'*) continue ;; esac
    pct="$(awk -v p="$prefix/" '
        /^SF:/ { keep = index(substr($0, 4), p) > 0 }
        /^LF:/ { if (keep) lf += substr($0, 4) }
        /^LH:/ { if (keep) lh += substr($0, 4) }
        END {
            if (lf == 0) { print "none"; exit }
            printf "%.2f", 100.0 * lh / lf
        }' "$LCOV")"
    if [[ "$pct" == none ]]; then
        echo "coverage: no lines attributed to $prefix (path prefix stale?)" >&2
        fail=1
        continue
    fi
    if awk -v a="$pct" -v b="$floor" 'BEGIN { exit !(a + 0 >= b + 0) }'; then
        echo "coverage: $prefix ${pct}% >= floor ${floor}%"
    else
        echo "coverage: $prefix ${pct}% BELOW floor ${floor}%" >&2
        fail=1
    fi
done <"$FLOORS"

if [[ "$fail" != 0 ]]; then
    echo "==> coverage: FLOOR VIOLATED (floors: $FLOORS)" >&2
    exit 1
fi
echo "==> coverage: all floors met"
