#!/usr/bin/env bash
# Local CI: the checks a change must pass before it lands.
#
# Usage:
#   ./ci.sh            full gate: release build, full test suite, fmt,
#                      clippy, a chaos smoke, and every baseline-floored
#                      bench (kernel, slots, availability, scale) in
#                      quick mode
#   ./ci.sh --quick    debug build + tier-1 tests only (fast inner loop)
#   ./ci.sh --bench    baseline-floored benches only (kernel, slots,
#                      availability, scale), all in quick mode against
#                      the floors checked in under crates/bench/baselines
#   ./ci.sh --coverage line-coverage gate only (scripts/coverage.sh):
#                      enforces the per-crate floors in
#                      crates/bench/baselines/coverage.floors; skips
#                      cleanly if cargo-llvm-cov is not installed
#
# Knobs (all optional; defaults shown):
#   CHAOS_SEEDS=4      seeds for the chaos smoke (nightly workflow: 64)
#   KERNEL_BACKEND=    DSP kernel backend (scalar|avx2|neon|detect);
#                      the full gate runs tier-1 tests twice — native
#                      detection and forced scalar — so SIMD kernels
#                      and the scalar oracle are both exercised
#   BENCH_JSON_DIR=    directory for bench JSON artifacts (unset: skip)
#   KERNEL_QUICK=1     kernel_bench: ~10 ms per DSP kernel
#   SLOTS_CELLS=2 SLOTS_WORKERS=1,4 SLOTS_MS=100
#                      slots_per_sec: pipeline sweep for the bench gate
#   AVAIL_QUICK=1      availability_report: short-horizon SLO sweep
#   SCALE_QUICK=1      scale_bench: cells {16,64} x shards {1,4} sweep
#   *_BASELINE=<path>  per-bench floor files (set below; see
#                      crates/bench/baselines/*.baseline for the rules:
#                      throughput floors are 80% of baseline,
#                      max_sustainable_cells is absolute)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
COVERAGE=0
BENCH=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    --coverage) COVERAGE=1 ;;
    --bench) BENCH=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

if [[ "$COVERAGE" == 1 ]]; then
    ./scripts/coverage.sh
    exit 0
fi

if [[ "$QUICK" == 1 ]]; then
    echo "==> cargo build"
    cargo build

    echo "==> cargo test -q (tier-1)"
    cargo test -q

    echo "==> OK (quick)"
    exit 0
fi

run_benches() {
    echo "==> DSP kernel throughput smoke (native backend)"
    KERNEL_QUICK=1 \
        KERNEL_BASELINE=crates/bench/baselines/kernel_bench.baseline \
        cargo run --release -p slingshot-bench --bin kernel_bench

    echo "==> DSP kernel throughput smoke (forced scalar)"
    KERNEL_QUICK=1 KERNEL_BACKEND=scalar \
        KERNEL_BASELINE=crates/bench/baselines/kernel_bench.baseline \
        cargo run --release -p slingshot-bench --bin kernel_bench

    echo "==> slot-pipeline throughput smoke"
    SLOTS_CELLS="${SLOTS_CELLS:-2}" SLOTS_WORKERS="${SLOTS_WORKERS:-1,4}" \
        SLOTS_MS="${SLOTS_MS:-100}" \
        SLOTS_BASELINE=crates/bench/baselines/slots_per_sec.baseline \
        cargo run --release -p slingshot-bench --bin slots_per_sec

    echo "==> availability smoke (long-horizon SLO floors)"
    AVAIL_QUICK=1 \
        AVAIL_BASELINE=crates/bench/baselines/availability.baseline \
        cargo run --release -p slingshot-bench --bin availability_report

    echo "==> scale smoke (sharded fabric capacity floors)"
    SCALE_QUICK=1 \
        SCALE_BASELINE=crates/bench/baselines/scale.baseline \
        cargo run --release -p slingshot-bench --bin scale_bench
}

if [[ "$BENCH" == 1 ]]; then
    echo "==> cargo build --release -p slingshot-bench"
    cargo build --release -p slingshot-bench
    run_benches
    echo "==> OK (bench)"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (native kernel backend)"
cargo test --workspace -q

echo "==> cargo test --workspace -q (KERNEL_BACKEND=scalar)"
# Forced-scalar pass: proves the scalar oracle stands on its own and
# that golden trace hashes don't depend on the host's SIMD features.
KERNEL_BACKEND=scalar cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> chaos smoke (CHAOS_SEEDS=${CHAOS_SEEDS:-4})"
CHAOS_SEEDS="${CHAOS_SEEDS:-4}" cargo run --release -p slingshot-bench --bin chaos_soak

run_benches

echo "==> OK"
