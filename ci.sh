#!/usr/bin/env bash
# Local CI: the checks a change must pass before it lands.
#
# Usage:
#   ./ci.sh            full gate: release build, full test suite, fmt,
#                      clippy, and a chaos smoke (CHAOS_SEEDS seeds,
#                      default 4, through the chaos_soak harness)
#   ./ci.sh --quick    debug build + tier-1 tests only (fast inner loop)
#   ./ci.sh --coverage line-coverage gate only (scripts/coverage.sh):
#                      enforces the per-crate floors in
#                      crates/bench/baselines/coverage.floors; skips
#                      cleanly if cargo-llvm-cov is not installed
#
# Knobs:
#   CHAOS_SEEDS=<n>    seeds for the chaos smoke (default 4; the
#                      nightly workflow runs 64)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
COVERAGE=0
for arg in "$@"; do
    case "$arg" in
    --quick) QUICK=1 ;;
    --coverage) COVERAGE=1 ;;
    *)
        echo "unknown argument: $arg" >&2
        exit 2
        ;;
    esac
done

if [[ "$COVERAGE" == 1 ]]; then
    ./scripts/coverage.sh
    exit 0
fi

if [[ "$QUICK" == 1 ]]; then
    echo "==> cargo build"
    cargo build

    echo "==> cargo test -q (tier-1)"
    cargo test -q

    echo "==> OK (quick)"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> chaos smoke (CHAOS_SEEDS=${CHAOS_SEEDS:-4})"
CHAOS_SEEDS="${CHAOS_SEEDS:-4}" cargo run --release -p slingshot-bench --bin chaos_soak

echo "==> DSP kernel throughput smoke"
KERNEL_QUICK=1 \
    KERNEL_BASELINE=crates/bench/baselines/kernel_bench.baseline \
    cargo run --release -p slingshot-bench --bin kernel_bench

echo "==> availability smoke (long-horizon SLO floors)"
AVAIL_QUICK=1 \
    AVAIL_BASELINE=crates/bench/baselines/availability.baseline \
    cargo run --release -p slingshot-bench --bin availability_report

echo "==> OK"
