#!/usr/bin/env bash
# Local CI: the checks a change must pass before it lands.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> OK"
