//! Fuzz battery for the wire codecs: the FAPI codec and the
//! eCPRI/fronthaul parsers sit directly on untrusted bytes (anything a
//! degraded link, a corrupting switch, or a confused peer emits lands
//! here first), so the decoders must be total — any byte string either
//! parses or returns `None`, never panics — and encoding must be the
//! exact inverse of decoding for every message the system can produce.
//!
//! Three fuzz shapes per parser:
//! 1. raw garbage (arbitrary bytes, arbitrary length),
//! 2. mutated-valid (a real encoding with byte flips, truncation, and
//!    garbage tails — penetrates past the magic/type checks into the
//!    field readers), and
//! 3. valid round-trips across every message variant.

use bytes::Bytes;
use proptest::prelude::*;

use slingshot_fapi as fapi;
use slingshot_fronthaul::{
    compress_symbol_with, fh_header, peek_headers, CPlaneMsg, CSection, DciEntry, DciMsg,
    Direction, EcpriHeader, FhHeader, FhMessage, ShadowMsg, UPlaneMsg, UciEntry, UciMsg,
};
use slingshot_phy_dsp::iq::Cplx;
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::SlotId;

/// Exercise every decoder on one byte string; returns whether any of
/// them accepted it (so properties can assert on reachability).
fn poke_all_decoders(bytes: &[u8]) -> bool {
    let mut accepted = false;
    if let Some(msg) = fapi::decode(bytes) {
        // A decoded message must survive re-encoding (the codec can't
        // emit something it would itself reject or re-read differently).
        let reenc = fapi::encode(&msg);
        prop_assert_eq_like(fapi::decode(&reenc).as_ref() == Some(&msg));
        accepted = true;
    }
    if let Some(msg) = FhMessage::from_bytes(bytes) {
        let reenc = msg.to_bytes();
        prop_assert_eq_like(FhMessage::from_bytes(&reenc).as_ref() == Some(&msg));
        accepted = true;
    }
    let _ = peek_headers(bytes);
    let mut cursor = bytes;
    let _ = EcpriHeader::read(&mut cursor);
    let mut cursor = bytes;
    let _ = FhHeader::read(&mut cursor);
    accepted
}

/// Tiny helper so `poke_all_decoders` can be called outside proptest
/// bodies too: a plain assert with a stable message.
fn prop_assert_eq_like(ok: bool) {
    assert!(ok, "decoder accepted bytes but re-encode/decode diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shape 1: raw garbage. No decoder may panic, whatever the bytes.
    #[test]
    fn decoders_are_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        poke_all_decoders(&bytes);
    }

    /// Shape 2 for FAPI: real encodings with byte flips, truncations,
    /// and appended tails. Gets past the message-type dispatch so the
    /// per-variant field/length readers see hostile input.
    #[test]
    fn fapi_decoder_survives_mutations(
        ru_id in any::<u8>(),
        abs in 0u64..200_000,
        rnti in any::<u16>(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
        cut in any::<usize>(),
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let slot = SlotId::from_absolute(abs);
        let msgs = [
            fapi::FapiMsg::SlotInd(fapi::SlotIndication { ru_id, slot }),
            fapi::FapiMsg::RxData(fapi::RxDataIndication {
                ru_id,
                slot,
                tbs: vec![fapi::RxTb { rnti, harq_id: 3, payload: Bytes::from(vec![7u8; 24]) }],
            }),
            fapi::FapiMsg::CrcInd(fapi::CrcIndication {
                ru_id,
                slot,
                crcs: vec![fapi::CrcEntry { rnti, harq_id: 1, ok: true, snr_x10: -37 }],
            }),
        ];
        for msg in &msgs {
            let good = fapi::encode(msg);
            // Bit flip anywhere.
            let mut flipped = good.to_vec();
            let idx = flip_at % flipped.len();
            flipped[idx] ^= 1 << flip_bit;
            let _ = fapi::decode(&flipped);
            // Truncate anywhere.
            let _ = fapi::decode(&good[..cut % (good.len() + 1)]);
            // Garbage tail after a valid prefix.
            let mut extended = good.to_vec();
            extended.extend_from_slice(&tail);
            let _ = fapi::decode(&extended);
        }
    }

    /// Shape 2 for the fronthaul: same mutation battery against the
    /// eCPRI header chain and the section/entry readers.
    #[test]
    fn fronthaul_parser_survives_mutations(
        abs in 0u64..200_000,
        symbol in 0u8..14,
        ru_port in any::<u8>(),
        rnti in any::<u16>(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
        cut in any::<usize>(),
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let hdr = fh_header(Direction::Uplink, SlotId::from_absolute(abs), symbol, ru_port);
        let msgs = [
            FhMessage::CPlane(CPlaneMsg {
                hdr,
                sections: vec![CSection { section_id: 5, start_prb: 0, num_prb: 51, beam_id: 2 }],
            }),
            FhMessage::Uci(UciMsg {
                hdr,
                entries: vec![UciEntry { rnti, harq_id: 2, ack: false }],
            }),
            FhMessage::Shadow(ShadowMsg {
                hdr,
                rnti,
                snr_db_x100: 1234,
                data: Bytes::from(vec![0xAB; 17]),
            }),
        ];
        for msg in &msgs {
            let good = msg.to_bytes();
            let mut flipped = good.to_vec();
            let idx = flip_at % flipped.len();
            flipped[idx] ^= 1 << flip_bit;
            let _ = FhMessage::from_bytes(&flipped);
            let _ = peek_headers(&flipped);
            let _ = FhMessage::from_bytes(&good[..cut % (good.len() + 1)]);
            let mut extended = good.to_vec();
            extended.extend_from_slice(&tail);
            let _ = FhMessage::from_bytes(&extended);
        }
    }

    /// Shape 3 for FAPI: every variant round-trips exactly.
    #[test]
    fn fapi_all_variants_roundtrip(
        ru_id in any::<u8>(),
        cell_id in any::<u16>(),
        abs in 0u64..200_000,
        rnti in 1u16..60_000,
        harq_id in 0u8..16,
        code in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let slot = SlotId::from_absolute(abs);
        let msgs = vec![
            fapi::FapiMsg::Config(fapi::ConfigRequest {
                ru_id,
                cell_id,
                num_prbs: 51,
                tdd_pattern: "DDDSU".to_string(),
            }),
            fapi::FapiMsg::Start { ru_id },
            fapi::FapiMsg::Stop { ru_id },
            fapi::FapiMsg::SlotInd(fapi::SlotIndication { ru_id, slot }),
            fapi::FapiMsg::DlTti(fapi::DlTtiRequest::null(ru_id, slot)),
            fapi::FapiMsg::RxData(fapi::RxDataIndication {
                ru_id,
                slot,
                tbs: vec![fapi::RxTb {
                    rnti,
                    harq_id,
                    payload: Bytes::from(payload.clone()),
                }],
            }),
            fapi::FapiMsg::CrcInd(fapi::CrcIndication {
                ru_id,
                slot,
                crcs: vec![fapi::CrcEntry { rnti, harq_id, ok: harq_id % 2 == 0, snr_x10: -55 }],
            }),
            fapi::FapiMsg::UciInd(fapi::UciIndication {
                ru_id,
                slot,
                acks: vec![fapi::UciAck { rnti, harq_id, ack: true }],
            }),
            fapi::FapiMsg::Error(fapi::ErrorIndication { ru_id, slot, code }),
        ];
        for msg in msgs {
            let bytes = fapi::encode(&msg);
            prop_assert_eq!(fapi::decode(&bytes), Some(msg));
        }
    }

    /// Shape 3 for the fronthaul: every variant round-trips exactly,
    /// including U-plane block-floating-point payloads.
    #[test]
    fn fronthaul_all_variants_roundtrip(
        abs in 0u64..200_000,
        symbol in 0u8..14,
        ru_port in any::<u8>(),
        rnti in 1u16..60_000,
        start_prb in 0u16..200,
        seed in any::<u32>(),
    ) {
        let hdr = fh_header(Direction::Downlink, SlotId::from_absolute(abs), symbol, ru_port);
        // A deterministic IQ symbol for the U-plane payload.
        let samples: Vec<Cplx> = (0..24)
            .map(|i| {
                let v = seed.wrapping_mul(2654435761).wrapping_add(i) as i32;
                Cplx::new((v % 1024) as f32, ((v >> 10) % 1024) as f32)
            })
            .collect();
        let msgs = vec![
            FhMessage::CPlane(CPlaneMsg {
                hdr,
                sections: vec![
                    CSection { section_id: 1, start_prb, num_prb: 51, beam_id: 0 },
                    CSection { section_id: 2, start_prb: 0, num_prb: 4, beam_id: 9 },
                ],
            }),
            FhMessage::UPlane(UPlaneMsg {
                hdr,
                start_prb,
                prbs: compress_symbol_with(DspKernels::detect(), &samples),
            }),
            FhMessage::Dci(DciMsg {
                hdr,
                entries: vec![DciEntry {
                    rnti,
                    uplink: true,
                    target_slot_scalar: 77,
                    harq_id: 5,
                    ndi: false,
                    rv: 2,
                    mcs: 11,
                    start_prb,
                    num_prb: 12,
                    tb_bytes: 1024,
                }],
            }),
            FhMessage::Uci(UciMsg {
                hdr,
                entries: vec![UciEntry { rnti, harq_id: 7, ack: true }],
            }),
            FhMessage::Shadow(ShadowMsg {
                hdr,
                rnti,
                snr_db_x100: -250,
                data: Bytes::from_static(b"shadow-payload"),
            }),
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            prop_assert_eq!(FhMessage::from_bytes(&bytes), Some(msg));
        }
    }
}

/// Deterministic sweep outside proptest: every 1- and 2-byte prefix,
/// and every truncation of a valid message of each family, in one
/// exhaustive pass (cheap, and catches off-by-one length checks that
/// random sampling can miss).
#[test]
fn exhaustive_short_inputs_never_panic() {
    for b0 in 0u16..=255 {
        poke_all_decoders(&[b0 as u8]);
        for b1 in (0u16..=255).step_by(17) {
            poke_all_decoders(&[b0 as u8, b1 as u8]);
        }
    }
    let fapi_msg = fapi::FapiMsg::SlotInd(fapi::SlotIndication {
        ru_id: 0,
        slot: SlotId::from_absolute(12345),
    });
    let bytes = fapi::encode(&fapi_msg);
    for cut in 0..=bytes.len() {
        let _ = fapi::decode(&bytes[..cut]);
    }
    let fh = FhMessage::Uci(UciMsg {
        hdr: fh_header(Direction::Uplink, SlotId::from_absolute(54321), 0, 1),
        entries: vec![UciEntry {
            rnti: 17,
            harq_id: 0,
            ack: true,
        }],
    });
    let bytes = fh.to_bytes();
    for cut in 0..=bytes.len() {
        let _ = FhMessage::from_bytes(&bytes[..cut]);
        let _ = peek_headers(&bytes[..cut]);
    }
}
