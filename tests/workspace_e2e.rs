//! Workspace-level integration tests: the public API end to end, from
//! the root crate, exactly as a downstream user would drive it.

use slingshot::{Deployment, DeploymentBuilder, OrionL2Node, SwitchNode};
use slingshot_baseline::BaselineDeployment;
use slingshot_ran::{AppServerNode, CellConfig, Fidelity, UeConfig, UeNode, UeState};
use slingshot_sim::Nanos;
use slingshot_transport::{EchoResponder, PingApp, UdpCbrSource, UdpSink};

fn cell() -> CellConfig {
    CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

fn slingshot_deployment(seed: u64) -> Deployment {
    DeploymentBuilder::new()
        .seed(seed)
        .cell(cell())
        .ue(UeConfig::new(100, 0, "ue", 22.0))
        .build()
}

/// The headline contrast, in one test: the same crash, handled by
/// Slingshot (UE stays up) and by today's best fallback (UE is gone for
/// multiple seconds).
#[test]
fn slingshot_vs_baseline_headline() {
    // With Slingshot.
    let mut s = slingshot_deployment(1);
    s.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    s.kill_primary_at(Nanos::from_secs(1));
    s.engine.run_until(Nanos::from_secs(3));
    let ue = s.engine.node::<UeNode>(s.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0);
    assert_eq!(ue.state, UeState::Connected);

    // Without Slingshot (full backup vRAN, fronthaul rerouted).
    let mut b = BaselineDeployment::build(1, cell(), vec![UeConfig::new(100, 0, "ue", 22.0)]);
    b.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    b.kill_primary_at(Nanos::from_secs(1));
    b.engine.run_until(Nanos::from_secs(9));
    let ue = b.engine.node::<UeNode>(b.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 1);
    let outage = (*ue.reattach_times.first().unwrap() - Nanos::from_secs(1)).as_secs();
    assert!(outage > 5.0, "baseline outage only {outage:.1} s");
}

/// Three UEs pinging through repeated planned migrations: nobody drops.
#[test]
fn three_ues_survive_repeated_planned_migrations() {
    let ues = vec![
        UeConfig::new(100, 0, "a", 21.0),
        UeConfig::new(101, 0, "b", 18.0),
        UeConfig::new(102, 0, "c", 24.0),
    ];
    let mut d = DeploymentBuilder::new()
        .seed(2)
        .cell(cell())
        .ues(ues)
        .build();
    for (i, rnti) in [100u16, 101, 102].iter().enumerate() {
        d.add_flow(
            i,
            *rnti,
            Box::new(EchoResponder::new()),
            Box::new(PingApp::new(
                Nanos::from_millis(10),
                Nanos::from_millis(100),
            )),
        );
    }
    for ms in [500u64, 900, 1300, 1700] {
        d.planned_migration_at(Nanos::from_millis(ms));
    }
    d.engine.run_until(Nanos::from_millis(2500));
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(orion.planned_migrations, 4);
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.migrations_executed, 4);
    for (i, rnti) in [100u16, 101, 102].iter().enumerate() {
        let ue = d.engine.node::<UeNode>(d.ues[i]).unwrap();
        assert_eq!(ue.rlf_count, 0, "ue {rnti}");
        let ping: &PingApp = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(*rnti, 0)
            .unwrap();
        assert!(
            ping.success_rate() > 0.9,
            "ue {rnti}: {}",
            ping.success_rate()
        );
    }
}

/// Failover followed by a second failover onto the spare PHY: the
/// replacement-standby path of §6.3.
#[test]
fn spare_phy_takes_over_after_double_failure() {
    let mut d = DeploymentBuilder::new()
        .seed(3)
        .cell(cell())
        .spare_phy(true)
        .ue(UeConfig::new(100, 0, "ue", 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(2_000_000, 800, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    // First failure: primary dies, secondary takes over, spare is
    // initialized as the new standby.
    d.kill_primary_at(Nanos::from_millis(500));
    d.engine.run_until(Nanos::from_millis(1500));
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(orion.failovers, 1);
    // Second failure: the new primary (old secondary) dies; the spare
    // must take over.
    d.engine.kill(d.secondary_phy);
    d.engine.run_until(Nanos::from_millis(3000));
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(orion.failovers, 2, "second failover onto the spare");
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0, "UE survives both failures");
    assert_eq!(ue.state, UeState::Connected);
}

/// Determinism across the whole public API surface.
#[test]
fn full_deployment_is_deterministic() {
    let run = |seed: u64| {
        let mut d = slingshot_deployment(seed);
        d.add_flow(
            0,
            100,
            Box::new(UdpCbrSource::new(2_000_000, 800, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
        d.planned_migration_at(Nanos::from_millis(300));
        d.kill_primary_at(Nanos::from_millis(700));
        d.engine.run_until(Nanos::from_millis(1200));
        (d.engine.trace_hash(), d.engine.dispatched())
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).0, run(10).0);
}
