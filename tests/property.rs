//! Property-based tests (proptest) on the core data structures and
//! invariants across the workspace: codecs must round-trip on arbitrary
//! inputs, coding-chain invariants must hold for random payloads, and
//! the RLC window must never duplicate, corrupt, or reorder.

use bytes::Bytes;
use proptest::prelude::*;

use slingshot::ctl::CtlPacket;
use slingshot_fapi as fapi;
use slingshot_fronthaul::{
    fh_header, CPlaneMsg, CSection, DciEntry, DciMsg, Direction, FhMessage, ShadowMsg, UciEntry,
    UciMsg,
};
use slingshot_phy_dsp::bits::{bits_to_bytes, bytes_to_bits};
use slingshot_phy_dsp::crc::{attach_crc24a, check_crc24a};
use slingshot_phy_dsp::iq::{BfpPrb, Cplx, SC_PER_PRB};
use slingshot_phy_dsp::ratematch::{rate_match, rate_recover};
use slingshot_phy_dsp::scramble::scramble_bits;
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbDecodeOutcome, TbParams};
use slingshot_phy_dsp::{DspKernels, LdpcCode, Modulation};

// Handle-backed stand-ins for the deprecated free functions; `detect()`
// exercises the SIMD path on capable hosts (bit-exact with scalar by
// contract, so every property below is backend-independent).
fn bfp_compress(s: &[Cplx; SC_PER_PRB]) -> BfpPrb {
    DspKernels::detect().bfp_compress(s)
}

fn bfp_decompress(prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
    DspKernels::detect().bfp_decompress(prb)
}

fn encode_tb(payload: &[u8], p: &TbParams) -> Vec<Cplx> {
    DspKernels::detect().encode_tb(payload, p)
}

fn decode_tb(acc: &mut [f32], rx: &[Cplx], nv: f32, bytes: usize, p: &TbParams) -> TbDecodeOutcome {
    DspKernels::detect().decode_tb(acc, rx, nv, bytes, p)
}
use slingshot_ran::rlc::{RlcRx, RlcTx};
use slingshot_sim::{Nanos, Sampler, SlotId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crc24a_roundtrip_and_single_flip_detection(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        flip_byte in 0usize..512,
        flip_bit in 0u8..8,
    ) {
        let framed = attach_crc24a(&data);
        prop_assert_eq!(check_crc24a(&framed), Some(&data[..]));
        let mut bad = framed.clone();
        let idx = flip_byte % bad.len();
        bad[idx] ^= 1 << flip_bit;
        prop_assert!(check_crc24a(&bad).is_none());
    }

    #[test]
    fn scrambler_is_involution(
        mut bits in proptest::collection::vec(0u8..2, 1..2048),
        c_init in 1u32..0x7FFF_FFFF,
    ) {
        let orig = bits.clone();
        scramble_bits(&mut bits, c_init);
        scramble_bits(&mut bits, c_init);
        prop_assert_eq!(bits, orig);
    }

    #[test]
    fn bits_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn ldpc_encode_emits_valid_linear_codewords(
        a in proptest::collection::vec(0u8..2, 64..65),
        b in proptest::collection::vec(0u8..2, 64..65),
    ) {
        let code = LdpcCode::new(64);
        let ca = code.encode(&a);
        let cb = code.encode(&b);
        prop_assert!(code.parity_ok(&ca));
        prop_assert!(code.parity_ok(&cb));
        let sum: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        prop_assert!(code.parity_ok(&sum), "codewords closed under XOR");
    }

    #[test]
    fn rate_match_recover_positions_consistent(
        n_div in 3usize..40,
        e_factor in 1usize..4,
        rv in 0u8..4,
    ) {
        let n = n_div * 3;
        let coded: Vec<u8> = (0..n).map(|i| ((i * 31 + 7) % 2) as u8).collect();
        let e = n * e_factor / 2 + 1;
        let tx = rate_match(&coded, e, rv);
        let llrs: Vec<f32> = tx.iter().map(|b| if *b == 0 { 1.0 } else { -1.0 }).collect();
        let mut acc = vec![0.0f32; n];
        rate_recover(&mut acc, &llrs, rv);
        for (i, v) in acc.iter().enumerate() {
            if *v != 0.0 {
                let bit = u8::from(*v < 0.0);
                prop_assert_eq!(bit, coded[i]);
            }
        }
    }

    #[test]
    fn tb_chain_noiseless_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 8..300),
        mcs_idx in 0u8..20,
    ) {
        let row = fapi::mcs(mcs_idx);
        let bps = row.modulation.bits_per_symbol();
        let info_bits = (payload.len() + 3) * 8;
        // Enough coded bits for ~the nominal rate, rounded to symbols.
        let mut e = (info_bits as f64 / row.code_rate()) as usize + bps;
        e -= e % bps;
        let p = TbParams {
            modulation: row.modulation,
            e_bits: e,
            rnti: 0x4601,
            cell_id: 7,
            rv: 0,
            fec_iterations: 12,
        };
        let syms = encode_tb(&payload, &p);
        let mut acc = vec![0.0; mother_buffer_len(payload.len())];
        let out = decode_tb(&mut acc, &syms, 1e-3, payload.len(), &p);
        prop_assert_eq!(out.payload.as_deref(), Some(&payload[..]));
    }

    #[test]
    fn bfp_roundtrip_error_bounded(
        res in proptest::collection::vec(-4.0f32..4.0, SC_PER_PRB),
        ims in proptest::collection::vec(-4.0f32..4.0, SC_PER_PRB),
    ) {
        let mut s = [Cplx::ZERO; SC_PER_PRB];
        for i in 0..SC_PER_PRB {
            s[i] = Cplx::new(res[i], ims[i]);
        }
        let prb = bfp_compress(&s);
        let d = bfp_decompress(&prb);
        let step = (1u32 << prb.exponent) as f32 / 4096.0;
        for (a, b) in s.iter().zip(d.iter()) {
            prop_assert!((*a - *b).abs() <= step * 1.5);
        }
    }

    #[test]
    fn fronthaul_messages_roundtrip(
        frame in any::<u16>(),
        subframe in 0u8..10,
        slot in 0u8..2,
        symbol in 0u8..14,
        ru_port in any::<u8>(),
        sections in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>(), any::<u16>()), 0..8),
        dcis in proptest::collection::vec(
            (any::<u16>(), any::<bool>(), any::<u16>(), 0u8..16, any::<bool>(), 0u8..4, 0u8..20, any::<u16>(), any::<u16>(), any::<u32>()),
            0..6),
        ucis in proptest::collection::vec((any::<u16>(), 0u8..16, any::<bool>()), 0..6),
        shadow in proptest::collection::vec(any::<u8>(), 0..128),
        snr_x100 in -4000i32..4000,
        shadow_rnti in any::<u16>(),
    ) {
        let sid = SlotId { sfn: frame % 1024, subframe, slot };
        for dir in [Direction::Uplink, Direction::Downlink] {
            let hdr = fh_header(dir, sid, symbol, ru_port);
            let msgs = vec![
                FhMessage::CPlane(CPlaneMsg {
                    hdr,
                    sections: sections.iter().map(|(a, b, c, d)| CSection {
                        section_id: *a, start_prb: *b, num_prb: *c, beam_id: *d,
                    }).collect(),
                }),
                FhMessage::Dci(DciMsg {
                    hdr,
                    entries: dcis.iter().map(|(rnti, ul, tgt, hq, ndi, rv, mcs, sp, np, tb)| DciEntry {
                        rnti: *rnti, uplink: *ul, target_slot_scalar: *tgt, harq_id: *hq,
                        ndi: *ndi, rv: *rv, mcs: *mcs, start_prb: *sp, num_prb: *np, tb_bytes: *tb,
                    }).collect(),
                }),
                FhMessage::Uci(UciMsg {
                    hdr,
                    entries: ucis.iter().map(|(rnti, hq, ack)| UciEntry {
                        rnti: *rnti, harq_id: *hq, ack: *ack,
                    }).collect(),
                }),
                FhMessage::Shadow(ShadowMsg {
                    hdr,
                    rnti: shadow_rnti,
                    snr_db_x100: snr_x100,
                    data: Bytes::from(shadow.clone()),
                }),
            ];
            for msg in msgs {
                let bytes = msg.to_bytes();
                let parsed = FhMessage::from_bytes(&bytes);
                prop_assert_eq!(parsed.as_ref(), Some(&msg));
                // Truncations must fail cleanly, never panic.
                for cut in [0, 3, bytes.len() / 2, bytes.len().saturating_sub(1)] {
                    let _ = FhMessage::from_bytes(&bytes[..cut]);
                }
            }
        }
    }

    #[test]
    fn fapi_codec_roundtrips_and_rejects_truncation(
        ru_id in any::<u8>(),
        sfn in 0u16..1024,
        subframe in 0u8..10,
        slot in 0u8..2,
        pdus in proptest::collection::vec(
            (any::<u16>(), 0u8..16, any::<bool>(), 0u8..4, 0u8..20, any::<u16>(), any::<u16>(), any::<u32>()),
            0..5),
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let s = SlotId { sfn, subframe, slot };
        let msgs = vec![
            fapi::FapiMsg::UlTti(fapi::UlTtiRequest {
                ru_id, slot: s,
                pusch: pdus.iter().map(|(rnti, hq, ndi, rv, mcs, sp, np, tb)| fapi::PuschPdu {
                    rnti: *rnti, harq_id: *hq, ndi: *ndi, rv: *rv, mcs: *mcs,
                    start_prb: *sp, num_prb: *np, tb_bytes: *tb,
                }).collect(),
            }),
            fapi::FapiMsg::TxData(fapi::TxDataRequest {
                ru_id, slot: s,
                tbs: vec![(1, Bytes::from(payload.clone()))],
            }),
            fapi::FapiMsg::SlotInd(fapi::SlotIndication { ru_id, slot: s }),
        ];
        for msg in msgs {
            let bytes = fapi::encode(&msg);
            let parsed = fapi::decode(&bytes);
            prop_assert_eq!(parsed.as_ref(), Some(&msg));
            for cut in 0..bytes.len().min(24) {
                let _ = fapi::decode(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn ctl_packet_roundtrip(ru in any::<u8>(), phy in any::<u8>(), scalar in any::<u16>()) {
        for pkt in [
            CtlPacket::MigrateOnSlot { ru_id: ru, dest_phy_id: phy, slot_scalar: scalar },
            CtlPacket::FailureNotify { phy_id: phy },
        ] {
            prop_assert_eq!(CtlPacket::from_bytes(&pkt.to_bytes()), Some(pkt));
        }
    }

    #[test]
    fn rlc_lossless_under_random_budgets(
        packets in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..12),
        budgets in proptest::collection::vec(30usize..400, 1..64),
    ) {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        for p in &packets {
            tx.enqueue(Bytes::from(p.clone()));
        }
        let mut got: Vec<Bytes> = Vec::new();
        let mut t = 0u64;
        let mut i = 0usize;
        while !tx.is_empty() {
            let budget = budgets[i % budgets.len()];
            i += 1;
            t += 1;
            if let Some(tb) = tx.build_tb(budget) {
                got.extend(rx.on_tb(Nanos(t * 1_000_000), &tb));
            }
            prop_assert!(i < 10_000, "runaway");
        }
        let want: Vec<Bytes> = packets.iter().map(|p| Bytes::from(p.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rlc_under_loss_delivers_subset_in_order(
        packets in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 20..200), 4..16),
        drop_mask in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        for (i, p) in packets.iter().enumerate() {
            let mut tagged = p.clone();
            tagged[0] = i as u8; // identify packets by first byte
            tx.enqueue(Bytes::from(tagged));
        }
        let mut got: Vec<Bytes> = Vec::new();
        let mut t = 0u64;
        let mut i = 0usize;
        while let Some(tb) = tx.build_tb(128) {
            t += 1;
            let dropped = drop_mask[i % drop_mask.len()];
            i += 1;
            if !dropped {
                got.extend(rx.on_tb(Nanos(t * 1_000_000), &tb));
            }
            if i > 10_000 { break; }
        }
        got.extend(rx.poll_expired(Nanos((t + 100) * 1_000_000)));
        // Delivered packets are a subset, uncorrupted, in order.
        let ids: Vec<u8> = got.iter().map(|p| p[0]).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&ids, &sorted, "in order, no duplicates");
        for p in &got {
            let idx = p[0] as usize;
            prop_assert!(idx < packets.len());
            prop_assert_eq!(p.len(), packets[idx].len(), "no corruption");
        }
    }

    #[test]
    fn slot_id_arithmetic(abs in 0u64..20_000_000, n in 0u64..100_000) {
        let id = SlotId::from_absolute(abs);
        let epoch = 1024 * 20;
        prop_assert_eq!(id.epoch_index(), abs % epoch);
        let adv = id.advance(n);
        prop_assert_eq!(adv.epoch_index(), (abs + n) % epoch);
    }

    #[test]
    fn sampler_percentiles_are_order_statistics(
        mut values in proptest::collection::vec(any::<u32>(), 1..200),
        p in 0.1f64..100.0,
    ) {
        let mut s = Sampler::new();
        for v in &values {
            s.record(*v as u64);
        }
        let got = s.percentile(p).unwrap();
        values.sort_unstable();
        prop_assert!(values.contains(&(got as u32)));
        prop_assert!(got >= values[0] as u64 && got <= *values.last().unwrap() as u64);
    }

    #[test]
    fn modulation_noiseless_roundtrip_random_bits(
        seed_bits in proptest::collection::vec(0u8..2, 24..96),
    ) {
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64, Modulation::Qam256] {
            let bps = m.bits_per_symbol();
            let n = (seed_bits.len() / bps) * bps;
            if n == 0 { continue; }
            let bits = &seed_bits[..n];
            let syms = slingshot_phy_dsp::modulation::modulate(bits, m);
            let llrs = DspKernels::detect().demodulate_llr(&syms, m, 1e-3);
            let rx = slingshot_phy_dsp::modulation::hard_decide(&llrs);
            prop_assert_eq!(&rx[..], bits);
        }
    }
}
