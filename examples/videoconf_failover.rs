//! Videoconferencing through a PHY crash — the paper's headline demo
//! (§8.1/Fig. 8): with Slingshot the call doesn't notice; without it
//! (see `slingshot-baseline`) the user stares at a frozen screen for
//! more than six seconds.
//!
//! Run with:
//! ```sh
//! cargo run --release --example videoconf_failover
//! ```

use slingshot::{DeploymentBuilder, DeploymentConfig};
use slingshot_ran::{CellConfig, Fidelity, UeConfig, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{VideoReceiver, VideoSender};

fn main() {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 106,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed: 3,
        ..DeploymentConfig::default()
    };
    let mut d = DeploymentBuilder::new()
        .config(cfg)
        .ue(UeConfig::new(100, 0, "caller", 22.0))
        .build();

    // A 500 kbps talking-head stream from the server to the UE, with
    // loss-adaptive rate control (receiver reports feed back uplink).
    d.add_flow(
        0,
        100,
        Box::new(VideoReceiver::new(Nanos::ZERO)),
        Box::new(VideoSender::new(500_000, Nanos::ZERO)),
    );

    d.kill_primary_at(Nanos::from_secs(3));
    d.engine.run_until(Nanos::from_secs(8));

    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    let rx: &VideoReceiver = ue.app(0).unwrap();
    println!("received video bitrate per second (failure at t=3 s):");
    for (sec, kbps) in rx.kbps_series().iter().enumerate() {
        let marker = if sec == 3 { "  <- PHY killed here" } else { "" };
        println!("  t={sec}s  {kbps:7.1} kbps{marker}");
    }
    assert_eq!(ue.rlf_count, 0);
    println!("\nno rebuffering, no disconnect — the failover was invisible.");
    println!("compare: slingshot-baseline's backup-vRAN failover freezes the");
    println!("stream for ~6.2 s while the UE re-attaches (run fig8_video).");
}
