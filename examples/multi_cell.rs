//! Two cells, two PHY servers, crossed roles — the paper's production
//! deployment shape (§8): "Slingshot will co-locate primary and
//! secondary PHYs for different RUs within PHY processes, i.e., our
//! design does not require dedicated servers to run just secondary
//! PHYs." Kill one server and watch one cell fail over while the other
//! keeps running on the same surviving process.
//!
//! Run with:
//! ```sh
//! cargo run --release --example multi_cell
//! ```

use slingshot::{DeploymentConfig, DualRuDeployment, OrionL2Node};
use slingshot_ran::{CellConfig, Fidelity, PhyNode, UeConfig, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed: 77,
        ..DeploymentConfig::default()
    };
    let ues0 = vec![UeConfig::new(100, 0, "cell0-phone", 22.0)];
    let ues1 = vec![UeConfig {
        ru_id: 1,
        ..UeConfig::new(200, 1, "cell1-phone", 22.0)
    }];
    let mut d = DualRuDeployment::build(cfg, ues0, ues1);
    for (cell, rnti) in [(0usize, 100u16), (1, 200)] {
        d.add_flow(
            cell,
            0,
            rnti,
            Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    println!("cell 0: primary = PHY 1 (standby PHY 2)");
    println!("cell 1: primary = PHY 2 (standby PHY 1)\n");

    d.engine.run_until(Nanos::from_millis(800));
    println!("t=0.8 s: killing PHY 1 (cell 0's primary, cell 1's standby)");
    d.engine.kill(d.phy1);
    d.engine.run_until(Nanos::from_millis(2500));

    for (i, label) in ["cell 0", "cell 1"].iter().enumerate() {
        let orion = d.engine.node::<OrionL2Node>(d.cells[i].orion_l2).unwrap();
        let ue = d.engine.node::<UeNode>(d.cells[i].ues[0]).unwrap();
        println!(
            "{label}: failovers={} | UE {:?}, RLF={}",
            orion.failovers, ue.state, ue.rlf_count
        );
        for (t, e) in &orion.events {
            println!("  event @ {:.6}s: {e}", t.as_secs());
        }
    }
    let survivor = d.engine.node::<PhyNode>(d.phy2).unwrap();
    println!(
        "\nPHY 2 now carries both cells: work slots={}, crashed={}",
        survivor.work_slots,
        survivor.crash_time.is_some()
    );
    for rnti in [100u16, 200] {
        let sink: &UdpSink = d
            .engine
            .node::<slingshot_ran::AppServerNode>(d.server)
            .unwrap()
            .app(rnti, 0)
            .unwrap();
        println!(
            "ue {rnti}: {} packets delivered, {:.2}% loss",
            sink.total_rx,
            sink.loss_rate() * 100.0
        );
    }
}
