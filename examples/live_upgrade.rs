//! Live PHY upgrade (the paper's §8.3 scenario): the hot standby runs a
//! newer PHY build with a stronger FEC decoder; a planned migration
//! moves the cell onto it with zero downtime, and the UEs' throughput
//! improves.
//!
//! Run with:
//! ```sh
//! cargo run --release --example live_upgrade
//! ```

use slingshot::{DeploymentBuilder, DeploymentConfig, PRIMARY_PHY_ID, SECONDARY_PHY_ID};
use slingshot_ran::{AppServerNode, CellConfig, Fidelity, PhyNode, UeConfig, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 106,
            fidelity: Fidelity::Sampled,
            fec_iterations: 8, // what the scheduler assumes
            ..CellConfig::default()
        },
        seed: 11,
        // The standby runs the upgraded build: double the decoder
        // iteration budget.
        secondary_fec_iterations: Some(16),
        ..DeploymentConfig::default()
    };
    // A UE whose SNR sits near the decode threshold: it feels the
    // difference between the old and new decoder.
    let ues = vec![UeConfig::new(100, 0, "edge-ue", 16.0)];
    let mut d = DeploymentBuilder::new().config(cfg).ues(ues).build();
    // The currently deployed build is older than the scheduler assumes:
    // it decodes with only 2 iterations.
    d.engine
        .node_mut::<PhyNode>(d.primary_phy)
        .unwrap()
        .set_fec_iterations(2);

    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(25_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(500))),
    );

    // Upgrade at t = 3 s via planned migration (zero downtime).
    d.planned_migration_at(Nanos::from_secs(3));
    d.engine.run_until(Nanos::from_secs(6));

    let sink: &UdpSink = d
        .engine
        .node::<AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let mbps = sink.bins.mbps();
    let before: f64 = mbps[1..6].iter().sum::<f64>() / 5.0;
    let after: f64 = mbps[7..12].iter().sum::<f64>() / 5.0;
    println!("uplink throughput before upgrade (old build, 2 FEC iters): {before:.1} Mbps");
    println!("uplink throughput after  upgrade (new build, 16 FEC iters): {after:.1} Mbps");

    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    println!(
        "downtime during the upgrade: UE radio-link failures = {} (zero-downtime)",
        ue.rlf_count
    );
    let old = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    println!(
        "old build still alive as the new hot standby (crashed: {})",
        old.crash_time.is_some()
    );
    let _ = (PRIMARY_PHY_ID, SECONDARY_PHY_ID);
}
