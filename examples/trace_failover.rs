//! A PHY failover as a slot timeline: runs the §8.2 failover scenario,
//! then exports the engine's structured event trace as Chrome
//! `trace_event` JSON — open `trace_failover.json` in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the heartbeat
//! gap, detector saturation, failure notification, and RU→PHY map flip
//! on one nanosecond-resolution timeline.
//!
//! The run also opts into the wall-clock slot profiler (a side channel
//! that never touches the deterministic trace) and finishes with the
//! SLO analyzer's availability report over the same trace — the full
//! observability surface on one failover.
//!
//! Run with:
//! ```sh
//! cargo run --release --example trace_failover
//! ```

use slingshot::{DeploymentBuilder, DeploymentConfig};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::slo::{self, SloConfig};
use slingshot_sim::trace::{delivered_ul_slots, detections, dropped_ttis};
use slingshot_sim::{Nanos, SpanProfiler, TraceEventKind, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed: 8,
        ..DeploymentConfig::default()
    };
    let mut d = DeploymentBuilder::new()
        .config(cfg)
        .ue(UeConfig::new(100, 0, "ue100", 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );

    // Opt into wall-clock span profiling with the 500 µs TTI as the
    // deadline budget. The profiler is a side channel: enabling it
    // leaves the deterministic event trace byte-identical.
    d.engine
        .set_profiler(SpanProfiler::with_deadline_ns(SLOT_DURATION.0));

    let kill_at = Nanos::from_millis(500);
    d.kill_primary_at(kill_at);
    d.engine.run_until(Nanos::from_millis(1500));
    d.publish_metrics();

    // --- the failover, reconstructed purely from the trace ---
    let trace = d.engine.event_trace();
    let at_of = |kind: TraceEventKind| {
        trace
            .of_kind(kind)
            .next()
            .unwrap_or_else(|| panic!("missing {kind:?} in trace"))
            .at
    };
    let det = &detections(trace.iter())[0];
    let saturated = at_of(TraceEventKind::DetectorSaturated);
    let notify_sent = at_of(TraceEventKind::FailureNotifySent);
    let notify_rx = at_of(TraceEventKind::FailureNotifyReceived);
    let armed = at_of(TraceEventKind::MigrateArmed);
    let flip = at_of(TraceEventKind::MapFlip);
    assert!(
        det.last_heartbeat < saturated
            && saturated <= notify_sent
            && notify_sent <= notify_rx
            && notify_rx <= armed
            && armed <= flip,
        "lifecycle out of order"
    );
    assert!(det.latency() <= Nanos(450_000));

    let rel = |t: Nanos| (t.0 as i64 - kill_at.0 as i64) as f64 / 1e3;
    println!("failover timeline (µs relative to the kill at t=500 ms):");
    println!(
        "  {:>9.1}  last heartbeat from primary",
        rel(det.last_heartbeat)
    );
    println!(
        "  {:>9.1}  detector saturated (gap > 450 µs)",
        rel(saturated)
    );
    println!(
        "  {:>9.1}  failure notification sent (switch)",
        rel(notify_sent)
    );
    println!(
        "  {:>9.1}  failure notification received (orion-l2)",
        rel(notify_rx)
    );
    println!("  {:>9.1}  migrate_on_slot armed", rel(armed));
    println!("  {:>9.1}  RU→PHY map flipped", rel(flip));
    let delivered = delivered_ul_slots(trace.iter());
    println!(
        "  detection latency {:.1} µs, dropped TTIs {}",
        det.latency().0 as f64 / 1e3,
        dropped_ttis(&delivered, 5)
    );

    // --- exports ---
    let names = d.engine.node_names().to_vec();
    let mut json = Vec::new();
    trace.write_chrome_trace(&mut json, &names).unwrap();
    std::fs::write("trace_failover.json", &json).unwrap();
    println!(
        "\nwrote trace_failover.json ({} events, {} bytes) — open in chrome://tracing or ui.perfetto.dev",
        trace.len(),
        json.len()
    );

    let mut summary = Vec::new();
    trace.write_summary(&mut summary, &names).unwrap();
    println!("\n{}", String::from_utf8(summary).unwrap());

    // --- service-level view of the same trace ---
    let slo_cfg = SloConfig {
        horizon_slots: 3000, // 1500 ms at 500 µs per slot
        ..SloConfig::default()
    };
    println!("availability report:");
    println!("{}", slo::analyze(trace, &slo_cfg).to_text());

    // --- wall-clock slot profile (side channel; host-dependent) ---
    let profiler = d.engine.profiler();
    profiler.publish(d.engine.metrics_mut());
    if let Some(p) = profiler.report() {
        println!("{}", p.to_text());
    }
    let mut spans = Vec::new();
    profiler.write_chrome_trace(&mut spans).unwrap();
    std::fs::write("trace_failover_profile.json", &spans).unwrap();
    println!(
        "wrote trace_failover_profile.json ({} bytes) — wall-clock spans for the same run\n",
        spans.len()
    );

    println!("metrics snapshot:\n{}", d.engine.metrics().to_text());
}
