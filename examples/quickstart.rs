//! Quickstart: build the full Slingshot testbed, run traffic, kill the
//! primary PHY, and watch the failover happen without the UE noticing.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slingshot::{DeploymentBuilder, DeploymentConfig, OrionL2Node, SwitchNode};
use slingshot_ran::{AppServerNode, CellConfig, Fidelity, UeConfig, UeNode, UeState};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    // 1. Configure the cell. `Sampled` fidelity runs a real LDPC-coded
    //    representative block per transport block — fast enough for
    //    multi-second simulations while keeping decode outcomes
    //    physical. Use `Fidelity::Full` for bit-exact small cells.
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 106, // 40 MHz worth of PRBs for a quick run
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed: 7,
        ..DeploymentConfig::default()
    };

    // 2. One UE camped on the cell at 22 dB mean SNR.
    let ues = vec![UeConfig::new(100, 0, "my-phone", 22.0)];

    // 3. Build the deployment: RU, switch (with the Slingshot fronthaul
    //    middlebox + failure detector), primary + hot-standby PHY (each
    //    paired with a PHY-side Orion), L2 + L2-side Orion, core, and
    //    an application server.
    let mut d = DeploymentBuilder::new().config(cfg).ues(ues).build();

    // 4. Attach an uplink iperf-style flow: UDP source on the UE,
    //    sink on the app server.
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(8_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );

    // 5. Let it run for a second, then SIGKILL the primary PHY.
    println!("running: 1 s of steady state...");
    d.kill_primary_at(Nanos::from_millis(1000));
    println!("killed the primary PHY at t=1.000 s");
    d.engine.run_until(Nanos::from_millis(2500));

    // 6. What happened?
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    let detected = orion.last_failure_notified.expect("failure detected");
    println!(
        "in-switch detector fired at t={:.6} s ({} µs after the kill)",
        detected.as_secs(),
        (detected - Nanos::from_millis(1000)).as_micros()
    );
    for (t, e) in &orion.events {
        println!("  orion event @ {:.6}s: {e}", t.as_secs());
    }
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    println!(
        "switch: {} data-plane migration(s), {} standby downlink frames filtered",
        sw.mbox.migrations_executed, sw.mbox.dl_filtered
    );

    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.state, UeState::Connected);
    println!(
        "UE: still {:?}, radio-link failures: {} (the whole point!)",
        ue.state, ue.rlf_count
    );

    let sink: &UdpSink = d
        .engine
        .node::<AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    println!(
        "uplink flow: {} packets delivered, {:.2}% loss, worst 10 ms bin {:.1} Mbps",
        sink.total_rx,
        sink.loss_rate() * 100.0,
        sink.bins
            .mbps()
            .iter()
            .skip(20) // skip slow start
            .cloned()
            .fold(f64::MAX, f64::min)
    );
}
