//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the `bytes` 1.x API it uses: [`Bytes`] (a cheaply
//! cloneable, reference-counted byte buffer), and the [`Buf`]/[`BufMut`]
//! cursor traits with big-endian integer accessors.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, reference-counted byte buffer.
///
/// Clones share the backing allocation; [`Bytes::slice`] produces a view
/// into the same allocation without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    // Arc<Vec<u8>> rather than Arc<[u8]>: converting a Vec into
    // Arc<[u8]> copies the contents into a fresh allocation, while
    // Arc::new(vec) just takes ownership — so `Bytes::from(vec)` on the
    // simulator's per-frame hot path is allocation-free beyond the Vec
    // the caller already built.
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Create `Bytes` from a static slice (no allocation in the real
    /// crate; here it copies once, which is semantically equivalent).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    /// Create `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

/// Read cursor over a contiguous byte buffer. Integer accessors are
/// big-endian (network order), matching `bytes::Buf`.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The unread bytes, as a contiguous slice.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Write cursor appending big-endian integers, matching `bytes::BufMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16(0x1234);
        v.put_u32(0xDEAD_BEEF);
        v.put_u64(0x0102_0304_0506_0708);
        v.put_i16(-2);
        v.put_i32(-77);
        let mut buf = &v[..];
        assert_eq!(buf.get_u8(), 0xAB);
        assert_eq!(buf.get_u16(), 0x1234);
        assert_eq!(buf.get_u32(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(buf.get_i16(), -2);
        assert_eq!(buf.get_i32(), -77);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn bytes_slice_shares_and_bounds() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.slice(..2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_buf_cursor() {
        let mut b = Bytes::from(vec![0, 1, 0, 2, 9, 9]);
        assert_eq!(b.get_u16(), 1);
        assert_eq!(b.get_u16(), 2);
        let rest = b.copy_to_bytes(2);
        assert_eq!(&rest[..], &[9, 9]);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), p, "Vec buffer must be reused");
        let c = b.clone();
        assert_eq!(c.as_ref().as_ptr(), p);
    }

    #[test]
    fn big_endian_wire_order() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u16(0x0102);
        assert_eq!(v, vec![0x01, 0x02]);
    }
}
