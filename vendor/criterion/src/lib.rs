//! Offline vendored subset of the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrate-then-time loop (wall clock, median-free) — adequate for
//! tracking relative perf across PRs, not for statistical rigor.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group; reported alongside
/// per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: grow the iteration count until one measurement
        // batch runs long enough to trust the clock.
        let mut iters: u64 = 1;
        let per_iter_secs = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let secs = b.elapsed.as_secs_f64();
            if secs >= 0.05 || iters >= (1 << 22) {
                break secs / iters as f64;
            }
            iters = if secs <= 1e-9 {
                iters.saturating_mul(16)
            } else {
                let factor = (0.06 / secs).ceil().clamp(2.0, 64.0) as u64;
                iters.saturating_mul(factor)
            };
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / per_iter_secs / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / per_iter_secs)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<32} {:>12}{}",
            self.name,
            id,
            format_time(per_iter_secs),
            rate
        );
        self
    }

    pub fn finish(self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this batch's iteration count. The routine's
    /// output is passed through `black_box` so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
