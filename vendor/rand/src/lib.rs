//! Offline vendored subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: the [`RngCore`]
//! trait (implemented by `slingshot_sim::SimRng`) and the [`Error`] type
//! referenced by `try_fill_bytes`. Semantics match rand 0.8.

use std::fmt;

/// Error type returned by fallible RNG operations.
///
/// The simulator's generators are infallible, so this exists only to
/// satisfy the `try_fill_bytes` signature.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}
