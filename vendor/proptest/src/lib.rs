//! Offline vendored subset of the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the proptest API its tests use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer/float range
//! strategies, tuple strategies, and `collection::vec`.
//!
//! Differences from upstream: inputs are drawn from a generator seeded
//! from the test's module path (deterministic across runs rather than
//! randomized), and failing cases are reported without shrinking. Both
//! keep this reproduction's test suite reproducible bit-for-bit.

use std::fmt;
use std::ops::Range;

/// Deterministic xoshiro256** generator used to drive input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in [0, n) by rejection (no modulo bias).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed a [`TestRng`] from a test name. Deterministic across runs so
/// test failures reproduce without a persistence file.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Error carried out of a failing property body by `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); this subset samples directly.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing any value of `T` — see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests. Mirrors upstream `proptest!` syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u8..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(
                        #[allow(unused_mut)]
                        let $pat = $crate::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of {} failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` ({})\n  left: `{:?}`\n right: `{:?}`",
            format_args!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fail the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..10_000 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let s = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
            let f = Strategy::sample(&(-4.0f32..4.0), &mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::test_rng("vec");
        for _ in 0..1000 {
            let exact = Strategy::sample(&collection::vec(any::<u8>(), 7usize), &mut rng);
            assert_eq!(exact.len(), 7);
            let ranged = Strategy::sample(&collection::vec(any::<u8>(), 1..5), &mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_tuples_and_muts(
            (a, b) in (0u16..100, any::<bool>()),
            mut v in collection::vec(0u8..2, 1..32),
        ) {
            v.push(if b { 1 } else { 0 });
            prop_assert!(a < 100);
            prop_assert!(v.iter().all(|&x| x < 2));
            prop_assert_eq!(v.len() >= 2, v.len() >= 2);
        }
    }
}
