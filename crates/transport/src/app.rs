//! The application trait hosted by UE and app-server nodes.
//!
//! Applications are pure state machines in the smoltcp style: the host
//! node delivers received packets and polls for packets to transmit,
//! with simulated time passed in explicitly. This keeps every traffic
//! model unit-testable without the simulation engine.

use bytes::Bytes;
use slingshot_sim::Nanos;

/// A traffic endpoint (one side of a flow).
///
/// `Any` is a supertrait so hosting nodes can downcast hosted apps for
/// post-run inspection (stats extraction in experiment harnesses).
/// `Send` because hosting nodes may live in a sharded engine lane whose
/// window runs on a worker thread.
pub trait UserApp: std::any::Any + Send {
    /// A packet arrived from the network.
    fn on_packet(&mut self, now: Nanos, payload: &[u8]);

    /// Collect packets the app wants to send now.
    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes>;

    /// The next time `poll_transmit` should be called even if nothing
    /// is received (None = purely reactive).
    fn next_wakeup(&self, now: Nanos) -> Option<Nanos>;
}

/// A no-op application (e.g., an idle UE).
#[derive(Debug, Default)]
pub struct IdleApp;

impl UserApp for IdleApp {
    fn on_packet(&mut self, _now: Nanos, _payload: &[u8]) {}

    fn poll_transmit(&mut self, _now: Nanos) -> Vec<Bytes> {
        Vec::new()
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_app_does_nothing() {
        let mut a = IdleApp;
        a.on_packet(Nanos(0), b"x");
        assert!(a.poll_transmit(Nanos(1)).is_empty());
        assert!(a.next_wakeup(Nanos(1)).is_none());
    }
}
