//! An adaptive videoconferencing model for the paper's Fig. 8: a sender
//! streaming a compressed talking-head video at a 500 kbps target with
//! loss-reactive rate adaptation, and a receiver reporting the average
//! received bitrate per second (the QoE proxy the paper plots).

use bytes::{Buf, BufMut, Bytes};
use slingshot_sim::{Nanos, RateBins};

use crate::app::UserApp;

const VIDEO_MAGIC: u8 = 0xF3;
const FEEDBACK_MAGIC: u8 = 0xF4;
const HEADER: usize = 1 + 8 + 8;

/// Frame interval: 30 fps.
const FRAME_INTERVAL: Nanos = Nanos(33_333_333);

/// The sending side: paced video frames, rate adapted from receiver
/// feedback (simple loss-based AIMD like RTC congestion controllers).
#[derive(Debug)]
pub struct VideoSender {
    pub target_bps: u64,
    pub current_bps: f64,
    next_frame: Nanos,
    next_seq: u64,
    pub sent_bytes: u64,
    /// Time of last feedback; prolonged silence also triggers backoff.
    last_feedback: Nanos,
}

impl VideoSender {
    pub fn new(target_bps: u64, start: Nanos) -> VideoSender {
        VideoSender {
            target_bps,
            current_bps: target_bps as f64,
            next_frame: start,
            next_seq: 0,
            sent_bytes: 0,
            last_feedback: start,
        }
    }
}

impl UserApp for VideoSender {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        let mut buf = payload;
        if buf.remaining() < 1 + 8 || buf.get_u8() != FEEDBACK_MAGIC {
            return;
        }
        let loss_pct = buf.get_u64();
        self.last_feedback = now;
        if loss_pct > 5 {
            self.current_bps *= 0.85;
        } else {
            self.current_bps = (self.current_bps * 1.02).min(self.target_bps as f64);
        }
        self.current_bps = self.current_bps.max(50_000.0);
    }

    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = Vec::new();
        // No feedback for 2 s → assume path trouble, halve rate.
        if now.saturating_sub(self.last_feedback) > Nanos::from_secs(2) {
            self.current_bps = (self.current_bps * 0.5).max(50_000.0);
            self.last_feedback = now;
        }
        while self.next_frame <= now {
            // One frame per interval, sized to the current rate, split
            // into ≤1200-byte packets.
            let frame_bytes = ((self.current_bps / 8.0) * (FRAME_INTERVAL.0 as f64 / 1e9)) as usize;
            let mut remaining = frame_bytes.max(HEADER + 1);
            while remaining > 0 {
                let take = remaining.min(1200);
                let mut v = Vec::with_capacity(HEADER + take);
                v.put_u8(VIDEO_MAGIC);
                v.put_u64(self.next_seq);
                v.put_u64(now.0);
                v.resize(HEADER + take, 0);
                self.next_seq += 1;
                self.sent_bytes += (HEADER + take) as u64;
                out.push(Bytes::from(v));
                remaining -= take;
            }
            self.next_frame += FRAME_INTERVAL;
        }
        out
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        Some(self.next_frame)
    }
}

/// The receiving side: tracks received bitrate (1 s bins, like the
/// paper's Fig. 8) and sends periodic loss feedback.
#[derive(Debug)]
pub struct VideoReceiver {
    pub bins: RateBins,
    highest_seq: Option<u64>,
    rx_since_report: u64,
    lost_since_report: u64,
    next_report: Nanos,
    pending: Vec<Bytes>,
    pub total_rx_bytes: u64,
}

impl VideoReceiver {
    pub fn new(origin: Nanos) -> VideoReceiver {
        VideoReceiver {
            bins: RateBins::new(origin, Nanos::from_millis(1000)),
            highest_seq: None,
            rx_since_report: 0,
            lost_since_report: 0,
            next_report: origin + Nanos::from_millis(100),
            pending: Vec::new(),
            total_rx_bytes: 0,
        }
    }

    /// Received bitrate per 1 s bin, kbps (the Fig. 8 series).
    pub fn kbps_series(&self) -> Vec<f64> {
        self.bins.mbps().iter().map(|m| m * 1000.0).collect()
    }
}

impl UserApp for VideoReceiver {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        let mut buf = payload;
        if buf.remaining() < HEADER || buf.get_u8() != VIDEO_MAGIC {
            return;
        }
        let seq = buf.get_u64();
        let _ts = buf.get_u64();
        self.bins.record(now, payload.len() as u64);
        self.total_rx_bytes += payload.len() as u64;
        self.rx_since_report += 1;
        match self.highest_seq {
            None => self.highest_seq = Some(seq),
            Some(h) if seq > h => {
                self.lost_since_report += seq - h - 1;
                self.highest_seq = Some(seq);
            }
            _ => {}
        }
    }

    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = std::mem::take(&mut self.pending);
        while self.next_report <= now {
            let total = self.rx_since_report + self.lost_since_report;
            let loss_pct = (self.lost_since_report * 100)
                .checked_div(total)
                .unwrap_or(0);
            let mut v = Vec::with_capacity(1 + 8);
            v.put_u8(FEEDBACK_MAGIC);
            v.put_u64(loss_pct);
            out.push(Bytes::from(v));
            self.rx_since_report = 0;
            self.lost_since_report = 0;
            self.next_report += Nanos::from_millis(100);
        }
        out
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        Some(self.next_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_paces_to_target() {
        let mut s = VideoSender::new(500_000, Nanos(0));
        let mut r = VideoReceiver::new(Nanos(0));
        for ms in 0..3000u64 {
            let now = Nanos::from_millis(ms);
            for p in s.poll_transmit(now) {
                r.on_packet(now, &p);
            }
            for f in r.poll_transmit(now) {
                s.on_packet(now, &f);
            }
        }
        let series = r.kbps_series();
        assert!(series.len() >= 3);
        for (i, kbps) in series.iter().take(3).enumerate() {
            assert!(
                (420.0..600.0).contains(kbps),
                "bin {i}: {kbps} kbps (target 500)"
            );
        }
    }

    #[test]
    fn outage_zeroes_bitrate_then_recovers() {
        let mut s = VideoSender::new(500_000, Nanos(0));
        let mut r = VideoReceiver::new(Nanos(0));
        for ms in 0..8000u64 {
            let now = Nanos::from_millis(ms);
            let outage = (3000..4000).contains(&ms);
            for p in s.poll_transmit(now) {
                if !outage {
                    r.on_packet(now, &p);
                }
            }
            for f in r.poll_transmit(now) {
                if !outage {
                    s.on_packet(now, &f);
                }
            }
        }
        let series = r.kbps_series();
        assert!(series[3] < 50.0, "outage bin: {}", series[3]);
        let tail = series[6];
        assert!(tail > 200.0, "recovery bin: {tail}");
    }

    #[test]
    fn loss_feedback_reduces_rate() {
        let mut s = VideoSender::new(500_000, Nanos(0));
        let before = s.current_bps;
        // Feedback reporting 50% loss.
        let mut v = vec![FEEDBACK_MAGIC];
        v.extend_from_slice(&50u64.to_be_bytes());
        s.on_packet(Nanos(1), &v);
        assert!(s.current_bps < before);
    }

    #[test]
    fn feedback_silence_backs_off() {
        // No feedback for >2 s (e.g., the uplink is dead): the sender
        // halves its rate instead of blasting into a black hole.
        let mut s = VideoSender::new(500_000, Nanos(0));
        let before = s.current_bps;
        let _ = s.poll_transmit(Nanos::from_secs(3));
        assert!(s.current_bps <= before * 0.6, "rate={}", s.current_bps);
        // And recovers once feedback returns.
        let mut v = vec![0xF4u8];
        v.extend_from_slice(&0u64.to_be_bytes());
        for ms in 0..2000u64 {
            s.on_packet(Nanos::from_millis(3000 + ms), &v);
        }
        assert!(s.current_bps > before * 0.9);
    }

    #[test]
    fn receiver_ignores_garbage() {
        let mut r = VideoReceiver::new(Nanos(0));
        r.on_packet(Nanos(0), b"junk");
        assert_eq!(r.total_rx_bytes, 0);
    }
}
