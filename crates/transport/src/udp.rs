//! UDP constant-bit-rate flows — the iperf-UDP workload of the paper's
//! Figs. 10–11 and Table 2 — plus the receiving sink with per-10 ms
//! throughput/loss accounting.

use bytes::{Buf, BufMut, Bytes};
use slingshot_sim::{Nanos, RateBins};

use crate::app::UserApp;

/// Magic byte distinguishing test-flow packets.
const UDP_MAGIC: u8 = 0xD7;

/// Header: magic, sequence number, send timestamp.
const HEADER_LEN: usize = 1 + 8 + 8;

/// Encode a test packet of exactly `size` bytes (padded).
pub fn encode_packet(seq: u64, now: Nanos, size: usize) -> Bytes {
    let size = size.max(HEADER_LEN);
    let mut v = Vec::with_capacity(size);
    v.put_u8(UDP_MAGIC);
    v.put_u64(seq);
    v.put_u64(now.0);
    v.resize(size, 0);
    Bytes::from(v)
}

/// Decode a test packet header: (seq, send_time).
pub fn decode_packet(payload: &[u8]) -> Option<(u64, Nanos)> {
    let mut buf = payload;
    if buf.remaining() < HEADER_LEN || buf.get_u8() != UDP_MAGIC {
        return None;
    }
    let seq = buf.get_u64();
    let ts = Nanos(buf.get_u64());
    Some((seq, ts))
}

/// A constant-bit-rate UDP source.
#[derive(Debug)]
pub struct UdpCbrSource {
    pub bitrate_bps: u64,
    pub packet_size: usize,
    next_seq: u64,
    next_send: Nanos,
    pub sent_packets: u64,
}

impl UdpCbrSource {
    pub fn new(bitrate_bps: u64, packet_size: usize, start: Nanos) -> UdpCbrSource {
        assert!(bitrate_bps > 0 && packet_size >= HEADER_LEN);
        UdpCbrSource {
            bitrate_bps,
            packet_size,
            next_seq: 0,
            next_send: start,
            sent_packets: 0,
        }
    }

    fn interval(&self) -> Nanos {
        Nanos((self.packet_size as u64 * 8).saturating_mul(1_000_000_000) / self.bitrate_bps)
    }
}

impl UserApp for UdpCbrSource {
    fn on_packet(&mut self, _now: Nanos, _payload: &[u8]) {}

    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = Vec::new();
        // Catch up to `now`, but cap the burst to avoid runaway after a
        // long stall (the kernel would have dropped from the socket
        // buffer anyway).
        let mut backlog = 0;
        while self.next_send <= now && backlog < 64 {
            out.push(encode_packet(self.next_seq, now, self.packet_size));
            self.next_seq += 1;
            self.sent_packets += 1;
            self.next_send += self.interval();
            backlog += 1;
        }
        if self.next_send <= now {
            // Dropped the remainder: skip ahead.
            let behind = now.0 - self.next_send.0;
            let skip = behind / self.interval().0 + 1;
            self.next_seq += skip;
            self.next_send += Nanos(skip * self.interval().0);
        }
        out
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        Some(self.next_send)
    }
}

/// The receiving side: tracks per-bin goodput, loss, and one-way delay.
#[derive(Debug)]
pub struct UdpSink {
    pub bins: RateBins,
    /// Packets received per bin (for loss-rate per bin).
    pub rx_packets: RateBins,
    /// Expected-but-missing per bin, attributed to the bin of the
    /// highest sequence seen when the gap was noticed.
    pub lost_packets: RateBins,
    highest_seq: Option<u64>,
    pub total_rx: u64,
    pub total_lost: u64,
    pub delay_samples: Vec<(Nanos, Nanos)>,
}

impl UdpSink {
    pub fn new(origin: Nanos, bin_width: Nanos) -> UdpSink {
        UdpSink {
            bins: RateBins::new(origin, bin_width),
            rx_packets: RateBins::new(origin, bin_width),
            lost_packets: RateBins::new(origin, bin_width),
            highest_seq: None,
            total_rx: 0,
            total_lost: 0,
            delay_samples: Vec::new(),
        }
    }

    /// Overall loss fraction (gaps / expected).
    pub fn loss_rate(&self) -> f64 {
        let expected = self.total_rx + self.total_lost;
        if expected == 0 {
            0.0
        } else {
            self.total_lost as f64 / expected as f64
        }
    }

    /// Max loss fraction within any single bin.
    pub fn max_bin_loss_rate(&self) -> f64 {
        let rx = self.rx_packets.bins();
        let lost = self.lost_packets.bins();
        let mut max = 0.0f64;
        for i in 0..rx.len().max(lost.len()) {
            let r = rx.get(i).copied().unwrap_or(0) as f64;
            let l = lost.get(i).copied().unwrap_or(0) as f64;
            if r + l > 0.0 {
                max = max.max(l / (r + l));
            }
        }
        max
    }
}

impl UserApp for UdpSink {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        let Some((seq, sent)) = decode_packet(payload) else {
            return;
        };
        self.bins.record(now, payload.len() as u64);
        self.rx_packets.record(now, 1);
        self.total_rx += 1;
        self.delay_samples.push((now, now.saturating_sub(sent)));
        match self.highest_seq {
            None => self.highest_seq = Some(seq),
            Some(h) if seq > h => {
                let gap = seq - h - 1;
                if gap > 0 {
                    self.total_lost += gap;
                    self.lost_packets.record(now, gap);
                }
                self.highest_seq = Some(seq);
            }
            _ => {} // reordered late arrival; already counted as lost
        }
    }

    fn poll_transmit(&mut self, _now: Nanos) -> Vec<Bytes> {
        Vec::new()
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn packet_roundtrip() {
        let p = encode_packet(42, Nanos(12345), 200);
        assert_eq!(p.len(), 200);
        assert_eq!(decode_packet(&p), Some((42, Nanos(12345))));
        assert!(decode_packet(&p[..10]).is_none());
        assert!(decode_packet(b"not a test packet....").is_none());
    }

    #[test]
    fn cbr_rate_is_accurate() {
        // 8 Mbps with 1000-byte packets = 1 packet per ms.
        let mut src = UdpCbrSource::new(8_000_000, 1000, Nanos(0));
        let mut total = 0;
        for t in 0..100 {
            total += src.poll_transmit(Nanos(t * MS)).len();
        }
        assert!((99..=101).contains(&total), "total={total}");
    }

    #[test]
    fn cbr_caps_burst_after_stall() {
        let mut src = UdpCbrSource::new(8_000_000, 1000, Nanos(0));
        let burst = src.poll_transmit(Nanos(10_000 * MS));
        assert!(burst.len() <= 64);
        // And subsequent polls resume normal pacing, not a flood.
        let next = src.poll_transmit(Nanos(10_001 * MS));
        assert!(next.len() <= 2, "len={}", next.len());
    }

    #[test]
    fn sink_tracks_throughput_and_loss() {
        let mut sink = UdpSink::new(Nanos(0), Nanos(10 * MS));
        let mut t = Nanos(0);
        for seq in 0..100u64 {
            if seq % 10 == 3 {
                continue; // drop every 10th
            }
            sink.on_packet(t, &encode_packet(seq, t, 500));
            t += Nanos(MS);
        }
        assert_eq!(sink.total_rx, 90);
        assert_eq!(sink.total_lost, 10);
        assert!((sink.loss_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn sink_blackout_visible_in_bins() {
        let mut sink = UdpSink::new(Nanos(0), Nanos(10 * MS));
        for seq in 0..10u64 {
            sink.on_packet(Nanos(seq * MS), &encode_packet(seq, Nanos(0), 500));
        }
        // 30 ms silence, then resume.
        for seq in 10..20u64 {
            sink.on_packet(Nanos((40 + seq) * MS), &encode_packet(seq, Nanos(0), 500));
        }
        sink.bins.extend_to(Nanos(60 * MS));
        let zero = sink.bins.zero_bins_between(Nanos(0), Nanos(60 * MS));
        assert!(zero >= 2, "zero={zero}");
    }

    #[test]
    fn max_bin_loss_rate_catches_burst_loss() {
        let mut sink = UdpSink::new(Nanos(0), Nanos(10 * MS));
        for seq in 0..10u64 {
            sink.on_packet(Nanos(seq * MS), &encode_packet(seq, Nanos(0), 500));
        }
        // Lose 30 packets in one bin.
        sink.on_packet(Nanos(15 * MS), &encode_packet(40, Nanos(0), 500));
        assert!(sink.max_bin_loss_rate() > 0.9);
    }

    #[test]
    fn delay_samples_recorded() {
        let mut sink = UdpSink::new(Nanos(0), Nanos(10 * MS));
        sink.on_packet(Nanos(5 * MS), &encode_packet(0, Nanos(2 * MS), 100));
        assert_eq!(sink.delay_samples.len(), 1);
        assert_eq!(sink.delay_samples[0].1, Nanos(3 * MS));
    }
}
