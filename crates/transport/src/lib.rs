//! # slingshot-transport
//!
//! End-to-end traffic models for the paper's evaluation workloads:
//! iperf-style UDP constant-bit-rate flows and sinks with per-10 ms
//! accounting (Figs. 10–11, Table 2), a mini TCP Reno implementation
//! (Fig. 10's TCP series), a ping app (Fig. 9, §8.7), and an adaptive
//! videoconferencing model (Fig. 8).
//!
//! All models are engine-free state machines implementing [`UserApp`];
//! UE and app-server nodes in `slingshot-ran` host them.

pub mod app;
pub mod ping;
pub mod tcp;
pub mod udp;
pub mod video;

pub use app::{IdleApp, UserApp};
pub use ping::{EchoResponder, PingApp};
pub use tcp::{TcpReceiver, TcpSender};
pub use udp::{decode_packet, encode_packet, UdpCbrSource, UdpSink};
pub use video::{VideoReceiver, VideoSender};
