//! A ping application: periodic echo requests with RTT sampling, and
//! the echo responder for the far end. Reproduces the paper's Fig. 9
//! measurement (ping every 10 ms across a PHY failover) and the Orion
//! latency-neutrality check of §8.7.

use bytes::{Buf, BufMut, Bytes};
use slingshot_sim::Nanos;

use crate::app::UserApp;

const PING_MAGIC: u8 = 0xE1;
const PONG_MAGIC: u8 = 0xE2;
const LEN: usize = 1 + 8 + 8;

fn encode(magic: u8, seq: u64, ts: Nanos) -> Bytes {
    let mut v = Vec::with_capacity(LEN);
    v.put_u8(magic);
    v.put_u64(seq);
    v.put_u64(ts.0);
    Bytes::from(v)
}

fn decode(payload: &[u8]) -> Option<(u8, u64, Nanos)> {
    let mut buf = payload;
    if buf.remaining() < LEN {
        return None;
    }
    let magic = buf.get_u8();
    if magic != PING_MAGIC && magic != PONG_MAGIC {
        return None;
    }
    Some((magic, buf.get_u64(), Nanos(buf.get_u64())))
}

/// The pinging side.
#[derive(Debug)]
pub struct PingApp {
    interval: Nanos,
    next_send: Nanos,
    next_seq: u64,
    /// (send_time, rtt) per completed echo.
    pub rtts: Vec<(Nanos, Nanos)>,
    pub sent: u64,
    pub received: u64,
}

impl PingApp {
    pub fn new(interval: Nanos, start: Nanos) -> PingApp {
        PingApp {
            interval,
            next_send: start,
            next_seq: 0,
            rtts: Vec::new(),
            sent: 0,
            received: 0,
        }
    }

    /// Fraction of pings answered.
    pub fn success_rate(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.received as f64 / self.sent as f64
        }
    }

    /// The largest RTT observed in a time window.
    pub fn max_rtt_in(&self, from: Nanos, to: Nanos) -> Option<Nanos> {
        self.rtts
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, r)| *r)
            .max()
    }
}

impl UserApp for PingApp {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        if let Some((PONG_MAGIC, _seq, ts)) = decode(payload) {
            self.received += 1;
            self.rtts.push((ts, now.saturating_sub(ts)));
        }
    }

    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = Vec::new();
        while self.next_send <= now {
            out.push(encode(PING_MAGIC, self.next_seq, now));
            self.next_seq += 1;
            self.sent += 1;
            self.next_send += self.interval;
        }
        out
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        Some(self.next_send)
    }
}

/// The echoing side: answers pings immediately.
#[derive(Debug, Default)]
pub struct EchoResponder {
    pending: Vec<Bytes>,
    pub echoed: u64,
}

impl EchoResponder {
    pub fn new() -> EchoResponder {
        EchoResponder::default()
    }
}

impl UserApp for EchoResponder {
    fn on_packet(&mut self, _now: Nanos, payload: &[u8]) {
        if let Some((PING_MAGIC, seq, ts)) = decode(payload) {
            self.pending.push(encode(PONG_MAGIC, seq, ts));
            self.echoed += 1;
        }
    }

    fn poll_transmit(&mut self, _now: Nanos) -> Vec<Bytes> {
        std::mem::take(&mut self.pending)
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn ping_pong_measures_rtt() {
        let mut ping = PingApp::new(Nanos(10 * MS), Nanos(0));
        let mut echo = EchoResponder::new();
        let reqs = ping.poll_transmit(Nanos(0));
        assert_eq!(reqs.len(), 1);
        echo.on_packet(Nanos(5 * MS), &reqs[0]);
        let resp = echo.poll_transmit(Nanos(5 * MS));
        assert_eq!(resp.len(), 1);
        ping.on_packet(Nanos(11 * MS), &resp[0]);
        assert_eq!(ping.rtts.len(), 1);
        assert_eq!(ping.rtts[0].1, Nanos(11 * MS));
        assert_eq!(ping.success_rate(), 1.0);
        // An unanswered ping lowers the success rate.
        let _ = ping.poll_transmit(Nanos(10 * MS));
        assert_eq!(ping.success_rate(), 0.5);
    }

    #[test]
    fn periodic_sends() {
        let mut ping = PingApp::new(Nanos(10 * MS), Nanos(0));
        let mut total = 0;
        for t in (0..100).step_by(10) {
            total += ping.poll_transmit(Nanos(t * MS)).len();
        }
        assert_eq!(total, 10);
        assert_eq!(ping.next_wakeup(Nanos(0)), Some(Nanos(100 * MS)));
    }

    #[test]
    fn responder_ignores_noise() {
        let mut echo = EchoResponder::new();
        echo.on_packet(Nanos(0), b"garbage");
        echo.on_packet(Nanos(0), &encode(PONG_MAGIC, 1, Nanos(0)));
        assert!(echo.poll_transmit(Nanos(0)).is_empty());
        assert_eq!(echoed(&echo), 0);
    }

    fn echoed(e: &EchoResponder) -> u64 {
        e.echoed
    }

    #[test]
    fn max_rtt_window() {
        let mut ping = PingApp::new(Nanos(10 * MS), Nanos(0));
        ping.rtts.push((Nanos(5 * MS), Nanos(20 * MS)));
        ping.rtts.push((Nanos(15 * MS), Nanos(60 * MS)));
        ping.rtts.push((Nanos(25 * MS), Nanos(30 * MS)));
        assert_eq!(
            ping.max_rtt_in(Nanos(0), Nanos(20 * MS)),
            Some(Nanos(60 * MS))
        );
        assert_eq!(ping.max_rtt_in(Nanos(30 * MS), Nanos(40 * MS)), None);
    }
}
