//! A miniature TCP (Reno) implementation: slow start, congestion
//! avoidance, fast retransmit/recovery on triple duplicate ACKs, and an
//! RTO with exponential backoff.
//!
//! This exists to reproduce the *mechanism* behind Fig. 10b: when a PHY
//! failover drops a few TTIs of uplink, TCP's in-order delivery stalls
//! the receiver until the sender's RTO fires, then the retransmission
//! burst arrives all at once (the paper's 157 Mbps spike). Payload
//! content is zero-filled (iperf-style), so the sender retransmits from
//! sequence ranges without buffering data.

use bytes::{Buf, BufMut, Bytes};
use std::collections::BTreeMap;

use slingshot_sim::{Nanos, RateBins};

use crate::app::UserApp;

/// Segment header magic values.
const DATA_MAGIC: u8 = 0xC1;
const ACK_MAGIC: u8 = 0xC2;

/// Fixed maximum segment size (payload bytes).
pub const MSS: usize = 1400;

const DATA_HEADER: usize = 1 + 8 + 8 + 2;
const ACK_LEN: usize = 1 + 8 + 8;

fn encode_data(seq: u64, ts: Nanos, len: usize) -> Bytes {
    let mut v = Vec::with_capacity(DATA_HEADER + len);
    v.put_u8(DATA_MAGIC);
    v.put_u64(seq);
    v.put_u64(ts.0);
    v.put_u16(len as u16);
    v.resize(DATA_HEADER + len, 0);
    Bytes::from(v)
}

fn encode_ack(ack: u64, echo_ts: Nanos) -> Bytes {
    let mut v = Vec::with_capacity(ACK_LEN);
    v.put_u8(ACK_MAGIC);
    v.put_u64(ack);
    v.put_u64(echo_ts.0);
    Bytes::from(v)
}

enum Parsed {
    Data { seq: u64, ts: Nanos, len: usize },
    Ack { ack: u64, echo_ts: Nanos },
}

fn parse(payload: &[u8]) -> Option<Parsed> {
    let mut buf = payload;
    if buf.remaining() < ACK_LEN {
        return None;
    }
    match buf.get_u8() {
        DATA_MAGIC => {
            if buf.remaining() < 8 + 8 + 2 {
                return None;
            }
            let seq = buf.get_u64();
            let ts = Nanos(buf.get_u64());
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return None;
            }
            Some(Parsed::Data { seq, ts, len })
        }
        ACK_MAGIC => {
            let ack = buf.get_u64();
            let echo_ts = Nanos(buf.get_u64());
            Some(Parsed::Ack { ack, echo_ts })
        }
        _ => None,
    }
}

/// The sending endpoint of a bulk TCP flow (iperf-style: unlimited
/// data, zero-filled payloads).
#[derive(Debug)]
pub struct TcpSender {
    /// Next new byte sequence to send.
    next_seq: u64,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Congestion window, bytes.
    pub cwnd: f64,
    pub ssthresh: f64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: Nanos,
    min_rto: Nanos,
    /// Absolute deadline of the retransmission timer.
    rto_deadline: Option<Nanos>,
    dup_acks: u32,
    /// In fast recovery until snd_una passes this.
    recover: Option<u64>,
    /// Pending retransmission queue (seq ranges).
    retransmit: Vec<(u64, usize)>,
    pub retransmissions: u64,
    pub timeouts: u64,
    pub acked_bytes: u64,
    /// Optional cap on outstanding new data (receiver window stand-in).
    pub max_window: f64,
}

impl TcpSender {
    pub fn new() -> TcpSender {
        TcpSender {
            next_seq: 0,
            snd_una: 0,
            cwnd: (10 * MSS) as f64, // RFC 6928 initial window
            ssthresh: f64::INFINITY,
            srtt: None,
            rttvar: 0.0,
            rto: Nanos::from_millis(100),
            min_rto: Nanos::from_millis(50),
            rto_deadline: None,
            dup_acks: 0,
            recover: None,
            retransmit: Vec::new(),
            retransmissions: 0,
            timeouts: 0,
            acked_bytes: 0,
            max_window: (4 * 1024 * 1024) as f64,
        }
    }

    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    fn update_rtt(&mut self, sample: Nanos) {
        let s = sample.0 as f64;
        match self.srtt {
            None => {
                self.srtt = Some(s);
                self.rttvar = s / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - s).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * s);
            }
        }
        let rto = self.srtt.unwrap() + 4.0 * self.rttvar;
        self.rto = Nanos((rto as u64).max(self.min_rto.0));
    }

    fn on_timeout(&mut self, now: Nanos) {
        self.timeouts += 1;
        self.ssthresh = (self.in_flight() as f64 / 2.0).max((2 * MSS) as f64);
        self.cwnd = MSS as f64;
        self.dup_acks = 0;
        self.recover = None;
        // Go-back-N: everything past snd_una is presumed lost. Payloads
        // are regenerated from sequence numbers (zero-filled), so we
        // simply rewind and let slow start resend; the receiver ignores
        // duplicates of data it already holds.
        self.retransmit.clear();
        self.next_seq = self.snd_una;
        self.rto = Nanos((self.rto.0 * 2).min(Nanos::from_secs(2).0));
        self.rto_deadline = Some(now + self.rto);
    }
}

impl Default for TcpSender {
    fn default() -> Self {
        TcpSender::new()
    }
}

impl UserApp for TcpSender {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        let Some(Parsed::Ack { ack, echo_ts }) = parse(payload) else {
            return;
        };
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            self.acked_bytes += newly;
            self.snd_una = ack;
            self.dup_acks = 0;
            if echo_ts.0 > 0 {
                self.update_rtt(now.saturating_sub(echo_ts));
            }
            match self.recover {
                Some(rec) if ack < rec => {
                    // Partial ACK during recovery: retransmit next hole.
                    self.retransmit
                        .push((ack, MSS.min((self.next_seq - ack) as usize)));
                    self.retransmissions += 1;
                }
                Some(_) => {
                    self.recover = None;
                    self.cwnd = self.ssthresh;
                }
                None => {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += newly as f64; // slow start
                    } else {
                        self.cwnd += (MSS * MSS) as f64 / self.cwnd; // CA
                    }
                }
            }
            self.cwnd = self.cwnd.min(self.max_window);
            self.rto_deadline = if self.in_flight() > 0 {
                Some(now + self.rto)
            } else {
                None
            };
        } else if ack == self.snd_una && self.in_flight() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recover.is_none() {
                // Fast retransmit.
                self.ssthresh = (self.in_flight() as f64 / 2.0).max((2 * MSS) as f64);
                self.cwnd = self.ssthresh + (3 * MSS) as f64;
                self.recover = Some(self.next_seq);
                self.retransmit.push((
                    self.snd_una,
                    MSS.min((self.next_seq - self.snd_una) as usize),
                ));
                self.retransmissions += 1;
            } else if self.dup_acks > 3 {
                self.cwnd += MSS as f64;
            }
        }
    }

    fn poll_transmit(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = Vec::new();
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && self.in_flight() > 0 {
                self.on_timeout(now);
                self.retransmissions += 1;
            }
        }
        for (seq, len) in std::mem::take(&mut self.retransmit) {
            if len > 0 {
                out.push(encode_data(seq, now, len));
            }
        }
        // New data within the window.
        let mut budget = 128; // cap per poll to bound event bursts
        while (self.in_flight() as f64 + MSS as f64) <= self.cwnd && budget > 0 {
            out.push(encode_data(self.next_seq, now, MSS));
            self.next_seq += MSS as u64;
            budget -= 1;
        }
        if !out.is_empty() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
        out
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        self.rto_deadline
    }
}

/// The receiving endpoint: cumulative ACKs, out-of-order reassembly,
/// per-bin goodput accounting.
#[derive(Debug)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    ooo: BTreeMap<u64, usize>,
    pending_acks: Vec<Bytes>,
    pub bins: RateBins,
    pub total_bytes: u64,
    /// Latest data timestamp to echo for RTT measurement.
    last_ts: Nanos,
}

impl TcpReceiver {
    pub fn new(origin: Nanos, bin_width: Nanos) -> TcpReceiver {
        TcpReceiver {
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            pending_acks: Vec::new(),
            bins: RateBins::new(origin, bin_width),
            total_bytes: 0,
            last_ts: Nanos::ZERO,
        }
    }
}

impl UserApp for TcpReceiver {
    fn on_packet(&mut self, now: Nanos, payload: &[u8]) {
        let Some(Parsed::Data { seq, ts, len }) = parse(payload) else {
            return;
        };
        self.last_ts = ts;
        if seq + (len as u64) > self.rcv_nxt {
            self.ooo.insert(seq, len);
        }
        // Advance over any contiguous prefix.
        let mut advanced = 0u64;
        while let Some((&s, &l)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                let end = s + l as u64;
                if end > self.rcv_nxt {
                    advanced += end - self.rcv_nxt;
                    self.rcv_nxt = end;
                }
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
        if advanced > 0 {
            self.total_bytes += advanced;
            self.bins.record(now, advanced);
        }
        // Echo ts only for in-order data (Karn-ish: avoids sampling
        // retransmitted holes as fresh RTTs being ambiguous is fine
        // here since content is regenerated).
        let echo = if advanced > 0 { ts } else { Nanos::ZERO };
        self.pending_acks.push(encode_ack(self.rcv_nxt, echo));
    }

    fn poll_transmit(&mut self, _now: Nanos) -> Vec<Bytes> {
        std::mem::take(&mut self.pending_acks)
    }

    fn next_wakeup(&self, _now: Nanos) -> Option<Nanos> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    /// Drive sender and receiver over a perfect in-memory pipe with a
    /// fixed one-way delay, optionally dropping specific segments.
    fn run_pipe(
        duration_ms: u64,
        one_way_ms: u64,
        mut drop: impl FnMut(u64, u64) -> bool, // (time_ms, seq) -> drop?
    ) -> (TcpSender, TcpReceiver) {
        let mut snd = TcpSender::new();
        let mut rcv = TcpReceiver::new(Nanos(0), Nanos(10 * MS));
        // (deliver_at_ms, to_receiver?, packet)
        let mut wire: Vec<(u64, bool, Bytes)> = Vec::new();
        for t in 0..duration_ms {
            let now = Nanos(t * MS);
            // Deliveries due this tick.
            let due: Vec<_> = wire.iter().filter(|(at, _, _)| *at == t).cloned().collect();
            wire.retain(|(at, _, _)| *at != t);
            for (_, to_rcv, pkt) in due {
                if to_rcv {
                    rcv.on_packet(now, &pkt);
                } else {
                    snd.on_packet(now, &pkt);
                }
            }
            for pkt in snd.poll_transmit(now) {
                let seq = u64::from_be_bytes(pkt[1..9].try_into().unwrap());
                if !drop(t, seq) {
                    wire.push((t + one_way_ms, true, pkt));
                }
            }
            for ack in rcv.poll_transmit(now) {
                wire.push((t + one_way_ms, false, ack));
            }
        }
        (snd, rcv)
    }

    #[test]
    fn bulk_transfer_no_loss() {
        let (snd, rcv) = run_pipe(500, 5, |_, _| false);
        assert!(rcv.total_bytes > 1_000_000, "bytes={}", rcv.total_bytes);
        assert_eq!(snd.timeouts, 0);
        assert_eq!(snd.retransmissions, 0);
        // In-order: no out-of-order segments left.
        assert!(rcv.ooo.is_empty());
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let (snd, _) = run_pipe(100, 5, |_, _| false);
        assert!(snd.cwnd > (100 * MSS) as f64, "cwnd={}", snd.cwnd);
    }

    #[test]
    fn single_loss_fast_retransmits() {
        let mut dropped = false;
        let (snd, rcv) = run_pipe(400, 5, |t, _| {
            if t == 100 && !dropped {
                dropped = true;
                true
            } else {
                false
            }
        });
        assert!(snd.retransmissions >= 1);
        assert_eq!(snd.timeouts, 0, "fast retransmit should avoid RTO");
        assert!(rcv.total_bytes > 500_000);
    }

    #[test]
    fn blackout_causes_rto_then_recovery() {
        // Drop everything in [100, 140) ms — like a PHY failover window.
        let (snd, rcv) = run_pipe(600, 5, |t, _| (100..140).contains(&t));
        assert!(snd.timeouts >= 1, "expected an RTO");
        // Receiver throughput: zero during the stall, recovers after.
        let mbps = rcv.bins.mbps();
        let stall_bins = &mbps[11..15]; // 110–150 ms
        assert!(
            stall_bins.iter().any(|m| *m == 0.0),
            "expected a zero bin in {stall_bins:?}"
        );
        let tail: f64 = mbps[40..].iter().sum::<f64>() / (mbps.len() - 40) as f64;
        assert!(tail > 10.0, "recovered tail rate = {tail}");
    }

    #[test]
    fn rto_backoff_under_persistent_outage() {
        let (snd, _) = run_pipe(1000, 5, |t, _| t >= 50);
        assert!(snd.timeouts >= 2, "timeouts={}", snd.timeouts);
        assert!(snd.cwnd <= (2 * MSS) as f64);
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut rcv = TcpReceiver::new(Nanos(0), Nanos(10 * MS));
        let s2 = encode_data(MSS as u64, Nanos(1), MSS);
        let s1 = encode_data(0, Nanos(1), MSS);
        rcv.on_packet(Nanos(0), &s2);
        assert_eq!(rcv.total_bytes, 0);
        let acks = rcv.poll_transmit(Nanos(0));
        assert_eq!(acks.len(), 1); // dup ack for 0
        rcv.on_packet(Nanos(1), &s1);
        assert_eq!(rcv.total_bytes, 2 * MSS as u64);
    }

    #[test]
    fn cwnd_capped_by_max_window() {
        let mut snd = TcpSender::new();
        snd.max_window = (20 * MSS) as f64;
        let mut rcv = TcpReceiver::new(Nanos(0), Nanos(10 * MS));
        for t in 0..200u64 {
            let now = Nanos(t * MS);
            for pkt in snd.poll_transmit(now) {
                rcv.on_packet(now, &pkt);
            }
            for ack in rcv.poll_transmit(now) {
                snd.on_packet(Nanos((t + 1) * MS), &ack);
            }
        }
        assert!(snd.cwnd <= (20 * MSS) as f64 + 1.0, "cwnd={}", snd.cwnd);
        assert!(rcv.total_bytes > 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(b"").is_none());
        assert!(parse(&[0xC1, 1, 2]).is_none());
        assert!(parse(&[0x55; 40]).is_none());
    }
}
