//! Dev probe: measure the full-chain waterfall to calibrate tests/model.
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::modulation::Modulation;
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbParams};
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::SimRng;

fn main() {
    // Honors KERNEL_BACKEND; detect() otherwise.
    let kernels = DspKernels::from_env();
    let payload: Vec<u8> = (0..80u32).map(|i| (i * 11) as u8).collect();
    let e_bits = 1336usize;
    let mut ch = AwgnChannel::new(SimRng::new(42));
    for iters in [2usize, 8, 16] {
        print!("iters={iters:2} ");
        for snr10 in (-40..=80).step_by(10) {
            let snr = snr10 as f64 / 10.0;
            let trials = 60;
            let mut fails = 0;
            for _ in 0..trials {
                let p = TbParams {
                    modulation: Modulation::Qpsk,
                    e_bits,
                    rnti: 1,
                    cell_id: 1,
                    rv: 0,
                    fec_iterations: iters,
                };
                let syms = kernels.encode_tb(&payload, &p);
                let (rx, nv) = ch.apply(&syms, snr);
                let mut acc = vec![0.0; mother_buffer_len(payload.len())];
                if kernels
                    .decode_tb(&mut acc, &rx, nv, payload.len(), &p)
                    .payload
                    .is_none()
                {
                    fails += 1;
                }
            }
            print!("{snr:+.1}:{:.2} ", fails as f64 / trials as f64);
        }
        println!();
    }
}
