//! Dev probe: real-chain BLER vs SNR for each modulation at ~rate 2/3,
//! k=1024-bit blocks, to calibrate the BLER model's per-modulation loss.
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::modulation::Modulation;
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbParams};
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::SimRng;

fn main() {
    // Honors KERNEL_BACKEND; detect() otherwise.
    let kernels = DspKernels::from_env();
    let payload: Vec<u8> = (0..125u32).map(|i| (i * 11) as u8).collect(); // 1024 info bits
    let mut ch = AwgnChannel::new(SimRng::new(42));
    for (m, bps) in [
        (Modulation::Qpsk, 2),
        (Modulation::Qam16, 4),
        (Modulation::Qam64, 6),
        (Modulation::Qam256, 8),
    ] {
        // rate 2/3: e = 1536 bits, rounded to bps multiple
        let mut e = 1536usize;
        e -= e % bps;
        let eff = 1024.0 / (e as f64 / bps as f64);
        let shannon = 10.0 * ((2f64.powf(eff) - 1.0).log10());
        print!("{m:?} eff={eff:.2} shannon={shannon:+.1}dB | ");
        for snr_i in 0..14 {
            let snr = shannon + snr_i as f64 * 0.5 + 1.0;
            let trials = 40;
            let mut fails = 0;
            for _ in 0..trials {
                let p = TbParams {
                    modulation: m,
                    e_bits: e,
                    rnti: 1,
                    cell_id: 1,
                    rv: 0,
                    fec_iterations: 8,
                };
                let syms = kernels.encode_tb(&payload, &p);
                let (rx, nv) = ch.apply(&syms, snr);
                let mut acc = vec![0.0; mother_buffer_len(payload.len())];
                if kernels
                    .decode_tb(&mut acc, &rx, nv, payload.len(), &p)
                    .payload
                    .is_none()
                {
                    fails += 1;
                }
            }
            print!("{:+.1}:{:.2} ", snr - shannon, fails as f64 / trials as f64);
        }
        println!();
    }
}
