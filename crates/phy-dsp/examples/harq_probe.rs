//! Dev probe: HARQ combining success rates for test calibration.
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::modulation::Modulation;
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbParams};
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::SimRng;

fn main() {
    // Honors KERNEL_BACKEND; detect() otherwise.
    let kernels = DspKernels::from_env();
    let data: Vec<u8> = (0..80u32).map(|i| (i * 7) as u8).collect();
    let e = 1336usize;
    let mut ch = AwgnChannel::new(SimRng::new(9));
    for snr10 in [0i32, 10, 15, 20, 25, 30, 35] {
        let snr = snr10 as f64 / 10.0;
        let trials = 40;
        let (mut s_ok, mut c_ok, mut d_ok) = (0, 0, 0);
        for _ in 0..trials {
            let p0 = TbParams {
                modulation: Modulation::Qpsk,
                e_bits: e,
                rnti: 1,
                cell_id: 1,
                rv: 0,
                fec_iterations: 8,
            };
            let syms0 = kernels.encode_tb(&data, &p0);
            let (rx0, nv0) = ch.apply(&syms0, snr);
            let mut acc = vec![0.0; mother_buffer_len(data.len())];
            if kernels
                .decode_tb(&mut acc, &rx0, nv0, data.len(), &p0)
                .payload
                .is_some()
            {
                s_ok += 1;
            }
            let p1 = TbParams {
                rv: 2,
                ..p0.clone()
            };
            let syms1 = kernels.encode_tb(&data, &p1);
            let (rx1, nv1) = ch.apply(&syms1, snr);
            if kernels
                .decode_tb(&mut acc, &rx1, nv1, data.len(), &p1)
                .payload
                .is_some()
            {
                c_ok += 1;
            }
            // discarded buffer: decode 2nd tx alone
            let syms2 = kernels.encode_tb(&data, &p1);
            let (rx2, nv2) = ch.apply(&syms2, snr);
            let mut fresh = vec![0.0; mother_buffer_len(data.len())];
            if kernels
                .decode_tb(&mut fresh, &rx2, nv2, data.len(), &p1)
                .payload
                .is_some()
            {
                d_ok += 1;
            }
        }
        println!("snr={snr:+.1} single={s_ok}/{trials} combined={c_ok}/{trials} discarded={d_ok}/{trials}");
    }
}
