//! Dev probe: 50%-BLER gap from Shannon vs (code rate, modulation, iters).
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::modulation::Modulation;
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbParams};
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::SimRng;

fn bler_at(
    kernels: DspKernels,
    m: Modulation,
    e: usize,
    snr: f64,
    iters: usize,
    ch: &mut AwgnChannel,
    payload: &[u8],
) -> f64 {
    let trials = 30;
    let mut fails = 0;
    for _ in 0..trials {
        let p = TbParams {
            modulation: m,
            e_bits: e,
            rnti: 1,
            cell_id: 1,
            rv: 0,
            fec_iterations: iters,
        };
        let syms = kernels.encode_tb(payload, &p);
        let (rx, nv) = ch.apply(&syms, snr);
        let mut acc = vec![0.0; mother_buffer_len(payload.len())];
        if kernels
            .decode_tb(&mut acc, &rx, nv, payload.len(), &p)
            .payload
            .is_none()
        {
            fails += 1;
        }
    }
    fails as f64 / trials as f64
}

fn main() {
    // Honors KERNEL_BACKEND; detect() otherwise.
    let kernels = DspKernels::from_env();
    let payload: Vec<u8> = (0..125u32).map(|i| (i * 11) as u8).collect();
    let mut ch = AwgnChannel::new(SimRng::new(42));
    for iters in [4usize, 8, 16] {
        for (m, bps) in [
            (Modulation::Qpsk, 2usize),
            (Modulation::Qam16, 4),
            (Modulation::Qam64, 6),
            (Modulation::Qam256, 8),
        ] {
            print!("iters={iters:2} {m:?}: ");
            for rate_pct in [40usize, 50, 60, 70, 80] {
                let mut e = 1024 * 100 / rate_pct;
                e -= e % bps;
                let eff = 1024.0 / (e as f64 / bps as f64);
                let shannon = 10.0 * (2f64.powf(eff) - 1.0).log10();
                // bisect the 50% point
                let (mut lo, mut hi) = (shannon, shannon + 14.0);
                for _ in 0..9 {
                    let mid = (lo + hi) / 2.0;
                    if bler_at(kernels, m, e, mid, iters, &mut ch, &payload) > 0.5 {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                print!("r{rate_pct}:gap{:+.1} ", (lo + hi) / 2.0 - shannon);
            }
            println!();
        }
    }
}
