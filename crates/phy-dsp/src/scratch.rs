//! Slot-scoped DSP scratch arenas.
//!
//! Every per-code-block job in the transport-block chain needs the same
//! working set: demapped LLRs, the rate-recovered codeword view, and the
//! LDPC decoder's message buffers. Allocating those per TB per TTI is
//! pure churn — the sizes recur every slot — so jobs check a
//! [`DspScratch`] out of a shared [`DspScratchPool`]
//! ([`slingshot_sim::ScratchPool`]) and return it when done. Scratch
//! contents never carry information between uses (every consumer clears
//! or fully overwrites a buffer before reading it), so the pool's
//! handout order has no effect on results and worker scheduling stays
//! trace-invisible.

use crate::bits::BitBuf;
use crate::ldpc::LdpcScratch;
use slingshot_sim::ScratchPool;

/// Reusable per-job working set for the encode and decode chains.
#[derive(Debug, Clone, Default)]
pub struct DspScratch {
    /// Demapper output for a block's symbol window.
    pub demod_llrs: Vec<f32>,
    /// The block's `e` coded-bit LLRs (lead-trimmed, erasure-padded).
    pub llr_e: Vec<f32>,
    /// De-interleaved mother-codeword LLRs fed to the LDPC decoder.
    pub cw_llrs: Vec<f32>,
    /// LDPC min-sum message buffers and hard decisions.
    pub ldpc: LdpcScratch,
    /// Packed-bit workspace (encode: the mother codeword).
    pub bits_a: BitBuf,
    /// Packed-bit workspace (encode: the tx-ordered circular buffer).
    pub bits_b: BitBuf,
}

/// Shared free-list of [`DspScratch`] arenas, cloneable into worker
/// jobs.
pub type DspScratchPool = ScratchPool<DspScratch>;

thread_local! {
    static DEFAULT_POOL: DspScratchPool = DspScratchPool::new();
}

/// The calling thread's default scratch pool, used by the convenience
/// wrappers (`encode_tb` / `decode_tb` / `encode_signal` / `receive`)
/// so their signatures stay scratch-free while still reusing buffers
/// across calls.
pub fn default_scratch_pool() -> DspScratchPool {
    DEFAULT_POOL.with(|p| p.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_is_shared_per_thread() {
        let a = default_scratch_pool();
        let b = default_scratch_pool();
        let mut s = a.take();
        s.demod_llrs.resize(1024, 0.0);
        a.put(s);
        // Same underlying free-list: b sees what a returned.
        let s = b.take();
        assert!(s.demod_llrs.capacity() >= 1024);
        b.put(s);
    }
}
