//! Gold-sequence scrambling per 3GPP TS 38.211 §5.2.1.
//!
//! The PHY scrambles coded bits with a length-31 Gold sequence whose
//! initialization mixes the UE's RNTI and the cell identity, so
//! different UEs' transmissions decorrelate. In this reproduction the
//! scrambler sits between rate matching and modulation exactly as in
//! the standard chain, and descrambling on the receive side flips LLR
//! signs rather than bits.

/// Distance the Gold sequence is fast-forwarded before use (TS 38.211).
pub const NC: usize = 1600;

/// A length-31 Gold sequence generator producing the pseudo-random bit
/// sequence c(n).
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

impl GoldSequence {
    /// Create a generator with the given c_init (31 bits), fast-forwarded
    /// by Nc as the standard requires.
    pub fn new(c_init: u32) -> GoldSequence {
        let mut g = GoldSequence {
            x1: 1,
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..NC {
            g.step();
        }
        g
    }

    /// Standard c_init for PUSCH/PDSCH data scrambling:
    /// rnti * 2^15 + cell_id (data scrambling identity).
    pub fn c_init_data(rnti: u16, cell_id: u16) -> u32 {
        ((rnti as u32) << 15) + (cell_id as u32 & 0x3FF)
    }

    /// Produce the next bit of c().
    pub fn next_bit(&mut self) -> u8 {
        self.step()
    }

    /// Advance the generator by `n` positions without producing output.
    /// Used to position per-code-block generator clones at their block's
    /// offset in the codeword before work fans out to a worker pool.
    pub fn skip(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn step(&mut self) -> u8 {
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        // x1(n+31) = (x1(n+3) + x1(n)) mod 2
        let x1_new = ((self.x1 >> 3) ^ self.x1) & 1;
        // x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
        let x2_new = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (x1_new << 30);
        self.x2 = (self.x2 >> 1) | (x2_new << 30);
        out
    }

    /// Produce the next `n` bits of c().
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Scramble a bit vector (values 0/1) in place.
pub fn scramble_bits(bits: &mut [u8], c_init: u32) {
    scramble_bits_with(bits, &mut GoldSequence::new(c_init));
}

/// Scramble with an already-positioned generator (advances it by
/// `bits.len()`). Lets a caller scramble a codeword in segments.
pub fn scramble_bits_with(bits: &mut [u8], g: &mut GoldSequence) {
    for b in bits.iter_mut() {
        *b ^= g.step();
    }
}

/// Descramble soft LLRs in place: where c(n)=1, the transmitted bit was
/// flipped, so the LLR sign flips back.
pub fn descramble_llrs(llrs: &mut [f32], c_init: u32) {
    descramble_llrs_with(llrs, &mut GoldSequence::new(c_init));
}

/// Descramble with an already-positioned generator (advances it by
/// `llrs.len()`). Lets per-code-block jobs each descramble their own
/// slice from a clone positioned at the block boundary.
pub fn descramble_llrs_with(llrs: &mut [f32], g: &mut GoldSequence) {
    for l in llrs.iter_mut() {
        if g.step() == 1 {
            *l = -*l;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_involution() {
        let mut bits: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let orig = bits.clone();
        scramble_bits(&mut bits, GoldSequence::c_init_data(0x4601, 42));
        assert_ne!(bits, orig, "scrambling must change the sequence");
        scramble_bits(&mut bits, GoldSequence::c_init_data(0x4601, 42));
        assert_eq!(bits, orig);
    }

    #[test]
    fn different_inits_differ() {
        let a = GoldSequence::new(1).bits(256);
        let b = GoldSequence::new(2).bits(256);
        assert_ne!(a, b);
        let hamming: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        // Gold sequences are near-balanced relative to each other.
        assert!(hamming > 80 && hamming < 176, "hamming={hamming}");
    }

    #[test]
    fn sequence_is_balanced() {
        let bits = GoldSequence::new(0x1234_5678 & 0x7FFF_FFFF).bits(10_000);
        let ones = bits.iter().filter(|b| **b == 1).count();
        assert!((4_700..5_300).contains(&ones), "ones={ones}");
    }

    #[test]
    fn llr_descramble_matches_bit_descramble() {
        let c_init = GoldSequence::c_init_data(100, 7);
        let bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let mut tx = bits.clone();
        scramble_bits(&mut tx, c_init);
        // Perfect channel: LLR = +5 for bit 0, -5 for bit 1 (convention:
        // positive LLR means "likely 0").
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|b| if *b == 0 { 5.0 } else { -5.0 })
            .collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|l| if *l >= 0.0 { 0 } else { 1 }).collect();
        assert_eq!(rx, bits);
    }

    #[test]
    fn segmented_descramble_matches_whole() {
        let c_init = GoldSequence::c_init_data(0x4601, 42);
        let mut whole: Vec<f32> = (0..300).map(|i| (i as f32) - 150.0).collect();
        let mut segmented = whole.clone();
        descramble_llrs(&mut whole, c_init);
        // Same work split at arbitrary boundaries with positioned clones.
        let bounds = [0usize, 37, 120, 300];
        let mut g = GoldSequence::new(c_init);
        for w in bounds.windows(2) {
            let mut local = g.clone();
            descramble_llrs_with(&mut segmented[w[0]..w[1]], &mut local);
            g.skip(w[1] - w[0]);
        }
        assert_eq!(whole, segmented);
    }

    #[test]
    fn skip_matches_discarded_bits() {
        let mut a = GoldSequence::new(99);
        let mut b = GoldSequence::new(99);
        let _ = a.bits(173);
        b.skip(173);
        assert_eq!(a.bits(32), b.bits(32));
    }

    #[test]
    fn generator_deterministic() {
        let a = GoldSequence::new(777).bits(100);
        let b = GoldSequence::new(777).bits(100);
        assert_eq!(a, b);
    }

    #[test]
    fn c_init_mixes_rnti_and_cell() {
        assert_ne!(
            GoldSequence::c_init_data(1, 5),
            GoldSequence::c_init_data(2, 5)
        );
        assert_ne!(
            GoldSequence::c_init_data(1, 5),
            GoldSequence::c_init_data(1, 6)
        );
    }
}
