//! Gold-sequence scrambling per 3GPP TS 38.211 §5.2.1.
//!
//! The PHY scrambles coded bits with a length-31 Gold sequence whose
//! initialization mixes the UE's RNTI and the cell identity, so
//! different UEs' transmissions decorrelate. In this reproduction the
//! scrambler sits between rate matching and modulation exactly as in
//! the standard chain, and descrambling on the receive side flips LLR
//! signs rather than bits.
//!
//! The generator is block-stepped: both LFSRs hold state bit `i` =
//! `x(n+i)`, and because the recurrences reach back at most 31
//! positions, the next 28 sequence bits are a pure function of the
//! preceding 31 — so a u128 holds three 28-bit extension rounds and
//! [`GoldSequence::next_word64`] emits 64 bits of c() per call.
//! [`GoldSequence::skip`] jumps in O(log n) by applying precomputed
//! powers of the 31×31 GF(2) state-transition matrix (the matrices
//! depend only on the fixed polynomials, never on `c_init`, so they are
//! computed once per process). [`cached_sequence`] additionally caches
//! whole post-Nc word sequences per `c_init`, since the data path
//! re-derives the same scrambling sequence for a UE every TTI.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Distance the Gold sequence is fast-forwarded before use (TS 38.211).
pub const NC: usize = 1600;

const MASK31: u32 = 0x7FFF_FFFF;

/// A length-31 Gold sequence generator producing the pseudo-random bit
/// sequence c(n).
#[derive(Debug, Clone)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

/// One 31×31 GF(2) matrix as row masks: out bit `i` = parity(row[i] & s).
type Lfsr31Matrix = [u32; 31];

fn matmul(a: &Lfsr31Matrix, b: &Lfsr31Matrix) -> Lfsr31Matrix {
    let mut c = [0u32; 31];
    for i in 0..31 {
        let mut row = 0u32;
        let mut m = a[i];
        while m != 0 {
            let k = m.trailing_zeros() as usize;
            row ^= b[k];
            m &= m - 1;
        }
        c[i] = row;
    }
    c
}

#[inline]
fn matvec(m: &Lfsr31Matrix, s: u32) -> u32 {
    let mut out = 0u32;
    for (i, row) in m.iter().enumerate() {
        out |= ((row & s).count_ones() & 1) << i;
    }
    out
}

/// Doubling tables: entry `j` holds (M1, M2)^(2^j), the x1/x2 state
/// transitions for 2^j steps. c_init-independent, built once.
fn skip_tables() -> &'static Vec<(Lfsr31Matrix, Lfsr31Matrix)> {
    static TABLES: OnceLock<Vec<(Lfsr31Matrix, Lfsr31Matrix)>> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Single-step transition: state' bit i = state bit i+1 (shift
        // down), with bit 30 fed by the recurrence taps.
        let mut m1 = [0u32; 31];
        let mut m2 = [0u32; 31];
        for i in 0..30 {
            m1[i] = 1 << (i + 1);
            m2[i] = 1 << (i + 1);
        }
        // x1(n+31) = x1(n+3) + x1(n); x2(n+31) = x2(n+3..n).
        m1[30] = (1 << 3) | 1;
        m2[30] = 0b1111;
        let mut out = Vec::with_capacity(64);
        out.push((m1, m2));
        for j in 1..64 {
            let (p1, p2) = &out[j - 1];
            out.push((matmul(p1, p1), matmul(p2, p2)));
        }
        out
    })
}

/// Extend an x1 state (bits 0..31 = x1(n..n+31)) to 115 known bits via
/// 28-bit rounds of x1(j) = x1(j-28) ^ x1(j-31).
#[inline]
fn extend_x1(state: u32) -> u128 {
    let mut t = state as u128;
    let mut len = 31;
    while len < 95 {
        let add = ((t >> (len - 28)) ^ (t >> (len - 31))) & 0x0FFF_FFFF;
        t |= add << len;
        len += 28;
    }
    t
}

/// Same for x2: x2(j) = x2(j-28) ^ x2(j-29) ^ x2(j-30) ^ x2(j-31).
#[inline]
fn extend_x2(state: u32) -> u128 {
    let mut t = state as u128;
    let mut len = 31;
    while len < 95 {
        let add = ((t >> (len - 28)) ^ (t >> (len - 29)) ^ (t >> (len - 30)) ^ (t >> (len - 31)))
            & 0x0FFF_FFFF;
        t |= add << len;
        len += 28;
    }
    t
}

impl GoldSequence {
    /// Create a generator with the given c_init (31 bits), fast-forwarded
    /// by Nc as the standard requires.
    pub fn new(c_init: u32) -> GoldSequence {
        let mut g = GoldSequence {
            x1: 1,
            x2: c_init & MASK31,
        };
        g.skip(NC);
        g
    }

    /// Standard c_init for PUSCH/PDSCH data scrambling:
    /// rnti * 2^15 + cell_id (data scrambling identity).
    pub fn c_init_data(rnti: u16, cell_id: u16) -> u32 {
        ((rnti as u32) << 15) + (cell_id as u32 & 0x3FF)
    }

    /// Produce the next bit of c().
    pub fn next_bit(&mut self) -> u8 {
        self.step()
    }

    /// Produce the next 64 bits of c() (bit `i` of the result is
    /// c(n+i)) and advance the generator by 64.
    #[inline]
    pub fn next_word64(&mut self) -> u64 {
        let t1 = extend_x1(self.x1);
        let t2 = extend_x2(self.x2);
        self.x1 = ((t1 >> 64) as u32) & MASK31;
        self.x2 = ((t2 >> 64) as u32) & MASK31;
        (t1 ^ t2) as u64
    }

    /// Advance the generator by `n` positions without producing output
    /// (O(log n): square-and-multiply over the LFSR transition matrix).
    /// Used to position per-code-block generator clones at their
    /// block's offset in the codeword.
    pub fn skip(&mut self, n: usize) {
        let tables = skip_tables();
        let mut n = n;
        let mut j = 0;
        while n != 0 {
            if n & 1 == 1 {
                let (p1, p2) = &tables[j];
                self.x1 = matvec(p1, self.x1);
                self.x2 = matvec(p2, self.x2);
            }
            n >>= 1;
            j += 1;
        }
    }

    fn step(&mut self) -> u8 {
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        // x1(n+31) = (x1(n+3) + x1(n)) mod 2
        let x1_new = ((self.x1 >> 3) ^ self.x1) & 1;
        // x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
        let x2_new = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (x1_new << 30);
        self.x2 = (self.x2 >> 1) | (x2_new << 30);
        out
    }

    /// Produce the next `n` bits of c().
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        while out.len() + 64 <= n {
            let w = self.next_word64();
            for j in 0..64 {
                out.push(((w >> j) & 1) as u8);
            }
        }
        while out.len() < n {
            out.push(self.step());
        }
        out
    }

    /// Fill `out` with the next `ceil(n_bits / 64)` words of c().
    pub fn words(&mut self, n_bits: usize, out: &mut Vec<u64>) {
        out.clear();
        let n_words = n_bits.div_ceil(64);
        out.reserve(n_words);
        for _ in 0..n_words {
            out.push(self.next_word64());
        }
    }
}

thread_local! {
    /// Per-thread cache of post-Nc sequence words keyed by c_init. The
    /// data path regenerates the same per-UE sequence every TTI; one
    /// word vector per active (rnti, cell) pair makes that a lookup.
    static SEQ_CACHE: RefCell<HashMap<u32, Arc<Vec<u64>>>> = RefCell::new(HashMap::new());
}

/// Cap on cached c_init entries per thread (a deployment has a handful
/// of active RNTIs; this only guards pathological churn).
const SEQ_CACHE_MAX: usize = 256;

/// The first `min_bits` bits of c() for `c_init` (post-Nc), packed
/// 64 per word, cached per `(c_init, length)` — an entry is regrown
/// when a longer prefix is requested. One guard word is appended so
/// shifted 64-bit reads at any offset below `min_bits` stay in bounds.
pub fn cached_sequence(c_init: u32, min_bits: usize) -> Arc<Vec<u64>> {
    let need_words = min_bits.div_ceil(64) + 1;
    SEQ_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(seq) = cache.get(&c_init) {
            if seq.len() >= need_words {
                return Arc::clone(seq);
            }
        }
        if cache.len() >= SEQ_CACHE_MAX {
            cache.clear();
        }
        let mut g = GoldSequence::new(c_init);
        let mut words = Vec::with_capacity(need_words);
        for _ in 0..need_words {
            words.push(g.next_word64());
        }
        let seq = Arc::new(words);
        cache.insert(c_init, Arc::clone(&seq));
        seq
    })
}

/// Read 64 sequence bits starting at bit `pos` from packed words (reads
/// past the end are zero).
#[inline]
pub fn seq_word(seq: &[u64], pos: usize) -> u64 {
    let limb = pos >> 6;
    let off = pos & 63;
    let lo = seq.get(limb).copied().unwrap_or(0) >> off;
    if off == 0 {
        lo
    } else {
        lo | (seq.get(limb + 1).copied().unwrap_or(0) << (64 - off))
    }
}

/// Scramble a packed bit buffer in place with sequence bits starting at
/// `offset` (64 bits per XOR).
pub fn scramble_packed(bits: &mut crate::bits::BitBuf, seq: &[u64], offset: usize) {
    let len = bits.len();
    for (i, w) in bits.words_mut().iter_mut().enumerate() {
        let valid = (len - 64 * i).min(64);
        let mask = if valid == 64 {
            !0u64
        } else {
            (1u64 << valid) - 1
        };
        *w ^= seq_word(seq, offset + 64 * i) & mask;
    }
}

/// Descramble soft LLRs in place against packed sequence words starting
/// at bit `offset`: where c(n)=1 the transmitted bit was flipped, so
/// the LLR sign flips back.
pub fn descramble_llrs_packed(llrs: &mut [f32], seq: &[u64], offset: usize) {
    let mut i = 0;
    let n = llrs.len();
    while i < n {
        let take = (n - i).min(64);
        let mut w = seq_word(seq, offset + i);
        if take < 64 {
            w &= (1u64 << take) - 1;
        }
        while w != 0 {
            let j = w.trailing_zeros() as usize;
            let l = &mut llrs[i + j];
            *l = -*l;
            w &= w - 1;
        }
        i += take;
    }
}

/// Scramble a bit vector (values 0/1) in place.
pub fn scramble_bits(bits: &mut [u8], c_init: u32) {
    scramble_bits_with(bits, &mut GoldSequence::new(c_init));
}

/// Scramble with an already-positioned generator (advances it by
/// `bits.len()`). Lets a caller scramble a codeword in segments.
pub fn scramble_bits_with(bits: &mut [u8], g: &mut GoldSequence) {
    for b in bits.iter_mut() {
        *b ^= g.step();
    }
}

/// Descramble soft LLRs in place: where c(n)=1, the transmitted bit was
/// flipped, so the LLR sign flips back.
pub fn descramble_llrs(llrs: &mut [f32], c_init: u32) {
    descramble_llrs_with(llrs, &mut GoldSequence::new(c_init));
}

/// Descramble with an already-positioned generator (advances it by
/// `llrs.len()`). Lets per-code-block jobs each descramble their own
/// slice from a clone positioned at the block boundary.
pub fn descramble_llrs_with(llrs: &mut [f32], g: &mut GoldSequence) {
    for l in llrs.iter_mut() {
        if g.step() == 1 {
            *l = -*l;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitBuf;

    #[test]
    fn scramble_is_involution() {
        let mut bits: Vec<u8> = (0..500).map(|i| ((i * 7) % 2) as u8).collect();
        let orig = bits.clone();
        scramble_bits(&mut bits, GoldSequence::c_init_data(0x4601, 42));
        assert_ne!(bits, orig, "scrambling must change the sequence");
        scramble_bits(&mut bits, GoldSequence::c_init_data(0x4601, 42));
        assert_eq!(bits, orig);
    }

    #[test]
    fn different_inits_differ() {
        let a = GoldSequence::new(1).bits(256);
        let b = GoldSequence::new(2).bits(256);
        assert_ne!(a, b);
        let hamming: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        // Gold sequences are near-balanced relative to each other.
        assert!(hamming > 80 && hamming < 176, "hamming={hamming}");
    }

    #[test]
    fn sequence_is_balanced() {
        let bits = GoldSequence::new(0x1234_5678 & 0x7FFF_FFFF).bits(10_000);
        let ones = bits.iter().filter(|b| **b == 1).count();
        assert!((4_700..5_300).contains(&ones), "ones={ones}");
    }

    #[test]
    fn word_generator_matches_bit_stepping() {
        for c_init in [1u32, 99, 0x4601 << 15, MASK31] {
            let mut by_word = GoldSequence { x1: 1, x2: c_init };
            let mut by_step = GoldSequence { x1: 1, x2: c_init };
            for round in 0..5 {
                let w = by_word.next_word64();
                for j in 0..64 {
                    assert_eq!(
                        ((w >> j) & 1) as u8,
                        by_step.step(),
                        "c_init={c_init:#x} round={round} bit={j}"
                    );
                }
            }
            assert_eq!(by_word.x1, by_step.x1);
            assert_eq!(by_word.x2, by_step.x2);
        }
    }

    #[test]
    fn skip_matches_discarded_bits() {
        let mut a = GoldSequence::new(99);
        let mut b = GoldSequence::new(99);
        let _ = a.bits(173);
        b.skip(173);
        assert_eq!(a.bits(32), b.bits(32));
    }

    #[test]
    fn matrix_skip_matches_stepping_across_sizes() {
        // The satellite regression: O(log n) skip must equal n single
        // steps for distances spanning block sizes and the Nc offset.
        for n in [0usize, 1, 2, 31, 63, 64, 65, 127, 1000, NC, 100_000] {
            let mut stepped = GoldSequence { x1: 1, x2: 0x2345 };
            let mut skipped = stepped.clone();
            for _ in 0..n {
                stepped.step();
            }
            skipped.skip(n);
            assert_eq!(stepped.x1, skipped.x1, "n={n}");
            assert_eq!(stepped.x2, skipped.x2, "n={n}");
        }
    }

    #[test]
    fn llr_descramble_matches_bit_descramble() {
        let c_init = GoldSequence::c_init_data(100, 7);
        let bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let mut tx = bits.clone();
        scramble_bits(&mut tx, c_init);
        // Perfect channel: LLR = +5 for bit 0, -5 for bit 1 (convention:
        // positive LLR means "likely 0").
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|b| if *b == 0 { 5.0 } else { -5.0 })
            .collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|l| if *l >= 0.0 { 0 } else { 1 }).collect();
        assert_eq!(rx, bits);
    }

    #[test]
    fn segmented_descramble_matches_whole() {
        let c_init = GoldSequence::c_init_data(0x4601, 42);
        let mut whole: Vec<f32> = (0..300).map(|i| (i as f32) - 150.0).collect();
        let mut segmented = whole.clone();
        descramble_llrs(&mut whole, c_init);
        // Same work split at arbitrary boundaries with positioned clones.
        let bounds = [0usize, 37, 120, 300];
        let mut g = GoldSequence::new(c_init);
        for w in bounds.windows(2) {
            let mut local = g.clone();
            descramble_llrs_with(&mut segmented[w[0]..w[1]], &mut local);
            g.skip(w[1] - w[0]);
        }
        assert_eq!(whole, segmented);
    }

    #[test]
    fn packed_scramble_matches_bitwise() {
        let c_init = GoldSequence::c_init_data(0x4601, 42);
        for (len, offset) in [(1usize, 0usize), (63, 5), (64, 64), (500, 137), (1000, 0)] {
            let bits: Vec<u8> = (0..len).map(|i| ((i * 11) % 3 % 2) as u8).collect();
            let mut reference = bits.clone();
            let mut g = GoldSequence::new(c_init);
            g.skip(offset);
            scramble_bits_with(&mut reference, &mut g);

            let seq = cached_sequence(c_init, offset + len);
            let mut packed = BitBuf::from_bits(&bits);
            scramble_packed(&mut packed, &seq, offset);
            assert_eq!(packed.to_bits(), reference, "len={len} offset={offset}");

            let mut llrs: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let mut llrs_ref = llrs.clone();
            let mut g = GoldSequence::new(c_init);
            g.skip(offset);
            descramble_llrs_with(&mut llrs_ref, &mut g);
            descramble_llrs_packed(&mut llrs, &seq, offset);
            assert_eq!(llrs, llrs_ref, "len={len} offset={offset}");
        }
    }

    #[test]
    fn cached_sequence_grows_and_matches_generator() {
        let c_init = 0x0BAD_CAFE & MASK31;
        let short = cached_sequence(c_init, 64);
        let long = cached_sequence(c_init, 4096);
        assert!(long.len() >= 4096 / 64 + 1);
        assert_eq!(&long[..short.len() - 1], &short[..short.len() - 1]);
        let mut g = GoldSequence::new(c_init);
        for (i, &w) in long.iter().enumerate() {
            assert_eq!(w, g.next_word64(), "word {i}");
        }
    }

    #[test]
    fn generator_deterministic() {
        let a = GoldSequence::new(777).bits(100);
        let b = GoldSequence::new(777).bits(100);
        assert_eq!(a, b);
    }

    #[test]
    fn c_init_mixes_rnti_and_cell() {
        assert_ne!(
            GoldSequence::c_init_data(1, 5),
            GoldSequence::c_init_data(2, 5)
        );
        assert_ne!(
            GoldSequence::c_init_data(1, 5),
            GoldSequence::c_init_data(1, 6)
        );
    }
}
