//! Circular-buffer rate matching (TS 38.212-style).
//!
//! The mother LDPC codeword is written into a circular buffer; the rate
//! matcher reads `e` bits starting at an offset determined by the
//! redundancy version (RV). Transmitting different RVs across HARQ
//! retransmissions yields incremental redundancy; re-reading the same RV
//! yields chase combining. On receive, LLRs are accumulated back into
//! mother-codeword positions (soft combining happens naturally when the
//! same position is received more than once).

/// Redundancy-version start offsets as fractions of the buffer, matching
/// the spirit of the 38.212 RV positions {0, 1/4, 1/2, 3/4}.
pub const RV_COUNT: usize = 4;

/// Starting index in a length-`n` circular buffer for redundancy
/// version `rv`.
pub fn rv_start(n: usize, rv: u8) -> usize {
    (n * (rv as usize % RV_COUNT)) / RV_COUNT
}

/// Select `e` coded bits from the mother codeword for transmission.
pub fn rate_match(coded: &[u8], e: usize, rv: u8) -> Vec<u8> {
    assert!(!coded.is_empty());
    let n = coded.len();
    let start = rv_start(n, rv);
    (0..e).map(|i| coded[(start + i) % n]).collect()
}

/// Packed rate matching: append `e` bits of the mother codeword to
/// `out`, reading circularly from the RV offset. Word-at-a-time
/// equivalent of [`rate_match`].
pub fn rate_match_packed(
    coded: &crate::bits::BitBuf,
    e: usize,
    rv: u8,
    out: &mut crate::bits::BitBuf,
) {
    assert!(!coded.is_empty());
    let n = coded.len();
    let start = rv_start(n, rv);
    let mut pos = start;
    let mut rem = e;
    // First read runs from the offset to the buffer end, then whole
    // passes wrap from 0.
    while rem > 0 {
        let run = rem.min(n - pos);
        out.append_range(coded, pos, run);
        rem -= run;
        pos = 0;
    }
}

/// Accumulate received LLRs for `e` transmitted bits back into
/// mother-codeword LLR positions. `acc` has length n and may already
/// contain LLRs from earlier (re)transmissions.
pub fn rate_recover(acc: &mut [f32], rx_llrs: &[f32], rv: u8) {
    let n = acc.len();
    assert!(n > 0);
    let start = rv_start(n, rv);
    for (i, l) in rx_llrs.iter().enumerate() {
        acc[(start + i) % n] += *l;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv_starts_are_quarters() {
        assert_eq!(rv_start(100, 0), 0);
        assert_eq!(rv_start(100, 1), 25);
        assert_eq!(rv_start(100, 2), 50);
        assert_eq!(rv_start(100, 3), 75);
        assert_eq!(rv_start(100, 4), 0); // wraps
    }

    #[test]
    fn puncture_selects_prefix_for_rv0() {
        let coded: Vec<u8> = (0..10).map(|i| (i % 2) as u8).collect();
        let tx = rate_match(&coded, 6, 0);
        assert_eq!(tx, coded[..6].to_vec());
    }

    #[test]
    fn repetition_wraps_circularly() {
        let coded = vec![1, 0, 1];
        let tx = rate_match(&coded, 8, 0);
        assert_eq!(tx, vec![1, 0, 1, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn rv_offsets_shift_selection() {
        let coded: Vec<u8> = (0..8).map(|i| (i >= 4) as u8).collect();
        let tx = rate_match(&coded, 4, 2);
        assert_eq!(tx, vec![1, 1, 1, 1]);
    }

    #[test]
    fn recover_accumulates_soft_values() {
        let mut acc = vec![0.0f32; 8];
        rate_recover(&mut acc, &[1.0, 2.0, 3.0], 0);
        rate_recover(&mut acc, &[10.0, 20.0], 2);
        assert_eq!(acc, vec![1.0, 2.0, 3.0, 0.0, 10.0, 20.0, 0.0, 0.0]);
        // Chase combining: same rv adds in place.
        rate_recover(&mut acc, &[1.0, 1.0, 1.0], 0);
        assert_eq!(acc[0], 2.0);
        assert_eq!(acc[1], 3.0);
    }

    #[test]
    fn recover_wraps_like_match() {
        let mut acc = vec![0.0f32; 4];
        rate_recover(&mut acc, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 3);
        // start = 3; positions 3,0,1,2,3,0 → counts [2,1,1,2].
        assert_eq!(acc, vec![2.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn packed_match_equals_bytewise() {
        use crate::bits::BitBuf;
        for n in [3usize, 12, 96, 200] {
            let coded: Vec<u8> = (0..n).map(|i| ((i * 31) % 7 % 2) as u8).collect();
            let packed = BitBuf::from_bits(&coded);
            for rv in 0..4u8 {
                for e in [1usize, n / 2, n, 2 * n + 5] {
                    let mut out = BitBuf::new();
                    rate_match_packed(&packed, e, rv, &mut out);
                    assert_eq!(
                        out.to_bits(),
                        rate_match(&coded, e, rv),
                        "n={n} rv={rv} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn match_recover_roundtrip_positions() {
        // Every transmitted bit must land back on the position it came
        // from, for all rv values and both puncturing and repetition.
        for n in [12usize, 96] {
            let coded: Vec<u8> = (0..n).map(|i| ((i * 31) % 2) as u8).collect();
            for rv in 0..4u8 {
                for e in [n / 2, n, 2 * n] {
                    let tx = rate_match(&coded, e, rv);
                    let llrs: Vec<f32> = tx
                        .iter()
                        .map(|b| if *b == 0 { 1.0 } else { -1.0 })
                        .collect();
                    let mut acc = vec![0.0f32; n];
                    rate_recover(&mut acc, &llrs, rv);
                    for (i, a) in acc.iter().enumerate() {
                        if *a != 0.0 {
                            let bit = if *a > 0.0 { 0 } else { 1 };
                            assert_eq!(bit, coded[i], "n={n} rv={rv} e={e} i={i}");
                        }
                    }
                }
            }
        }
    }
}
