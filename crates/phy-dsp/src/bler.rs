//! Abstracted block-error-rate (BLER) model.
//!
//! Long experiments (the paper's Table 2 runs 60 s of simulated time at
//! up to 50 migrations/s) cannot afford running the full LDPC chain for
//! every transport block. This module provides a closed-form BLER as a
//! function of SNR, modulation order, code rate, block length, and
//! decoder iteration budget, **calibrated against the full chain** (see
//! `examples/gap_probe.rs` and the `bler_calibration_*` tests): the
//! 50 %-BLER gap from Shannon was measured across rate × modulation ×
//! iterations and fit as
//!
//! ```text
//! gap(dB) = base(iters) + 0.58·(bits_per_symbol − 2) + rate_penalty
//! base(iters) = 2.8 + 6.0 / iters
//! rate_penalty = 2.7 · clamp((rate − 0.5) / 0.1, 0, 1)
//! ```
//!
//! The scheduler's link adaptation uses the same thresholds, so MCS
//! choices stay consistent between the abstract and physical modes.
//! HARQ combining is modeled by accumulating linear SNR across
//! transmissions (chase combining's matched-filter bound).

use crate::channel::db_to_linear;

/// Iteration-dependent decoder loss (dB), from calibration.
pub fn base_loss_db(fec_iterations: usize) -> f64 {
    2.8 + 6.0 / (fec_iterations.max(1) as f64)
}

/// Extra loss per modulation order above QPSK (max-log LLR penalty and
/// constellation packing), from calibration.
pub fn modulation_loss_db(bits_per_symbol: usize) -> f64 {
    0.58 * (bits_per_symbol.saturating_sub(2)) as f64
}

/// Penalty for heavy puncturing of the rate-1/3 mother code, from
/// calibration: kicks in above rate ≈ 0.5 and saturates near 0.6.
pub fn rate_penalty_db(code_rate: f64) -> f64 {
    2.7 * ((code_rate - 0.5) / 0.1).clamp(0.0, 1.0)
}

/// SNR (dB) at which BLER crosses 50 % for the given link parameters.
pub fn threshold_db(bits_per_symbol: usize, code_rate: f64, fec_iterations: usize) -> f64 {
    let eff = bits_per_symbol as f64 * code_rate;
    let snr_min = (2f64.powf(eff) - 1.0).max(1e-3);
    10.0 * snr_min.log10()
        + base_loss_db(fec_iterations)
        + modulation_loss_db(bits_per_symbol)
        + rate_penalty_db(code_rate)
}

/// Waterfall steepness (per dB): longer blocks have sharper waterfalls.
/// Calibrated to ≈ 2–2.5 /dB at 1024-bit blocks.
pub fn steepness(block_bits: usize) -> f64 {
    0.8 + (block_bits.max(16) as f64).ln() * 0.22
}

/// Block error probability for a single transmission.
pub fn bler(
    snr_db: f64,
    bits_per_symbol: usize,
    code_rate: f64,
    block_bits: usize,
    fec_iterations: usize,
) -> f64 {
    if !snr_db.is_finite() {
        return 1.0;
    }
    let th = threshold_db(bits_per_symbol, code_rate, fec_iterations);
    let a = steepness(block_bits);
    1.0 / (1.0 + ((snr_db - th) * a).exp())
}

/// Effective SNR (dB) after chase-combining transmissions received at
/// the given per-transmission SNRs (dB).
pub fn combined_snr_db(snrs_db: &[f64]) -> f64 {
    let lin: f64 = snrs_db
        .iter()
        .filter(|s| s.is_finite())
        .map(|s| db_to_linear(*s))
        .sum();
    10.0 * lin.max(1e-30).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bler_monotone_in_snr() {
        let mut prev = 1.0;
        for snr in -10..40 {
            let b = bler(snr as f64, 4, 0.5, 1000, 8);
            assert!(b <= prev + 1e-12);
            prev = b;
        }
    }

    #[test]
    fn bler_limits_and_nan_guard() {
        assert!(bler(-20.0, 2, 0.5, 1000, 8) > 0.99);
        assert!(bler(40.0, 2, 0.5, 1000, 8) < 1e-6);
        assert_eq!(bler(f64::NAN, 2, 0.5, 1000, 8), 1.0);
    }

    #[test]
    fn higher_order_modulation_needs_more_snr() {
        assert!(threshold_db(8, 0.5, 8) > threshold_db(4, 0.5, 8) + 5.0);
    }

    #[test]
    fn heavier_puncturing_costs_more() {
        // Same spectral efficiency (2 b/sym), different rate choices:
        // 16QAM rate 1/2 should beat QPSK... rather: verify the rate
        // penalty itself.
        assert_eq!(rate_penalty_db(0.4), 0.0);
        assert!(rate_penalty_db(0.6) > 2.0);
        assert_eq!(rate_penalty_db(0.8), rate_penalty_db(0.95));
    }

    #[test]
    fn more_iterations_lower_threshold() {
        let t4 = threshold_db(2, 0.5, 4);
        let t16 = threshold_db(2, 0.5, 16);
        assert!(t16 < t4 - 0.5, "t4={t4} t16={t16}");
    }

    #[test]
    fn combining_gains_3db_for_equal_snr() {
        let c = combined_snr_db(&[10.0, 10.0]);
        assert!((c - 13.010).abs() < 0.01, "c={c}");
        // NaN entries (pre-channel) are ignored.
        let c2 = combined_snr_db(&[10.0, f64::NAN]);
        assert!((c2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn longer_blocks_sharper_waterfall() {
        let th = threshold_db(2, 0.5, 8);
        let short_above = bler(th + 2.0, 2, 0.5, 100, 8);
        let long_above = bler(th + 2.0, 2, 0.5, 8000, 8);
        assert!(long_above < short_above);
    }

    /// Calibration checks against the full LDPC chain, at the corners
    /// of the fitted surface (see examples/gap_probe.rs for the data).
    #[test]
    fn bler_calibration_against_full_chain() {
        use crate::channel::AwgnChannel;
        use crate::dispatch::DspKernels;
        use crate::modulation::Modulation;
        use crate::tbchain::{mother_buffer_len, TbDecodeOutcome, TbParams};
        use slingshot_sim::SimRng;

        // Handle-backed stand-ins for the deprecated free functions.
        fn encode_tb(payload: &[u8], p: &TbParams) -> Vec<crate::Cplx> {
            DspKernels::detect().encode_tb(payload, p)
        }
        fn decode_tb(
            acc: &mut [f32],
            rx: &[crate::Cplx],
            nv: f32,
            bytes: usize,
            p: &TbParams,
        ) -> TbDecodeOutcome {
            DspKernels::detect().decode_tb(acc, rx, nv, bytes, p)
        }

        let payload: Vec<u8> = (0..125u32).map(|i| (i * 11) as u8).collect(); // 1024 bits
        let mut ch = AwgnChannel::new(SimRng::new(77));
        let cases = [
            (Modulation::Qpsk, 2usize, 2048usize, 8usize), // rate 0.5
            (Modulation::Qam64, 6, 1536, 8),               // rate 2/3
            (Modulation::Qam256, 8, 2048, 8),              // rate 0.5
        ];
        for (m, bps, e_raw, iters) in cases {
            let e = e_raw - e_raw % bps;
            let rate = 1024.0 / e as f64;
            let th = threshold_db(bps, rate, iters);
            let trials = 12;
            let mut fails_low = 0;
            let mut fails_high = 0;
            for _ in 0..trials {
                for (snr, fails) in [(th - 3.0, &mut fails_low), (th + 3.0, &mut fails_high)] {
                    let p = TbParams {
                        modulation: m,
                        e_bits: e,
                        rnti: 1,
                        cell_id: 1,
                        rv: 0,
                        fec_iterations: iters,
                    };
                    let syms = encode_tb(&payload, &p);
                    let (rx, nv) = ch.apply(&syms, snr);
                    let mut acc = vec![0.0; mother_buffer_len(payload.len())];
                    if decode_tb(&mut acc, &rx, nv, payload.len(), &p)
                        .payload
                        .is_none()
                    {
                        *fails += 1;
                    }
                }
            }
            assert!(fails_low >= trials - 2, "{m:?}: low={fails_low}");
            assert!(fails_high <= 3, "{m:?}: high={fails_high}");
        }
    }
}
