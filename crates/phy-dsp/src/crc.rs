//! CRC codes used by the 5G NR transport-block chain (3GPP TS 38.212):
//! CRC-24A attached to transport blocks and CRC-16 for small blocks.
//! CRC failure at the PHY is the signal that drives HARQ retransmission —
//! the mechanism Slingshot leans on when it discards HARQ buffers during
//! migration ("the PHY's CRC-protected FEC decoding fails, resulting in
//! retransmissions at the RAN's higher layers", §4.2).

/// CRC-24A generator polynomial from TS 38.212 §5.1:
/// x^24 + x^23 + x^18 + x^17 + x^14 + x^11 + x^10 + x^7 + x^6 + x^5 + x^4 + x^3 + x + 1.
pub const CRC24A_POLY: u32 = 0x864CFB;

/// CRC-16 (CCITT) generator polynomial from TS 38.212:
/// x^16 + x^12 + x^5 + 1.
pub const CRC16_POLY: u16 = 0x1021;

/// 256-entry table for byte-at-a-time CRC-24A: entry `b` is the CRC
/// register contribution of shifting byte `b` through the bit-serial
/// division (exactly the inner loop of the scalar form, precomputed).
const CRC24A_TABLE: [u32; 256] = build_crc24a_table();

const fn build_crc24a_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = (b as u32) << 16;
        let mut i = 0;
        while i < 8 {
            crc <<= 1;
            if crc & 0x0100_0000 != 0 {
                crc ^= CRC24A_POLY;
            }
            i += 1;
        }
        table[b] = crc & 0x00FF_FFFF;
        b += 1;
    }
    table
}

/// 256-entry table for byte-at-a-time CRC-16.
const CRC16_TABLE: [u16; 256] = build_crc16_table();

const fn build_crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut crc = (b as u16) << 8;
        let mut i = 0;
        while i < 8 {
            let msb = crc & 0x8000 != 0;
            crc <<= 1;
            if msb {
                crc ^= CRC16_POLY;
            }
            i += 1;
        }
        table[b] = crc;
        b += 1;
    }
    table
}

/// Compute CRC-24A over a byte slice (bit order MSB-first, zero initial
/// value, no final XOR — matching TS 38.212). Table-driven,
/// byte-at-a-time; identical values to the bit-serial definition.
pub fn crc24a(data: &[u8]) -> u32 {
    let mut crc: u32 = 0;
    for &byte in data {
        let idx = ((crc >> 16) as u8 ^ byte) as usize;
        crc = ((crc << 8) & 0x00FF_FFFF) ^ CRC24A_TABLE[idx];
    }
    crc
}

/// Compute CRC-16 over a byte slice (table-driven, byte-at-a-time).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        let idx = ((crc >> 8) as u8 ^ byte) as usize;
        crc = (crc << 8) ^ CRC16_TABLE[idx];
    }
    crc
}

/// Append a CRC-24A to a payload, returning payload ‖ crc (3 bytes,
/// big-endian).
pub fn attach_crc24a(payload: &[u8]) -> Vec<u8> {
    let crc = crc24a(payload);
    let mut out = Vec::with_capacity(payload.len() + 3);
    out.extend_from_slice(payload);
    out.extend_from_slice(&[(crc >> 16) as u8, (crc >> 8) as u8, crc as u8]);
    out
}

/// Check and strip a trailing CRC-24A. Returns the payload on success.
pub fn check_crc24a(block: &[u8]) -> Option<&[u8]> {
    if block.len() < 3 {
        return None;
    }
    let (payload, tail) = block.split_at(block.len() - 3);
    let expect = ((tail[0] as u32) << 16) | ((tail[1] as u32) << 8) | tail[2] as u32;
    if crc24a(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

/// Append a CRC-16 to a payload.
pub fn attach_crc16(payload: &[u8]) -> Vec<u8> {
    let crc = crc16(payload);
    let mut out = Vec::with_capacity(payload.len() + 2);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Check and strip a trailing CRC-16.
pub fn check_crc16(block: &[u8]) -> Option<&[u8]> {
    if block.len() < 2 {
        return None;
    }
    let (payload, tail) = block.split_at(block.len() - 2);
    let expect = u16::from_be_bytes([tail[0], tail[1]]);
    if crc16(payload) == expect {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-serial reference (the retired scalar implementation).
    fn crc24a_bitwise(data: &[u8]) -> u32 {
        let mut crc: u32 = 0;
        for &byte in data {
            crc ^= (byte as u32) << 16;
            for _ in 0..8 {
                crc <<= 1;
                if crc & 0x0100_0000 != 0 {
                    crc ^= CRC24A_POLY;
                }
            }
        }
        crc & 0x00FF_FFFF
    }

    fn crc16_bitwise(data: &[u8]) -> u16 {
        let mut crc: u16 = 0;
        for &byte in data {
            crc ^= (byte as u16) << 8;
            for _ in 0..8 {
                let msb = crc & 0x8000 != 0;
                crc <<= 1;
                if msb {
                    crc ^= CRC16_POLY;
                }
            }
        }
        crc
    }

    #[test]
    fn table_matches_bitwise_reference() {
        let data: Vec<u8> = (0u32..2048).map(|i| (i * 151 + 17) as u8).collect();
        for n in [0usize, 1, 2, 3, 7, 8, 255, 256, 1500, 2048] {
            assert_eq!(crc24a(&data[..n]), crc24a_bitwise(&data[..n]), "n={n}");
            assert_eq!(crc16(&data[..n]), crc16_bitwise(&data[..n]), "n={n}");
        }
    }

    #[test]
    fn known_answer_vectors() {
        // Published check values for the standard "123456789" message:
        // CRC-24/LTE-A (poly 0x864CFB, init 0, no xorout) and
        // CRC-16/XMODEM (poly 0x1021, init 0, no xorout), per the CRC
        // RevEng catalogue.
        assert_eq!(crc24a(b"123456789"), 0xCDE703);
        assert_eq!(crc16(b"123456789"), 0x31C3);
        // CRC-16/XMODEM of "A" is a classic XMODEM test value.
        assert_eq!(crc16(b"A"), 0x58E5);
    }

    #[test]
    fn crc24a_known_properties() {
        // CRC of empty data with zero init is zero.
        assert_eq!(crc24a(&[]), 0);
        // A message followed by its CRC has CRC zero (defining property).
        let data = b"slingshot phy migration";
        let framed = attach_crc24a(data);
        assert_eq!(crc24a(&framed), 0);
    }

    #[test]
    fn crc24a_roundtrip() {
        let data = b"transport block payload";
        let framed = attach_crc24a(data);
        assert_eq!(check_crc24a(&framed), Some(&data[..]));
    }

    #[test]
    fn crc24a_detects_single_bit_errors() {
        let data: Vec<u8> = (0u16..64).map(|i| (i * 7) as u8).collect();
        let framed = attach_crc24a(&data);
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(check_crc24a(&bad).is_none(), "missed error at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn crc24a_detects_burst_errors() {
        let data: Vec<u8> = (0u16..256).map(|i| i as u8).collect();
        let framed = attach_crc24a(&data);
        // All burst errors up to 24 bits are detected by a degree-24 CRC.
        for start in (0..framed.len() * 8 - 24).step_by(37) {
            let mut bad = framed.clone();
            for b in start..start + 24 {
                bad[b / 8] ^= 1 << (7 - (b % 8));
            }
            assert!(check_crc24a(&bad).is_none(), "missed burst at {start}");
        }
    }

    #[test]
    fn crc16_roundtrip_and_detection() {
        let data = b"uci payload";
        let framed = attach_crc16(data);
        assert_eq!(check_crc16(&framed), Some(&data[..]));
        let mut bad = framed.clone();
        bad[3] ^= 0x10;
        assert!(check_crc16(&bad).is_none());
    }

    #[test]
    fn short_blocks_rejected() {
        assert!(check_crc24a(&[1, 2]).is_none());
        assert!(check_crc16(&[9]).is_none());
    }

    #[test]
    fn crc_is_linear() {
        // CRC(a ^ b) == CRC(a) ^ CRC(b) for equal-length messages
        // (zero-init CRC is linear over GF(2)).
        let a: Vec<u8> = (0..32).map(|i| (i * 3) as u8).collect();
        let b: Vec<u8> = (0..32).map(|i| (i * 5 + 1) as u8).collect();
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        assert_eq!(crc24a(&x), crc24a(&a) ^ crc24a(&b));
        assert_eq!(crc16(&x), crc16(&a) ^ crc16(&b));
    }
}
