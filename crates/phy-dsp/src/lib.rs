//! # slingshot-phy-dsp
//!
//! The signal-processing substrate of the Slingshot reproduction — the
//! parts of a 5G PHY that Intel FlexRAN provides in the paper's testbed,
//! reimplemented from scratch so that decode success and failure emerge
//! from real coding/modulation math under channel noise:
//!
//! - [`crc`]: CRC-24A / CRC-16 (TS 38.212 polynomials)
//! - [`scramble`]: length-31 Gold sequence scrambling (TS 38.211)
//! - [`modulation`]: Gray-mapped QPSK…256-QAM with max-log LLR demapping
//! - [`ldpc`]: systematic staircase LDPC, normalized min-sum decoding
//!   with a configurable iteration budget (the paper's §8.3 upgrade knob)
//! - [`ratematch`]: circular-buffer rate matching with redundancy
//!   versions (incremental redundancy / chase combining)
//! - [`harq`]: soft-combining buffer pool — the inter-TTI state that
//!   Slingshot discards during PHY migration (§4.2)
//! - [`snr`]: pilot-based SNR estimation and the moving-average filter —
//!   the other discarded inter-TTI state (§4.2)
//! - [`channel`]: AWGN channel and per-UE SNR processes
//! - [`iq`]: complex samples and O-RAN-style block-floating-point
//!   compression used on the fronthaul
//! - [`tbchain`]: the end-to-end transport-block encode/decode chain
//! - [`bler`]: a calibrated closed-form BLER model for long experiments
//!   (fidelity/runtime trade-off; see DESIGN.md)

pub mod bits;
pub mod bler;
pub mod channel;
pub mod crc;
pub mod dispatch;
pub mod harq;
pub mod iq;
pub mod ldpc;
pub mod modulation;
pub mod ratematch;
pub mod scramble;
pub mod scratch;
pub mod snr;
pub mod tbchain;

pub use bits::BitBuf;
pub use channel::{AwgnChannel, SnrProcess, SnrProcessConfig};
pub use dispatch::DspKernels;
pub use harq::{HarqPool, SoftBuffer, HARQ_PROCESSES, MAX_HARQ_TX};
pub use iq::{Cplx, SC_PER_PRB};
pub use ldpc::{LdpcCode, LdpcScratch};
pub use modulation::Modulation;
pub use scratch::{default_scratch_pool, DspScratch, DspScratchPool};
pub use snr::SnrFilter;
// Kernel backend selection originates in the sim crate (the engine
// carries it); re-export so DSP callers have one import surface.
pub use slingshot_sim::{KernelBackend, KernelConfig};
#[allow(deprecated)]
pub use tbchain::{decode_tb, encode_tb, mother_buffer_len, TbDecodeOutcome, TbParams};
