//! Wireless channel models.
//!
//! [`AwgnChannel`] perturbs actual modulated symbols with complex
//! Gaussian noise at a given SNR, so decode success and failure *emerge*
//! from the LLR/LDPC math rather than being asserted — this is what
//! makes the paper's central claim ("processing impairments resemble
//! signal impairments") demonstrable in this reproduction.
//!
//! [`SnrProcess`] models each UE's slowly varying link quality: a
//! mean-reverting random walk plus occasional deep fades, calibrated to
//! the kind of 4x variation stationary 5G UEs see in practice (§4).

use crate::iq::Cplx;
use slingshot_sim::{SimRng, WorkerPool};

/// Symbols per noise-generation chunk in [`AwgnChannel::apply_with`].
pub const CHANNEL_CHUNK: usize = 2048;

/// Convert dB to linear power ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert linear power ratio to dB.
pub fn linear_to_db(lin: f64) -> f64 {
    10.0 * lin.max(1e-30).log10()
}

/// Additive white Gaussian noise channel for unit-power constellations.
#[derive(Debug, Clone)]
pub struct AwgnChannel {
    rng: SimRng,
}

impl AwgnChannel {
    pub fn new(rng: SimRng) -> AwgnChannel {
        AwgnChannel { rng }
    }

    /// Apply noise at `snr_db` to unit-average-power symbols, returning
    /// the noisy symbols and the complex noise variance the receiver
    /// should assume.
    pub fn apply(&mut self, symbols: &[Cplx], snr_db: f64) -> (Vec<Cplx>, f32) {
        let noise_var = (1.0 / db_to_linear(snr_db)) as f32;
        let per_axis = (noise_var / 2.0).sqrt();
        let out = symbols
            .iter()
            .map(|s| {
                *s + Cplx::new(
                    per_axis * self.rng.gaussian() as f32,
                    per_axis * self.rng.gaussian() as f32,
                )
            })
            .collect();
        (out, noise_var)
    }

    /// Chunked-parallel variant of [`AwgnChannel::apply`]. Noise draws
    /// come from per-chunk streams split off one fork of the channel
    /// RNG *in serial chunk order*, so the realization depends only on
    /// the channel RNG state — never on the pool's worker count. The
    /// realization differs from `apply` (different stream layout); a
    /// caller must use one variant consistently.
    pub fn apply_with(
        &mut self,
        pool: &WorkerPool,
        symbols: &[Cplx],
        snr_db: f64,
    ) -> (Vec<Cplx>, f32) {
        let noise_var = (1.0 / db_to_linear(snr_db)) as f32;
        let per_axis = (noise_var / 2.0).sqrt();
        let mut base = self.rng.fork("awgn-chunks");
        let jobs: Vec<_> = symbols
            .chunks(CHANNEL_CHUNK)
            .enumerate()
            .map(|(i, chunk)| {
                let mut rng = base.split(i as u64);
                let chunk = chunk.to_vec();
                move || {
                    chunk
                        .iter()
                        .map(|s| {
                            *s + Cplx::new(
                                per_axis * rng.gaussian() as f32,
                                per_axis * rng.gaussian() as f32,
                            )
                        })
                        .collect::<Vec<Cplx>>()
                }
            })
            .collect();
        let mut out = Vec::with_capacity(symbols.len());
        for part in pool.run(jobs) {
            out.extend(part);
        }
        (out, noise_var)
    }

    /// Replace symbols entirely with noise — what the PHY sees when
    /// fronthaul packets are lost and it processes garbage IQ (§4:
    /// "indistinguishable from a noisy wireless channel").
    pub fn garbage(&mut self, len: usize) -> (Vec<Cplx>, f32) {
        let per_axis = (0.5f32).sqrt();
        let out = (0..len)
            .map(|_| {
                Cplx::new(
                    per_axis * self.rng.gaussian() as f32,
                    per_axis * self.rng.gaussian() as f32,
                )
            })
            .collect();
        (out, 1.0)
    }
}

/// Parameters of a UE's SNR evolution.
#[derive(Debug, Clone)]
pub struct SnrProcessConfig {
    /// Long-run mean SNR in dB.
    pub mean_db: f64,
    /// Standard deviation of per-step innovation, dB.
    pub step_std_db: f64,
    /// Mean-reversion rate per step (0..1).
    pub reversion: f64,
    /// Probability per step of entering a deep fade.
    pub fade_chance: f64,
    /// Fade depth in dB.
    pub fade_depth_db: f64,
    /// Fade duration in steps.
    pub fade_steps: u32,
}

impl Default for SnrProcessConfig {
    fn default() -> SnrProcessConfig {
        SnrProcessConfig {
            mean_db: 18.0,
            step_std_db: 0.35,
            reversion: 0.05,
            fade_chance: 0.0008,
            fade_depth_db: 8.0,
            fade_steps: 20,
        }
    }
}

/// A per-UE SNR process, stepped once per slot.
#[derive(Debug, Clone)]
pub struct SnrProcess {
    cfg: SnrProcessConfig,
    rng: SimRng,
    current_db: f64,
    fade_remaining: u32,
}

impl SnrProcess {
    pub fn new(cfg: SnrProcessConfig, rng: SimRng) -> SnrProcess {
        let current_db = cfg.mean_db;
        SnrProcess {
            cfg,
            rng,
            current_db,
            fade_remaining: 0,
        }
    }

    /// Advance one slot and return the SNR (dB) for that slot.
    pub fn step(&mut self) -> f64 {
        let innovation = self.rng.normal(0.0, self.cfg.step_std_db);
        self.current_db += self.cfg.reversion * (self.cfg.mean_db - self.current_db) + innovation;
        if self.fade_remaining > 0 {
            self.fade_remaining -= 1;
        } else if self.rng.chance(self.cfg.fade_chance) {
            self.fade_remaining = self.cfg.fade_steps;
        }
        let fade = if self.fade_remaining > 0 {
            self.cfg.fade_depth_db
        } else {
            0.0
        };
        self.current_db - fade
    }

    pub fn current_db(&self) -> f64 {
        self.current_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modulation::{demodulate_llr, hard_decide, modulate, Modulation};

    #[test]
    fn db_conversions() {
        assert!((db_to_linear(0.0) - 1.0).abs() < 1e-12);
        assert!((db_to_linear(10.0) - 10.0).abs() < 1e-9);
        assert!((linear_to_db(100.0) - 20.0).abs() < 1e-9);
        assert!((linear_to_db(db_to_linear(7.3)) - 7.3).abs() < 1e-9);
    }

    #[test]
    fn awgn_noise_power_matches_snr() {
        let mut ch = AwgnChannel::new(SimRng::new(1));
        let symbols = vec![Cplx::new(1.0, 0.0); 50_000];
        let (noisy, nv) = ch.apply(&symbols, 10.0);
        assert!((nv - 0.1).abs() < 1e-6);
        let measured: f32 = noisy
            .iter()
            .zip(&symbols)
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum::<f32>()
            / symbols.len() as f32;
        assert!((measured - 0.1).abs() < 0.01, "measured={measured}");
    }

    #[test]
    fn high_snr_transparent_low_snr_destructive() {
        let mut ch = AwgnChannel::new(SimRng::new(2));
        let bits: Vec<u8> = (0..4000).map(|i| ((i * 13) % 2) as u8).collect();
        let syms = modulate(&bits, Modulation::Qam16);
        let (clean, nv) = ch.apply(&syms, 30.0);
        let rx = hard_decide(&demodulate_llr(&clean, Modulation::Qam16, nv));
        let errs_hi = rx.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert_eq!(errs_hi, 0);
        let (dirty, nv) = ch.apply(&syms, -5.0);
        let rx = hard_decide(&demodulate_llr(&dirty, Modulation::Qam16, nv));
        let errs_lo = rx.iter().zip(&bits).filter(|(a, b)| a != b).count();
        assert!(errs_lo > 800, "errs_lo={errs_lo}");
    }

    #[test]
    fn apply_with_is_worker_count_independent() {
        let symbols = vec![Cplx::new(1.0, -1.0); 3 * CHANNEL_CHUNK + 17];
        let mut ch1 = AwgnChannel::new(SimRng::new(9));
        let mut ch4 = AwgnChannel::new(SimRng::new(9));
        let (a, nv_a) = ch1.apply_with(&WorkerPool::serial(), &symbols, 12.0);
        let (b, nv_b) = ch4.apply_with(&WorkerPool::new(4), &symbols, 12.0);
        assert_eq!(a, b);
        assert_eq!(nv_a, nv_b);
        // Noise power still matches the requested SNR.
        let measured: f32 = a
            .iter()
            .zip(&symbols)
            .map(|(x, s)| (*x - *s).norm_sq())
            .sum::<f32>()
            / a.len() as f32;
        assert!((measured - nv_a).abs() < 0.005, "measured={measured}");
    }

    #[test]
    fn garbage_looks_like_noise() {
        let mut ch = AwgnChannel::new(SimRng::new(3));
        let (g, nv) = ch.garbage(10_000);
        assert_eq!(nv, 1.0);
        let p: f32 = g.iter().map(|s| s.norm_sq()).sum::<f32>() / g.len() as f32;
        assert!((p - 1.0).abs() < 0.05, "power={p}");
    }

    #[test]
    fn snr_process_reverts_to_mean() {
        let cfg = SnrProcessConfig {
            fade_chance: 0.0,
            ..Default::default()
        };
        let mean = cfg.mean_db;
        let mut p = SnrProcess::new(cfg, SimRng::new(4));
        let samples: Vec<f64> = (0..20_000).map(|_| p.step()).collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((avg - mean).abs() < 1.0, "avg={avg}");
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 1.0, "should vary");
        assert!(max - min < 25.0, "should not blow up: range={}", max - min);
    }

    #[test]
    fn fades_reduce_snr_temporarily() {
        let cfg = SnrProcessConfig {
            fade_chance: 0.05,
            fade_depth_db: 10.0,
            fade_steps: 5,
            step_std_db: 0.01,
            ..Default::default()
        };
        let mean = cfg.mean_db;
        let mut p = SnrProcess::new(cfg, SimRng::new(5));
        let samples: Vec<f64> = (0..5_000).map(|_| p.step()).collect();
        let faded = samples.iter().filter(|s| **s < mean - 5.0).count();
        assert!(faded > 100, "faded={faded}");
        // And it recovers: last stretch not permanently faded.
        let tail_avg = samples[4_900..].iter().sum::<f64>() / 100.0;
        assert!(tail_avg > mean - 10.0);
    }

    #[test]
    fn snr_process_deterministic() {
        let mk = || SnrProcess::new(Default::default(), SimRng::new(6));
        let a: Vec<f64> = {
            let mut p = mk();
            (0..100).map(|_| p.step()).collect()
        };
        let b: Vec<f64> = {
            let mut p = mk();
            (0..100).map(|_| p.step()).collect()
        };
        assert_eq!(a, b);
    }
}
