//! IQ samples and O-RAN-style block floating point (BFP) compression.
//!
//! The fronthaul carries frequency-domain IQ samples. O-RAN split 7.2x
//! deployments compress them with block floating point: each PRB's 12
//! complex samples share a 4-bit exponent, and mantissas are quantized
//! (commonly to 9 bits). We implement the same scheme; its quantization
//! noise is part of what the PHY's decoder sees.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex baseband sample.
///
/// `repr(C)` so slices of samples are guaranteed to be interleaved
/// `re, im, re, im, …` f32 words in memory — the layout the SIMD
/// kernels load and deinterleave directly.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cplx {
    pub re: f32,
    pub im: f32,
}

impl Cplx {
    pub const ZERO: Cplx = Cplx { re: 0.0, im: 0.0 };

    pub fn new(re: f32, im: f32) -> Cplx {
        Cplx { re, im }
    }

    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }

    pub fn conj(self) -> Cplx {
        Cplx::new(self.re, -self.im)
    }

    pub fn scale(self, s: f32) -> Cplx {
        Cplx::new(self.re * s, self.im * s)
    }
}

impl Add for Cplx {
    type Output = Cplx;
    fn add(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Cplx {
    fn add_assign(&mut self, rhs: Cplx) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Cplx {
    type Output = Cplx;
    fn sub(self, rhs: Cplx) -> Cplx {
        Cplx::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Cplx {
    type Output = Cplx;
    fn mul(self, rhs: Cplx) -> Cplx {
        Cplx::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Cplx {
    type Output = Cplx;
    fn neg(self) -> Cplx {
        Cplx::new(-self.re, -self.im)
    }
}

/// Subcarriers per physical resource block.
pub const SC_PER_PRB: usize = 12;

/// Mantissa width used by the BFP compressor (O-RAN's common 9-bit mode).
pub const BFP_MANTISSA_BITS: u32 = 9;

/// One PRB's worth of compressed IQ: a shared exponent and 12 pairs of
/// signed mantissas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfpPrb {
    pub exponent: u8,
    /// Interleaved re/im mantissas, two's complement in `i16`.
    pub mantissas: [i16; 2 * SC_PER_PRB],
}

impl BfpPrb {
    /// Serialized size on the wire: 1 exponent byte + 24 mantissas at 9
    /// bits, rounded up to whole bytes (matching O-RAN's packed layout).
    pub const WIRE_BYTES: usize = 1 + (2 * SC_PER_PRB * BFP_MANTISSA_BITS as usize).div_ceil(8);
}

/// Fixed-point reference scale: map float 1.0 to 2^12. This leaves
/// headroom for constellation peaks and channel gain.
const SCALE: f32 = 4096.0;

/// Compress 12 complex samples into a BFP PRB (scalar oracle). Input
/// amplitudes are expected to be "sane" baseband values (|x| < ~2^15
/// after the fixed scaling); values beyond that saturate.
pub(crate) fn bfp_compress_scalar(samples: &[Cplx; SC_PER_PRB]) -> BfpPrb {
    let mut fixed = [0i64; 2 * SC_PER_PRB];
    for (i, s) in samples.iter().enumerate() {
        fixed[2 * i] = (s.re as f64 * SCALE as f64).round() as i64;
        fixed[2 * i + 1] = (s.im as f64 * SCALE as f64).round() as i64;
    }
    bfp_pack_fixed(&fixed)
}

/// Exponent selection and mantissa quantization shared by the scalar
/// and SIMD compressors (both produce the same fixed-point words, so
/// everything downstream of this point is common, integer-exact code).
fn bfp_pack_fixed(fixed: &[i64; 2 * SC_PER_PRB]) -> BfpPrb {
    let mut max_abs: i64 = 0;
    for f in fixed {
        max_abs = max_abs.max(f.abs());
    }
    // Choose the smallest exponent such that max_abs >> exp fits in the
    // signed mantissa range. Exponent is capped at the wire field's
    // 8-bit range; anything larger saturates the mantissas.
    let limit = (1i64 << (BFP_MANTISSA_BITS - 1)) - 1;
    let mut exponent = 0u8;
    while exponent < 40 && (max_abs >> exponent) > limit {
        exponent += 1;
    }
    let mut mantissas = [0i16; 2 * SC_PER_PRB];
    for (m, f) in mantissas.iter_mut().zip(fixed.iter()) {
        *m = (f >> exponent).clamp(-(limit + 1), limit) as i16;
    }
    BfpPrb {
        exponent,
        mantissas,
    }
}

/// Compress 12 complex samples into a BFP PRB.
#[deprecated(note = "use DspKernels::bfp_compress — backend-dispatched, scalar-bit-exact")]
pub fn bfp_compress(samples: &[Cplx; SC_PER_PRB]) -> BfpPrb {
    bfp_compress_scalar(samples)
}

/// Decompress a BFP PRB back to float samples (scalar oracle).
pub(crate) fn bfp_decompress_scalar(prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
    let mut out = [Cplx::ZERO; SC_PER_PRB];
    for (i, o) in out.iter_mut().enumerate() {
        let re = (prb.mantissas[2 * i] as i64) << prb.exponent.min(40);
        let im = (prb.mantissas[2 * i + 1] as i64) << prb.exponent.min(40);
        *o = Cplx::new(re as f32 / SCALE, im as f32 / SCALE);
    }
    out
}

/// Decompress a BFP PRB back to float samples.
#[deprecated(note = "use DspKernels::bfp_decompress — backend-dispatched, scalar-bit-exact")]
pub fn bfp_decompress(prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
    bfp_decompress_scalar(prb)
}

/// AVX2 BFP pack/unpack. Bit-exact versus the scalar oracle: the
/// float→fixed rounding is done in f64 exactly as the scalar path
/// (`round()` = half-away-from-zero, reproduced as
/// `trunc(y + copysign(0.5, y))`, which is exact for every `f32 × 4096`
/// value in the fast-path range), and everything after the fixed-point
/// conversion is shared integer code. Inputs outside ±2^19 (where the
/// product no longer fits the vector i32 path) or non-finite fall back
/// to the scalar compressor, which defines saturation behavior.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{bfp_pack_fixed, BfpPrb, Cplx, SCALE, SC_PER_PRB};
    use std::arch::x86_64::*;

    /// Fast-path amplitude bound: |x| < 2^19 keeps |x·4096| < 2^31.
    const FAST_ABS_LIMIT: f32 = 524_288.0;

    /// # Safety
    /// Requires AVX2 (caller checks `is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn bfp_compress(samples: &[Cplx; SC_PER_PRB]) -> BfpPrb {
        let p = samples.as_ptr() as *const f32;
        let absmask = _mm256_set1_ps(f32::from_bits(0x7FFF_FFFF));
        let lim = _mm256_set1_ps(FAST_ABS_LIMIT);
        let mut in_range = 0xFFu32;
        for k in 0..3 {
            let v = _mm256_loadu_ps(p.add(8 * k));
            let ok = _mm256_cmp_ps::<_CMP_LT_OQ>(_mm256_and_ps(v, absmask), lim);
            in_range &= _mm256_movemask_ps(ok) as u32;
        }
        if in_range != 0xFF {
            // Huge or non-finite samples: the scalar path defines
            // saturation, so let it handle the whole PRB.
            return super::bfp_compress_scalar(samples);
        }
        let scale = _mm256_set1_pd(SCALE as f64);
        let half = _mm256_set1_pd(0.5);
        let signmask = _mm256_set1_pd(f64::from_bits(0x8000_0000_0000_0000));
        let mut fixed32 = [0i32; 2 * SC_PER_PRB];
        for k in 0..6 {
            let q = _mm256_cvtps_pd(_mm_loadu_ps(p.add(4 * k)));
            let y = _mm256_mul_pd(q, scale);
            // round half away from zero, exactly as f64::round().
            let bias = _mm256_or_pd(_mm256_and_pd(y, signmask), half);
            let t = _mm256_round_pd::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(_mm256_add_pd(
                y, bias,
            ));
            let i = _mm256_cvttpd_epi32(t);
            _mm_storeu_si128(fixed32.as_mut_ptr().add(4 * k) as *mut __m128i, i);
        }
        let mut fixed = [0i64; 2 * SC_PER_PRB];
        for (w, f) in fixed.iter_mut().zip(fixed32.iter()) {
            *w = *f as i64;
        }
        bfp_pack_fixed(&fixed)
    }

    /// # Safety
    /// Requires AVX2 (caller checks `is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn bfp_decompress(prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
        // mantissa · 2^(exp-12): an exact power-of-two scaling of a
        // 9-bit integer, identical to the scalar `(m << e) as f32 / 4096`.
        let exp = prb.exponent.min(40) as i32;
        let scale = _mm256_set1_ps(f32::from_bits(((127 + exp - 12) as u32) << 23));
        let mut out = [Cplx::ZERO; SC_PER_PRB];
        let dst = out.as_mut_ptr() as *mut f32;
        for k in 0..3 {
            let m16 = _mm_loadu_si128(prb.mantissas.as_ptr().add(8 * k) as *const __m128i);
            let m32 = _mm256_cvtepi16_epi32(m16);
            let f = _mm256_mul_ps(_mm256_cvtepi32_ps(m32), scale);
            _mm256_storeu_ps(dst.add(8 * k), f);
        }
        out
    }
}

/// Serialize a BFP PRB to bytes (exponent byte, then mantissas packed as
/// 9-bit big-endian fields).
pub fn bfp_to_bytes(prb: &BfpPrb) -> Vec<u8> {
    let mut out = Vec::with_capacity(BfpPrb::WIRE_BYTES);
    bfp_write_bytes(prb, &mut out);
    out
}

/// Append a PRB's wire form to an existing buffer — the allocation-free
/// path message serialization uses to pack a whole symbol's PRBs into
/// one frame body.
pub fn bfp_write_bytes(prb: &BfpPrb, out: &mut Vec<u8>) {
    out.push(prb.exponent);
    let mut acc: u32 = 0;
    let mut nbits: u32 = 0;
    for &m in &prb.mantissas {
        let v = (m as u16) & ((1 << BFP_MANTISSA_BITS) - 1);
        acc = (acc << BFP_MANTISSA_BITS) | v as u32;
        nbits += BFP_MANTISSA_BITS;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        out.push((acc << (8 - nbits)) as u8);
    }
}

/// Parse a BFP PRB from bytes.
pub fn bfp_from_bytes(b: &[u8]) -> Option<BfpPrb> {
    if b.len() < BfpPrb::WIRE_BYTES {
        return None;
    }
    let exponent = b[0];
    let mut mantissas = [0i16; 2 * SC_PER_PRB];
    let mut acc: u32 = 0;
    let mut nbits: u32 = 0;
    let mut idx = 1;
    for m in mantissas.iter_mut() {
        while nbits < BFP_MANTISSA_BITS {
            acc = (acc << 8) | b[idx] as u32;
            idx += 1;
            nbits += 8;
        }
        nbits -= BFP_MANTISSA_BITS;
        let raw = ((acc >> nbits) & ((1 << BFP_MANTISSA_BITS) - 1)) as u16;
        // Sign-extend from 9 bits.
        let sign_bit = 1u16 << (BFP_MANTISSA_BITS - 1);
        *m = if raw & sign_bit != 0 {
            (raw | !((1 << BFP_MANTISSA_BITS) - 1)) as i16
        } else {
            raw as i16
        };
    }
    Some(BfpPrb {
        exponent,
        mantissas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shadow the deprecated free functions with handle-backed ones;
    /// `detect()` runs the SIMD path on capable hosts (bit-exact with
    /// scalar by contract, so every assertion below is backend-free).
    fn bfp_compress(s: &[Cplx; SC_PER_PRB]) -> BfpPrb {
        crate::DspKernels::detect().bfp_compress(s)
    }

    fn bfp_decompress(prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
        crate::DspKernels::detect().bfp_decompress(prb)
    }

    fn sample_prb(scale: f32) -> [Cplx; SC_PER_PRB] {
        let mut s = [Cplx::ZERO; SC_PER_PRB];
        for (i, v) in s.iter_mut().enumerate() {
            let phase = i as f32 * 0.7;
            *v = Cplx::new(scale * phase.cos(), scale * phase.sin());
        }
        s
    }

    #[test]
    fn complex_arithmetic() {
        let a = Cplx::new(1.0, 2.0);
        let b = Cplx::new(3.0, -1.0);
        assert_eq!(a + b, Cplx::new(4.0, 1.0));
        assert_eq!(a - b, Cplx::new(-2.0, 3.0));
        assert_eq!(a * b, Cplx::new(5.0, 5.0));
        assert_eq!(a.conj(), Cplx::new(1.0, -2.0));
        assert_eq!((-a), Cplx::new(-1.0, -2.0));
        assert!((a.norm_sq() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn bfp_roundtrip_error_bounded() {
        for scale in [0.1f32, 1.0, 3.0] {
            let s = sample_prb(scale);
            let prb = bfp_compress(&s);
            let d = bfp_decompress(&prb);
            for (orig, dec) in s.iter().zip(d.iter()) {
                let err = (*orig - *dec).abs();
                // Quantization step = 2^exp / 4096.
                let step = (1u32 << prb.exponent) as f32 / 4096.0;
                assert!(err <= step * 1.5, "err={err} step={step} scale={scale}");
            }
        }
    }

    #[test]
    fn bfp_snr_is_high() {
        // 9-bit mantissas should give > 40 dB SQNR on typical signals.
        let s = sample_prb(1.0);
        let prb = bfp_compress(&s);
        let d = bfp_decompress(&prb);
        let sig: f32 = s.iter().map(|x| x.norm_sq()).sum();
        let noise: f32 = s
            .iter()
            .zip(d.iter())
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum();
        let snr_db = 10.0 * (sig / noise.max(1e-12)).log10();
        assert!(snr_db > 40.0, "snr={snr_db}dB");
    }

    #[test]
    fn bfp_wire_roundtrip() {
        let s = sample_prb(0.8);
        let prb = bfp_compress(&s);
        let bytes = bfp_to_bytes(&prb);
        assert_eq!(bytes.len(), BfpPrb::WIRE_BYTES);
        let parsed = bfp_from_bytes(&bytes).unwrap();
        assert_eq!(parsed, prb);
    }

    #[test]
    fn bfp_handles_zero_block() {
        let s = [Cplx::ZERO; SC_PER_PRB];
        let prb = bfp_compress(&s);
        let d = bfp_decompress(&prb);
        assert!(d.iter().all(|x| x.norm_sq() == 0.0));
    }

    #[test]
    fn bfp_saturates_not_panics_on_huge_values() {
        let mut s = [Cplx::ZERO; SC_PER_PRB];
        s[0] = Cplx::new(1e9, -1e9);
        let prb = bfp_compress(&s);
        let _ = bfp_decompress(&prb);
    }

    #[test]
    fn bfp_from_short_buffer_is_none() {
        assert!(bfp_from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn bfp_negative_mantissa_sign_extension() {
        let mut s = [Cplx::ZERO; SC_PER_PRB];
        s[3] = Cplx::new(-0.5, 0.25);
        let prb = bfp_compress(&s);
        let bytes = bfp_to_bytes(&prb);
        let parsed = bfp_from_bytes(&bytes).unwrap();
        let d = bfp_decompress(&parsed);
        assert!((d[3].re + 0.5).abs() < 0.01);
        assert!((d[3].im - 0.25).abs() < 0.01);
    }
}
