//! SNR estimation and the per-UE moving-average filter.
//!
//! The moving-average SNR is the *other* piece of inter-TTI PHY soft
//! state the paper's §4.2 enumerates (besides HARQ buffers). The PHY
//! uses it to detect UE disconnection; Slingshot discards it during
//! migration and lets the filter reconverge (~25 ms in the paper).

use crate::channel::linear_to_db;
use crate::iq::Cplx;

/// Estimate SNR (dB) from received pilot symbols given the known
/// transmitted pilots: signal power from the correlation, noise power
/// from the residual.
pub fn estimate_snr_db(received: &[Cplx], pilots: &[Cplx]) -> f64 {
    assert_eq!(received.len(), pilots.len());
    assert!(!received.is_empty());
    // Least-squares complex gain h = <r, p> / <p, p>.
    let mut num = Cplx::ZERO;
    let mut den = 0.0f32;
    for (r, p) in received.iter().zip(pilots) {
        num += *r * p.conj();
        den += p.norm_sq();
    }
    let h = num.scale(1.0 / den.max(1e-12));
    let mut sig = 0.0f64;
    let mut noise = 0.0f64;
    for (r, p) in received.iter().zip(pilots) {
        let est = h * *p;
        sig += est.norm_sq() as f64;
        noise += (*r - est).norm_sq() as f64;
    }
    linear_to_db(sig / noise.max(1e-12))
}

/// Exponentially weighted moving average of per-slot SNR estimates —
/// the PHY's persistent SNR state.
#[derive(Debug, Clone)]
pub struct SnrFilter {
    alpha: f64,
    value_db: Option<f64>,
    updates: u64,
}

impl SnrFilter {
    /// `alpha` is the weight of each new sample (e.g. 0.1 ≈ ~10-slot
    /// memory; at 500 µs slots that converges in a few ms and fully
    /// settles in ~25 ms, matching the paper's reconvergence figure).
    pub fn new(alpha: f64) -> SnrFilter {
        assert!(alpha > 0.0 && alpha <= 1.0);
        SnrFilter {
            alpha,
            value_db: None,
            updates: 0,
        }
    }

    pub fn update(&mut self, sample_db: f64) -> f64 {
        let v = match self.value_db {
            None => sample_db,
            Some(prev) => prev + self.alpha * (sample_db - prev),
        };
        self.value_db = Some(v);
        self.updates += 1;
        v
    }

    /// Current filtered SNR; `default_db` before any update (a freshly
    /// migrated PHY reports this stale/default value until the filter
    /// reconverges — paper §4.2).
    pub fn value_or(&self, default_db: f64) -> f64 {
        self.value_db.unwrap_or(default_db)
    }

    pub fn is_converged(&self, min_updates: u64) -> bool {
        self.updates >= min_updates
    }

    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Discard state — the effect of PHY migration on this filter.
    pub fn reset(&mut self) {
        self.value_db = None;
        self.updates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use slingshot_sim::SimRng;

    fn pilots(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| {
                let phase = i as f32 * std::f32::consts::FRAC_PI_4;
                Cplx::new(phase.cos(), phase.sin())
            })
            .collect()
    }

    #[test]
    fn estimator_tracks_true_snr() {
        let mut ch = AwgnChannel::new(SimRng::new(1));
        for true_snr in [0.0f64, 10.0, 20.0] {
            let p = pilots(2048);
            let (rx, _) = ch.apply(&p, true_snr);
            let est = estimate_snr_db(&rx, &p);
            assert!((est - true_snr).abs() < 1.5, "true={true_snr} est={est}");
        }
    }

    #[test]
    fn estimator_handles_channel_gain() {
        let mut ch = AwgnChannel::new(SimRng::new(2));
        let p = pilots(2048);
        let scaled: Vec<Cplx> = p.iter().map(|s| s.scale(0.5)).collect();
        // SNR of the scaled signal at noise var 0.025 => 10*log10(0.25/0.025)=10dB.
        let (rx, _) = ch.apply(&scaled, 0.0); // noise var 1.0 relative to unit power
                                              // signal power 0.25, noise 1.0 → SNR = -6 dB.
        let est = estimate_snr_db(&rx, &p);
        assert!((est + 6.0).abs() < 1.5, "est={est}");
    }

    #[test]
    fn filter_converges_to_step() {
        let mut f = SnrFilter::new(0.1);
        for _ in 0..100 {
            f.update(20.0);
        }
        assert!((f.value_or(0.0) - 20.0).abs() < 0.01);
        // Step down: converges to the new level.
        let mut last = 0.0;
        for _ in 0..100 {
            last = f.update(5.0);
        }
        assert!((last - 5.0).abs() < 0.01);
    }

    #[test]
    fn filter_reconvergence_time() {
        // With alpha=0.1, after ~44 updates the residual is < 1% — at
        // 500 µs slots that's ~22 ms, matching the paper's ≈25 ms.
        let mut f = SnrFilter::new(0.1);
        f.update(0.0);
        let mut n = 0;
        loop {
            n += 1;
            let v = f.update(20.0);
            if (v - 20.0).abs() < 0.2 {
                break;
            }
            assert!(n < 100);
        }
        assert!((40..=50).contains(&n), "n={n}");
    }

    #[test]
    fn reset_discards_state() {
        let mut f = SnrFilter::new(0.2);
        f.update(15.0);
        assert!(f.is_converged(1));
        f.reset();
        assert!(!f.is_converged(1));
        assert_eq!(f.value_or(-3.0), -3.0);
    }

    #[test]
    fn first_update_jumps_to_sample() {
        let mut f = SnrFilter::new(0.05);
        assert_eq!(f.update(12.0), 12.0);
    }
}
