//! HARQ soft-combining buffers.
//!
//! The PHY retains the accumulated LLRs of transport blocks it failed to
//! decode; retransmissions are soft-combined into the same buffer, so
//! the effective SNR grows with every attempt. This is precisely the
//! inter-TTI state the paper's §4.2 argues can be *discarded* during PHY
//! migration: the post-migration decode then fails its CRC and the
//! higher layers retransmit — indistinguishable from a bad channel.

use std::collections::HashMap;

/// Maximum HARQ transmissions (1 original + 3 retransmissions), as in
/// the paper's description of 5G HARQ.
pub const MAX_HARQ_TX: u8 = 4;

/// Number of HARQ processes per UE (5G allows up to 16).
pub const HARQ_PROCESSES: u8 = 16;

/// Soft buffer for one (UE, HARQ process) pair.
#[derive(Debug, Clone)]
pub struct SoftBuffer {
    /// Accumulated mother-codeword LLRs.
    pub llrs: Vec<f32>,
    /// New-data indicator value of the transmission series being
    /// combined. A toggled NDI means a fresh transport block.
    pub ndi: bool,
    /// Number of transmissions combined so far.
    pub tx_count: u8,
}

/// Keyed collection of soft buffers, indexed by (RNTI, HARQ process id).
///
/// [`HarqPool::clear`] is what PHY migration effectively does to this
/// state — the secondary PHY starts with an empty pool.
#[derive(Debug, Clone, Default)]
pub struct HarqPool {
    buffers: HashMap<(u16, u8), SoftBuffer>,
}

impl HarqPool {
    pub fn new() -> HarqPool {
        HarqPool::default()
    }

    /// Begin or continue a HARQ series. If `ndi` differs from the stored
    /// buffer's (or no buffer exists), the buffer is reset for a new
    /// transport block of `n` mother-codeword bits. Returns the buffer.
    pub fn buffer_for(&mut self, rnti: u16, harq_id: u8, ndi: bool, n: usize) -> &mut SoftBuffer {
        let entry = self
            .buffers
            .entry((rnti, harq_id))
            .or_insert_with(|| SoftBuffer {
                llrs: vec![0.0; n],
                ndi,
                tx_count: 0,
            });
        if entry.ndi != ndi || entry.llrs.len() != n {
            entry.llrs.clear();
            entry.llrs.resize(n, 0.0);
            entry.ndi = ndi;
            entry.tx_count = 0;
        }
        entry.tx_count = entry.tx_count.saturating_add(1);
        entry
    }

    /// Drop the buffer after a successful decode.
    pub fn release(&mut self, rnti: u16, harq_id: u8) {
        self.buffers.remove(&(rnti, harq_id));
    }

    /// Number of in-flight (unacknowledged) soft buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Discard *all* soft state — what happens implicitly when PHY
    /// processing migrates to a fresh process (paper §4.2).
    pub fn clear(&mut self) {
        self.buffers.clear();
    }

    /// Approximate memory held by soft buffers, in bytes. Used to show
    /// why state transfer would be expensive.
    pub fn memory_bytes(&self) -> usize {
        self.buffers
            .values()
            .map(|b| b.llrs.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_series_on_ndi_toggle() {
        let mut pool = HarqPool::new();
        {
            let b = pool.buffer_for(10, 0, false, 8);
            b.llrs[0] = 5.0;
            assert_eq!(b.tx_count, 1);
        }
        {
            // Same NDI: buffer continues.
            let b = pool.buffer_for(10, 0, false, 8);
            assert_eq!(b.llrs[0], 5.0);
            assert_eq!(b.tx_count, 2);
        }
        {
            // Toggled NDI: fresh buffer.
            let b = pool.buffer_for(10, 0, true, 8);
            assert_eq!(b.llrs[0], 0.0);
            assert_eq!(b.tx_count, 1);
        }
    }

    #[test]
    fn distinct_processes_are_independent() {
        let mut pool = HarqPool::new();
        pool.buffer_for(10, 0, false, 4).llrs[0] = 1.0;
        pool.buffer_for(10, 1, false, 4).llrs[0] = 2.0;
        pool.buffer_for(11, 0, false, 4).llrs[0] = 3.0;
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.buffer_for(10, 0, false, 4).llrs[0], 1.0);
    }

    #[test]
    fn release_and_clear() {
        let mut pool = HarqPool::new();
        pool.buffer_for(1, 0, false, 4);
        pool.buffer_for(1, 1, false, 4);
        pool.release(1, 0);
        assert_eq!(pool.len(), 1);
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn resize_resets_buffer() {
        let mut pool = HarqPool::new();
        pool.buffer_for(1, 0, false, 4).llrs[0] = 9.0;
        let b = pool.buffer_for(1, 0, false, 8);
        assert_eq!(b.llrs.len(), 8);
        assert_eq!(b.llrs[0], 0.0);
    }

    #[test]
    fn memory_accounting() {
        let mut pool = HarqPool::new();
        pool.buffer_for(1, 0, false, 100);
        pool.buffer_for(1, 1, false, 50);
        assert_eq!(pool.memory_bytes(), 150 * 4);
    }
}
