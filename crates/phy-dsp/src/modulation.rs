//! Gray-mapped QAM modulation and max-log LLR demapping.
//!
//! Square constellations (QPSK, 16/64/256-QAM) are built per-axis from
//! Gray-coded PAM, normalized to unit average power, as in TS 38.211.
//! The demapper produces per-bit max-log LLRs with the convention that
//! **positive LLR means bit = 0**.
//!
//! Both directions are table-driven: the mapper indexes a per-modulation
//! symbol LUT (one entry per bit-group, built once per process), and the
//! demapper walks a precomputed `(level·scale, gray pattern)` table with
//! a level-outer loop so each candidate distance is computed once and
//! shared across the per-bit minima. Table entries are produced by the
//! same arithmetic as the original per-symbol computation, so mapped
//! symbols and LLRs are bit-identical to the scalar form.

use crate::bits::BitBuf;
use crate::iq::Cplx;
use std::sync::OnceLock;

/// Modulation orders used by the MCS table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modulation {
    Qpsk,
    Qam16,
    Qam64,
    Qam256,
}

impl Modulation {
    /// Bits per modulated symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Bits per axis (PAM order exponent).
    fn bits_per_axis(self) -> usize {
        self.bits_per_symbol() / 2
    }

    /// Per-axis amplitude normalization so E[|x|^2] = 1.
    fn axis_scale(self) -> f32 {
        // For M-PAM with levels ±1, ±3, …, ±(M-1): E[a^2] = (M^2 - 1)/3.
        // Two axes double it.
        let m = 1usize << self.bits_per_axis();
        let e = ((m * m - 1) as f32) / 3.0 * 2.0;
        1.0 / e.sqrt()
    }

    fn table_index(self) -> usize {
        match self {
            Modulation::Qpsk => 0,
            Modulation::Qam16 => 1,
            Modulation::Qam64 => 2,
            Modulation::Qam256 => 3,
        }
    }
}

/// Gray code of `v`.
fn gray(v: usize) -> usize {
    v ^ (v >> 1)
}

/// PAM level (…,-3,-1,1,3,…) for a Gray-coded bit group, matching the
/// 38.211 convention where bit 0 selects the sign.
fn pam_level(bits: &[u8]) -> i32 {
    // Interpret the bit group as an index whose Gray decoding yields the
    // level rank. We build a lookup: for each rank r (level = 2r+1-M),
    // the Gray code of r gives the bit pattern.
    let n = bits.len();
    let m = 1usize << n;
    let mut idx = 0usize;
    for &b in bits {
        idx = (idx << 1) | b as usize;
    }
    // Find rank whose gray code equals idx.
    for r in 0..m {
        if gray(r) == idx {
            return (2 * r as i32 + 1) - m as i32;
        }
    }
    unreachable!("gray code is a bijection")
}

/// Per-axis PAM level table: level for each rank, and the bit pattern.
fn pam_table(bits_per_axis: usize) -> Vec<(f32, usize)> {
    let m = 1usize << bits_per_axis;
    (0..m)
        .map(|r| (((2 * r + 1) as i32 - m as i32) as f32, gray(r)))
        .collect()
}

/// Precomputed per-modulation tables.
struct ModTables {
    /// Symbol for each packed bit-group: index bit `j` (LSB-first) is
    /// stream bit `j` of the symbol's chunk.
    symbols: Vec<Cplx>,
    /// Demap candidates per axis: (level × axis_scale, Gray pattern).
    levels: Vec<(f32, usize)>,
    /// For each axis bit, the level ranks whose Gray pattern has that
    /// bit clear / set — the demapper's candidate partition, in the
    /// same rank order as `levels`.
    bit_zeros: [Vec<u8>; 4],
    bit_ones: [Vec<u8>; 4],
}

fn mod_tables(modulation: Modulation) -> &'static ModTables {
    static TABLES: [OnceLock<ModTables>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    TABLES[modulation.table_index()].get_or_init(|| {
        let bps = modulation.bits_per_symbol();
        let half = modulation.bits_per_axis();
        let scale = modulation.axis_scale();
        let symbols = (0..1usize << bps)
            .map(|idx| {
                // Even stream positions map to I, odd to Q, exactly as
                // the scalar mapper sliced its chunk.
                let i_bits: Vec<u8> = (0..half).map(|k| ((idx >> (2 * k)) & 1) as u8).collect();
                let q_bits: Vec<u8> = (0..half)
                    .map(|k| ((idx >> (2 * k + 1)) & 1) as u8)
                    .collect();
                Cplx::new(
                    pam_level(&i_bits) as f32 * scale,
                    pam_level(&q_bits) as f32 * scale,
                )
            })
            .collect();
        let levels: Vec<(f32, usize)> = pam_table(half)
            .into_iter()
            .map(|(level, pattern)| (level * scale, pattern))
            .collect();
        let mut bit_zeros: [Vec<u8>; 4] = Default::default();
        let mut bit_ones: [Vec<u8>; 4] = Default::default();
        for (bit, (zeros, ones)) in bit_zeros.iter_mut().zip(bit_ones.iter_mut()).enumerate() {
            if bit >= half {
                break;
            }
            for (rank, &(_, pattern)) in levels.iter().enumerate() {
                if (pattern >> (half - 1 - bit)) & 1 == 0 {
                    zeros.push(rank as u8);
                } else {
                    ones.push(rank as u8);
                }
            }
        }
        ModTables {
            symbols,
            levels,
            bit_zeros,
            bit_ones,
        }
    })
}

/// Map a bit slice to constellation symbols. `bits.len()` must be a
/// multiple of `bits_per_symbol`.
pub fn modulate(bits: &[u8], modulation: Modulation) -> Vec<Cplx> {
    let bps = modulation.bits_per_symbol();
    assert!(
        bits.len().is_multiple_of(bps),
        "bit count {} not a multiple of {}",
        bits.len(),
        bps
    );
    let lut = &mod_tables(modulation).symbols;
    bits.chunks(bps)
        .map(|chunk| {
            let mut idx = 0usize;
            for (j, &b) in chunk.iter().enumerate() {
                idx |= (b as usize & 1) << j;
            }
            lut[idx]
        })
        .collect()
}

/// Map a packed bit buffer to constellation symbols, appending to `out`.
pub fn modulate_packed_into(bits: &BitBuf, modulation: Modulation, out: &mut Vec<Cplx>) {
    let bps = modulation.bits_per_symbol();
    assert!(
        bits.len().is_multiple_of(bps),
        "bit count {} not a multiple of {}",
        bits.len(),
        bps
    );
    let lut = &mod_tables(modulation).symbols;
    let n_syms = bits.len() / bps;
    out.reserve(n_syms);
    for s in 0..n_syms {
        out.push(lut[bits.get_bits(s * bps, bps) as usize]);
    }
}

/// Map a packed bit buffer to constellation symbols.
pub fn modulate_packed(bits: &BitBuf, modulation: Modulation) -> Vec<Cplx> {
    let mut out = Vec::new();
    modulate_packed_into(bits, modulation, &mut out);
    out
}

/// Scalar max-log demap, appending to `out` without clearing — the
/// bit-exactness oracle shared by the public entry point and the SIMD
/// tail handler.
pub(crate) fn demod_scalar_append(
    symbols: &[Cplx],
    modulation: Modulation,
    noise_var: f32,
    out: &mut Vec<f32>,
) {
    let half = modulation.bits_per_axis();
    let tables = mod_tables(modulation);
    let levels = &tables.levels;
    // Per-axis noise variance is half the complex variance.
    let sigma2 = (noise_var / 2.0).max(1e-9);
    out.reserve(symbols.len() * modulation.bits_per_symbol());
    let mut axis_llrs = [0.0f32; 8];
    let mut d2 = [0.0f32; 16];
    for s in symbols {
        for (axis, y) in [(0usize, s.re), (1usize, s.im)] {
            // max-log: LLR = (min over levels with bit=1 of d^2 -
            //                 min over levels with bit=0 of d^2) / (2 sigma^2)
            // One d^2 per candidate level, then per-bit minima over the
            // precomputed rank partition (same candidate sets in the
            // same rank order as the retired bit-outer scalar loop, so
            // every minimum — and thus every LLR — is bit-identical).
            for (dd, &(ls, _)) in d2.iter_mut().zip(levels.iter()) {
                let d = y - ls;
                *dd = d * d;
            }
            for bit in 0..half {
                let mut best0 = f32::INFINITY;
                for &rank in &tables.bit_zeros[bit] {
                    best0 = best0.min(d2[rank as usize]);
                }
                let mut best1 = f32::INFINITY;
                for &rank in &tables.bit_ones[bit] {
                    best1 = best1.min(d2[rank as usize]);
                }
                axis_llrs[axis + 2 * bit] = (best1 - best0) / (2.0 * sigma2);
            }
        }
        // Reassemble in the interleaved order used by `modulate`:
        // chunk[2k] is I-axis bit k, chunk[2k+1] is Q-axis bit k.
        for k in 0..half {
            out.push(axis_llrs[2 * k]); // I axis, bit k
            out.push(axis_llrs[1 + 2 * k]); // Q axis, bit k
        }
    }
}

/// Scalar max-log demap into a caller-provided buffer (cleared first).
pub(crate) fn demod_scalar_into(
    symbols: &[Cplx],
    modulation: Modulation,
    noise_var: f32,
    out: &mut Vec<f32>,
) {
    out.clear();
    demod_scalar_append(symbols, modulation, noise_var, out);
}

/// Max-log LLR demap into a caller-provided buffer (cleared first).
/// `noise_var` is the complex noise variance (per symbol, both axes).
/// Output has `bits_per_symbol` LLRs per input symbol; positive = bit 0
/// more likely.
#[deprecated(note = "use DspKernels::demodulate_llr_into — backend-dispatched, scalar-bit-exact")]
pub fn demodulate_llr_into(
    symbols: &[Cplx],
    modulation: Modulation,
    noise_var: f32,
    out: &mut Vec<f32>,
) {
    demod_scalar_into(symbols, modulation, noise_var, out);
}

/// Max-log LLR demap (allocating convenience wrapper).
#[deprecated(note = "use DspKernels::demodulate_llr — backend-dispatched, scalar-bit-exact")]
pub fn demodulate_llr(symbols: &[Cplx], modulation: Modulation, noise_var: f32) -> Vec<f32> {
    let mut out = Vec::new();
    demod_scalar_into(symbols, modulation, noise_var, &mut out);
    out
}

/// AVX2 max-log demapper: 8 symbols per iteration. Bit-identical to the
/// scalar oracle: per-level squared distances use the same subtract/
/// multiply per lane, the per-bit minima fold in the same rank order
/// with `_mm256_min_ps(d2, best)` (whose NaN/zero semantics match
/// `best.min(d2)` for these operands), and the final LLR uses a true
/// IEEE `vdivps` by the identical `2·sigma²` denominator. Tail symbols
/// (< 8) run through the scalar appender.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use super::{demod_scalar_append, mod_tables, Cplx, Modulation};
    use std::arch::x86_64::*;

    /// # Safety
    /// Requires AVX2 (caller checks `is_x86_feature_detected!`).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn demodulate_llr_into(
        symbols: &[Cplx],
        modulation: Modulation,
        noise_var: f32,
        out: &mut Vec<f32>,
    ) {
        let half = modulation.bits_per_axis();
        let tables = mod_tables(modulation);
        let levels = &tables.levels;
        let sigma2 = (noise_var / 2.0).max(1e-9);
        let denom = _mm256_set1_ps(2.0 * sigma2);
        out.clear();
        out.reserve(symbols.len() * modulation.bits_per_symbol());
        let chunks = symbols.len() / 8;
        // `Cplx` is repr(C), so symbols are interleaved re/im f32 words.
        let base = symbols.as_ptr() as *const f32;
        let inf = _mm256_set1_ps(f32::INFINITY);
        let mut d2 = [_mm256_setzero_ps(); 16];
        let mut lanes = [[0.0f32; 8]; 8]; // [axis + 2·bit][symbol]
        for c in 0..chunks {
            let v0 = _mm256_loadu_ps(base.add(16 * c));
            let v1 = _mm256_loadu_ps(base.add(16 * c + 8));
            // Deinterleave re/im: gather same-128-bit-lane pairs, then
            // pick even (re) / odd (im) words.
            let p0 = _mm256_permute2f128_ps::<0x20>(v0, v1);
            let p1 = _mm256_permute2f128_ps::<0x31>(v0, v1);
            let ys = [
                _mm256_shuffle_ps::<0b10_00_10_00>(p0, p1), // I axis, 8 symbols
                _mm256_shuffle_ps::<0b11_01_11_01>(p0, p1), // Q axis, 8 symbols
            ];
            for (axis, &y) in ys.iter().enumerate() {
                for (dd, &(ls, _)) in d2.iter_mut().zip(levels.iter()) {
                    let d = _mm256_sub_ps(y, _mm256_set1_ps(ls));
                    *dd = _mm256_mul_ps(d, d);
                }
                for bit in 0..half {
                    let mut best0 = inf;
                    for &rank in &tables.bit_zeros[bit] {
                        best0 = _mm256_min_ps(d2[rank as usize], best0);
                    }
                    let mut best1 = inf;
                    for &rank in &tables.bit_ones[bit] {
                        best1 = _mm256_min_ps(d2[rank as usize], best1);
                    }
                    let llr = _mm256_div_ps(_mm256_sub_ps(best1, best0), denom);
                    _mm256_storeu_ps(lanes[axis + 2 * bit].as_mut_ptr(), llr);
                }
            }
            // Re-interleave in modulate's bit order: chunk[2k] is I-axis
            // bit k, chunk[2k+1] is Q-axis bit k. `s` walks the lane
            // dimension across several `lanes` rows at once.
            #[allow(clippy::needless_range_loop)]
            for s in 0..8 {
                for k in 0..half {
                    out.push(lanes[2 * k][s]);
                    out.push(lanes[1 + 2 * k][s]);
                }
            }
        }
        demod_scalar_append(&symbols[chunks * 8..], modulation, noise_var, out);
    }
}

/// Hard-decide LLRs into bits (positive LLR = 0).
pub fn hard_decide(llrs: &[f32]) -> Vec<u8> {
    llrs.iter().map(|l| if *l >= 0.0 { 0 } else { 1 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::DspKernels;
    use slingshot_sim::SimRng;

    /// Demap through the dispatch handle with the host's best backend,
    /// so these oracles also exercise the SIMD path where available.
    fn demod(symbols: &[Cplx], modulation: Modulation, noise_var: f32) -> Vec<f32> {
        DspKernels::detect().demodulate_llr(symbols, modulation, noise_var)
    }

    const ALL: [Modulation; 4] = [
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
        Modulation::Qam256,
    ];

    fn random_bits(n: usize, rng: &mut SimRng) -> Vec<u8> {
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    /// The retired scalar mapper, kept as the equivalence reference.
    fn modulate_scalar(bits: &[u8], modulation: Modulation) -> Vec<Cplx> {
        let bps = modulation.bits_per_symbol();
        let half = bps / 2;
        let scale = modulation.axis_scale();
        bits.chunks(bps)
            .map(|chunk| {
                let i_bits: Vec<u8> = (0..half).map(|k| chunk[2 * k]).collect();
                let q_bits: Vec<u8> = (0..half).map(|k| chunk[2 * k + 1]).collect();
                Cplx::new(
                    pam_level(&i_bits) as f32 * scale,
                    pam_level(&q_bits) as f32 * scale,
                )
            })
            .collect()
    }

    /// The retired scalar demapper, kept as the equivalence reference.
    fn demodulate_llr_scalar(symbols: &[Cplx], modulation: Modulation, noise_var: f32) -> Vec<f32> {
        let half = modulation.bits_per_axis();
        let scale = modulation.axis_scale();
        let table = pam_table(half);
        let sigma2 = (noise_var / 2.0).max(1e-9);
        let mut out = Vec::with_capacity(symbols.len() * modulation.bits_per_symbol());
        for s in symbols {
            let mut axis_llrs = vec![0.0f32; 2 * half];
            for (axis, y) in [(0usize, s.re), (1usize, s.im)] {
                for bit in 0..half {
                    let mut best0 = f32::INFINITY;
                    let mut best1 = f32::INFINITY;
                    for (level, pattern) in &table {
                        let d = y - level * scale;
                        let d2 = d * d;
                        let bit_val = (pattern >> (half - 1 - bit)) & 1;
                        if bit_val == 0 {
                            best0 = best0.min(d2);
                        } else {
                            best1 = best1.min(d2);
                        }
                    }
                    axis_llrs[axis + 2 * bit] = (best1 - best0) / (2.0 * sigma2);
                }
            }
            for k in 0..half {
                out.push(axis_llrs[2 * k]);
                out.push(axis_llrs[1 + 2 * k]);
            }
        }
        out
    }

    #[test]
    fn lut_mapper_bit_identical_to_scalar() {
        let mut rng = SimRng::new(11);
        for m in ALL {
            let bits = random_bits(m.bits_per_symbol() * 257, &mut rng);
            let fast = modulate(&bits, m);
            let slow = modulate_scalar(&bits, m);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{m:?}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{m:?}");
            }
            let packed = modulate_packed(&BitBuf::from_bits(&bits), m);
            assert_eq!(packed.len(), slow.len());
            for (a, b) in packed.iter().zip(&slow) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "{m:?} packed");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "{m:?} packed");
            }
        }
    }

    #[test]
    fn lut_demapper_bit_identical_to_scalar() {
        let mut rng = SimRng::new(12);
        for m in ALL {
            let bits = random_bits(m.bits_per_symbol() * 129, &mut rng);
            let syms: Vec<Cplx> = modulate(&bits, m)
                .into_iter()
                .map(|s| s + Cplx::new(0.2 * rng.gaussian() as f32, 0.2 * rng.gaussian() as f32))
                .collect();
            for nv in [0.001f32, 0.1, 1.0] {
                let fast = demod(&syms, m, nv);
                let slow = demodulate_llr_scalar(&syms, m, nv);
                assert_eq!(fast.len(), slow.len());
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{m:?} nv={nv} llr {i}");
                }
            }
        }
    }

    #[test]
    fn unit_average_power() {
        let mut rng = SimRng::new(1);
        for m in ALL {
            let bits = random_bits(m.bits_per_symbol() * 4096, &mut rng);
            let syms = modulate(&bits, m);
            let p: f32 = syms.iter().map(|s| s.norm_sq()).sum::<f32>() / syms.len() as f32;
            assert!((p - 1.0).abs() < 0.05, "{:?} power={p}", m);
        }
    }

    #[test]
    fn noiseless_roundtrip_all_modulations() {
        let mut rng = SimRng::new(2);
        for m in ALL {
            let bits = random_bits(m.bits_per_symbol() * 256, &mut rng);
            let syms = modulate(&bits, m);
            let llrs = demod(&syms, m, 0.001);
            assert_eq!(hard_decide(&llrs), bits, "{:?}", m);
        }
    }

    #[test]
    fn gray_mapping_adjacent_symbols_differ_one_bit() {
        // For QPSK per-axis: only 1 bit per axis, trivially Gray. Check
        // 16-QAM: adjacent I levels differ in exactly one I bit.
        let m = Modulation::Qam16;
        let half = 2;
        let table = pam_table(half);
        let mut sorted = table.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in sorted.windows(2) {
            let diff = (w[0].1 ^ w[1].1).count_ones();
            assert_eq!(diff, 1, "{:?}", m);
        }
    }

    #[test]
    fn llr_magnitude_scales_with_noise() {
        let bits = vec![0, 0];
        let syms = modulate(&bits, Modulation::Qpsk);
        let llr_low_noise = demod(&syms, Modulation::Qpsk, 0.01);
        let llr_high_noise = demod(&syms, Modulation::Qpsk, 1.0);
        assert!(llr_low_noise[0] > llr_high_noise[0]);
        assert!(llr_low_noise[0] > 0.0 && llr_high_noise[0] > 0.0);
    }

    #[test]
    fn qpsk_known_constellation() {
        // Bits (0,0) -> both axes level +? With M=2 PAM: rank 0 -> level
        // -1, gray(0)=0; rank 1 -> +1, gray(1)=1. So bit 0 => -1.
        let s = modulate(&[0, 0], Modulation::Qpsk);
        let v = 1.0 / 2f32.sqrt();
        assert!((s[0].re + v).abs() < 1e-6);
        assert!((s[0].im + v).abs() < 1e-6);
        let s = modulate(&[1, 1], Modulation::Qpsk);
        assert!((s[0].re - v).abs() < 1e-6);
        assert!((s[0].im - v).abs() < 1e-6);
    }

    #[test]
    fn noisy_qpsk_mostly_correct_at_high_snr() {
        let mut rng = SimRng::new(3);
        let bits = random_bits(2000, &mut rng);
        let syms = modulate(&bits, Modulation::Qpsk);
        // 10 dB SNR => noise_var = 0.1.
        let noisy: Vec<Cplx> = syms
            .iter()
            .map(|s| {
                *s + Cplx::new(
                    (0.05f32).sqrt() * rng.gaussian() as f32,
                    (0.05f32).sqrt() * rng.gaussian() as f32,
                )
            })
            .collect();
        let llrs = demod(&noisy, Modulation::Qpsk, 0.1);
        let rx = hard_decide(&llrs);
        let errors = rx.iter().zip(&bits).filter(|(a, b)| a != b).count();
        // QPSK BER at 10 dB SNR ≈ Q(sqrt(10)) ≈ 8e-4.
        assert!(errors < 20, "errors={errors}");
    }

    #[test]
    #[should_panic]
    fn modulate_rejects_partial_symbol() {
        modulate(&[0, 1, 0], Modulation::Qpsk);
    }
}
