//! Bit/byte conversions (MSB-first), shared by the coding chain.

/// Expand bytes into bits, MSB first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1);
        }
    }
    out
}

/// Pack bits (MSB first) into bytes; the bit count must be a multiple
/// of 8.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, b| (acc << 1) | (b & 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn msb_first_order() {
        assert_eq!(bytes_to_bits(&[0b1000_0001]), vec![1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(bits_to_bytes(&[0, 1, 0, 0, 0, 0, 0, 0]), vec![0x40]);
    }

    #[test]
    #[should_panic]
    fn partial_byte_rejected() {
        bits_to_bytes(&[1, 0, 1]);
    }
}
