//! Bit/byte conversions (MSB-first) and the word-packed [`BitBuf`]
//! bitset the coding chain runs on.
//!
//! The transport-block chain historically shuttled bits as one byte per
//! bit (`Vec<u8>`), which made every kernel walk 8× more memory than
//! necessary. [`BitBuf`] packs the same logical stream into u64 limbs:
//! logical bit `i` lives in limb `i / 64` at bit position `i % 64`
//! (LSB-first within a limb), so a Gold-sequence word XOR or a 64-bit
//! copy touches 64 stream bits at once. The *stream* order is unchanged
//! — [`BitBuf::from_bytes_msb`] / [`BitBuf::to_bytes_msb`] keep the
//! MSB-first byte convention of [`bytes_to_bits`] / [`bits_to_bytes`],
//! which remain as the scalar reference implementations.

/// Expand bytes into bits, MSB first (scalar reference form).
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            out.push((b >> i) & 1);
        }
    }
    out
}

/// Pack bits (MSB first) into bytes; the bit count must be a multiple
/// of 8.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|c| c.iter().fold(0u8, |acc, b| (acc << 1) | (b & 1)))
        .collect()
}

/// A growable bitset packed into u64 limbs (logical bit `i` at limb
/// `i / 64`, bit `i % 64`). Invariant: bits at positions `>= len` in
/// the last limb are zero, so whole-limb operations (XOR, copy) can
/// run without per-bit masking except at the tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

impl BitBuf {
    pub fn new() -> BitBuf {
        BitBuf::default()
    }

    pub fn with_capacity(bits: usize) -> BitBuf {
        BitBuf {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset to empty, keeping the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// The packed limbs (bits `>= len` in the last limb are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable limb access for word-level kernels (scrambling). The
    /// caller must preserve the tail-zero invariant.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Append a single bit (0/1).
    #[inline]
    pub fn push(&mut self, bit: u8) {
        let off = self.len & 63;
        if off == 0 {
            self.words.push((bit & 1) as u64);
        } else {
            *self.words.last_mut().unwrap() |= ((bit & 1) as u64) << off;
        }
        self.len += 1;
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        ((self.words[i >> 6] >> (i & 63)) & 1) as u8
    }

    /// Append the low `n` bits of `w` (LSB-first, `n <= 64`).
    #[inline]
    pub fn push_word(&mut self, w: u64, n: usize) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let w = if n == 64 { w } else { w & ((1u64 << n) - 1) };
        let off = self.len & 63;
        if off == 0 {
            self.words.push(w);
        } else {
            *self.words.last_mut().unwrap() |= w << off;
            if off + n > 64 {
                self.words.push(w >> (64 - off));
            }
        }
        self.len += n;
    }

    /// Read `n` bits (`n <= 64`) starting at `pos`, LSB-first. Bits
    /// past the end read as zero.
    #[inline]
    pub fn get_bits(&self, pos: usize, n: usize) -> u64 {
        debug_assert!(n <= 64);
        let limb = pos >> 6;
        let off = pos & 63;
        let lo = self.words.get(limb).copied().unwrap_or(0) >> off;
        let v = if off == 0 {
            lo
        } else {
            lo | (self.words.get(limb + 1).copied().unwrap_or(0) << (64 - off))
        };
        if n == 64 {
            v
        } else {
            v & ((1u64 << n) - 1)
        }
    }

    /// Append `n` bits of `other` starting at `start` (word-at-a-time).
    pub fn append_range(&mut self, other: &BitBuf, start: usize, n: usize) {
        debug_assert!(start + n <= other.len);
        let mut pos = start;
        let mut rem = n;
        while rem > 0 {
            let take = rem.min(64);
            self.push_word(other.get_bits(pos, take), take);
            pos += take;
            rem -= take;
        }
    }

    /// Append all of `other`.
    pub fn append(&mut self, other: &BitBuf) {
        self.append_range(other, 0, other.len);
    }

    /// A new buffer holding bits `[start, start + n)`.
    pub fn slice(&self, start: usize, n: usize) -> BitBuf {
        let mut out = BitBuf::with_capacity(n);
        out.append_range(self, start, n);
        out
    }

    /// Pack bytes, MSB-first per byte (stream-order equivalent of
    /// [`bytes_to_bits`]).
    pub fn from_bytes_msb(bytes: &[u8]) -> BitBuf {
        let mut out = BitBuf::with_capacity(bytes.len() * 8);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = 0u64;
            for (j, &b) in c.iter().enumerate() {
                // Reversing the byte puts its MSB at the group's LSB —
                // stream bit 8k+0 is the byte's bit 7.
                w |= (b.reverse_bits() as u64) << (8 * j);
            }
            out.push_word(w, 64);
        }
        for &b in chunks.remainder() {
            out.push_word(b.reverse_bits() as u64, 8);
        }
        out
    }

    /// Unpack to bytes, MSB-first per byte (stream-order equivalent of
    /// [`bits_to_bytes`]). The bit count must be a multiple of 8.
    pub fn to_bytes_msb(&self) -> Vec<u8> {
        assert!(
            self.len.is_multiple_of(8),
            "bit count must be a multiple of 8"
        );
        let mut out = Vec::with_capacity(self.len / 8);
        let mut pos = 0;
        while pos < self.len {
            let take = (self.len - pos).min(64);
            let w = self.get_bits(pos, take);
            for j in 0..take / 8 {
                out.push(((w >> (8 * j)) as u8).reverse_bits());
            }
            pos += take;
        }
        out
    }

    /// Build from a byte-per-bit slice (values 0/1).
    pub fn from_bits(bits: &[u8]) -> BitBuf {
        let mut out = BitBuf::with_capacity(bits.len());
        for c in bits.chunks(64) {
            let mut w = 0u64;
            for (j, &b) in c.iter().enumerate() {
                w |= ((b & 1) as u64) << j;
            }
            out.push_word(w, c.len());
        }
        out
    }

    /// Expand to a byte-per-bit vector (values 0/1).
    pub fn to_bits(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        let mut pos = 0;
        while pos < self.len {
            let take = (self.len - pos).min(64);
            let w = self.get_bits(pos, take);
            for j in 0..take {
                out.push(((w >> j) & 1) as u8);
            }
            pos += take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn msb_first_order() {
        assert_eq!(bytes_to_bits(&[0b1000_0001]), vec![1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(bits_to_bytes(&[0, 1, 0, 0, 0, 0, 0, 0]), vec![0x40]);
    }

    #[test]
    #[should_panic]
    fn partial_byte_rejected() {
        bits_to_bytes(&[1, 0, 1]);
    }

    #[test]
    fn bitbuf_matches_scalar_byte_conversion() {
        let data: Vec<u8> = (0..=255).collect();
        let buf = BitBuf::from_bytes_msb(&data);
        assert_eq!(buf.len(), data.len() * 8);
        assert_eq!(buf.to_bits(), bytes_to_bits(&data));
        assert_eq!(buf.to_bytes_msb(), data);
    }

    #[test]
    fn bitbuf_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 127, 128, 200] {
            let bits: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 5 % 2) as u8).collect();
            let buf = BitBuf::from_bits(&bits);
            assert_eq!(buf.len(), n);
            assert_eq!(buf.to_bits(), bits, "n={n}");
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(buf.get(i), b, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn push_and_push_word_agree() {
        let bits: Vec<u8> = (0..300).map(|i| ((i * 31) % 7 % 2) as u8).collect();
        let mut a = BitBuf::new();
        for &b in &bits {
            a.push(b);
        }
        let b = BitBuf::from_bits(&bits);
        assert_eq!(a, b);
    }

    #[test]
    fn get_bits_crosses_limbs() {
        let bits: Vec<u8> = (0..200).map(|i| ((i / 3) % 2) as u8).collect();
        let buf = BitBuf::from_bits(&bits);
        for pos in [0usize, 1, 60, 63, 64, 100, 190] {
            for n in [1usize, 8, 13, 37, 64] {
                let take = n.min(200 - pos);
                let w = buf.get_bits(pos, take);
                for j in 0..take {
                    assert_eq!(
                        ((w >> j) & 1) as u8,
                        bits[pos + j],
                        "pos={pos} n={take} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_range_matches_slice_copy() {
        let bits: Vec<u8> = (0..500).map(|i| ((i * 13) % 11 % 2) as u8).collect();
        let buf = BitBuf::from_bits(&bits);
        for (start, n) in [(0usize, 500usize), (37, 100), (64, 64), (3, 1), (499, 1)] {
            let mut out = BitBuf::from_bits(&bits[..17]);
            out.append_range(&buf, start, n);
            let mut expect = bits[..17].to_vec();
            expect.extend_from_slice(&bits[start..start + n]);
            assert_eq!(out.to_bits(), expect, "start={start} n={n}");
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = BitBuf::from_bits(&[1; 1000]);
        let cap = buf.words.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.words.capacity(), cap);
    }

    #[test]
    fn tail_zero_invariant_after_push() {
        let mut buf = BitBuf::new();
        buf.push_word(!0u64, 37);
        assert_eq!(buf.words()[0] >> 37, 0);
        buf.push(1);
        assert_eq!(buf.words()[0] >> 38, 0);
    }
}
