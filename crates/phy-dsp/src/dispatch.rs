//! Runtime-dispatched DSP kernel handle.
//!
//! [`DspKernels`] is the single seam through which every hot kernel in
//! this crate is invoked: LDPC min-sum decode, max-log demapping, AWGN
//! generation and BFP pack/unpack. It is a tiny `Copy` handle wrapping
//! the engine-carried [`KernelConfig`], constructed once per deployment
//! (`DeploymentBuilder::kernel_backend(...)` → `Engine` → `Ctx`) and
//! handed down the call chain like the worker pool.
//!
//! ## Exactness contract
//!
//! The scalar implementations are the oracle. The AVX2 variants of
//! LDPC, demap and BFP are **bit-exact**: every f32/integer result is
//! identical to scalar, so backend selection can never change a golden
//! trace hash (`tests/kernel_equiv.rs` proves this per available
//! backend). AWGN is the one **tolerance-gated** kernel: its vector
//! form is a different (statistically identical) noise realization, so
//! it only engages when [`KernelConfig::tolerance`] is explicitly
//! raised above zero — the default keeps AWGN scalar on every backend.
//!
//! NEON is detected, parsed and reported, but its kernels currently
//! delegate to the scalar oracle (bit-exact by construction). The
//! dispatch methods below are the drop-in seam for a real NEON
//! implementation; this workspace's CI runs on x86-64, so shipping
//! untestable aarch64 intrinsics would be worse than honest delegation.

use crate::channel::AwgnChannel;
use crate::iq::{BfpPrb, Cplx, SC_PER_PRB};
use crate::ldpc::{LdpcCode, LdpcScratch};
use crate::modulation::Modulation;
use crate::scratch::default_scratch_pool;
use crate::tbchain::{self, TbDecodeOutcome, TbParams};
use slingshot_sim::{KernelBackend, KernelConfig, WorkerPool};

/// Backend-dispatched entry points for the four hot DSP kernels.
///
/// Cheap to copy (two words); capture it by value in worker closures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DspKernels {
    cfg: KernelConfig,
}

impl DspKernels {
    /// The best backend this host supports (bit-exact kernels only).
    pub fn detect() -> DspKernels {
        DspKernels {
            cfg: KernelConfig::detect(),
        }
    }

    /// The portable scalar oracle.
    pub fn scalar() -> DspKernels {
        DspKernels {
            cfg: KernelConfig::scalar(),
        }
    }

    /// A specific backend; falls back to scalar if the host cannot
    /// execute it (same results either way, by the exactness contract).
    pub fn forced(backend: KernelBackend) -> DspKernels {
        DspKernels {
            cfg: KernelConfig::forced(backend),
        }
    }

    /// Honor the `KERNEL_BACKEND` env override, else detect.
    pub fn from_env() -> DspKernels {
        DspKernels {
            cfg: KernelConfig::from_env(),
        }
    }

    /// Wrap an engine-carried config. The backend is re-validated
    /// against this host (configs may be built from parsed strings or
    /// cross a process boundary), falling back to scalar if needed.
    pub fn from_config(cfg: KernelConfig) -> DspKernels {
        DspKernels {
            cfg: KernelConfig::forced(cfg.backend).with_tolerance(cfg.tolerance),
        }
    }

    /// Permit tolerance-gated SIMD variants (currently: AWGN) up to
    /// `tol` relative deviation. Opts out of byte-identical traces.
    pub fn with_tolerance(mut self, tol: f32) -> DspKernels {
        self.cfg.tolerance = tol;
        self
    }

    pub fn backend(&self) -> KernelBackend {
        self.cfg.backend
    }

    pub fn config(&self) -> KernelConfig {
        self.cfg
    }

    /// Stable lowercase backend name for reports and baseline keys.
    pub fn name(&self) -> &'static str {
        self.cfg.backend.name()
    }

    #[inline]
    fn use_avx2(&self) -> bool {
        self.cfg.backend == KernelBackend::Avx2
    }

    /// LDPC normalized min-sum decode (bit-exact across backends). See
    /// [`LdpcCode::decode_into`] for semantics.
    pub fn ldpc_decode_into(
        &self,
        code: &LdpcCode,
        channel_llrs: &[f32],
        max_iters: usize,
        scratch: &mut LdpcScratch,
    ) -> (bool, usize) {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() {
            // SAFETY: backend is only Avx2 when the feature was detected.
            return unsafe { code.decode_into_avx2(channel_llrs, max_iters, scratch) };
        }
        code.decode_into(channel_llrs, max_iters, scratch)
    }

    /// Max-log LLR demap into `out` (cleared first; bit-exact across
    /// backends). Positive LLR means bit 0.
    pub fn demodulate_llr_into(
        &self,
        symbols: &[Cplx],
        modulation: Modulation,
        noise_var: f32,
        out: &mut Vec<f32>,
    ) {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() {
            // SAFETY: backend is only Avx2 when the feature was detected.
            unsafe {
                crate::modulation::avx2::demodulate_llr_into(symbols, modulation, noise_var, out)
            };
            return;
        }
        crate::modulation::demod_scalar_into(symbols, modulation, noise_var, out);
    }

    /// Max-log LLR demap (allocating convenience wrapper).
    pub fn demodulate_llr(
        &self,
        symbols: &[Cplx],
        modulation: Modulation,
        noise_var: f32,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.demodulate_llr_into(symbols, modulation, noise_var, &mut out);
        out
    }

    /// BFP-compress one PRB of samples (bit-exact across backends).
    pub fn bfp_compress(&self, samples: &[Cplx; SC_PER_PRB]) -> BfpPrb {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() {
            // SAFETY: backend is only Avx2 when the feature was detected.
            return unsafe { crate::iq::avx2::bfp_compress(samples) };
        }
        crate::iq::bfp_compress_scalar(samples)
    }

    /// Decompress one BFP PRB (bit-exact across backends).
    pub fn bfp_decompress(&self, prb: &BfpPrb) -> [Cplx; SC_PER_PRB] {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() {
            // SAFETY: backend is only Avx2 when the feature was detected.
            return unsafe { crate::iq::avx2::bfp_decompress(prb) };
        }
        crate::iq::bfp_decompress_scalar(prb)
    }

    /// AWGN at `snr_db` (serial). Tolerance-gated: the vector variant
    /// is a different noise realization, so it only runs when this
    /// handle's tolerance is above zero; otherwise scalar, regardless
    /// of backend.
    pub fn awgn_apply(
        &self,
        channel: &mut AwgnChannel,
        symbols: &[Cplx],
        snr_db: f64,
    ) -> (Vec<Cplx>, f32) {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() && self.cfg.tolerance > 0.0 {
            return channel.apply_avx2(symbols, snr_db);
        }
        channel.apply(symbols, snr_db)
    }

    /// AWGN at `snr_db`, chunk-parallel over `pool` (worker-count
    /// independent). Same tolerance gating as [`DspKernels::awgn_apply`].
    pub fn awgn_apply_with(
        &self,
        channel: &mut AwgnChannel,
        pool: &WorkerPool,
        symbols: &[Cplx],
        snr_db: f64,
    ) -> (Vec<Cplx>, f32) {
        #[cfg(target_arch = "x86_64")]
        if self.use_avx2() && self.cfg.tolerance > 0.0 {
            return channel.apply_with_avx2(pool, symbols, snr_db);
        }
        channel.apply_with(pool, symbols, snr_db)
    }

    /// Encode a transport block (serial, thread-local scratch).
    pub fn encode_tb(&self, payload: &[u8], p: &TbParams) -> Vec<Cplx> {
        tbchain::encode_tb_with(
            *self,
            &WorkerPool::serial(),
            &default_scratch_pool(),
            payload,
            p,
        )
    }

    /// Decode a transport block (serial, thread-local scratch),
    /// soft-combining into the caller-owned HARQ accumulator.
    pub fn decode_tb(
        &self,
        acc: &mut [f32],
        rx_symbols: &[Cplx],
        noise_var: f32,
        payload_bytes: usize,
        p: &TbParams,
    ) -> TbDecodeOutcome {
        tbchain::decode_tb_with(
            *self,
            &WorkerPool::serial(),
            &default_scratch_pool(),
            acc,
            rx_symbols,
            noise_var,
            payload_bytes,
            p,
        )
    }
}

impl Default for DspKernels {
    /// Engine default: `KERNEL_BACKEND` env override, else detect.
    fn default() -> DspKernels {
        DspKernels::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_sim::SimRng;

    #[test]
    fn forced_backend_validates_availability() {
        for b in [KernelBackend::Avx2, KernelBackend::Neon] {
            let k = DspKernels::forced(b);
            assert!(k.backend().available());
            if !b.available() {
                assert_eq!(k.backend(), KernelBackend::Scalar);
            }
        }
        assert_eq!(DspKernels::scalar().name(), "scalar");
    }

    #[test]
    fn from_config_revalidates() {
        // A hand-built config naming an unavailable backend must land
        // on scalar with the tolerance preserved.
        let cfg = KernelConfig {
            backend: KernelBackend::Neon,
            tolerance: 0.25,
        };
        let k = DspKernels::from_config(cfg);
        assert!(k.backend().available());
        assert_eq!(k.config().tolerance, 0.25);
    }

    #[test]
    fn demap_bit_exact_across_available_backends() {
        let mut rng = SimRng::new(77);
        let syms: Vec<Cplx> = (0..97)
            .map(|_| Cplx::new(rng.gaussian() as f32 * 0.9, rng.gaussian() as f32 * 0.9))
            .collect();
        let oracle = DspKernels::scalar().demodulate_llr(&syms, Modulation::Qam64, 0.2);
        for b in KernelBackend::all_available() {
            let got = DspKernels::forced(b).demodulate_llr(&syms, Modulation::Qam64, 0.2);
            assert_eq!(oracle.len(), got.len());
            for (i, (a, g)) in oracle.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), g.to_bits(), "backend {b} llr {i}");
            }
        }
    }

    #[test]
    fn bfp_bit_exact_across_available_backends() {
        let mut rng = SimRng::new(78);
        for trial in 0..50 {
            let mut prb = [Cplx::ZERO; SC_PER_PRB];
            for s in prb.iter_mut() {
                let amp = if trial % 5 == 0 { 3000.0 } else { 1.5 };
                *s = Cplx::new(rng.gaussian() as f32 * amp, rng.gaussian() as f32 * amp);
            }
            let oracle = DspKernels::scalar().bfp_compress(&prb);
            for b in KernelBackend::all_available() {
                let k = DspKernels::forced(b);
                let got = k.bfp_compress(&prb);
                assert_eq!(oracle.exponent, got.exponent, "backend {b}");
                assert_eq!(oracle.mantissas, got.mantissas, "backend {b}");
                let back_oracle = DspKernels::scalar().bfp_decompress(&oracle);
                let back = k.bfp_decompress(&got);
                for (a, g) in back_oracle.iter().zip(&back) {
                    assert_eq!(a.re.to_bits(), g.re.to_bits(), "backend {b}");
                    assert_eq!(a.im.to_bits(), g.im.to_bits(), "backend {b}");
                }
            }
        }
    }

    #[test]
    fn awgn_stays_scalar_without_tolerance() {
        // Same RNG seed: with tolerance 0 every backend must produce
        // the scalar byte-identical realization.
        let syms = vec![Cplx::new(0.7, -0.7); 1000];
        let oracle = {
            let mut ch = AwgnChannel::new(SimRng::new(5));
            DspKernels::scalar().awgn_apply(&mut ch, &syms, 8.0).0
        };
        for b in KernelBackend::all_available() {
            let mut ch = AwgnChannel::new(SimRng::new(5));
            let got = DspKernels::forced(b).awgn_apply(&mut ch, &syms, 8.0).0;
            assert_eq!(oracle, got, "backend {b}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn awgn_tolerance_engages_simd_realization() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // skip-clean
        }
        let syms = vec![Cplx::new(0.7, -0.7); 1000];
        let mk = || AwgnChannel::new(SimRng::new(5));
        let scalar = DspKernels::scalar().awgn_apply(&mut mk(), &syms, 8.0).0;
        let simd = DspKernels::forced(KernelBackend::Avx2)
            .with_tolerance(1e-3)
            .awgn_apply(&mut mk(), &syms, 8.0)
            .0;
        assert_ne!(scalar, simd, "tolerance should switch realizations");
        // Still the right noise power.
        let p: f32 = simd
            .iter()
            .zip(&syms)
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum::<f32>()
            / syms.len() as f32;
        let nv = 10f32.powf(-0.8);
        assert!((p - nv).abs() < 0.03 * nv.max(1.0), "p={p} nv={nv}");
    }
}
