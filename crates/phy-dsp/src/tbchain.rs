//! The full transport-block processing chain, tying the substrate
//! together exactly as a 5G PHY does on PUSCH/PDSCH:
//!
//! ```text
//! tx:  payload → CRC-24A → segmentation → LDPC encode → rate match (RV)
//!        → scramble (Gold) → QAM modulate → symbols
//! rx:  symbols → LLR demap → descramble → rate recover (soft-combine
//!        into the HARQ buffer) → LDPC decode (min-sum, N iterations)
//!        → CRC check → payload | failure
//! ```
//!
//! The HARQ soft buffer is passed in by the caller ([`crate::harq`]),
//! which is what lets the PHY — and Slingshot's migration — own or
//! discard that state explicitly.
//!
//! Bits move through the chain packed 64 per word ([`BitBuf`]), the
//! scrambling sequence comes from the per-thread
//! [`cached_sequence`] word cache, and per-block jobs borrow their
//! working buffers from a [`DspScratchPool`] so steady-state slots
//! allocate almost nothing. All of it is bit-identical to the original
//! byte-per-bit chain — same bits, same f32 operations in the same
//! order — so traces and HARQ accumulators are unchanged.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::bits::BitBuf;
use crate::crc::{attach_crc24a, check_crc24a};
use crate::dispatch::DspKernels;
use crate::iq::Cplx;
use crate::ldpc::LdpcCode;
use crate::modulation::{modulate_packed, Modulation};
use crate::ratematch::{rate_match_packed, rate_recover};
use crate::scramble::{cached_sequence, descramble_llrs_packed, scramble_packed, GoldSequence};
use crate::scratch::DspScratchPool;
use slingshot_sim::WorkerPool;

/// Maximum information bits per LDPC code block (including the share of
/// the TB CRC). Larger transport blocks are segmented.
pub const MAX_CB_INFO_BITS: usize = 1024;

/// Default min-sum iteration budget (the "FEC iterations" knob).
pub const DEFAULT_FEC_ITERATIONS: usize = 8;

/// A cached LDPC code plus its transmission (interleave) order.
type CachedCode = (Rc<LdpcCode>, Rc<Vec<u32>>);

thread_local! {
    static CODE_CACHE: RefCell<HashMap<usize, CachedCode>> = RefCell::new(HashMap::new());
}

/// The LDPC code and its cached transmission (interleave) order for
/// information length `k`.
fn code_for(k: usize) -> CachedCode {
    CODE_CACHE.with(|c| {
        c.borrow_mut()
            .entry(k)
            .or_insert_with(|| {
                let code = LdpcCode::new(k);
                let order = tx_order(k, code.n()).iter().map(|&i| i as u32).collect();
                (Rc::new(code), Rc::new(order))
            })
            .clone()
    })
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Transmission order for the circular buffer: systematic bits first,
/// then parity bits in a strided (coprime-step) order. The stride
/// spreads punctured parity positions across the staircase chain —
/// contiguous tail puncturing of degree-2 parity variables would wreck
/// the code's waterfall (the same reason 5G's circular buffer is built
/// over a structured interleave rather than the raw codeword).
fn tx_order(k: usize, n: usize) -> Vec<usize> {
    let m = n - k;
    let mut stride = ((m as f64 * 0.618) as usize) | 1;
    while gcd(stride, m) != 1 {
        stride += 2;
    }
    let mut order = Vec::with_capacity(n);
    order.extend(0..k);
    for i in 0..m {
        order.push(k + (i * stride) % m);
    }
    order
}

/// Per-transmission parameters of a transport block.
#[derive(Debug, Clone)]
pub struct TbParams {
    pub modulation: Modulation,
    /// Total coded bits available on the air for this TB (PRBs × 12
    /// subcarriers × data symbols × bits/symbol). Must be a multiple of
    /// bits-per-symbol.
    pub e_bits: usize,
    pub rnti: u16,
    pub cell_id: u16,
    /// Redundancy version of this transmission (0..4).
    pub rv: u8,
    /// Min-sum decoder iteration budget.
    pub fec_iterations: usize,
}

/// Deterministic segmentation of `total_bits` info bits into code
/// blocks of at most [`MAX_CB_INFO_BITS`], each at least 8 bits.
pub fn segment_sizes(total_bits: usize) -> Vec<usize> {
    assert!(total_bits >= 8);
    let nblocks = total_bits.div_ceil(MAX_CB_INFO_BITS);
    let base = total_bits / nblocks;
    let rem = total_bits % nblocks;
    (0..nblocks)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// Length of the concatenated mother-codeword HARQ buffer for a payload
/// of `payload_bytes` (payload + 24-bit TB CRC, all code blocks).
pub fn mother_buffer_len(payload_bytes: usize) -> usize {
    let total_bits = (payload_bytes + 3) * 8;
    segment_sizes(total_bits).iter().map(|k| 3 * k).sum()
}

/// Split the per-TB coded-bit budget across code blocks proportionally
/// to their info sizes (exactly consuming `e_bits`).
fn e_split(e_bits: usize, ks: &[usize]) -> Vec<usize> {
    let total_k: usize = ks.iter().sum();
    let mut out = Vec::with_capacity(ks.len());
    let mut assigned = 0usize;
    let mut acc_k = 0usize;
    for &k in ks {
        acc_k += k;
        let target = e_bits * acc_k / total_k;
        out.push(target - assigned);
        assigned = target;
    }
    out
}

/// Encode a transport block into modulated symbols (serial, thread-local
/// scratch).
#[deprecated(note = "use DspKernels::encode_tb — backend-dispatched, scalar-bit-exact")]
pub fn encode_tb(payload: &[u8], p: &TbParams) -> Vec<Cplx> {
    DspKernels::scalar().encode_tb(payload, p)
}

/// Per-code-block unit of encode work, prepared serially so jobs are
/// self-contained (owned packed info bits and the block's bit offset
/// into the codeword / scrambling sequence).
struct EncodeBlock {
    k: usize,
    e: usize,
    offset_e: usize,
    bits: BitBuf,
}

/// Encode a transport block, fanning per-code-block work (LDPC encode,
/// rate match, scramble) out across `pool` with working buffers drawn
/// from `scratch`. Bit-identical to the serial path for any worker
/// count: blocks are independent, scrambling offsets are fixed in
/// serial prepare order, and results merge in block order.
///
/// `_kernels` keeps the entry point uniform with the decode chain; the
/// encode path is integer/LUT work with no SIMD variant today, so every
/// backend runs the same code.
pub fn encode_tb_with(
    _kernels: DspKernels,
    pool: &WorkerPool,
    scratch: &DspScratchPool,
    payload: &[u8],
    p: &TbParams,
) -> Vec<Cplx> {
    let bps = p.modulation.bits_per_symbol();
    assert!(
        p.e_bits.is_multiple_of(bps),
        "e_bits {} not a multiple of bits/symbol {}",
        p.e_bits,
        bps
    );
    let framed = attach_crc24a(payload);
    let bits = BitBuf::from_bytes_msb(&framed);
    let ks = segment_sizes(bits.len());
    let es = e_split(p.e_bits, &ks);
    let seq = cached_sequence(GoldSequence::c_init_data(p.rnti, p.cell_id), p.e_bits);

    let mut blocks = Vec::with_capacity(ks.len());
    let mut offset = 0;
    let mut offset_e = 0;
    for (&k, &e) in ks.iter().zip(&es) {
        blocks.push(EncodeBlock {
            k,
            e,
            offset_e,
            bits: bits.slice(offset, k),
        });
        offset_e += e;
        offset += k;
    }

    let rv = p.rv;
    let segs = pool.run(
        blocks
            .into_iter()
            .map(|b| {
                let seq = Arc::clone(&seq);
                let spool = scratch.clone();
                move || {
                    let (code, order) = code_for(b.k);
                    let mut s = spool.take();
                    s.bits_a.clear();
                    code.encode_packed(&b.bits, &mut s.bits_a);
                    // Permute into transmission order: the systematic
                    // prefix is the identity, the parity part is strided.
                    s.bits_b.clear();
                    s.bits_b.append_range(&s.bits_a, 0, b.k);
                    for &idx in &order[b.k..] {
                        s.bits_b.push(s.bits_a.get(idx as usize));
                    }
                    let mut seg = BitBuf::with_capacity(b.e);
                    rate_match_packed(&s.bits_b, b.e, rv, &mut seg);
                    scramble_packed(&mut seg, &seq, b.offset_e);
                    spool.put(s);
                    seg
                }
            })
            .collect::<Vec<_>>(),
    );

    let mut tx_bits = BitBuf::with_capacity(p.e_bits);
    for seg in &segs {
        tx_bits.append(seg);
    }
    modulate_packed(&tx_bits, p.modulation)
}

/// Outcome of a transport-block decode attempt.
#[derive(Debug, Clone)]
pub struct TbDecodeOutcome {
    /// Decoded payload if the TB CRC checked out.
    pub payload: Option<Vec<u8>>,
    /// Total min-sum iterations spent across code blocks — the PHY's
    /// compute-cost proxy for this TB.
    pub ldpc_iterations: usize,
    /// Whether every code block satisfied its LDPC parity checks.
    pub all_parity_ok: bool,
    /// Wall-clock nanoseconds spent inside the LDPC min-sum decoder
    /// across code blocks (host-dependent; for profiling only — never
    /// feed it back into simulation logic).
    pub ldpc_ns: u64,
}

/// Decode a transport block from received symbols, soft-combining into
/// the caller-owned HARQ accumulator `acc` (length
/// [`mother_buffer_len`] for this payload size; zeroed for a fresh TB).
#[deprecated(note = "use DspKernels::decode_tb — backend-dispatched, scalar-bit-exact")]
pub fn decode_tb(
    acc: &mut [f32],
    rx_symbols: &[Cplx],
    noise_var: f32,
    payload_bytes: usize,
    p: &TbParams,
) -> TbDecodeOutcome {
    DspKernels::scalar().decode_tb(acc, rx_symbols, noise_var, payload_bytes, p)
}

/// Per-code-block unit of decode work: the block's symbol window, its
/// bit offset into the codeword / scrambling sequence, and its HARQ
/// accumulator segment (moved out and merged back after the batch).
struct DecodeBlock {
    k: usize,
    e: usize,
    /// Bits of the first symbol in the window that belong to the
    /// previous block (symbol-boundary overlap).
    lead: usize,
    offset_e: usize,
    syms: Vec<Cplx>,
    seg: Vec<f32>,
}

/// Decode a transport block, fanning per-code-block work (LLR demap,
/// descramble, rate recover, LDPC decode) out across `pool` with
/// working buffers drawn from `scratch`. The HARQ accumulator is split
/// into per-block segments in serial prepare order and merged back in
/// block order, so the result — including every f32 operation — is
/// identical to the serial path for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn decode_tb_with(
    kernels: DspKernels,
    pool: &WorkerPool,
    scratch: &DspScratchPool,
    acc: &mut [f32],
    rx_symbols: &[Cplx],
    noise_var: f32,
    payload_bytes: usize,
    p: &TbParams,
) -> TbDecodeOutcome {
    let bps = p.modulation.bits_per_symbol();
    let total_bits = (payload_bytes + 3) * 8;
    let ks = segment_sizes(total_bits);
    let es = e_split(p.e_bits, &ks);
    debug_assert_eq!(acc.len(), ks.iter().map(|k| 3 * k).sum::<usize>());
    let seq = cached_sequence(GoldSequence::c_init_data(p.rnti, p.cell_id), p.e_bits);

    let mut blocks = Vec::with_capacity(ks.len());
    let mut llr_off = 0;
    let mut acc_off = 0;
    for (&k, &e) in ks.iter().zip(&es) {
        let n = 3 * k;
        // The block's coded bits [llr_off, llr_off+e) live in symbols
        // [s0, s1); the first symbol may straddle the block boundary.
        let s0 = (llr_off / bps).min(rx_symbols.len());
        let s1 = (llr_off + e).div_ceil(bps).min(rx_symbols.len());
        blocks.push(DecodeBlock {
            k,
            e,
            lead: llr_off - (llr_off / bps) * bps,
            offset_e: llr_off,
            syms: rx_symbols[s0..s1].to_vec(),
            seg: acc[acc_off..acc_off + n].to_vec(),
        });
        llr_off += e;
        acc_off += n;
    }

    let rv = p.rv;
    let fec_iterations = p.fec_iterations;
    let modulation = p.modulation;
    let results = pool.run(
        blocks
            .into_iter()
            .map(|mut b| {
                let seq = Arc::clone(&seq);
                let spool = scratch.clone();
                move || {
                    let (code, order) = code_for(b.k);
                    let mut s = spool.take();
                    kernels.demodulate_llr_into(&b.syms, modulation, noise_var, &mut s.demod_llrs);
                    // Trim the lead bits belonging to the previous block
                    // and pad missing tail symbols (lost fronthaul
                    // packets) as erasures.
                    let lo = b.lead.min(s.demod_llrs.len());
                    let hi = (b.lead + b.e).min(s.demod_llrs.len());
                    s.llr_e.clear();
                    s.llr_e.extend_from_slice(&s.demod_llrs[lo..hi]);
                    s.llr_e.resize(b.e, 0.0);
                    descramble_llrs_packed(&mut s.llr_e, &seq, b.offset_e);
                    let n = 3 * b.k;
                    // The HARQ accumulator lives in transmission
                    // (interleaved) order; de-interleave into the
                    // decoder's codeword view.
                    rate_recover(&mut b.seg, &s.llr_e, rv);
                    s.cw_llrs.clear();
                    s.cw_llrs.resize(n, 0.0);
                    for (pos, &cw_idx) in order.iter().enumerate() {
                        s.cw_llrs[cw_idx as usize] = b.seg[pos];
                    }
                    let ldpc_start = std::time::Instant::now();
                    let (parity_ok, iters) =
                        kernels.ldpc_decode_into(&code, &s.cw_llrs, fec_iterations, &mut s.ldpc);
                    let ldpc_ns = ldpc_start.elapsed().as_nanos() as u64;
                    let info = BitBuf::from_bits(&s.ldpc.hard[..b.k]);
                    spool.put(s);
                    (b.seg, info, iters, parity_ok, ldpc_ns)
                }
            })
            .collect::<Vec<_>>(),
    );

    let mut info_bits = BitBuf::with_capacity(total_bits);
    let mut iterations = 0;
    let mut all_parity_ok = true;
    let mut ldpc_ns = 0u64;
    let mut acc_off = 0;
    for (seg, info, iters, parity_ok, block_ldpc_ns) in results {
        acc[acc_off..acc_off + seg.len()].copy_from_slice(&seg);
        acc_off += seg.len();
        info_bits.append(&info);
        iterations += iters;
        all_parity_ok &= parity_ok;
        ldpc_ns += block_ldpc_ns;
    }
    let bytes = info_bits.to_bytes_msb();
    let payload = check_crc24a(&bytes).map(|p| p.to_vec());
    TbDecodeOutcome {
        payload,
        ldpc_iterations: iterations,
        all_parity_ok,
        ldpc_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::AwgnChannel;
    use slingshot_sim::SimRng;

    /// Chain entry points through the dispatch handle with the host's
    /// best backend — these shadow the deprecated free functions, so
    /// the whole test battery exercises the SIMD path where available
    /// (bit-exact with scalar by the dispatch contract).
    fn encode_tb(payload: &[u8], p: &TbParams) -> Vec<Cplx> {
        DspKernels::detect().encode_tb(payload, p)
    }

    fn decode_tb(
        acc: &mut [f32],
        rx_symbols: &[Cplx],
        noise_var: f32,
        payload_bytes: usize,
        p: &TbParams,
    ) -> TbDecodeOutcome {
        DspKernels::detect().decode_tb(acc, rx_symbols, noise_var, payload_bytes, p)
    }

    fn params(e_bits: usize, rv: u8) -> TbParams {
        TbParams {
            modulation: Modulation::Qam16,
            e_bits,
            rnti: 0x4601,
            cell_id: 42,
            rv,
            fec_iterations: DEFAULT_FEC_ITERATIONS,
        }
    }

    fn payload(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
    }

    #[test]
    fn segment_sizes_respect_limits() {
        for total in [8usize, 100, 1024, 1025, 5000, 30_000] {
            let ks = segment_sizes(total);
            assert_eq!(ks.iter().sum::<usize>(), total);
            assert!(ks.iter().all(|k| *k <= MAX_CB_INFO_BITS && *k >= 8));
            let max = ks.iter().max().unwrap();
            let min = ks.iter().min().unwrap();
            assert!(max - min <= 1, "balanced: {ks:?}");
        }
    }

    #[test]
    fn e_split_exact() {
        let ks = [100, 100, 50];
        let es = e_split(1000, &ks);
        assert_eq!(es.iter().sum::<usize>(), 1000);
        assert_eq!(es.len(), 3);
        assert!(es[2] < es[0]);
    }

    #[test]
    fn clean_channel_roundtrip_single_block() {
        let data = payload(40, 1);
        // (40+3)*8 = 344 info bits; rate 1/2 => ~688 coded bits, round
        // to multiple of 4 (16-QAM).
        let p = params(688, 0);
        let syms = encode_tb(&data, &p);
        assert_eq!(syms.len(), 688 / 4);
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &syms, 0.001, data.len(), &p);
        assert_eq!(out.payload.as_deref(), Some(&data[..]));
        assert!(out.all_parity_ok);
    }

    #[test]
    fn clean_channel_roundtrip_multi_block() {
        let data = payload(400, 2); // (400+3)*8 = 3224 bits → 4 blocks
        let p = params(6448, 0);
        let syms = encode_tb(&data, &p);
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &syms, 0.001, data.len(), &p);
        assert_eq!(out.payload.as_deref(), Some(&data[..]));
    }

    #[test]
    fn noisy_channel_decodes_at_reasonable_snr() {
        let mut ch = AwgnChannel::new(SimRng::new(3));
        let data = payload(100, 3);
        let p = params(2472, 0); // rate ~1/3: (103*8)=824 bits, e=2472
        let syms = encode_tb(&data, &p);
        let (rx, nv) = ch.apply(&syms, 8.0);
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &rx, nv, data.len(), &p);
        assert_eq!(out.payload.as_deref(), Some(&data[..]));
    }

    #[test]
    fn low_snr_fails_crc() {
        let mut ch = AwgnChannel::new(SimRng::new(4));
        let data = payload(100, 5);
        let p = params(1648, 0); // rate 1/2
        let syms = encode_tb(&data, &p);
        let (rx, nv) = ch.apply(&syms, -4.0);
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &rx, nv, data.len(), &p);
        assert!(out.payload.is_none());
    }

    #[test]
    fn harq_combining_rescues_marginal_snr() {
        // Find behavior at an SNR where single transmissions mostly
        // fail but two soft-combined transmissions mostly succeed.
        let mut ch = AwgnChannel::new(SimRng::new(6));
        let data = payload(80, 7);
        let e = 1336; // (83*8)=664 info bits, rate ~1/2
        let snr = 1.0;
        let trials = 15;
        let mut single_ok = 0;
        let mut combined_ok = 0;
        for _ in 0..trials {
            let p0 = TbParams {
                modulation: Modulation::Qpsk,
                ..params(e, 0)
            };
            let syms0 = encode_tb(&data, &p0);
            let (rx0, nv0) = ch.apply(&syms0, snr);
            let mut acc = vec![0.0; mother_buffer_len(data.len())];
            let out0 = decode_tb(&mut acc, &rx0, nv0, data.len(), &p0);
            if out0.payload.is_some() {
                single_ok += 1;
            }
            // Retransmission with rv=2 soft-combines into the same acc.
            let p1 = TbParams {
                modulation: Modulation::Qpsk,
                ..params(e, 2)
            };
            let syms1 = encode_tb(&data, &p1);
            let (rx1, nv1) = ch.apply(&syms1, snr);
            let out1 = decode_tb(&mut acc, &rx1, nv1, data.len(), &p1);
            if out1.payload.is_some() {
                combined_ok += 1;
            }
        }
        assert!(
            combined_ok > single_ok,
            "combining must help: single={single_ok} combined={combined_ok}"
        );
        assert!(combined_ok >= trials * 2 / 3, "combined={combined_ok}");
    }

    #[test]
    fn discarded_harq_buffer_loses_combining_gain() {
        // The migration scenario: if the accumulated buffer is thrown
        // away between transmissions, the second decode sees only the
        // second transmission's LLRs.
        let mut ch = AwgnChannel::new(SimRng::new(8));
        let data = payload(80, 9);
        let e = 1336;
        let snr = 1.5; // single transmissions essentially never decode here
        let trials = 10;
        let mut kept_ok = 0;
        let mut discarded_ok = 0;
        for _ in 0..trials {
            let mut acc_kept = vec![0.0; mother_buffer_len(data.len())];
            for (i, rv) in [0u8, 2].iter().enumerate() {
                let p = TbParams {
                    modulation: Modulation::Qpsk,
                    ..params(e, *rv)
                };
                let syms = encode_tb(&data, &p);
                let (rx, nv) = ch.apply(&syms, snr);
                let out = decode_tb(&mut acc_kept, &rx, nv, data.len(), &p);
                if i == 1 && out.payload.is_some() {
                    kept_ok += 1;
                }
            }
            // Discarded: decode second tx alone in a fresh buffer.
            let p = TbParams {
                modulation: Modulation::Qpsk,
                ..params(e, 2)
            };
            let syms = encode_tb(&data, &p);
            let (rx, nv) = ch.apply(&syms, snr);
            let mut acc_fresh = vec![0.0; mother_buffer_len(data.len())];
            let out = decode_tb(&mut acc_fresh, &rx, nv, data.len(), &p);
            if out.payload.is_some() {
                discarded_ok += 1;
            }
        }
        assert!(
            kept_ok > discarded_ok,
            "kept={kept_ok} discarded={discarded_ok}"
        );
    }

    #[test]
    fn parallel_encode_decode_bit_identical_to_serial() {
        // Multi-block TB with noise and a truncated (lost-tail) symbol
        // vector: the 4-worker path must match the serial path exactly,
        // down to every f32 in the HARQ accumulator.
        let pool = WorkerPool::new(4);
        let spool = DspScratchPool::new();
        let data = payload(400, 21); // 4 code blocks
        let p = params(6448, 0);
        let serial_syms = encode_tb(&data, &p);
        let par_syms = encode_tb_with(DspKernels::detect(), &pool, &spool, &data, &p);
        assert_eq!(serial_syms, par_syms);

        let mut ch = AwgnChannel::new(SimRng::new(22));
        let (mut rx, nv) = ch.apply(&serial_syms, 6.0);
        rx.truncate(rx.len() - 100); // lost fronthaul tail → erasures
        let mut acc_serial = vec![0.0; mother_buffer_len(data.len())];
        let mut acc_par = acc_serial.clone();
        let out_serial = decode_tb(&mut acc_serial, &rx, nv, data.len(), &p);
        let out_par = decode_tb_with(
            DspKernels::detect(),
            &pool,
            &spool,
            &mut acc_par,
            &rx,
            nv,
            data.len(),
            &p,
        );
        assert_eq!(acc_serial, acc_par);
        assert_eq!(out_serial.payload, out_par.payload);
        assert_eq!(out_serial.ldpc_iterations, out_par.ldpc_iterations);
        assert_eq!(out_serial.all_parity_ok, out_par.all_parity_ok);
        // Jobs returned their arenas: the pool retains them for reuse.
        assert!(spool.idle() >= 1);
    }

    #[test]
    fn wrong_rnti_fails() {
        let data = payload(40, 10);
        let p = params(688, 0);
        let syms = encode_tb(&data, &p);
        let wrong = TbParams { rnti: 0x1234, ..p };
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &syms, 0.001, data.len(), &wrong);
        assert!(out.payload.is_none());
    }

    #[test]
    fn repetition_coding_for_small_payloads() {
        // e_bits much larger than the mother codeword: circular repeat.
        let data = payload(16, 11);
        let p = TbParams {
            modulation: Modulation::Qpsk,
            e_bits: 2048,
            rnti: 1,
            cell_id: 1,
            rv: 0,
            fec_iterations: 8,
        };
        let mut ch = AwgnChannel::new(SimRng::new(12));
        let syms = encode_tb(&data, &p);
        let (rx, nv) = ch.apply(&syms, -3.0);
        let mut acc = vec![0.0; mother_buffer_len(data.len())];
        let out = decode_tb(&mut acc, &rx, nv, data.len(), &p);
        assert_eq!(out.payload.as_deref(), Some(&data[..]));
    }
}
