//! LDPC coding with iterative min-sum decoding.
//!
//! The code is a systematic "staircase" (IRA-style) LDPC: information
//! columns have weight 3 and connect to randomly chosen check rows (a
//! deterministic construction so all nodes use the same code), and the
//! parity part of H is lower-bidiagonal, which gives linear-time
//! encoding by forward substitution — the same structural trick as the
//! dual-diagonal parity parts of the 5G/802.11 QC-LDPC codes.
//!
//! The decoder is normalized min-sum with early termination. Its
//! iteration count is the "FEC iterations" knob that the paper's live
//! upgrade experiment (§8.3, Fig. 11) turns: the upgraded PHY runs more
//! iterations and therefore decodes at lower SNR.
//!
//! Both the information connections and the full Tanner-graph edge list
//! are stored flattened (CSR) and built once at construction — the
//! decoder previously rebuilt its edge list on every call. Decoding
//! works entirely in an [`LdpcScratch`] so steady-state decodes
//! allocate nothing; edge order is identical to the original per-call
//! build, so every min-sum message (and thus every decode) is
//! bit-identical.

use crate::bits::BitBuf;
use slingshot_sim::SimRng;

/// Mother code rate: 1/3 (m = 2k parity bits). Higher rates come from
/// puncturing in the rate matcher; lower from repetition.
pub const PARITY_FACTOR: usize = 2;

/// Normalization factor for min-sum check updates (standard 0.75).
const MIN_SUM_NORM: f32 = 0.75;

/// A constructed LDPC code for a fixed information length `k`.
#[derive(Debug, Clone)]
pub struct LdpcCode {
    k: usize,
    m: usize,
    /// CSR over check rows: information columns of row `i` are
    /// `info_col[info_start[i]..info_start[i+1]]`.
    info_start: Vec<u32>,
    info_col: Vec<u32>,
    /// CSR over the full Tanner graph: variables on row `i`'s edges are
    /// `edge_var[row_start[i]..row_start[i+1]]` — info columns first,
    /// then parity k+i, then k+i-1 for i > 0.
    row_start: Vec<u32>,
    edge_var: Vec<u32>,
}

/// Reusable decoder working set: check-to-variable messages, posterior
/// LLRs and hard decisions. Sized on first use per code dimension and
/// reused across decodes (the transport-block chain keeps one per slot
/// scratch arena).
#[derive(Debug, Clone, Default)]
pub struct LdpcScratch {
    pub c2v: Vec<f32>,
    /// Per-edge variable-to-check messages of the current row pass,
    /// cached in the first sweep so the update sweep reads contiguously
    /// instead of re-deriving them from the (randomly indexed) totals.
    pub v2c: Vec<f32>,
    pub total: Vec<f32>,
    pub hard: Vec<u8>,
}

impl LdpcCode {
    /// Construct the code for information length `k` (bits). The
    /// construction is deterministic: every encoder and decoder in the
    /// system builds exactly the same matrix.
    pub fn new(k: usize) -> LdpcCode {
        assert!(k >= 8, "ldpc blocks shorter than 8 bits are not useful");
        let m = PARITY_FACTOR * k;
        let mut rng = SimRng::new(0x51AC_C0DE ^ (k as u64));
        let mut row_info: Vec<Vec<usize>> = vec![Vec::new(); m];
        for col in 0..k {
            // Column weight 3, distinct rows.
            let mut rows = [0usize; 3];
            let mut chosen = 0;
            while chosen < 3 {
                let r = rng.below(m as u64) as usize;
                if !rows[..chosen].contains(&r) {
                    rows[chosen] = r;
                    chosen += 1;
                }
            }
            for r in rows {
                row_info[r].push(col);
            }
        }
        // Flatten to CSR, and lay out the decoder's edge list once
        // (info edges, then parity k+i, then k+i-1 when i > 0 — the
        // exact order the decoder used to rebuild per call).
        let mut info_start = Vec::with_capacity(m + 1);
        let mut info_col = Vec::with_capacity(3 * k);
        let mut row_start = Vec::with_capacity(m + 1);
        let mut edge_var = Vec::with_capacity(3 * k + 2 * m);
        for (i, row) in row_info.iter().enumerate() {
            info_start.push(info_col.len() as u32);
            row_start.push(edge_var.len() as u32);
            for &col in row {
                info_col.push(col as u32);
                edge_var.push(col as u32);
            }
            edge_var.push((k + i) as u32);
            if i > 0 {
                edge_var.push((k + i - 1) as u32);
            }
        }
        info_start.push(info_col.len() as u32);
        row_start.push(edge_var.len() as u32);
        LdpcCode {
            k,
            m,
            info_start,
            info_col,
            row_start,
            edge_var,
        }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Codeword length n = k + m.
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// Information columns of check row `i`.
    #[inline]
    fn info_row(&self, i: usize) -> &[u32] {
        &self.info_col[self.info_start[i] as usize..self.info_start[i + 1] as usize]
    }

    /// Encode systematically: output is `info ‖ parity`.
    pub fn encode(&self, info: &[u8]) -> Vec<u8> {
        assert_eq!(info.len(), self.k, "info length mismatch");
        let mut out = Vec::with_capacity(self.n());
        out.extend_from_slice(info);
        let mut prev = 0u8;
        for i in 0..self.m {
            let mut acc = prev;
            for &col in self.info_row(i) {
                acc ^= info[col as usize];
            }
            out.push(acc);
            prev = acc;
        }
        out
    }

    /// Encode a packed information block, appending `info ‖ parity` to
    /// `out`. Bit-identical to [`LdpcCode::encode`].
    pub fn encode_packed(&self, info: &BitBuf, out: &mut BitBuf) {
        assert_eq!(info.len(), self.k, "info length mismatch");
        out.append(info);
        let mut prev = 0u8;
        for i in 0..self.m {
            let mut acc = prev;
            for &col in self.info_row(i) {
                acc ^= info.get(col as usize);
            }
            out.push(acc);
            prev = acc;
        }
    }

    /// Check whether a hard-decision word satisfies all parity checks.
    pub fn parity_ok(&self, word: &[u8]) -> bool {
        debug_assert_eq!(word.len(), self.n());
        let mut prev = 0u8;
        for i in 0..self.m {
            let mut acc = prev ^ word[self.k + i];
            for &col in self.info_row(i) {
                acc ^= word[col as usize];
            }
            if acc != 0 {
                return false;
            }
            prev = word[self.k + i];
        }
        true
    }

    /// Decode from channel LLRs into caller scratch. Runs normalized
    /// min-sum for up to `max_iters` iterations with early termination.
    /// On return `scratch.hard[..k]` holds the decoded info bits (and
    /// `[k..n]` the parity decisions); returns (all parity checks
    /// satisfied, iterations executed).
    pub fn decode_into(
        &self,
        channel_llrs: &[f32],
        max_iters: usize,
        scratch: &mut LdpcScratch,
    ) -> (bool, usize) {
        assert_eq!(channel_llrs.len(), self.n(), "llr length mismatch");
        let m = self.m;
        let edge_count = *self.row_start.last().unwrap() as usize;

        // Check-to-variable messages, initialized to zero.
        scratch.c2v.clear();
        scratch.c2v.resize(edge_count, 0.0);
        scratch.v2c.clear();
        scratch.v2c.resize(edge_count, 0.0);
        // Posterior (total) LLR per variable.
        scratch.total.clear();
        scratch.total.extend_from_slice(channel_llrs);
        scratch.hard.clear();
        scratch
            .hard
            .extend(scratch.total.iter().map(|l| (*l < 0.0) as u8));
        let c2v = &mut scratch.c2v;
        let v2c_buf = &mut scratch.v2c;
        let total = &mut scratch.total;
        let mut iters = 0;

        if self.parity_ok(&scratch.hard) {
            return (true, 0);
        }

        for it in 1..=max_iters {
            iters = it;
            for row in 0..m {
                let (s, e) = (
                    self.row_start[row] as usize,
                    self.row_start[row + 1] as usize,
                );
                row_sweep_scalar(
                    &self.edge_var[s..e],
                    &mut c2v[s..e],
                    &mut v2c_buf[s..e],
                    total,
                );
            }
            for (h, l) in scratch.hard.iter_mut().zip(total.iter()) {
                *h = (*l < 0.0) as u8;
            }
            if self.parity_ok(&scratch.hard) {
                return (true, iters);
            }
        }
        (false, iters)
    }

    /// AVX2 decode: bit-identical to [`LdpcCode::decode_into`] (see the
    /// `avx2` module docs for the equivalence argument).
    ///
    /// # Safety
    /// Requires AVX2 (caller checks `is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    pub(crate) unsafe fn decode_into_avx2(
        &self,
        channel_llrs: &[f32],
        max_iters: usize,
        scratch: &mut LdpcScratch,
    ) -> (bool, usize) {
        avx2::decode_into(self, channel_llrs, max_iters, scratch)
    }

    /// Decode from channel LLRs (allocating convenience wrapper around
    /// [`LdpcCode::decode_into`]).
    pub fn decode(&self, channel_llrs: &[f32], max_iters: usize) -> LdpcDecodeResult {
        let mut scratch = LdpcScratch::default();
        let (parity_ok, iterations) = self.decode_into(channel_llrs, max_iters, &mut scratch);
        LdpcDecodeResult {
            info: scratch.hard[..self.k].to_vec(),
            parity_ok,
            iterations,
        }
    }
}

/// One check-row min-sum sweep (both passes) — the scalar oracle row
/// body, shared by [`LdpcCode::decode_into`] and the SIMD decoder's
/// fallback for rows wider than its lane count.
///
/// `vars` are the row's variable indices; `c2v` and `vc` are this row's
/// slices of the per-edge message buffers.
#[inline]
fn row_sweep_scalar(vars: &[u32], c2v: &mut [f32], vc: &mut [f32], total: &mut [f32]) {
    // Variable-to-check messages: total minus this edge's c2v.
    // Compute min and second-min of |v2c| and the sign parity.
    // The messages are cached in `vc` so the update sweep only
    // touches `total` once per edge.
    let mut neg_parity = 0u32;
    let mut min1 = f32::INFINITY;
    let mut min2 = f32::INFINITY;
    let mut min_idx = 0usize;
    for (j, ((&v, &msg), vcj)) in vars.iter().zip(c2v.iter()).zip(vc.iter_mut()).enumerate() {
        let v2c = total[v as usize] - msg;
        *vcj = v2c;
        let a = v2c.abs();
        neg_parity ^= (v2c < 0.0) as u32;
        // Branchless two-smallest update (selects compile
        // to cmov/minss): identical results to the
        // `if a < min1 { .. } else if a < min2 { .. }`
        // chain, including NaN handling (comparisons with
        // NaN are false, leaving all three untouched).
        let smaller = a < min1;
        let demoted = if smaller { min1 } else { a };
        min1 = if smaller { a } else { min1 };
        min_idx = if smaller { j } else { min_idx };
        min2 = if demoted < min2 { demoted } else { min2 };
    }
    // Update c2v and totals. `MIN_SUM_NORM * s_edge * mag` with
    // s_edge = ±1 is exactly ±(MIN_SUM_NORM * mag), so the
    // normalized magnitudes are computed once per row and only
    // the sign is applied per edge.
    let p1 = MIN_SUM_NORM * min1;
    let p2 = MIN_SUM_NORM * min2;
    for (j, ((&v, msg), &v2c)) in vars.iter().zip(c2v.iter_mut()).zip(vc.iter()).enumerate() {
        let mag = if j == min_idx { p2 } else { p1 };
        let new_c2v = if (neg_parity ^ ((v2c < 0.0) as u32)) != 0 {
            -mag
        } else {
            mag
        };
        total[v as usize] = v2c + new_c2v;
        *msg = new_c2v;
    }
}

/// AVX2 min-sum decoder: vectorizes *within* each check row (rows are
/// sequentially dependent through the staircase parity totals, so the
/// row order must stay serial). One 8-lane masked vector covers a
/// whole row; wider rows fall back to [`row_sweep_scalar`].
///
/// The vector kernel only engages for rows with
/// [`MIN_SIMD_ROW_EDGES`]..=8 edges. Below that the lane occupancy is
/// too low to pay for the masked gather: measured on a Skylake-class
/// Xeon, an average row of ~3.5 edges runs ~25% *slower* through the
/// masked kernel than through the scalar two-smallest sweep (whose
/// branches are cheap precisely because narrow rows keep them
/// predictable), while rows at 6+ edges amortize the fixed gather +
/// horizontal-min cost. The random column placement still produces a
/// tail of wide rows, so the kernel stays exercised; codes with denser
/// check rows engage it for nearly every row. Threshold choice cannot
/// affect results — both sweeps are bit-exact against each other.
///
/// Bit-exactness versus the scalar oracle:
/// - v2c = gather(total) − c2v and the final total = v2c + c2v′ are the
///   same single subtract/add per lane.
/// - The sign predicate `v2c < 0.0` is `_CMP_LT_OQ` (NaN → false, −0.0
///   → false), identical to the scalar comparison; parity is the
///   popcount of the active sign bits.
/// - min1 is the horizontal min of |v2c| with NaN and inactive lanes
///   masked to +∞ — order-independent, equal to the scalar fold (which
///   skips NaNs because its comparisons fail). min_idx is the first
///   active lane equal to min1; when magnitudes tie, min1 == min2 so
///   the choice of index cannot change any message. min2 re-mins with
///   the chosen lane masked to +∞.
/// - p1/p2 are the identical scalar products `0.75 * min`, broadcast;
///   each lane picks p2 at min_idx else p1 and applies the XOR'd sign
///   bit, exactly the scalar `±mag` selection.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{row_sweep_scalar, LdpcCode, LdpcScratch, MIN_SUM_NORM};
    use std::arch::x86_64::*;

    /// Narrowest row the masked vector kernel pays for (see module
    /// docs); narrower rows take the scalar sweep.
    const MIN_SIMD_ROW_EDGES: usize = 6;

    /// `LANE_MASK[len]`: lane j active (all-ones) iff j < len.
    static LANE_MASK: [[i32; 8]; 9] = {
        let mut m = [[0i32; 8]; 9];
        let mut len = 1;
        while len <= 8 {
            let mut j = 0;
            while j < len {
                m[len][j] = -1;
                j += 1;
            }
            len += 1;
        }
        m
    };

    /// `LANE_ONE[i]`: only lane i active.
    static LANE_ONE: [[i32; 8]; 8] = {
        let mut m = [[0i32; 8]; 8];
        let mut i = 0;
        while i < 8 {
            m[i][i] = -1;
            i += 1;
        }
        m
    };

    /// Horizontal min over all 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hmin8(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps::<1>(v);
        let m = _mm_min_ps(lo, hi);
        let m = _mm_min_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_min_ss(m, _mm_shuffle_ps::<0b01>(m, m));
        _mm_cvtss_f32(m)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_into(
        code: &LdpcCode,
        channel_llrs: &[f32],
        max_iters: usize,
        scratch: &mut LdpcScratch,
    ) -> (bool, usize) {
        assert_eq!(channel_llrs.len(), code.n(), "llr length mismatch");
        let m = code.m;
        let edge_count = *code.row_start.last().unwrap() as usize;
        scratch.c2v.clear();
        scratch.c2v.resize(edge_count, 0.0);
        scratch.v2c.clear();
        scratch.v2c.resize(edge_count, 0.0);
        scratch.total.clear();
        scratch.total.extend_from_slice(channel_llrs);
        scratch.hard.clear();
        scratch
            .hard
            .extend(scratch.total.iter().map(|l| (*l < 0.0) as u8));
        let mut iters = 0;
        if code.parity_ok(&scratch.hard) {
            return (true, 0);
        }

        let signbit = _mm256_set1_ps(-0.0);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let zero = _mm256_setzero_ps();

        for it in 1..=max_iters {
            iters = it;
            for row in 0..m {
                let s = code.row_start[row] as usize;
                let e = code.row_start[row + 1] as usize;
                let len = e - s;
                if !(MIN_SIMD_ROW_EDGES..=8).contains(&len) {
                    row_sweep_scalar(
                        &code.edge_var[s..e],
                        &mut scratch.c2v[s..e],
                        &mut scratch.v2c[s..e],
                        &mut scratch.total,
                    );
                    continue;
                }
                let vars = &code.edge_var[s..e];
                let active = _mm256_loadu_si256(LANE_MASK[len].as_ptr() as *const __m256i);
                let active_ps = _mm256_castsi256_ps(active);
                let vidx = _mm256_maskload_epi32(vars.as_ptr() as *const i32, active);
                let totals =
                    _mm256_mask_i32gather_ps::<4>(zero, scratch.total.as_ptr(), vidx, active_ps);
                let msgs = _mm256_maskload_ps(scratch.c2v.as_ptr().add(s), active);
                let v2c = _mm256_sub_ps(totals, msgs);
                _mm256_maskstore_ps(scratch.v2c.as_mut_ptr().add(s), active, v2c);
                let negm = _mm256_cmp_ps::<_CMP_LT_OQ>(v2c, zero);
                let lane_bits = (1u32 << len) - 1;
                let neg_bits = _mm256_movemask_ps(negm) as u32 & lane_bits;
                let neg_parity = neg_bits.count_ones() & 1;
                // |v2c| with NaN and inactive lanes blended to +INF.
                let a = _mm256_andnot_ps(signbit, v2c);
                let valid = _mm256_and_ps(_mm256_cmp_ps::<_CMP_ORD_Q>(a, a), active_ps);
                let a1 = _mm256_blendv_ps(inf, a, valid);
                let min1 = hmin8(a1);
                let eq_bits =
                    _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_EQ_OQ>(a1, _mm256_set1_ps(min1)))
                        as u32
                        & lane_bits;
                debug_assert_ne!(eq_bits, 0);
                // min(·, 7) is unreachable defense: some active lane
                // always equals the horizontal min (inactive lanes are
                // +INF, and +INF == +INF when everything is masked).
                let min_idx = (eq_bits.trailing_zeros() as usize).min(7);
                let one_ps = _mm256_castsi256_ps(_mm256_loadu_si256(
                    LANE_ONE[min_idx].as_ptr() as *const __m256i
                ));
                let min2 = hmin8(_mm256_blendv_ps(a1, inf, one_ps));
                let p1 = MIN_SUM_NORM * min1;
                let p2 = MIN_SUM_NORM * min2;
                let mag = _mm256_blendv_ps(_mm256_set1_ps(p1), _mm256_set1_ps(p2), one_ps);
                let mut signs = _mm256_and_ps(negm, signbit);
                if neg_parity != 0 {
                    signs = _mm256_xor_ps(signs, signbit);
                }
                let new_c2v = _mm256_xor_ps(mag, signs);
                let new_total = _mm256_add_ps(v2c, new_c2v);
                _mm256_maskstore_ps(scratch.c2v.as_mut_ptr().add(s), active, new_c2v);
                // Scatter the updated totals: variables within one row
                // are distinct, so plain per-lane stores cannot clash.
                let mut tbuf = [0f32; 8];
                _mm256_storeu_ps(tbuf.as_mut_ptr(), new_total);
                for (j, &v) in vars.iter().enumerate() {
                    scratch.total[v as usize] = tbuf[j];
                }
            }
            for (h, l) in scratch.hard.iter_mut().zip(scratch.total.iter()) {
                *h = (*l < 0.0) as u8;
            }
            if code.parity_ok(&scratch.hard) {
                return (true, iters);
            }
        }
        (false, iters)
    }
}

/// Result of an LDPC decode attempt.
#[derive(Debug, Clone)]
pub struct LdpcDecodeResult {
    pub info: Vec<u8>,
    /// All parity checks satisfied (necessary but not sufficient for
    /// correctness — the CRC above this layer is authoritative).
    pub parity_ok: bool,
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    fn bits_to_llrs(bits: &[u8], amp: f32) -> Vec<f32> {
        bits.iter()
            .map(|b| if *b == 0 { amp } else { -amp })
            .collect()
    }

    fn add_noise(llrs: &mut [f32], snr_db: f32, seed: u64) {
        // Model BPSK over AWGN: LLR = 2y/sigma^2 where y = ±1 + noise.
        let mut rng = SimRng::new(seed);
        let sigma2 = 10f32.powf(-snr_db / 10.0);
        for l in llrs.iter_mut() {
            let x = if *l > 0.0 { 1.0 } else { -1.0 };
            let y = x + sigma2.sqrt() * rng.gaussian() as f32;
            *l = 2.0 * y / sigma2;
        }
    }

    #[test]
    fn encode_produces_valid_codeword() {
        let code = LdpcCode::new(128);
        let info = random_bits(128, 1);
        let cw = code.encode(&info);
        assert_eq!(cw.len(), code.n());
        assert!(code.parity_ok(&cw));
        assert_eq!(&cw[..128], &info[..]);
    }

    #[test]
    fn packed_encode_matches_bytewise() {
        let code = LdpcCode::new(128);
        let info = random_bits(128, 21);
        let mut packed = BitBuf::new();
        code.encode_packed(&BitBuf::from_bits(&info), &mut packed);
        assert_eq!(packed.to_bits(), code.encode(&info));
        // Appending starts where the buffer ends.
        let mut offset = BitBuf::from_bits(&[1, 0, 1]);
        code.encode_packed(&BitBuf::from_bits(&info), &mut offset);
        assert_eq!(offset.len(), 3 + code.n());
        assert_eq!(offset.to_bits()[3..], code.encode(&info)[..]);
    }

    #[test]
    fn all_zero_is_codeword() {
        let code = LdpcCode::new(64);
        let cw = code.encode(&vec![0u8; 64]);
        assert!(cw.iter().all(|b| *b == 0));
        assert!(code.parity_ok(&cw));
    }

    #[test]
    fn code_is_linear() {
        let code = LdpcCode::new(64);
        let a = random_bits(64, 2);
        let b = random_bits(64, 3);
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        let ca = code.encode(&a);
        let cb = code.encode(&b);
        let cx = code.encode(&x);
        let sum: Vec<u8> = ca.iter().zip(&cb).map(|(p, q)| p ^ q).collect();
        assert_eq!(cx, sum);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = LdpcCode::new(256);
        let b = LdpcCode::new(256);
        let info = random_bits(256, 4);
        assert_eq!(a.encode(&info), b.encode(&info));
    }

    #[test]
    fn decode_noiseless() {
        let code = LdpcCode::new(128);
        let info = random_bits(128, 5);
        let cw = code.encode(&info);
        let llrs = bits_to_llrs(&cw, 8.0);
        let res = code.decode(&llrs, 10);
        assert!(res.parity_ok);
        assert_eq!(res.info, info);
        assert_eq!(res.iterations, 0, "noiseless should early-terminate");
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch across decodes of different outcomes and sizes
        // must give the same results as fresh scratch every time.
        let mut scratch = LdpcScratch::default();
        for (k, snr, seed) in [(128usize, 3.0f32, 50u64), (256, -0.5, 51), (128, -6.0, 52)] {
            let code = LdpcCode::new(k);
            let info = random_bits(k, seed);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, snr, seed + 1000);
            let fresh = code.decode(&llrs, 12);
            let (ok, iters) = code.decode_into(&llrs, 12, &mut scratch);
            assert_eq!(ok, fresh.parity_ok, "k={k} snr={snr}");
            assert_eq!(iters, fresh.iterations, "k={k} snr={snr}");
            assert_eq!(&scratch.hard[..k], &fresh.info[..], "k={k} snr={snr}");
        }
    }

    #[test]
    fn decode_corrects_moderate_noise() {
        let code = LdpcCode::new(256);
        let mut ok = 0;
        let trials = 20;
        for t in 0..trials {
            let info = random_bits(256, 100 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, 3.0, 200 + t);
            let res = code.decode(&llrs, 25);
            if res.parity_ok && res.info == info {
                ok += 1;
            }
        }
        // Rate-1/3 code at 3 dB (BPSK) should decode essentially always.
        assert!(ok >= trials - 1, "ok={ok}/{trials}");
    }

    #[test]
    fn decode_fails_under_heavy_noise() {
        let code = LdpcCode::new(256);
        let mut fails = 0;
        for t in 0..10 {
            let info = random_bits(256, 300 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, -6.0, 400 + t);
            let res = code.decode(&llrs, 12);
            if !(res.parity_ok && res.info == info) {
                fails += 1;
            }
        }
        assert!(fails >= 8, "fails={fails}");
    }

    #[test]
    fn more_iterations_decode_more() {
        // Near the waterfall, iteration count matters — this is the
        // paper's Fig. 11 upgrade mechanism.
        let code = LdpcCode::new(256);
        let trials = 40;
        let mut ok_few = 0;
        let mut ok_many = 0;
        for t in 0..trials {
            let info = random_bits(256, 500 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, -0.5, 600 + t);
            let few = code.decode(&llrs, 2);
            let many = code.decode(&llrs, 30);
            if few.parity_ok && few.info == info {
                ok_few += 1;
            }
            if many.parity_ok && many.info == info {
                ok_many += 1;
            }
        }
        assert!(
            ok_many > ok_few,
            "more iterations should help: few={ok_few} many={ok_many}"
        );
    }

    #[test]
    fn parity_ok_rejects_corrupted_codeword() {
        let code = LdpcCode::new(64);
        let mut cw = code.encode(&random_bits(64, 7));
        cw[10] ^= 1;
        assert!(!code.parity_ok(&cw));
    }

    #[test]
    #[should_panic]
    fn encode_rejects_wrong_length() {
        LdpcCode::new(64).encode(&[0u8; 32]);
    }
}
