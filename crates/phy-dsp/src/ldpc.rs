//! LDPC coding with iterative min-sum decoding.
//!
//! The code is a systematic "staircase" (IRA-style) LDPC: information
//! columns have weight 3 and connect to randomly chosen check rows (a
//! deterministic construction so all nodes use the same code), and the
//! parity part of H is lower-bidiagonal, which gives linear-time
//! encoding by forward substitution — the same structural trick as the
//! dual-diagonal parity parts of the 5G/802.11 QC-LDPC codes.
//!
//! The decoder is normalized min-sum with early termination. Its
//! iteration count is the "FEC iterations" knob that the paper's live
//! upgrade experiment (§8.3, Fig. 11) turns: the upgraded PHY runs more
//! iterations and therefore decodes at lower SNR.

use slingshot_sim::SimRng;

/// Mother code rate: 1/3 (m = 2k parity bits). Higher rates come from
/// puncturing in the rate matcher; lower from repetition.
pub const PARITY_FACTOR: usize = 2;

/// Normalization factor for min-sum check updates (standard 0.75).
const MIN_SUM_NORM: f32 = 0.75;

/// A constructed LDPC code for a fixed information length `k`.
#[derive(Debug, Clone)]
pub struct LdpcCode {
    k: usize,
    m: usize,
    /// For each check row, the information columns participating in it.
    row_info: Vec<Vec<usize>>,
}

impl LdpcCode {
    /// Construct the code for information length `k` (bits). The
    /// construction is deterministic: every encoder and decoder in the
    /// system builds exactly the same matrix.
    pub fn new(k: usize) -> LdpcCode {
        assert!(k >= 8, "ldpc blocks shorter than 8 bits are not useful");
        let m = PARITY_FACTOR * k;
        let mut rng = SimRng::new(0x51AC_C0DE ^ (k as u64));
        let mut row_info: Vec<Vec<usize>> = vec![Vec::new(); m];
        for col in 0..k {
            // Column weight 3, distinct rows.
            let mut rows = [0usize; 3];
            let mut chosen = 0;
            while chosen < 3 {
                let r = rng.below(m as u64) as usize;
                if !rows[..chosen].contains(&r) {
                    rows[chosen] = r;
                    chosen += 1;
                }
            }
            for r in rows {
                row_info[r].push(col);
            }
        }
        LdpcCode { k, m, row_info }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn m(&self) -> usize {
        self.m
    }

    /// Codeword length n = k + m.
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// Encode systematically: output is `info ‖ parity`.
    pub fn encode(&self, info: &[u8]) -> Vec<u8> {
        assert_eq!(info.len(), self.k, "info length mismatch");
        let mut out = Vec::with_capacity(self.n());
        out.extend_from_slice(info);
        let mut prev = 0u8;
        for row in &self.row_info {
            let mut acc = prev;
            for &col in row {
                acc ^= info[col];
            }
            out.push(acc);
            prev = acc;
        }
        out
    }

    /// Check whether a hard-decision word satisfies all parity checks.
    pub fn parity_ok(&self, word: &[u8]) -> bool {
        debug_assert_eq!(word.len(), self.n());
        let mut prev = 0u8;
        for (i, row) in self.row_info.iter().enumerate() {
            let mut acc = prev ^ word[self.k + i];
            for &col in row {
                acc ^= word[col];
            }
            if acc != 0 {
                return false;
            }
            prev = word[self.k + i];
        }
        true
    }

    /// Decode from channel LLRs (length n, positive = bit 0). Runs
    /// normalized min-sum for up to `max_iters` iterations with early
    /// termination. Returns the decoded info bits, whether all parity
    /// checks were satisfied, and the number of iterations executed.
    pub fn decode(&self, channel_llrs: &[f32], max_iters: usize) -> LdpcDecodeResult {
        assert_eq!(channel_llrs.len(), self.n(), "llr length mismatch");
        let m = self.m;

        // Edge layout per check row: info edges then parity edges
        // (parity var k+i, and k+i-1 when i > 0).
        let edge_count: usize = self
            .row_info
            .iter()
            .enumerate()
            .map(|(i, r)| r.len() + if i == 0 { 1 } else { 2 })
            .sum();
        let mut edge_var: Vec<u32> = Vec::with_capacity(edge_count);
        let mut row_start: Vec<usize> = Vec::with_capacity(m + 1);
        for (i, row) in self.row_info.iter().enumerate() {
            row_start.push(edge_var.len());
            for &col in row {
                edge_var.push(col as u32);
            }
            edge_var.push((self.k + i) as u32);
            if i > 0 {
                edge_var.push((self.k + i - 1) as u32);
            }
        }
        row_start.push(edge_var.len());

        // Check-to-variable messages, initialized to zero.
        let mut c2v: Vec<f32> = vec![0.0; edge_count];
        // Posterior (total) LLR per variable.
        let mut total: Vec<f32> = channel_llrs.to_vec();
        let mut hard: Vec<u8> = total.iter().map(|l| (*l < 0.0) as u8).collect();
        let mut iters = 0;

        if self.parity_ok(&hard) {
            return LdpcDecodeResult {
                info: hard[..self.k].to_vec(),
                parity_ok: true,
                iterations: 0,
            };
        }

        for it in 1..=max_iters {
            iters = it;
            for row in 0..m {
                let (s, e) = (row_start[row], row_start[row + 1]);
                // Variable-to-check messages: total minus this edge's c2v.
                // Compute min and second-min of |v2c| and sign product.
                let mut sign: f32 = 1.0;
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min_idx = s;
                for eidx in s..e {
                    let v = edge_var[eidx] as usize;
                    let v2c = total[v] - c2v[eidx];
                    let a = v2c.abs();
                    if v2c < 0.0 {
                        sign = -sign;
                    }
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                        min_idx = eidx;
                    } else if a < min2 {
                        min2 = a;
                    }
                }
                // Update c2v and totals.
                for eidx in s..e {
                    let v = edge_var[eidx] as usize;
                    let v2c = total[v] - c2v[eidx];
                    let mag = if eidx == min_idx { min2 } else { min1 };
                    let s_edge = if v2c < 0.0 { -sign } else { sign };
                    let new_c2v = MIN_SUM_NORM * s_edge * mag;
                    total[v] = v2c + new_c2v;
                    c2v[eidx] = new_c2v;
                }
            }
            for (h, l) in hard.iter_mut().zip(total.iter()) {
                *h = (*l < 0.0) as u8;
            }
            if self.parity_ok(&hard) {
                return LdpcDecodeResult {
                    info: hard[..self.k].to_vec(),
                    parity_ok: true,
                    iterations: iters,
                };
            }
        }
        LdpcDecodeResult {
            info: hard[..self.k].to_vec(),
            parity_ok: false,
            iterations: iters,
        }
    }
}

/// Result of an LDPC decode attempt.
#[derive(Debug, Clone)]
pub struct LdpcDecodeResult {
    pub info: Vec<u8>,
    /// All parity checks satisfied (necessary but not sufficient for
    /// correctness — the CRC above this layer is authoritative).
    pub parity_ok: bool,
    pub iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    fn bits_to_llrs(bits: &[u8], amp: f32) -> Vec<f32> {
        bits.iter()
            .map(|b| if *b == 0 { amp } else { -amp })
            .collect()
    }

    fn add_noise(llrs: &mut [f32], snr_db: f32, seed: u64) {
        // Model BPSK over AWGN: LLR = 2y/sigma^2 where y = ±1 + noise.
        let mut rng = SimRng::new(seed);
        let sigma2 = 10f32.powf(-snr_db / 10.0);
        for l in llrs.iter_mut() {
            let x = if *l > 0.0 { 1.0 } else { -1.0 };
            let y = x + sigma2.sqrt() * rng.gaussian() as f32;
            *l = 2.0 * y / sigma2;
        }
    }

    #[test]
    fn encode_produces_valid_codeword() {
        let code = LdpcCode::new(128);
        let info = random_bits(128, 1);
        let cw = code.encode(&info);
        assert_eq!(cw.len(), code.n());
        assert!(code.parity_ok(&cw));
        assert_eq!(&cw[..128], &info[..]);
    }

    #[test]
    fn all_zero_is_codeword() {
        let code = LdpcCode::new(64);
        let cw = code.encode(&vec![0u8; 64]);
        assert!(cw.iter().all(|b| *b == 0));
        assert!(code.parity_ok(&cw));
    }

    #[test]
    fn code_is_linear() {
        let code = LdpcCode::new(64);
        let a = random_bits(64, 2);
        let b = random_bits(64, 3);
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        let ca = code.encode(&a);
        let cb = code.encode(&b);
        let cx = code.encode(&x);
        let sum: Vec<u8> = ca.iter().zip(&cb).map(|(p, q)| p ^ q).collect();
        assert_eq!(cx, sum);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = LdpcCode::new(256);
        let b = LdpcCode::new(256);
        let info = random_bits(256, 4);
        assert_eq!(a.encode(&info), b.encode(&info));
    }

    #[test]
    fn decode_noiseless() {
        let code = LdpcCode::new(128);
        let info = random_bits(128, 5);
        let cw = code.encode(&info);
        let llrs = bits_to_llrs(&cw, 8.0);
        let res = code.decode(&llrs, 10);
        assert!(res.parity_ok);
        assert_eq!(res.info, info);
        assert_eq!(res.iterations, 0, "noiseless should early-terminate");
    }

    #[test]
    fn decode_corrects_moderate_noise() {
        let code = LdpcCode::new(256);
        let mut ok = 0;
        let trials = 20;
        for t in 0..trials {
            let info = random_bits(256, 100 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, 3.0, 200 + t);
            let res = code.decode(&llrs, 25);
            if res.parity_ok && res.info == info {
                ok += 1;
            }
        }
        // Rate-1/3 code at 3 dB (BPSK) should decode essentially always.
        assert!(ok >= trials - 1, "ok={ok}/{trials}");
    }

    #[test]
    fn decode_fails_under_heavy_noise() {
        let code = LdpcCode::new(256);
        let mut fails = 0;
        for t in 0..10 {
            let info = random_bits(256, 300 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, -6.0, 400 + t);
            let res = code.decode(&llrs, 12);
            if !(res.parity_ok && res.info == info) {
                fails += 1;
            }
        }
        assert!(fails >= 8, "fails={fails}");
    }

    #[test]
    fn more_iterations_decode_more() {
        // Near the waterfall, iteration count matters — this is the
        // paper's Fig. 11 upgrade mechanism.
        let code = LdpcCode::new(256);
        let trials = 40;
        let mut ok_few = 0;
        let mut ok_many = 0;
        for t in 0..trials {
            let info = random_bits(256, 500 + t);
            let cw = code.encode(&info);
            let mut llrs = bits_to_llrs(&cw, 1.0);
            add_noise(&mut llrs, -0.5, 600 + t);
            let few = code.decode(&llrs, 2);
            let many = code.decode(&llrs, 30);
            if few.parity_ok && few.info == info {
                ok_few += 1;
            }
            if many.parity_ok && many.info == info {
                ok_many += 1;
            }
        }
        assert!(
            ok_many > ok_few,
            "more iterations should help: few={ok_few} many={ok_many}"
        );
    }

    #[test]
    fn parity_ok_rejects_corrupted_codeword() {
        let code = LdpcCode::new(64);
        let mut cw = code.encode(&random_bits(64, 7));
        cw[10] ^= 1;
        assert!(!code.parity_ok(&cw));
    }

    #[test]
    #[should_panic]
    fn encode_rejects_wrong_length() {
        LdpcCode::new(64).encode(&[0u8; 32]);
    }
}
