//! Property-based equivalence: every word-packed / table-driven kernel
//! against the retired scalar implementation it replaced.
//!
//! The references here are deliberate re-implementations of the
//! pre-rewrite code (bitwise CRC long division, the one-bit-per-step
//! Gold LFSR, per-symbol PAM arithmetic, the per-call edge-list min-sum
//! decoder), kept self-contained in this test so drift in the
//! production kernels cannot silently drift the oracle too.
//!
//! Equality is exact: bits are compared as integers and every f32 is
//! compared via `to_bits`, because the simulator's determinism contract
//! (byte-identical traces across worker counts and releases) depends on
//! the kernels performing the same float operations in the same order.

use proptest::prelude::*;
use slingshot_phy_dsp::bits::BitBuf;
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::crc::{attach_crc24a, check_crc24a, crc16, crc24a};
use slingshot_phy_dsp::iq::SC_PER_PRB;
use slingshot_phy_dsp::ldpc::{LdpcCode, LdpcScratch};
use slingshot_phy_dsp::modulation::{modulate, modulate_packed, Modulation};
use slingshot_phy_dsp::ratematch::{rate_match, rate_match_packed};
use slingshot_phy_dsp::scramble::{
    cached_sequence, descramble_llrs_packed, scramble_bits_with, scramble_packed, GoldSequence,
};
use slingshot_phy_dsp::Cplx;
use slingshot_phy_dsp::{DspKernels, KernelBackend};
use slingshot_sim::SimRng;

// ---------------------------------------------------------------- CRC

/// Pre-rewrite CRC-24A: bit-serial long division (TS 38.212 §5.1).
fn crc24a_ref(data: &[u8]) -> u32 {
    let mut crc: u32 = 0;
    for &byte in data {
        crc ^= (byte as u32) << 16;
        for _ in 0..8 {
            crc <<= 1;
            if crc & 0x0100_0000 != 0 {
                crc ^= 0x864CFB;
            }
        }
    }
    crc & 0x00FF_FFFF
}

/// Pre-rewrite CRC-16 (CCITT).
fn crc16_ref(data: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            let msb = crc & 0x8000 != 0;
            crc <<= 1;
            if msb {
                crc ^= 0x1021;
            }
        }
    }
    crc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crc_tables_match_bitwise_reference(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(crc24a(&data), crc24a_ref(&data));
        prop_assert_eq!(crc16(&data), crc16_ref(&data));
        let attached = attach_crc24a(&data);
        prop_assert_eq!(check_crc24a(&attached), Some(&data[..]));
    }
}

// --------------------------------------------------------------- Gold

/// Pre-rewrite Gold generator: one bit per step (TS 38.211 §5.2.1),
/// including the Nc = 1600 fast-forward.
struct GoldRef {
    x1: u32,
    x2: u32,
}

impl GoldRef {
    fn new(c_init: u32) -> GoldRef {
        let mut g = GoldRef {
            x1: 1,
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..1600 {
            g.step();
        }
        g
    }

    fn step(&mut self) -> u8 {
        let out = ((self.x1 ^ self.x2) & 1) as u8;
        let x1_new = ((self.x1 >> 3) ^ self.x1) & 1;
        let x2_new = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (x1_new << 30);
        self.x2 = (self.x2 >> 1) | (x2_new << 30);
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gold_generator_matches_reference_lfsr(c_init in any::<u32>(), n in 0usize..1200) {
        let mut fast = GoldSequence::new(c_init);
        let mut slow = GoldRef::new(c_init);
        let got = fast.bits(n);
        for (i, &b) in got.iter().enumerate() {
            prop_assert_eq!(b, slow.step(), "bit {} of c_init {:#x}", i, c_init);
        }
    }

    #[test]
    fn gold_skip_matches_stepping(c_init in any::<u32>(), skip in 0usize..4000, n in 1usize..64) {
        let mut jumped = GoldSequence::new(c_init);
        jumped.skip(skip);
        let mut stepped = GoldSequence::new(c_init);
        for _ in 0..skip {
            stepped.next_bit();
        }
        prop_assert_eq!(jumped.bits(n), stepped.bits(n));
    }

    #[test]
    fn packed_scramble_matches_scalar(
        bits in proptest::collection::vec(0u8..2, 0..1200),
        c_init in any::<u32>(),
        offset in 0usize..200,
    ) {
        // Scalar path: positioned bit-serial generator.
        let mut expect = bits.clone();
        let mut g = GoldSequence::new(c_init);
        g.skip(offset);
        scramble_bits_with(&mut expect, &mut g);
        // Packed path: shared cached sequence plus bit offset.
        let seq = cached_sequence(c_init, offset + bits.len());
        let mut packed = BitBuf::from_bits(&bits);
        scramble_packed(&mut packed, &seq, offset);
        prop_assert_eq!(packed.to_bits(), expect);
    }

    #[test]
    fn packed_descramble_matches_scalar(
        llrs in proptest::collection::vec(-8.0f32..8.0, 0..1200),
        c_init in any::<u32>(),
        offset in 0usize..200,
    ) {
        let mut expect = llrs.clone();
        let mut g = GoldSequence::new(c_init);
        g.skip(offset);
        slingshot_phy_dsp::scramble::descramble_llrs_with(&mut expect, &mut g);
        let seq = cached_sequence(c_init, offset + llrs.len());
        let mut got = llrs.clone();
        descramble_llrs_packed(&mut got, &seq, offset);
        for (a, b) in got.iter().zip(expect.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

// --------------------------------------------------------------- LDPC

/// Pre-rewrite LDPC, nested-Vec form: the same deterministic
/// construction (seed 0x51AC_C0DE ^ k, column weight 3), bytewise
/// staircase encode, and the per-call edge-list min-sum decoder.
struct LdpcRef {
    k: usize,
    m: usize,
    row_info: Vec<Vec<usize>>,
}

impl LdpcRef {
    fn new(k: usize) -> LdpcRef {
        let m = 2 * k;
        let mut rng = SimRng::new(0x51AC_C0DE ^ (k as u64));
        let mut row_info: Vec<Vec<usize>> = vec![Vec::new(); m];
        for col in 0..k {
            let mut rows = [0usize; 3];
            let mut chosen = 0;
            while chosen < 3 {
                let r = rng.below(m as u64) as usize;
                if !rows[..chosen].contains(&r) {
                    rows[chosen] = r;
                    chosen += 1;
                }
            }
            for r in rows {
                row_info[r].push(col);
            }
        }
        LdpcRef { k, m, row_info }
    }

    fn encode(&self, info: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.k + self.m);
        out.extend_from_slice(info);
        let mut prev = 0u8;
        for row in &self.row_info {
            let mut acc = prev;
            for &col in row {
                acc ^= info[col];
            }
            out.push(acc);
            prev = acc;
        }
        out
    }

    fn parity_ok(&self, word: &[u8]) -> bool {
        let mut prev = 0u8;
        for (i, row) in self.row_info.iter().enumerate() {
            let mut acc = prev ^ word[self.k + i];
            for &col in row {
                acc ^= word[col];
            }
            if acc != 0 {
                return false;
            }
            prev = word[self.k + i];
        }
        true
    }

    /// Per-call edge-list normalized min-sum, exactly as the retired
    /// decoder ran it. Returns (total LLRs, hard bits, parity, iters).
    fn decode(&self, channel_llrs: &[f32], max_iters: usize) -> (Vec<f32>, Vec<u8>, bool, usize) {
        let mut edge_var: Vec<usize> = Vec::new();
        let mut row_start: Vec<usize> = Vec::new();
        for (i, row) in self.row_info.iter().enumerate() {
            row_start.push(edge_var.len());
            edge_var.extend(row.iter().copied());
            edge_var.push(self.k + i);
            if i > 0 {
                edge_var.push(self.k + i - 1);
            }
        }
        row_start.push(edge_var.len());
        let mut c2v: Vec<f32> = vec![0.0; edge_var.len()];
        let mut total: Vec<f32> = channel_llrs.to_vec();
        let mut hard: Vec<u8> = total.iter().map(|l| (*l < 0.0) as u8).collect();
        if self.parity_ok(&hard) {
            return (total, hard, true, 0);
        }
        let mut iters = 0;
        for it in 1..=max_iters {
            iters = it;
            for row in 0..self.m {
                let (s, e) = (row_start[row], row_start[row + 1]);
                let mut sign: f32 = 1.0;
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min_idx = s;
                for eidx in s..e {
                    let v = edge_var[eidx];
                    let v2c = total[v] - c2v[eidx];
                    let a = v2c.abs();
                    if v2c < 0.0 {
                        sign = -sign;
                    }
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                        min_idx = eidx;
                    } else if a < min2 {
                        min2 = a;
                    }
                }
                for eidx in s..e {
                    let v = edge_var[eidx];
                    let v2c = total[v] - c2v[eidx];
                    let mag = if eidx == min_idx { min2 } else { min1 };
                    let s_edge = if v2c < 0.0 { -sign } else { sign };
                    let new_c2v = 0.75 * s_edge * mag;
                    total[v] = v2c + new_c2v;
                    c2v[eidx] = new_c2v;
                }
            }
            for (h, l) in hard.iter_mut().zip(total.iter()) {
                *h = (*l < 0.0) as u8;
            }
            if self.parity_ok(&hard) {
                return (total, hard, true, iters);
            }
        }
        (total, hard, false, iters)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ldpc_encode_matches_reference(k in 8usize..160, seed in any::<u64>()) {
        let reference = LdpcRef::new(k);
        let code = LdpcCode::new(k);
        let mut rng = SimRng::new(seed);
        let info: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let expect = reference.encode(&info);
        prop_assert_eq!(code.encode(&info), expect.clone());
        let mut packed = BitBuf::new();
        code.encode_packed(&BitBuf::from_bits(&info), &mut packed);
        prop_assert_eq!(packed.to_bits(), expect.clone());
        prop_assert!(code.parity_ok(&expect));
    }

    #[test]
    fn ldpc_decode_matches_reference(
        k in 8usize..128,
        seed in any::<u64>(),
        snr_db in 0.0f32..6.0,
        max_iters in 1usize..12,
    ) {
        let reference = LdpcRef::new(k);
        let code = LdpcCode::new(k);
        let mut rng = SimRng::new(seed);
        let info: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let cw = reference.encode(&info);
        // BPSK over AWGN at the drawn SNR.
        let sigma2 = 10f32.powf(-snr_db / 10.0);
        let llrs: Vec<f32> = cw
            .iter()
            .map(|&b| {
                let x = if b == 0 { 1.0 } else { -1.0 };
                let y = x + sigma2.sqrt() * rng.gaussian() as f32;
                2.0 * y / sigma2
            })
            .collect();
        let (ref_total, ref_hard, ref_ok, ref_iters) = reference.decode(&llrs, max_iters);
        let mut scratch = LdpcScratch::default();
        let (ok, iters) = code.decode_into(&llrs, max_iters, &mut scratch);
        prop_assert_eq!(ok, ref_ok);
        prop_assert_eq!(iters, ref_iters);
        prop_assert_eq!(&scratch.hard, &ref_hard);
        // The posterior LLRs must match to the bit: min-sum message
        // order is part of the determinism contract.
        for (i, (a, b)) in scratch.total.iter().zip(ref_total.iter()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "total[{}] differs", i);
        }
    }
}

// --------------------------------------------------------- modulation

fn gray(v: usize) -> usize {
    v ^ (v >> 1)
}

fn pam_level_ref(bits: &[u8]) -> i32 {
    let n = bits.len();
    let m = 1usize << n;
    let mut idx = 0usize;
    for &b in bits {
        idx = (idx << 1) | b as usize;
    }
    for r in 0..m {
        if gray(r) == idx {
            return (2 * r as i32 + 1) - m as i32;
        }
    }
    unreachable!("gray code is a bijection")
}

fn axis_scale_ref(modulation: Modulation) -> f32 {
    let m = 1usize << (modulation.bits_per_symbol() / 2);
    let e = ((m * m - 1) as f32) / 3.0 * 2.0;
    1.0 / e.sqrt()
}

/// Pre-rewrite per-symbol mapper.
fn modulate_ref(bits: &[u8], modulation: Modulation) -> Vec<Cplx> {
    let bps = modulation.bits_per_symbol();
    let half = bps / 2;
    let scale = axis_scale_ref(modulation);
    bits.chunks(bps)
        .map(|chunk| {
            let i_bits: Vec<u8> = (0..half).map(|k| chunk[2 * k]).collect();
            let q_bits: Vec<u8> = (0..half).map(|k| chunk[2 * k + 1]).collect();
            Cplx::new(
                pam_level_ref(&i_bits) as f32 * scale,
                pam_level_ref(&q_bits) as f32 * scale,
            )
        })
        .collect()
}

/// Pre-rewrite bit-outer max-log demapper.
fn demodulate_llr_ref(symbols: &[Cplx], modulation: Modulation, noise_var: f32) -> Vec<f32> {
    let half = modulation.bits_per_symbol() / 2;
    let scale = axis_scale_ref(modulation);
    let m = 1usize << half;
    let table: Vec<(f32, usize)> = (0..m)
        .map(|r| (((2 * r + 1) as i32 - m as i32) as f32, gray(r)))
        .collect();
    let sigma2 = (noise_var / 2.0).max(1e-9);
    let mut out = Vec::with_capacity(symbols.len() * modulation.bits_per_symbol());
    for s in symbols {
        let mut axis_llrs = vec![0.0f32; 2 * half];
        for (axis, y) in [(0usize, s.re), (1usize, s.im)] {
            for bit in 0..half {
                let mut best0 = f32::INFINITY;
                let mut best1 = f32::INFINITY;
                for (level, pattern) in &table {
                    let d = y - level * scale;
                    let d2 = d * d;
                    if (pattern >> (half - 1 - bit)) & 1 == 0 {
                        best0 = best0.min(d2);
                    } else {
                        best1 = best1.min(d2);
                    }
                }
                axis_llrs[axis + 2 * bit] = (best1 - best0) / (2.0 * sigma2);
            }
        }
        for k in 0..half {
            out.push(axis_llrs[2 * k]);
            out.push(axis_llrs[1 + 2 * k]);
        }
    }
    out
}

const ALL_MODS: [Modulation; 4] = [
    Modulation::Qpsk,
    Modulation::Qam16,
    Modulation::Qam64,
    Modulation::Qam256,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn modulate_lut_matches_scalar(bits in proptest::collection::vec(0u8..2, 0..30)) {
        for &m in &ALL_MODS {
            let bps = m.bits_per_symbol();
            let take = bits.len() / bps * bps;
            let chunk = &bits[..take];
            let expect = modulate_ref(chunk, m);
            for (a, b) in modulate(chunk, m).iter().zip(expect.iter()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            let packed = modulate_packed(&BitBuf::from_bits(chunk), m);
            for (a, b) in packed.iter().zip(expect.iter()) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn demap_matches_scalar(
        raw in proptest::collection::vec((-1.5f32..1.5, -1.5f32..1.5), 0..40),
        noise_var in 0.001f32..0.5,
    ) {
        let symbols: Vec<Cplx> = raw.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
        for &m in &ALL_MODS {
            let got = DspKernels::scalar().demodulate_llr(&symbols, m, noise_var);
            let expect = demodulate_llr_ref(&symbols, m, noise_var);
            prop_assert_eq!(got.len(), expect.len());
            for (i, (a, b)) in got.iter().zip(expect.iter()).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "llr {} of {:?}", i, m);
            }
        }
    }
}

// ------------------------------------------------- rate matching, bits

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_rate_match_matches_scalar(
        coded in proptest::collection::vec(0u8..2, 1..600),
        e in 1usize..1500,
        rv in 0u8..4,
    ) {
        let expect = rate_match(&coded, e, rv);
        let mut packed = BitBuf::new();
        rate_match_packed(&BitBuf::from_bits(&coded), e, rv, &mut packed);
        prop_assert_eq!(packed.to_bits(), expect);
    }

    #[test]
    fn bitbuf_roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // MSB-first byte packing must invert exactly.
        let buf = BitBuf::from_bytes_msb(&bytes);
        prop_assert_eq!(buf.len(), bytes.len() * 8);
        prop_assert_eq!(buf.to_bytes_msb(), bytes.clone());
        // Bit-vector form round-trips, and random subranges agree.
        let bits = buf.to_bits();
        let rebuilt = BitBuf::from_bits(&bits);
        prop_assert_eq!(rebuilt.to_bytes_msb(), bytes.clone());
        let mut rng = SimRng::new(bytes.len() as u64);
        for _ in 0..8 {
            if bits.is_empty() {
                break;
            }
            let start = rng.below(bits.len() as u64) as usize;
            let len = rng.below((bits.len() - start).min(64) as u64 + 1) as usize;
            let mut sub = BitBuf::new();
            sub.append_range(&buf, start, len);
            prop_assert_eq!(sub.to_bits(), bits[start..start + len].to_vec());
            if len > 0 && len <= 64 {
                let word = buf.get_bits(start, len);
                for (j, &b) in bits[start..start + len].iter().enumerate() {
                    prop_assert_eq!(((word >> j) & 1) as u8, b);
                }
            }
        }
    }
}

// ------------------------------------------- SIMD backend equivalence
//
// The runtime-dispatched backends (DESIGN.md §5h) against the scalar
// oracle, via `DspKernels::forced`. `KernelBackend::all_available()`
// returns only backends this host can run, so on a machine without
// AVX2 these properties degenerate to scalar-vs-scalar and pass
// vacuously — skip-clean by construction. LDPC, demap and BFP are part
// of the always-on exactness contract, so every f32 is compared via
// `to_bits`; AWGN is compared bytewise at tolerance 0 (where SIMD must
// stay disengaged) and statistically under a nonzero tolerance.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ldpc_decode_bit_exact_across_backends(
        k in 8usize..128,
        seed in any::<u64>(),
        snr_db in 0.0f32..6.0,
        max_iters in 1usize..12,
    ) {
        let code = LdpcCode::new(k);
        let mut rng = SimRng::new(seed);
        let info: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let cw = code.encode(&info);
        let sigma2 = 10f32.powf(-snr_db / 10.0);
        let llrs: Vec<f32> = cw
            .iter()
            .map(|&b| {
                let x = if b == 0 { 1.0 } else { -1.0 };
                let y = x + sigma2.sqrt() * rng.gaussian() as f32;
                2.0 * y / sigma2
            })
            .collect();
        let mut ref_scratch = LdpcScratch::default();
        let (ref_ok, ref_iters) =
            DspKernels::scalar().ldpc_decode_into(&code, &llrs, max_iters, &mut ref_scratch);
        for backend in KernelBackend::all_available() {
            let kernels = DspKernels::forced(backend);
            let mut scratch = LdpcScratch::default();
            let (ok, iters) = kernels.ldpc_decode_into(&code, &llrs, max_iters, &mut scratch);
            prop_assert_eq!(ok, ref_ok, "parity outcome on {}", backend);
            prop_assert_eq!(iters, ref_iters, "iteration count on {}", backend);
            prop_assert_eq!(&scratch.hard, &ref_scratch.hard, "hard bits on {}", backend);
            for (i, (a, b)) in scratch.total.iter().zip(ref_scratch.total.iter()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "total[{}] differs on {}",
                    i,
                    backend
                );
            }
        }
    }

    #[test]
    fn demap_bit_exact_across_backends(
        raw in proptest::collection::vec((-1.5f32..1.5, -1.5f32..1.5), 0..64),
        noise_var in 0.001f32..0.5,
    ) {
        let symbols: Vec<Cplx> = raw.iter().map(|&(re, im)| Cplx::new(re, im)).collect();
        for m in [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64, Modulation::Qam256] {
            let expect = DspKernels::scalar().demodulate_llr(&symbols, m, noise_var);
            for backend in KernelBackend::all_available() {
                let got = DspKernels::forced(backend).demodulate_llr(&symbols, m, noise_var);
                prop_assert_eq!(got.len(), expect.len());
                for (i, (a, b)) in got.iter().zip(expect.iter()).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "llr {} of {:?} on {}",
                        i,
                        m,
                        backend
                    );
                }
            }
        }
    }

    #[test]
    fn bfp_bit_exact_across_backends(
        raw in proptest::collection::vec((-4.0f32..4.0, -4.0f32..4.0), SC_PER_PRB),
        amp in 0.01f32..3000.0,
    ) {
        // `amp` sweeps the block through every exponent regime,
        // including the saturating range the AVX2 fast path must punt
        // to scalar on.
        let mut samples = [Cplx::ZERO; SC_PER_PRB];
        for (s, &(re, im)) in samples.iter_mut().zip(raw.iter()) {
            *s = Cplx::new(re * amp, im * amp);
        }
        let ref_prb = DspKernels::scalar().bfp_compress(&samples);
        let ref_out = DspKernels::scalar().bfp_decompress(&ref_prb);
        for backend in KernelBackend::all_available() {
            let kernels = DspKernels::forced(backend);
            let prb = kernels.bfp_compress(&samples);
            prop_assert_eq!(prb, ref_prb, "compressed PRB differs on {}", backend);
            let out = kernels.bfp_decompress(&prb);
            for (i, (a, b)) in out.iter().zip(ref_out.iter()).enumerate() {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "re[{}] on {}", i, backend);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "im[{}] on {}", i, backend);
            }
        }
    }

    #[test]
    fn awgn_byte_exact_across_backends_at_zero_tolerance(
        seed in any::<u64>(),
        snr_db in -2.0f64..30.0,
        n in 1usize..600,
    ) {
        let symbols: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new((i as f32 * 0.37).cos(), (i as f32 * 0.37).sin()))
            .collect();
        let mut ref_ch = AwgnChannel::new(SimRng::new(seed));
        let (ref_out, ref_nv) = DspKernels::scalar().awgn_apply(&mut ref_ch, &symbols, snr_db);
        for backend in KernelBackend::all_available() {
            // tolerance defaults to 0.0: the SIMD sampler must stay
            // disengaged so the noise stream is the golden one.
            let kernels = DspKernels::forced(backend);
            let mut ch = AwgnChannel::new(SimRng::new(seed));
            let (out, nv) = kernels.awgn_apply(&mut ch, &symbols, snr_db);
            prop_assert_eq!(nv.to_bits(), ref_nv.to_bits(), "noise var on {}", backend);
            for (i, (a, b)) in out.iter().zip(ref_out.iter()).enumerate() {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "re[{}] on {}", i, backend);
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "im[{}] on {}", i, backend);
            }
        }
    }

    #[test]
    fn awgn_tolerance_realization_is_statistically_equivalent(
        seed in any::<u64>(),
        snr_db in 3.0f64..20.0,
    ) {
        // Under a nonzero tolerance each backend may use its own
        // sampler; the contract weakens from bitwise to statistical.
        // 16k samples put the empirical noise power within a few
        // percent of E[|n|^2] = nv with overwhelming probability.
        let n = 8192;
        let symbols = vec![Cplx::ZERO; n];
        for backend in KernelBackend::all_available() {
            let kernels = DspKernels::forced(backend).with_tolerance(0.05);
            let mut ch = AwgnChannel::new(SimRng::new(seed));
            let (out, nv) = kernels.awgn_apply(&mut ch, &symbols, snr_db);
            let power: f64 = out.iter().map(|s| s.norm_sq() as f64).sum::<f64>() / n as f64;
            let mean_re: f64 = out.iter().map(|s| s.re as f64).sum::<f64>() / n as f64;
            prop_assert!(
                (power / nv as f64 - 1.0).abs() < 0.1,
                "noise power {} vs nv {} on {}",
                power,
                nv,
                backend
            );
            prop_assert!(
                mean_re.abs() < 0.05 * (nv as f64).sqrt().max(1e-6),
                "DC bias {} on {}",
                mean_re,
                backend
            );
        }
    }
}
