//! Cell and deployment configuration, matching the paper's testbed
//! (Table 1): 100 MHz carrier at 30 kHz SCS (273 PRBs), TDD "DDDSU",
//! 500 µs TTIs.

use slingshot_sim::{Nanos, TddPattern};

/// How faithfully the PHY runs the DSP chain. See DESIGN.md §2 — the
/// full chain for every code block is unaffordable for minute-long
/// stress runs, so two cheaper, calibrated modes exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Encode/decode every code block of every TB (small cells, tests).
    Full,
    /// Encode/decode one representative code block per TB and apply its
    /// outcome to the whole TB. All code blocks of a TB see the same
    /// channel, so per-TB error remains channel-dominated.
    Sampled,
    /// Closed-form BLER model (`phy_dsp::bler`), calibrated against the
    /// full chain. Used for 60 s stress runs (Table 2).
    Abstract,
}

/// Cell configuration shared by L2, PHY, RU, and UEs.
#[derive(Debug, Clone)]
pub struct CellConfig {
    pub cell_id: u16,
    /// 273 PRBs = 100 MHz at 30 kHz SCS.
    pub num_prbs: u16,
    pub tdd: TddPattern,
    /// OFDM data symbols per slot available to the shared channel
    /// (14 minus pilot and control overhead).
    pub data_symbols: u8,
    /// FAPI slot advance: L2 issues requests for slot n at n − advance.
    pub fapi_advance_slots: u64,
    /// The UE's radio-link-failure timeout (paper: 50 ms).
    pub rlf_timeout: Nanos,
    /// Time a UE takes to reattach after RLF (paper measures 6.2 s).
    pub reattach_delay: Nanos,
    /// DSP fidelity mode.
    pub fidelity: Fidelity,
    /// Min-sum iteration budget of PHYs (upgradable, §8.3).
    pub fec_iterations: usize,
    /// Scheduler link-adaptation margin (dB) subtracted from reported
    /// SNR before MCS selection.
    pub la_margin_db: f64,
    /// RLC bearer mode: in-order delivery (TCP-style bearers, PDCP
    /// reordering) vs immediate delivery of complete SDUs (UDP/RTP
    /// bearers).
    pub rlc_ordered: bool,
    /// Massive-MIMO extension (paper §10): slots of per-UE channel
    /// knowledge (precoding/equalization matrices) a PHY must rebuild
    /// before reaching full gain. 0 disables the model (the paper's
    /// small-antenna configuration).
    pub mimo_reconverge_slots: u64,
    /// SNR penalty (dB) while channel knowledge is cold, decaying
    /// linearly over `mimo_reconverge_slots`.
    pub mimo_cold_penalty_db: f64,
}

impl Default for CellConfig {
    fn default() -> CellConfig {
        CellConfig {
            cell_id: 1,
            num_prbs: 273,
            tdd: TddPattern::dddsu(),
            data_symbols: 12,
            fapi_advance_slots: 2,
            rlf_timeout: Nanos::from_millis(50),
            reattach_delay: Nanos::from_millis(6200),
            fidelity: Fidelity::Sampled,
            fec_iterations: 8,
            la_margin_db: 2.0,
            rlc_ordered: true,
            mimo_reconverge_slots: 0,
            mimo_cold_penalty_db: 6.0,
        }
    }
}

impl CellConfig {
    /// A scaled-down cell for unit tests: fewer PRBs keep the full DSP
    /// chain fast.
    pub fn small_test_cell() -> CellConfig {
        CellConfig {
            num_prbs: 24,
            fidelity: Fidelity::Full,
            ..CellConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_sim::SlotKind;

    #[test]
    fn default_matches_paper_testbed() {
        let c = CellConfig::default();
        assert_eq!(c.num_prbs, 273);
        assert_eq!(c.tdd.len(), 5);
        assert_eq!(c.tdd.kind(4), SlotKind::Uplink);
        assert_eq!(c.rlf_timeout, Nanos::from_millis(50));
        assert_eq!(c.reattach_delay, Nanos::from_millis(6200));
    }

    #[test]
    fn small_cell_uses_full_fidelity() {
        let c = CellConfig::small_test_cell();
        assert_eq!(c.fidelity, Fidelity::Full);
        assert!(c.num_prbs < 50);
    }
}
