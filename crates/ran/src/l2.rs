//! The L2 node: MAC scheduler + RLC + FAPI client (the CapGemini-L2
//! stand-in). It issues `UL_TTI.request` / `DL_TTI.request` for every
//! slot (with the configured advance), packs downlink user traffic
//! into transport blocks, reassembles uplink, and runs HARQ via the
//! [`crate::sched::Scheduler`].

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes};

use slingshot_fapi::{ConfigRequest, DlTtiRequest, FapiMsg, TxDataRequest, UlTtiRequest};
use slingshot_sim::{Ctx, Node, NodeId, SlotClock, SlotId, SlotKind, TraceEventKind};

use crate::cell::CellConfig;
use crate::msg::{timer_tokens, CtlMsg, Msg, UserPacket};
use crate::rlc::{RlcRx, RlcTx};
use crate::sched::{Policy, Scheduler};

/// MAC SDU marker bytes: RLC data vs padding.
pub const MAC_MARKER_DATA: u8 = 0x01;
pub const MAC_MARKER_PADDING: u8 = 0x00;

/// Build a MAC PDU of exactly `tbs` bytes from an RLC queue (padding
/// if short; pure padding when the queue is empty).
pub fn build_mac_pdu(rlc: &mut RlcTx, tbs: usize) -> Bytes {
    let mut out = Vec::with_capacity(tbs);
    if let Some(sdu) = rlc.build_tb(tbs.saturating_sub(1)) {
        out.put_u8(MAC_MARKER_DATA);
        out.extend_from_slice(&sdu);
    } else {
        out.put_u8(MAC_MARKER_PADDING);
    }
    out.resize(tbs, 0);
    Bytes::from(out)
}

/// Parse a MAC PDU; returns the RLC SDU bytes when it carries data.
pub fn parse_mac_pdu(pdu: &[u8]) -> Option<&[u8]> {
    match pdu.split_first() {
        Some((&MAC_MARKER_DATA, rest)) => Some(rest),
        _ => None,
    }
}

/// Per-UE L2 state.
struct UeCtx {
    dl_rlc: RlcTx,
    ul_rlc: RlcRx,
    connected: bool,
}

fn new_rlc_rx(ordered: bool) -> RlcRx {
    if ordered {
        RlcRx::new()
    } else {
        RlcRx::unordered()
    }
}

/// The L2 node.
pub struct L2Node {
    cell: CellConfig,
    clock: SlotClock,
    ru_id: u8,
    /// Where FAPI requests go: the L2-side Orion, or a PHY directly.
    fapi_peer: Option<NodeId>,
    /// The core network node (user-plane + signaling).
    core: Option<NodeId>,
    pub sched: Scheduler,
    ues: BTreeMap<u16, UeCtx>,
    started: bool,
    /// Stats.
    pub ul_packets_up: u64,
    pub dl_packets_queued: u64,
    pub slots_driven: u64,
}

impl L2Node {
    pub fn new(cell: CellConfig, clock: SlotClock, ru_id: u8) -> L2Node {
        let sched = Scheduler::new(
            Policy::ProportionalFair,
            cell.la_margin_db,
            cell.fec_iterations,
        );
        L2Node {
            cell,
            clock,
            ru_id,
            fapi_peer: None,
            core: None,
            sched,
            ues: BTreeMap::new(),
            started: false,
            ul_packets_up: 0,
            dl_packets_queued: 0,
            slots_driven: 0,
        }
    }

    pub fn wire(&mut self, fapi_peer: NodeId, core: NodeId) {
        self.fapi_peer = Some(fapi_peer);
        self.core = Some(core);
    }

    /// Pre-register a UE as attached from t=0 (initial camping).
    pub fn preattach_ue(&mut self, rnti: u16, initial_snr_db: f64) {
        self.sched.add_ue(rnti, initial_snr_db);
        let ordered = self.cell.rlc_ordered;
        self.ues.insert(
            rnti,
            UeCtx {
                dl_rlc: RlcTx::new(),
                ul_rlc: new_rlc_rx(ordered),
                connected: true,
            },
        );
    }

    fn send_fapi(&mut self, ctx: &mut Ctx<'_, Msg>, msg: FapiMsg) {
        if let Some(peer) = self.fapi_peer {
            ctx.send(peer, Msg::FapiShm(msg));
        }
    }

    fn connected_ues(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .ues
            .iter()
            .filter(|(_, u)| u.connected)
            .map(|(r, _)| *r)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drive one slot: issue the FAPI requests for `target` (= now +
    /// advance).
    fn drive_slot(&mut self, ctx: &mut Ctx<'_, Msg>, target_abs: u64) {
        self.slots_driven += 1;
        let slot = SlotId::from_absolute(target_abs);
        let kind = self.cell.tdd.kind(target_abs);
        let data_symbols = self.cell.data_symbols;
        let num_prbs = self.cell.num_prbs;
        let ues = self.connected_ues();

        // Uplink grants.
        let mut ul = UlTtiRequest::null(self.ru_id, slot);
        if kind == SlotKind::Uplink && !ues.is_empty() {
            for (rnti, start, num) in self.sched.split_prbs(&ues, num_prbs) {
                if let Some(grant) = self.sched.ul_grant(rnti, start, num, data_symbols) {
                    ul.pusch.push(grant.pdu);
                }
            }
        }
        self.send_fapi(ctx, FapiMsg::UlTti(ul));

        // Downlink assignments: only UEs with queued data get PRBs.
        let mut dl = DlTtiRequest::null(self.ru_id, slot);
        let mut tx = TxDataRequest {
            ru_id: self.ru_id,
            slot,
            tbs: Vec::new(),
        };
        if matches!(kind, SlotKind::Downlink) {
            let backlogged: Vec<u16> = ues
                .iter()
                .copied()
                .filter(|r|

                    // Retransmissions also need PRBs even with an empty
                    // queue.
                    self.ues[r].dl_rlc.backlog() > 0
                        || self.sched.ues[r].dl_inflight() > 0)
                .collect();
            if !backlogged.is_empty() {
                for (rnti, start, num) in self.sched.split_prbs(&backlogged, num_prbs) {
                    let ue = self.ues.get_mut(&rnti).expect("backlogged ue");
                    let rlc = &mut ue.dl_rlc;
                    if let Some((pdu, payload)) =
                        self.sched.dl_assign(rnti, start, num, data_symbols, |tbs| {
                            Some(build_mac_pdu(rlc, tbs))
                        })
                    {
                        dl.pdsch.push(pdu);
                        tx.tbs.push((rnti, payload));
                    }
                }
            }
        }
        let has_data = !dl.pdsch.is_empty();
        self.send_fapi(ctx, FapiMsg::DlTti(dl));
        if has_data {
            self.send_fapi(ctx, FapiMsg::TxData(tx));
        }
    }

    fn on_fapi(&mut self, ctx: &mut Ctx<'_, Msg>, msg: FapiMsg) {
        match msg {
            FapiMsg::CrcInd(ind) => {
                for c in ind.crcs {
                    self.sched
                        .on_ul_crc(c.rnti, c.harq_id, c.ok, c.snr_x10 as f64 / 10.0);
                }
            }
            FapiMsg::RxData(ind) => {
                let now = ctx.now();
                for tb in ind.tbs {
                    let Some(ue) = self.ues.get_mut(&tb.rnti) else {
                        continue;
                    };
                    if let Some(sdu) = parse_mac_pdu(&tb.payload) {
                        for packet in ue.ul_rlc.on_tb(now, sdu) {
                            self.ul_packets_up += 1;
                            if let Some(core) = self.core {
                                ctx.send(
                                    core,
                                    Msg::User(UserPacket {
                                        rnti: tb.rnti,
                                        downlink: false,
                                        payload: packet,
                                    }),
                                );
                            }
                        }
                    }
                }
            }
            FapiMsg::UciInd(ind) => {
                for a in ind.acks {
                    self.sched.on_dl_ack(a.rnti, a.harq_id, a.ack);
                }
            }
            _ => {}
        }
    }
}

impl Node<Msg> for L2Node {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Configure + start the PHY path for our RU.
        self.send_fapi(
            ctx,
            FapiMsg::Config(ConfigRequest {
                ru_id: self.ru_id,
                cell_id: self.cell.cell_id,
                num_prbs: self.cell.num_prbs,
                tdd_pattern: "DDDSU".into(),
            }),
        );
        self.send_fapi(ctx, FapiMsg::Start { ru_id: self.ru_id });
        self.started = true;
        ctx.timer_at(
            self.clock.next_slot_start(ctx.now()),
            timer_tokens::SLOT_TICK,
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token != timer_tokens::SLOT_TICK {
            return;
        }
        let now = ctx.now();
        let abs = self.clock.absolute_slot(now);
        self.sched.tick(30);
        self.drive_slot(ctx, abs + self.cell.fapi_advance_slots);
        // Release any uplink packets held past their reassembly window.
        let rntis: Vec<u16> = self.ues.keys().copied().collect();
        for rnti in rntis {
            let ue = self.ues.get_mut(&rnti).expect("ue exists");
            let released = ue.ul_rlc.poll_expired(now);
            for packet in released {
                self.ul_packets_up += 1;
                if let Some(core) = self.core {
                    ctx.send(
                        core,
                        Msg::User(UserPacket {
                            rnti,
                            downlink: false,
                            payload: packet,
                        }),
                    );
                }
            }
        }
        ctx.timer_at(self.clock.slot_start(abs + 1), timer_tokens::SLOT_TICK);
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::FapiShm(f) => self.on_fapi(ctx, f),
            Msg::User(p) if p.downlink => {
                if let Some(ue) = self.ues.get_mut(&p.rnti) {
                    if ue.connected {
                        ue.dl_rlc.enqueue(p.payload);
                        self.dl_packets_queued += 1;
                    }
                }
            }
            Msg::Ctl(CtlMsg::AttachRequest { rnti }) => {
                // (Re)admit the UE: reset any stale HARQ/RLC state.
                let ordered = self.cell.rlc_ordered;
                let entry = self.ues.entry(rnti).or_insert_with(|| UeCtx {
                    dl_rlc: RlcTx::new(),
                    ul_rlc: new_rlc_rx(ordered),
                    connected: false,
                });
                entry.connected = true;
                entry.ul_rlc = new_rlc_rx(ordered);
                if !self.sched.ues.contains_key(&rnti) {
                    self.sched.add_ue(rnti, 15.0);
                }
                self.sched.reset_ue(rnti);
                ctx.trace(TraceEventKind::HarqReset, rnti as u64, 0);
                // Accept back over the signaling path the request came
                // in on (RRC setup completion toward the UE).
                if from != NodeId::EXTERNAL {
                    ctx.send_in(
                        from,
                        slingshot_sim::Nanos::from_micros(500),
                        Msg::Ctl(CtlMsg::AttachAccept { rnti }),
                    );
                }
            }
            Msg::Ctl(CtlMsg::Detach { rnti }) => {
                let ordered = self.cell.rlc_ordered;
                if let Some(ue) = self.ues.get_mut(&rnti) {
                    ue.connected = false;
                    ue.dl_rlc = RlcTx::new();
                    ue.ul_rlc = new_rlc_rx(ordered);
                }
                self.sched.reset_ue(rnti);
                ctx.trace(TraceEventKind::HarqReset, rnti as u64, 0);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_pdu_roundtrip_with_data() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes::from_static(b"hello user plane"));
        let pdu = build_mac_pdu(&mut rlc, 100);
        assert_eq!(pdu.len(), 100);
        let sdu = parse_mac_pdu(&pdu).unwrap();
        let mut rx = RlcRx::new();
        let got = rx.on_tb(slingshot_sim::Nanos::ZERO, sdu);
        assert_eq!(got, vec![Bytes::from_static(b"hello user plane")]);
    }

    #[test]
    fn mac_pdu_padding_when_empty() {
        let mut rlc = RlcTx::new();
        let pdu = build_mac_pdu(&mut rlc, 50);
        assert_eq!(pdu.len(), 50);
        assert_eq!(pdu[0], MAC_MARKER_PADDING);
        assert!(parse_mac_pdu(&pdu).is_none());
    }

    #[test]
    fn mac_pdu_exact_fill() {
        let mut rlc = RlcTx::new();
        rlc.enqueue(Bytes::from(vec![9u8; 5000]));
        let pdu = build_mac_pdu(&mut rlc, 256);
        assert_eq!(pdu.len(), 256);
        assert!(rlc.backlog() > 0, "remainder stays queued");
    }
}
