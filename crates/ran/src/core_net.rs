//! The 5G core network stub and the application server.
//!
//! Only the paths the paper's experiments exercise are modeled: the
//! user plane (server ↔ core ↔ L2) with configurable backhaul latency,
//! and attach signaling relays. The 6.2 s reattach cost itself lives
//! in the UE state machine (measured end-to-end in the paper, so we
//! model the total rather than apportioning it; DESIGN.md §2).

use std::collections::{BTreeMap, HashMap};

use slingshot_sim::{Ctx, Nanos, Node, NodeId};
use slingshot_transport::UserApp;

use crate::msg::{timer_tokens, Msg, UserPacket};

/// The core-network relay node.
pub struct CoreNode {
    l2: Option<NodeId>,
    server: Option<NodeId>,
    /// Per-UE routing for multi-gNB deployments (falls back to `l2`).
    rnti_routes: HashMap<u16, NodeId>,
    pub up_relayed: u64,
    pub down_relayed: u64,
}

impl CoreNode {
    pub fn new() -> CoreNode {
        CoreNode {
            l2: None,
            server: None,
            rnti_routes: HashMap::new(),
            up_relayed: 0,
            down_relayed: 0,
        }
    }

    pub fn wire(&mut self, l2: NodeId, server: NodeId) {
        self.l2 = Some(l2);
        self.server = Some(server);
    }

    /// Route a specific UE's downlink to a specific gNB (L2).
    pub fn route_ue(&mut self, rnti: u16, l2: NodeId) {
        self.rnti_routes.insert(rnti, l2);
    }

    fn downlink_target(&self, rnti: u16) -> Option<NodeId> {
        self.rnti_routes.get(&rnti).copied().or(self.l2)
    }
}

impl Default for CoreNode {
    fn default() -> Self {
        CoreNode::new()
    }
}

impl Node<Msg> for CoreNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::User(p) => {
                let dst = if p.downlink {
                    self.down_relayed += 1;
                    self.downlink_target(p.rnti)
                } else {
                    self.up_relayed += 1;
                    self.server
                };
                if let Some(dst) = dst {
                    ctx.send(dst, Msg::User(p));
                }
            }
            Msg::Ctl(c) => {
                // Signaling relays both ways (Attach flows UE→L2
                // directly in our model; accepts flow L2→core→? —
                // forward accepts toward the L2 side's UEs is handled
                // by the deployment wiring; here we bounce them back).
                if let Some(l2) = self.l2 {
                    ctx.send(l2, Msg::Ctl(c));
                }
            }
            _ => {}
        }
    }
}

/// The application server: hosts the far end of every traffic app,
/// keyed by the UE it serves.
pub struct AppServerNode {
    core: Option<NodeId>,
    apps: BTreeMap<u16, Vec<Box<dyn UserApp>>>,
    /// Poll cadence for paced sources.
    poll_interval: Nanos,
    pub rx_packets: u64,
    pub tx_packets: u64,
}

impl AppServerNode {
    pub fn new() -> AppServerNode {
        AppServerNode {
            core: None,
            apps: BTreeMap::new(),
            poll_interval: Nanos::from_micros(250),
            rx_packets: 0,
            tx_packets: 0,
        }
    }

    pub fn wire(&mut self, core: NodeId) {
        self.core = Some(core);
    }

    /// Host an app serving UE `rnti`.
    pub fn add_app(&mut self, rnti: u16, app: Box<dyn UserApp>) {
        self.apps.entry(rnti).or_default().push(app);
    }

    /// Borrow a hosted app (post-run inspection).
    pub fn app<T: 'static>(&self, rnti: u16, idx: usize) -> Option<&T> {
        let app = self.apps.get(&rnti)?.get(idx)?;
        (app.as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    fn poll_all(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let core = self.core;
        for (rnti, apps) in self.apps.iter_mut() {
            for app in apps {
                for payload in app.poll_transmit(now) {
                    self.tx_packets += 1;
                    if let Some(core) = core {
                        ctx.send(
                            core,
                            Msg::User(UserPacket {
                                rnti: *rnti,
                                downlink: true,
                                payload,
                            }),
                        );
                    }
                }
            }
        }
    }
}

impl Default for AppServerNode {
    fn default() -> Self {
        AppServerNode::new()
    }
}

impl Node<Msg> for AppServerNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(self.poll_interval, timer_tokens::APP_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token == timer_tokens::APP_POLL {
            self.poll_all(ctx);
            ctx.timer(self.poll_interval, timer_tokens::APP_POLL);
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::User(p) = msg {
            if !p.downlink {
                self.rx_packets += 1;
                let now = ctx.now();
                if let Some(apps) = self.apps.get_mut(&p.rnti) {
                    for app in apps {
                        app.on_packet(now, &p.payload);
                    }
                }
                // Reactive apps (echo responders, video feedback) may
                // have something to send immediately.
                self.poll_all(ctx);
            }
        }
    }
}
