//! The radio unit (RU) model.
//!
//! The RU is deliberately dumb, like the commercial O-RAN radios the
//! paper targets (§9: "special logic in the RUs ... is not possible
//! with today's commercial radios"): it digitizes uplink radio into
//! fronthaul packets addressed to a *virtual PHY MAC address* (§5.1),
//! and transmits downlink only when its PHY feeds it fronthaul — when
//! the PHY dies, the cell goes dark and UEs start their RLF timers.

use std::collections::HashMap;

use slingshot_fronthaul::{
    compress_symbol_with, decompress_prbs_with, fh_header, CPlaneMsg, DciEntry, Direction,
    FhMessage, ShadowMsg, UPlaneMsg, UciMsg,
};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_phy_dsp::{Cplx, SC_PER_PRB};
use slingshot_sim::{Ctx, Node, NodeId, SlotClock, SlotId, SLOT_DURATION};

use crate::fidelity::TbSignal;
use crate::msg::{timer_tokens, DlAllocation, Msg, RadioDlBurst, RadioUlBurst, AIR_LATENCY};
use slingshot_phy_dsp::DspKernels;

/// PRBs per U-plane message chunk (keeps frames under typical MTU:
/// 48 × 28 B ≈ 1.3 KB).
pub const PRBS_PER_CHUNK: usize = 48;

/// In-assembly downlink state for one slot.
#[derive(Debug, Default)]
struct DlSlotBuf {
    /// Any downlink fronthaul seen for this slot ⇒ the PHY scheduled it.
    alive: bool,
    dcis: Vec<DciEntry>,
    /// Keyed by the allocation's absolute start PRB.
    chunks: HashMap<u16, Vec<(u8, Vec<Cplx>)>>,
    /// Shadow payloads keyed by RNTI.
    shadows: HashMap<u16, (f64, bytes::Bytes)>,
}

/// The RU node.
pub struct RuNode {
    pub ru_id: u8,
    clock: SlotClock,
    /// Ethernet peer (the switch).
    switch: Option<NodeId>,
    /// Attached UEs (radio broadcast domain).
    ues: Vec<NodeId>,
    mac: MacAddr,
    /// Where uplink fronthaul is addressed: the virtual PHY address by
    /// default (the in-switch middlebox translates it).
    pub uplink_dst: MacAddr,
    dl_slots: HashMap<u16, DlSlotBuf>,
    ul_pending: Vec<RadioUlBurst>,
    /// Stats.
    pub bursts_tx: u64,
    pub slots_dark: u64,
    pub ul_frames_tx: u64,
}

impl RuNode {
    pub fn new(ru_id: u8, clock: SlotClock) -> RuNode {
        RuNode {
            ru_id,
            clock,
            switch: None,
            ues: Vec::new(),
            mac: MacAddr::for_ru(ru_id),
            uplink_dst: MacAddr::virtual_phy(ru_id),
            dl_slots: HashMap::new(),
            ul_pending: Vec::new(),
            bursts_tx: 0,
            slots_dark: 0,
            ul_frames_tx: 0,
        }
    }

    pub fn wire(&mut self, switch: NodeId, ues: Vec<NodeId>) {
        self.switch = Some(switch);
        self.ues = ues;
    }

    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    fn send_fh(&mut self, ctx: &mut Ctx<'_, Msg>, msg: &FhMessage) {
        let frame = Frame::new(self.uplink_dst, self.mac, EtherType::Ecpri, msg.to_bytes());
        if let Some(sw) = self.switch {
            ctx.send(sw, Msg::Eth(frame));
            self.ul_frames_tx += 1;
        }
    }

    /// Pack one uplink burst into fronthaul messages.
    fn uplink_to_fronthaul(&mut self, ctx: &mut Ctx<'_, Msg>, burst: RadioUlBurst) {
        let slot = burst.slot;
        // Compressed IQ chunks (pilots ‖ data as one flat stream),
        // tagged with the allocation's absolute start PRB and a chunk
        // index in the symbol field. The burst is consumed: its pilot
        // buffer becomes the flat scratch, so nothing is cloned here.
        let TbSignal {
            pilots: mut flat,
            symbols,
            shadow,
            snr_db,
        } = burst.signal;
        flat.extend_from_slice(&symbols);
        // Pad to a whole PRB; chunk boundaries then stay PRB-aligned.
        while !flat.len().is_multiple_of(SC_PER_PRB) {
            flat.push(Cplx::ZERO);
        }
        let kernels = DspKernels::from_config(ctx.kernel_config());
        let samples_per_chunk = PRBS_PER_CHUNK * SC_PER_PRB;
        for (idx, chunk) in flat.chunks(samples_per_chunk).enumerate() {
            let msg = FhMessage::UPlane(UPlaneMsg {
                hdr: fh_header(Direction::Uplink, slot, idx as u8, self.ru_id),
                start_prb: burst.start_prb,
                prbs: compress_symbol_with(kernels, chunk),
            });
            self.send_fh(ctx, &msg);
        }
        if !shadow.is_empty() {
            let msg = FhMessage::Shadow(ShadowMsg {
                hdr: fh_header(Direction::Uplink, slot, 0, self.ru_id),
                rnti: burst.rnti,
                snr_db_x100: (snr_db * 100.0) as i32,
                data: shadow,
            });
            self.send_fh(ctx, &msg);
        }
        if !burst.ucis.is_empty() {
            let msg = FhMessage::Uci(UciMsg {
                hdr: fh_header(Direction::Uplink, slot, 0, self.ru_id),
                entries: burst.ucis,
            });
            self.send_fh(ctx, &msg);
        }
    }

    /// Emit the over-the-air downlink burst for a slot, if the PHY fed
    /// us fronthaul for it.
    fn radiate(&mut self, ctx: &mut Ctx<'_, Msg>, slot: SlotId) {
        let scalar = (slot.sfn % 256) * 20 + slot.subframe as u16 * 2 + slot.slot as u16;
        let Some(mut buf) = self.dl_slots.remove(&scalar) else {
            self.slots_dark += 1;
            return;
        };
        if !buf.alive {
            self.slots_dark += 1;
            return;
        }
        let mut pdsch = Vec::new();
        for dci in buf.dcis.iter().filter(|d| !d.uplink) {
            // Reassemble this allocation's samples from its chunks.
            let mut samples = Vec::new();
            if let Some(mut chunks) = buf.chunks.remove(&dci.start_prb) {
                chunks.sort_by_key(|(idx, _)| *idx);
                for (_, c) in chunks {
                    samples.extend(c);
                }
            }
            let pilot_len = dci.num_prb as usize * SC_PER_PRB;
            let (pilots, symbols) = if samples.len() >= pilot_len {
                let symbols = samples.split_off(pilot_len);
                (samples, symbols)
            } else {
                (Vec::new(), Vec::new())
            };
            let (snr_hint, shadow) = buf
                .shadows
                .get(&dci.rnti)
                .cloned()
                .unwrap_or((f64::NAN, bytes::Bytes::new()));
            pdsch.push(DlAllocation {
                rnti: dci.rnti,
                start_prb: dci.start_prb,
                num_prb: dci.num_prb,
                signal: TbSignal {
                    pilots,
                    symbols,
                    shadow,
                    snr_db: snr_hint,
                },
            });
        }
        let burst = RadioDlBurst {
            ru_id: self.ru_id,
            slot,
            dcis: buf.dcis,
            pdsch,
        };
        self.bursts_tx += 1;
        for ue in self.ues.clone() {
            ctx.send_in(
                ue,
                AIR_LATENCY,
                Msg::RadioDl(RadioDlBurst {
                    ru_id: burst.ru_id,
                    slot: burst.slot,
                    dcis: burst.dcis.clone(),
                    pdsch: burst.pdsch.clone(),
                }),
            );
        }
    }

    fn on_dl_fronthaul(&mut self, kernels: DspKernels, msg: FhMessage) {
        let scalar = msg.hdr().slot_scalar();
        let buf = self.dl_slots.entry(scalar).or_default();
        buf.alive = true;
        match msg {
            FhMessage::CPlane(CPlaneMsg { .. }) => {}
            FhMessage::Dci(d) => buf.dcis.extend(d.entries),
            FhMessage::UPlane(u) => {
                buf.chunks
                    .entry(u.start_prb)
                    .or_default()
                    .push((u.hdr.symbol, decompress_prbs_with(kernels, &u.prbs)));
            }
            FhMessage::Shadow(s) => {
                buf.shadows
                    .insert(s.rnti, (s.snr_db_x100 as f64 / 100.0, s.data));
            }
            FhMessage::Uci(_) => {} // uplink-only; ignore
        }
        // Garbage-collect stale slots (keep a window of ~64 slots).
        if self.dl_slots.len() > 256 {
            let min_keep = scalar.wrapping_sub(64);
            self.dl_slots.retain(|k, _| k.wrapping_sub(min_keep) < 128);
        }
    }
}

impl Node<Msg> for RuNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer_at(
            self.clock.next_slot_start(ctx.now()),
            timer_tokens::SLOT_TICK,
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token != timer_tokens::SLOT_TICK {
            return;
        }
        let now = ctx.now();
        let slot = self.clock.slot_id(now);
        // 1. Radiate downlink for the slot that just began.
        self.radiate(ctx, slot);
        // 2. Forward uplink captured during the previous slot.
        for burst in std::mem::take(&mut self.ul_pending) {
            self.uplink_to_fronthaul(ctx, burst);
        }
        ctx.timer(SLOT_DURATION, timer_tokens::SLOT_TICK);
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::Eth(frame) => {
                if frame.ethertype != EtherType::Ecpri || frame.dst != self.mac {
                    return;
                }
                if let Some(fh) = FhMessage::from_bytes(&frame.payload) {
                    if fh.direction() == Direction::Downlink {
                        let kernels = DspKernels::from_config(ctx.kernel_config());
                        self.on_dl_fronthaul(kernels, fh);
                    }
                }
            }
            Msg::RadioUl(burst) if burst.ru_id == self.ru_id => {
                self.ul_pending.push(burst);
            }
            _ => {}
        }
    }
}
