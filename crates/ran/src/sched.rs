//! The MAC scheduler: link adaptation, HARQ process management, and
//! per-slot grant construction. Pure state machines (no engine types)
//! so they are unit-testable in isolation; the L2 node drives them.

use std::collections::BTreeMap;

use bytes::Bytes;

use slingshot_fapi::{mcs_for_snr, tbs_bytes, PdschPdu, PuschPdu};
use slingshot_phy_dsp::MAX_HARQ_TX;

/// Scheduling policy for splitting PRBs among UEs with traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Equal split among eligible UEs.
    RoundRobin,
    /// Weight PRBs by inverse recent throughput (proportional fair).
    ProportionalFair,
}

/// Per-UE scheduler state.
#[derive(Debug)]
pub struct UeSchedState {
    pub rnti: u16,
    /// EWMA of PHY-reported uplink SNR (dB).
    pub ul_snr_db: f64,
    /// Assumed downlink SNR (dB); updated from UE measurement reports
    /// (we reuse the uplink estimate, a common TDD reciprocity shortcut).
    pub dl_snr_db: f64,
    /// EWMA throughput for PF (bytes/slot).
    pub avg_tput: f64,
    /// Uplink HARQ processes: harq_id → in-flight transmission state.
    ul_harq: BTreeMap<u8, HarqTxState>,
    /// Downlink HARQ processes (payload retained for retransmission).
    dl_harq: BTreeMap<u8, DlHarqState>,
    /// Last NDI value used per HARQ process — persists across process
    /// completion so the *toggle* (not the value) marks new data.
    ul_last_ndi: BTreeMap<u8, bool>,
    dl_last_ndi: BTreeMap<u8, bool>,
    next_ul_harq: u8,
    next_dl_harq: u8,
    /// Whether the UE currently has uplink data (buffer status).
    pub ul_backlog_hint: bool,
}

#[derive(Debug, Clone)]
struct HarqTxState {
    ndi: bool,
    rv_idx: u8,
    tx_count: u8,
    mcs: u8,
    tb_bytes: u32,
    /// A transmission is in flight; hold retransmissions until its
    /// feedback arrives (the HARQ round-trip).
    awaiting: bool,
    /// Slots spent awaiting feedback (expiry guard: feedback can be
    /// lost outright when a PHY crashes mid-pipeline).
    age: u16,
}

#[derive(Debug, Clone)]
struct DlHarqState {
    ndi: bool,
    rv_idx: u8,
    tx_count: u8,
    mcs: u8,
    payload: Bytes,
    awaiting: bool,
    age: u16,
}

/// Redundancy-version sequence used across HARQ retransmissions
/// (38.214's usual 0, 2, 3, 1).
pub const RV_SEQUENCE: [u8; 4] = [0, 2, 3, 1];

impl UeSchedState {
    pub fn new(rnti: u16, initial_snr_db: f64) -> UeSchedState {
        UeSchedState {
            rnti,
            ul_snr_db: initial_snr_db,
            dl_snr_db: initial_snr_db,
            avg_tput: 1.0,
            ul_harq: BTreeMap::new(),
            dl_harq: BTreeMap::new(),
            ul_last_ndi: BTreeMap::new(),
            dl_last_ndi: BTreeMap::new(),
            next_ul_harq: 0,
            next_dl_harq: 0,
            ul_backlog_hint: true,
        }
    }

    /// Update uplink SNR from a CRC.indication report.
    pub fn report_ul_snr(&mut self, snr_db: f64) {
        const ALPHA: f64 = 0.1;
        self.ul_snr_db += ALPHA * (snr_db - self.ul_snr_db);
        self.dl_snr_db = self.ul_snr_db;
    }

    /// Number of uplink HARQ processes awaiting an outcome.
    pub fn ul_inflight(&self) -> usize {
        self.ul_harq.len()
    }

    pub fn dl_inflight(&self) -> usize {
        self.dl_harq.len()
    }
}

/// Outcome of asking the scheduler for an uplink grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UlGrant {
    pub pdu: PuschPdu,
    /// True if this is a retransmission of a previous TB.
    pub is_retx: bool,
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    pub policy: Policy,
    pub ues: BTreeMap<u16, UeSchedState>,
    /// Link-adaptation margin (dB).
    pub la_margin_db: f64,
    /// Decoder iterations assumed for MCS selection.
    pub fec_iterations: usize,
    /// Counters.
    pub ul_retx: u64,
    pub ul_new_tx: u64,
    pub dl_retx: u64,
    pub dl_new_tx: u64,
    /// HARQ series abandoned after MAX_HARQ_TX attempts.
    pub ul_harq_failures: u64,
    pub dl_harq_failures: u64,
}

impl Scheduler {
    pub fn new(policy: Policy, la_margin_db: f64, fec_iterations: usize) -> Scheduler {
        Scheduler {
            policy,
            ues: BTreeMap::new(),
            la_margin_db,
            fec_iterations,
            ul_retx: 0,
            ul_new_tx: 0,
            dl_retx: 0,
            dl_new_tx: 0,
            ul_harq_failures: 0,
            dl_harq_failures: 0,
        }
    }

    pub fn add_ue(&mut self, rnti: u16, initial_snr_db: f64) {
        self.ues
            .insert(rnti, UeSchedState::new(rnti, initial_snr_db));
    }

    pub fn remove_ue(&mut self, rnti: u16) {
        self.ues.remove(&rnti);
    }

    /// Split `total_prbs` among the given UEs according to policy.
    /// Returns (rnti, start_prb, num_prb) triples.
    pub fn split_prbs(&self, eligible: &[u16], total_prbs: u16) -> Vec<(u16, u16, u16)> {
        if eligible.is_empty() || total_prbs == 0 {
            return Vec::new();
        }
        let weights: Vec<f64> = eligible
            .iter()
            .map(|r| match self.policy {
                Policy::RoundRobin => 1.0,
                Policy::ProportionalFair => {
                    let ue = &self.ues[r];
                    // PF metric: achievable rate / average throughput.
                    let rate = 2f64.powf(ue.dl_snr_db / 10.0).min(256.0);
                    (rate / ue.avg_tput.max(1.0)).max(1e-6)
                }
            })
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut out = Vec::with_capacity(eligible.len());
        let mut start = 0u16;
        for (i, rnti) in eligible.iter().enumerate() {
            let share = if i + 1 == eligible.len() {
                total_prbs - start
            } else {
                ((total_prbs as f64 * weights[i] / wsum).floor() as u16).min(total_prbs - start)
            };
            if share > 0 {
                out.push((*rnti, start, share));
                start += share;
            }
        }
        out
    }

    /// Build an uplink grant for a UE in a UL slot: retransmission of a
    /// failed HARQ process if one is pending, otherwise new data sized
    /// by link adaptation.
    pub fn ul_grant(
        &mut self,
        rnti: u16,
        start_prb: u16,
        num_prb: u16,
        data_symbols: u8,
    ) -> Option<UlGrant> {
        let la_margin = self.la_margin_db;
        let iters = self.fec_iterations;
        let ue = self.ues.get_mut(&rnti)?;
        // Pending retransmission takes priority.
        let retx_id = ue
            .ul_harq
            .iter()
            .find(|(_, s)| s.rv_idx > 0 && !s.awaiting)
            .map(|(id, _)| *id);
        if let Some(id) = retx_id {
            let st = ue.ul_harq.get_mut(&id).expect("retx state");
            let pdu = PuschPdu {
                rnti,
                harq_id: id,
                ndi: st.ndi,
                rv: RV_SEQUENCE[st.rv_idx as usize % 4],
                mcs: st.mcs,
                start_prb,
                num_prb,
                tb_bytes: st.tb_bytes,
            };
            st.tx_count += 1;
            st.awaiting = true;
            st.age = 0;
            self.ul_retx += 1;
            return Some(UlGrant { pdu, is_retx: true });
        }
        // New transmission on a free HARQ process.
        if ue.ul_harq.len() >= 8 {
            return None; // all processes awaiting outcomes
        }
        let mut harq_id = ue.next_ul_harq;
        while ue.ul_harq.contains_key(&harq_id) {
            harq_id = (harq_id + 1) % 16;
        }
        ue.next_ul_harq = (harq_id + 1) % 16;
        let mcs = mcs_for_snr(ue.ul_snr_db, la_margin, iters);
        let tb = tbs_bytes(mcs, num_prb, data_symbols) as u32;
        let ndi = !ue.ul_last_ndi.get(&harq_id).copied().unwrap_or(true);
        ue.ul_last_ndi.insert(harq_id, ndi);
        ue.ul_harq.insert(
            harq_id,
            HarqTxState {
                ndi,
                rv_idx: 0,
                tx_count: 1,
                mcs,
                tb_bytes: tb,
                awaiting: true,
                age: 0,
            },
        );
        self.ul_new_tx += 1;
        Some(UlGrant {
            pdu: PuschPdu {
                rnti,
                harq_id,
                ndi,
                rv: RV_SEQUENCE[0],
                mcs,
                start_prb,
                num_prb,
                tb_bytes: tb,
            },
            is_retx: false,
        })
    }

    /// Handle an uplink CRC outcome. Returns `true` if the HARQ series
    /// ended (success or abandonment).
    pub fn on_ul_crc(&mut self, rnti: u16, harq_id: u8, ok: bool, snr_db: f64) -> bool {
        let Some(ue) = self.ues.get_mut(&rnti) else {
            return true;
        };
        ue.report_ul_snr(snr_db);
        let Some(st) = ue.ul_harq.get_mut(&harq_id) else {
            return true;
        };
        st.awaiting = false;
        if ok {
            ue.ul_harq.remove(&harq_id);
            return true;
        }
        if st.tx_count >= MAX_HARQ_TX {
            ue.ul_harq.remove(&harq_id);
            self.ul_harq_failures += 1;
            return true;
        }
        st.rv_idx = (st.rv_idx + 1).min(3);
        false
    }

    /// Build a downlink assignment for a UE: retransmission if pending,
    /// else a new TB carrying `payload` (sized by caller to the TBS).
    pub fn dl_assign(
        &mut self,
        rnti: u16,
        start_prb: u16,
        num_prb: u16,
        data_symbols: u8,
        new_payload: impl FnOnce(usize) -> Option<Bytes>,
    ) -> Option<(PdschPdu, Bytes)> {
        let la_margin = self.la_margin_db;
        let iters = self.fec_iterations;
        let ue = self.ues.get_mut(&rnti)?;
        let retx_id = ue
            .dl_harq
            .iter()
            .find(|(_, s)| s.rv_idx > 0 && !s.awaiting)
            .map(|(id, _)| *id);
        if let Some(id) = retx_id {
            let st = ue.dl_harq.get_mut(&id).expect("retx state");
            st.tx_count += 1;
            st.awaiting = true;
            st.age = 0;
            let pdu = PdschPdu {
                rnti,
                harq_id: id,
                ndi: st.ndi,
                rv: RV_SEQUENCE[st.rv_idx as usize % 4],
                mcs: st.mcs,
                start_prb,
                num_prb,
                tb_bytes: st.payload.len() as u32,
            };
            let payload = st.payload.clone();
            self.dl_retx += 1;
            return Some((pdu, payload));
        }
        if ue.dl_harq.len() >= 8 {
            return None;
        }
        let mcs = mcs_for_snr(ue.dl_snr_db, la_margin, iters);
        let tbs = tbs_bytes(mcs, num_prb, data_symbols);
        let payload = new_payload(tbs)?;
        debug_assert!(payload.len() <= tbs);
        let mut harq_id = ue.next_dl_harq;
        while ue.dl_harq.contains_key(&harq_id) {
            harq_id = (harq_id + 1) % 16;
        }
        ue.next_dl_harq = (harq_id + 1) % 16;
        let ndi = !ue.dl_last_ndi.get(&harq_id).copied().unwrap_or(true);
        ue.dl_last_ndi.insert(harq_id, ndi);
        ue.dl_harq.insert(
            harq_id,
            DlHarqState {
                ndi,
                rv_idx: 0,
                tx_count: 1,
                mcs,
                payload: payload.clone(),
                awaiting: true,
                age: 0,
            },
        );
        self.dl_new_tx += 1;
        // Track throughput for PF.
        let ue = self.ues.get_mut(&rnti).expect("just used");
        ue.avg_tput = 0.95 * ue.avg_tput + 0.05 * payload.len() as f64;
        Some((
            PdschPdu {
                rnti,
                harq_id,
                ndi,
                rv: RV_SEQUENCE[0],
                mcs,
                start_prb,
                num_prb,
                tb_bytes: payload.len() as u32,
            },
            payload,
        ))
    }

    /// Handle a downlink HARQ acknowledgment. Returns the abandoned
    /// payload if the series failed (for observability).
    pub fn on_dl_ack(&mut self, rnti: u16, harq_id: u8, ack: bool) -> Option<Bytes> {
        let ue = self.ues.get_mut(&rnti)?;
        let st = ue.dl_harq.get_mut(&harq_id)?;
        st.awaiting = false;
        if ack {
            ue.dl_harq.remove(&harq_id);
            return None;
        }
        if st.tx_count >= MAX_HARQ_TX {
            let st = ue.dl_harq.remove(&harq_id).expect("present");
            self.dl_harq_failures += 1;
            return Some(st.payload);
        }
        st.rv_idx = (st.rv_idx + 1).min(3);
        None
    }

    /// Advance per-slot HARQ timers: a process whose feedback has been
    /// missing for `expiry_slots` is abandoned (its CRC/UCI indication
    /// died with a crashed PHY). Call once per slot.
    pub fn tick(&mut self, expiry_slots: u16) {
        for ue in self.ues.values_mut() {
            let mut expired_ul = Vec::new();
            for (id, st) in ue.ul_harq.iter_mut() {
                if st.awaiting {
                    st.age += 1;
                    if st.age > expiry_slots {
                        expired_ul.push(*id);
                    }
                }
            }
            for id in expired_ul {
                ue.ul_harq.remove(&id);
                self.ul_harq_failures += 1;
            }
            let mut expired_dl = Vec::new();
            for (id, st) in ue.dl_harq.iter_mut() {
                if st.awaiting {
                    st.age += 1;
                    if st.age > expiry_slots {
                        expired_dl.push(*id);
                    }
                }
            }
            for id in expired_dl {
                ue.dl_harq.remove(&id);
                self.dl_harq_failures += 1;
            }
        }
    }

    /// Drop every in-flight HARQ series for a UE (called on detach).
    pub fn reset_ue(&mut self, rnti: u16) {
        if let Some(ue) = self.ues.get_mut(&rnti) {
            ue.ul_harq.clear();
            ue.dl_harq.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        let mut s = Scheduler::new(Policy::RoundRobin, 1.0, 8);
        s.add_ue(100, 18.0);
        s.add_ue(101, 18.0);
        s
    }

    #[test]
    fn split_round_robin_covers_all_prbs() {
        let s = sched();
        let parts = s.split_prbs(&[100, 101], 273);
        assert_eq!(parts.len(), 2);
        let total: u16 = parts.iter().map(|p| p.2).sum();
        assert_eq!(total, 273);
        // Contiguous, non-overlapping.
        assert_eq!(parts[0].1, 0);
        assert_eq!(parts[1].1, parts[0].2);
    }

    #[test]
    fn split_empty_cases() {
        let s = sched();
        assert!(s.split_prbs(&[], 100).is_empty());
        assert!(s.split_prbs(&[100], 0).is_empty());
    }

    #[test]
    fn ul_grant_new_then_retx_cycle() {
        let mut s = sched();
        let g1 = s.ul_grant(100, 0, 100, 12).unwrap();
        assert!(!g1.is_retx);
        assert_eq!(g1.pdu.rv, 0);
        // CRC fails → next grant is a retransmission with rv=2.
        let done = s.on_ul_crc(100, g1.pdu.harq_id, false, 15.0);
        assert!(!done);
        let g2 = s.ul_grant(100, 0, 100, 12).unwrap();
        assert!(g2.is_retx);
        assert_eq!(g2.pdu.harq_id, g1.pdu.harq_id);
        assert_eq!(g2.pdu.ndi, g1.pdu.ndi);
        assert_eq!(g2.pdu.rv, 2);
        assert_eq!(g2.pdu.tb_bytes, g1.pdu.tb_bytes);
        // Success ends the series; next grant is fresh with toggled NDI.
        assert!(s.on_ul_crc(100, g1.pdu.harq_id, true, 15.0));
        let g3 = s.ul_grant(100, 0, 100, 12).unwrap();
        assert!(!g3.is_retx);
        assert_eq!(s.ul_retx, 1);
        assert_eq!(s.ul_new_tx, 2);
    }

    #[test]
    fn ul_harq_abandoned_after_max_tx() {
        let mut s = sched();
        let g = s.ul_grant(100, 0, 50, 12).unwrap();
        let id = g.pdu.harq_id;
        for i in 1..MAX_HARQ_TX {
            assert!(!s.on_ul_crc(100, id, false, 10.0), "attempt {i}");
            let r = s.ul_grant(100, 0, 50, 12).unwrap();
            assert!(r.is_retx);
        }
        // Fourth failure abandons.
        assert!(s.on_ul_crc(100, id, false, 10.0));
        assert_eq!(s.ul_harq_failures, 1);
        assert_eq!(s.ues[&100].ul_inflight(), 0);
    }

    #[test]
    fn rv_sequence_order() {
        let mut s = sched();
        let g = s.ul_grant(100, 0, 50, 12).unwrap();
        let id = g.pdu.harq_id;
        let mut rvs = vec![g.pdu.rv];
        for _ in 0..3 {
            s.on_ul_crc(100, id, false, 10.0);
            let r = s.ul_grant(100, 0, 50, 12).unwrap();
            rvs.push(r.pdu.rv);
        }
        assert_eq!(rvs, vec![0, 2, 3, 1]);
    }

    #[test]
    fn link_adaptation_follows_snr() {
        let mut s = sched();
        let g_good = s.ul_grant(100, 0, 100, 12).unwrap();
        s.on_ul_crc(100, g_good.pdu.harq_id, true, 30.0);
        for _ in 0..60 {
            let g = s.ul_grant(100, 0, 100, 12).unwrap();
            s.on_ul_crc(100, g.pdu.harq_id, true, 30.0);
        }
        let g_hi = s.ul_grant(100, 0, 100, 12).unwrap();
        s.on_ul_crc(100, g_hi.pdu.harq_id, true, 30.0);
        for _ in 0..60 {
            let g = s.ul_grant(100, 0, 100, 12).unwrap();
            s.on_ul_crc(100, g.pdu.harq_id, true, -2.0);
        }
        let g_lo = s.ul_grant(100, 0, 100, 12).unwrap();
        assert!(
            g_hi.pdu.mcs > g_lo.pdu.mcs,
            "hi={} lo={}",
            g_hi.pdu.mcs,
            g_lo.pdu.mcs
        );
        assert!(g_hi.pdu.tb_bytes > g_lo.pdu.tb_bytes);
    }

    #[test]
    fn dl_assign_and_ack_flow() {
        let mut s = sched();
        let (pdu, payload) = s
            .dl_assign(100, 0, 100, 12, |tbs| Some(Bytes::from(vec![7u8; tbs])))
            .unwrap();
        assert_eq!(payload.len() as u32, pdu.tb_bytes);
        // NACK → retransmission of the same payload.
        assert!(s.on_dl_ack(100, pdu.harq_id, false).is_none());
        let (pdu2, payload2) = s
            .dl_assign(100, 0, 100, 12, |_| panic!("should retransmit"))
            .unwrap();
        assert_eq!(pdu2.harq_id, pdu.harq_id);
        assert_eq!(pdu2.rv, 2);
        assert_eq!(payload2, payload);
        // ACK ends series.
        assert!(s.on_dl_ack(100, pdu.harq_id, true).is_none());
        assert_eq!(s.ues[&100].dl_inflight(), 0);
    }

    #[test]
    fn dl_abandons_after_max_tx_and_returns_payload() {
        let mut s = sched();
        let (pdu, payload) = s
            .dl_assign(100, 0, 50, 12, |tbs| Some(Bytes::from(vec![1u8; tbs])))
            .unwrap();
        for _ in 1..MAX_HARQ_TX {
            assert!(s.on_dl_ack(100, pdu.harq_id, false).is_none());
            let _ = s
                .dl_assign(100, 0, 50, 12, |_| panic!("retx expected"))
                .unwrap();
        }
        let dropped = s.on_dl_ack(100, pdu.harq_id, false);
        assert_eq!(dropped, Some(payload));
        assert_eq!(s.dl_harq_failures, 1);
    }

    #[test]
    fn pf_weights_favor_starved_ue() {
        let mut s = Scheduler::new(Policy::ProportionalFair, 1.0, 8);
        s.add_ue(1, 20.0);
        s.add_ue(2, 20.0);
        s.ues.get_mut(&1).unwrap().avg_tput = 10_000.0;
        s.ues.get_mut(&2).unwrap().avg_tput = 100.0;
        let parts = s.split_prbs(&[1, 2], 200);
        let p1 = parts.iter().find(|p| p.0 == 1).map(|p| p.2).unwrap_or(0);
        let p2 = parts.iter().find(|p| p.0 == 2).map(|p| p.2).unwrap_or(0);
        assert!(p2 > p1 * 5, "p1={p1} p2={p2}");
    }

    #[test]
    fn stale_awaiting_processes_expire() {
        let mut s = sched();
        let g = s.ul_grant(100, 0, 50, 12).unwrap();
        let _ = g;
        let (_p, _b) = s
            .dl_assign(100, 0, 50, 12, |tbs| Some(Bytes::from(vec![0u8; tbs])))
            .unwrap();
        assert_eq!(s.ues[&100].ul_inflight(), 1);
        assert_eq!(s.ues[&100].dl_inflight(), 1);
        // Feedback never arrives (PHY crashed): expire after 30 slots.
        for _ in 0..=30 {
            s.tick(30);
        }
        assert_eq!(s.ues[&100].ul_inflight(), 0);
        assert_eq!(s.ues[&100].dl_inflight(), 0);
        assert_eq!(s.ul_harq_failures, 1);
        assert_eq!(s.dl_harq_failures, 1);
        // And new grants flow again.
        assert!(s.ul_grant(100, 0, 50, 12).is_some());
    }

    #[test]
    fn tick_does_not_expire_processes_with_feedback() {
        let mut s = sched();
        let g = s.ul_grant(100, 0, 50, 12).unwrap();
        for _ in 0..10 {
            s.tick(30);
        }
        s.on_ul_crc(100, g.pdu.harq_id, false, 10.0); // NACK: retx pending
        for _ in 0..100 {
            s.tick(30); // not awaiting → no expiry
        }
        assert_eq!(s.ues[&100].ul_inflight(), 1, "retx still pending");
    }

    #[test]
    fn reset_ue_clears_harq() {
        let mut s = sched();
        let g = s.ul_grant(100, 0, 50, 12).unwrap();
        s.on_ul_crc(100, g.pdu.harq_id, false, 10.0);
        assert_eq!(s.ues[&100].ul_inflight(), 1);
        s.reset_ue(100);
        assert_eq!(s.ues[&100].ul_inflight(), 0);
    }

    #[test]
    fn unknown_ue_is_safe() {
        let mut s = sched();
        assert!(s.ul_grant(999, 0, 50, 12).is_none());
        assert!(s.on_ul_crc(999, 0, false, 0.0));
        assert!(s.on_dl_ack(999, 0, true).is_none());
    }
}
