//! The global simulation message type.
//!
//! Every node in the testbed — RUs, PHY servers, the L2 server, Orion
//! middleboxes, the switch, the core network, UEs, and app servers —
//! exchanges values of [`Msg`]. Inter-server traffic is always
//! [`Msg::Eth`] (real serialized frames); the over-the-air path uses
//! typed radio bursts carrying actual modulated symbols.

use bytes::Bytes;

use crate::fidelity::TbSignal;
use slingshot_fapi::FapiMsg;
use slingshot_fronthaul::{DciEntry, UciEntry};
use slingshot_netsim::Frame;
use slingshot_sim::{Message, Nanos, SimRng, SlotId};

/// A downlink over-the-air burst, broadcast by the RU each slot in
/// which it received downlink fronthaul from its PHY. Its mere presence
/// is the cell's reference signal: a UE that misses bursts for its
/// radio-link-failure timeout declares RLF.
#[derive(Debug, Clone)]
pub struct RadioDlBurst {
    pub ru_id: u8,
    pub slot: SlotId,
    /// Decoded scheduling information (PDCCH content).
    pub dcis: Vec<DciEntry>,
    /// Per-assignment PDSCH symbols, keyed by the PRB range in the DCI.
    pub pdsch: Vec<DlAllocation>,
}

/// One UE's downlink allocation worth of signal.
#[derive(Debug, Clone)]
pub struct DlAllocation {
    pub rnti: u16,
    pub start_prb: u16,
    pub num_prb: u16,
    /// Clean signal at the RU; each UE applies its own channel.
    pub signal: TbSignal,
}

/// An uplink over-the-air transmission from one UE for one slot.
#[derive(Debug, Clone)]
pub struct RadioUlBurst {
    pub ru_id: u8,
    pub slot: SlotId,
    pub rnti: u16,
    pub start_prb: u16,
    pub num_prb: u16,
    /// Channel noise already applied (the UE knows its own SNR
    /// process; statistically equivalent to applying it at the RU).
    pub signal: TbSignal,
    /// HARQ feedback for downlink TBs (decoded PUCCH content).
    pub ucis: Vec<UciEntry>,
}

/// A user-plane packet (an opaque transport-layer segment) traversing
/// app server ↔ core ↔ L2 ↔ UE.
#[derive(Debug, Clone)]
pub struct UserPacket {
    /// The UE this packet belongs to.
    pub rnti: u16,
    /// True when heading toward the UE (downlink).
    pub downlink: bool,
    pub payload: Bytes,
}

impl UserPacket {
    /// Approximate IP+UDP overhead added on the wire.
    pub const HEADER_OVERHEAD: usize = 28;

    pub fn wire_size(&self) -> usize {
        self.payload.len() + Self::HEADER_OVERHEAD
    }
}

/// Control-plane messages (RRC/NGAP-scale signaling and experiment
/// control). These do not model message contents, only their timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlMsg {
    /// UE requests attachment (random access + RRC setup start).
    AttachRequest { rnti: u16 },
    /// Network accepted; UE is connected.
    AttachAccept { rnti: u16 },
    /// UE context released (network side observed loss).
    Detach { rnti: u16 },
    /// Operator/controller-initiated planned PHY migration for an RU
    /// (live upgrade, §8.3; delivered to the L2-side Orion).
    PlannedMigration { ru_id: u8 },
    /// Recovery-orchestrator command to a (just-restarted) PHY process:
    /// wipe all per-RU soft state and clear crash flags so the server
    /// can be returned to the shared spare pool as a clean machine.
    PhyScrub,
}

/// The top-level message enum.
#[derive(Debug)]
pub enum Msg {
    /// An Ethernet frame: fronthaul eCPRI, Orion's FAPI-over-UDP, user
    /// plane between servers, switch control packets.
    Eth(Frame),
    /// FAPI over shared memory (same-host L2↔Orion↔PHY hops).
    FapiShm(FapiMsg),
    /// Over-the-air downlink.
    RadioDl(RadioDlBurst),
    /// Over-the-air uplink.
    RadioUl(RadioUlBurst),
    /// User-plane packet on non-RAN segments (server ↔ core ↔ L2).
    User(UserPacket),
    /// Signaling.
    Ctl(CtlMsg),
}

impl Message for Msg {
    fn wire_size(&self) -> usize {
        match self {
            Msg::Eth(f) => f.wire_size(),
            // SHM messages don't serialize; model a small fixed copy
            // cost by reporting a nominal size.
            Msg::FapiShm(_) => 64,
            // Radio bursts traverse the air, not a bandwidth-limited
            // link; size is irrelevant.
            Msg::RadioDl(_) | Msg::RadioUl(_) => 0,
            Msg::User(p) => p.wire_size(),
            Msg::Ctl(_) => 64,
        }
    }

    fn corrupt(&mut self, rng: &mut SimRng) -> bool {
        match self {
            Msg::Eth(f) => f.corrupt_payload(rng),
            _ => false,
        }
    }

    fn duplicate(&self) -> Option<Self> {
        match self {
            // Only wire-format frames can be duplicated by a flaky
            // network element; SHM handles, radio bursts, and abstract
            // control messages have no replicable wire representation.
            Msg::Eth(f) => Some(Msg::Eth(f.clone())),
            _ => None,
        }
    }
}

/// Timer tokens shared across RAN nodes. Each node's `on_timer`
/// dispatches on these well-known values; node-specific tokens start at
/// [`timer_tokens::NODE_BASE`].
pub mod timer_tokens {
    /// Fires at (or just before) each slot boundary.
    pub const SLOT_TICK: u64 = 1;
    /// App poll wakeup.
    pub const APP_POLL: u64 = 2;
    /// Generic per-node timers start here.
    pub const NODE_BASE: u64 = 100;
}

/// Convenience: total simulated air propagation delay (RU ↔ UE). Small
/// but nonzero to keep event ordering honest.
pub const AIR_LATENCY: Nanos = Nanos(3_000);

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_netsim::{EtherType, MacAddr};

    #[test]
    fn wire_sizes() {
        let f = Frame::new(
            MacAddr::for_phy(0),
            MacAddr::for_ru(0),
            EtherType::Ecpri,
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(Msg::Eth(f).wire_size(), 118);
        let p = UserPacket {
            rnti: 1,
            downlink: true,
            payload: Bytes::from(vec![0u8; 1000]),
        };
        assert_eq!(Msg::User(p).wire_size(), 1028);
        assert_eq!(Msg::Ctl(CtlMsg::AttachRequest { rnti: 1 }).wire_size(), 64);
    }

    #[test]
    fn only_eth_corruptible() {
        let mut rng = SimRng::new(1);
        let mut m = Msg::Ctl(CtlMsg::Detach { rnti: 2 });
        assert!(!m.corrupt(&mut rng));
        let mut e = Msg::Eth(Frame::new(
            MacAddr::ZERO,
            MacAddr::ZERO,
            EtherType::Ipv4,
            Bytes::from_static(b"xyz"),
        ));
        assert!(e.corrupt(&mut rng));
    }
}
