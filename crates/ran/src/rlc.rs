//! RLC unacknowledged-mode (UM) segmentation and windowed reassembly.
//!
//! The MAC packs variable-size user packets into fixed-budget transport
//! blocks; RLC UM provides sequence numbers and segmentation so packets
//! can span TBs. The receiver reassembles out-of-order arrivals within
//! a reordering window (HARQ retransmissions reorder TBs by several
//! slots) and delivers packets **in order**, skipping a gap only after
//! the t-Reassembly timeout — exactly the role RLC UM's reassembly
//! window plays in real stacks, and the reason TCP above never sees
//! HARQ-induced reordering, only residual loss.

use bytes::{Buf, BufMut, Bytes};
use std::collections::{BTreeMap, VecDeque};

use slingshot_sim::Nanos;

/// Default t-Reassembly: covers two HARQ retransmission rounds
/// (~3.5 ms feedback round trip each). Chosen low enough that a gap
/// skip stays within the paper's 10 ms availability target; TBs that
/// need a third or fourth HARQ attempt (≲0.3% at the operating BLER)
/// surface as residual loss, as in real low-latency RLC configs.
pub const T_REASSEMBLY: Nanos = Nanos::from_millis(10);

/// One RLC PDU header: sequence number plus segmentation flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlcPdu {
    /// Per-packet sequence number (all segments of a packet share it).
    pub sn: u16,
    /// Byte offset of this segment within the packet.
    pub so: u16,
    /// Last segment of the packet.
    pub last: bool,
    pub payload: Bytes,
}

impl RlcPdu {
    pub const HEADER_LEN: usize = 7;

    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }

    fn write(&self, buf: &mut Vec<u8>) {
        buf.put_u16(self.sn);
        buf.put_u16(self.so);
        buf.put_u8(self.last as u8);
        buf.put_u16(self.payload.len() as u16);
        buf.extend_from_slice(&self.payload);
    }

    fn read(buf: &mut impl Buf) -> Option<RlcPdu> {
        if buf.remaining() < Self::HEADER_LEN {
            return None;
        }
        let sn = buf.get_u16();
        let so = buf.get_u16();
        let last = buf.get_u8() != 0;
        let len = buf.get_u16() as usize;
        if buf.remaining() < len {
            return None;
        }
        Some(RlcPdu {
            sn,
            so,
            last,
            payload: buf.copy_to_bytes(len),
        })
    }
}

/// Transmit-side RLC: queues packets, emits TB-sized PDU batches.
#[derive(Debug, Default)]
pub struct RlcTx {
    queue: VecDeque<Bytes>,
    next_sn: u16,
    /// Offset already sent of the packet at the queue head.
    head_offset: usize,
    /// Total bytes currently queued (including the unsent remainder of
    /// the head packet).
    queued_bytes: usize,
}

impl RlcTx {
    pub fn new() -> RlcTx {
        RlcTx::default()
    }

    /// Enqueue a user packet for transmission.
    pub fn enqueue(&mut self, packet: Bytes) {
        self.queued_bytes += packet.len();
        self.queue.push_back(packet);
    }

    /// Bytes waiting (buffer status for the scheduler).
    pub fn backlog(&self) -> usize {
        self.queued_bytes
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Fill up to `budget` bytes with PDUs (headers included) and
    /// serialize them into a MAC SDU. Returns `None` when nothing is
    /// queued.
    pub fn build_tb(&mut self, budget: usize) -> Option<Bytes> {
        if self.queue.is_empty() || budget <= RlcPdu::HEADER_LEN {
            return None;
        }
        let mut out = Vec::with_capacity(budget.min(65_536));
        let mut remaining = budget;
        while remaining > RlcPdu::HEADER_LEN + 1 {
            let Some(head) = self.queue.front() else {
                break;
            };
            let head_len = head.len();
            let avail = head_len - self.head_offset;
            let take = avail.min(remaining - RlcPdu::HEADER_LEN);
            if take == 0 {
                break;
            }
            let seg = head.slice(self.head_offset..self.head_offset + take);
            let last = self.head_offset + take == head_len;
            let pdu = RlcPdu {
                sn: self.next_sn,
                so: self.head_offset as u16,
                last,
                payload: seg,
            };
            pdu.write(&mut out);
            remaining -= pdu.wire_len();
            self.queued_bytes -= take;
            if last {
                self.queue.pop_front();
                self.head_offset = 0;
                self.next_sn = self.next_sn.wrapping_add(1);
            } else {
                self.head_offset += take;
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Bytes::from(out))
        }
    }
}

/// One packet being assembled from segments.
#[derive(Debug)]
struct Asm {
    /// Segments by byte offset.
    segs: BTreeMap<u16, Bytes>,
    /// Total length, known once the `last` segment arrives.
    total: Option<usize>,
    first_seen: Nanos,
}

impl Asm {
    fn new(now: Nanos) -> Asm {
        Asm {
            segs: BTreeMap::new(),
            total: None,
            first_seen: now,
        }
    }

    fn add(&mut self, pdu: &RlcPdu) {
        if pdu.last {
            self.total = Some(pdu.so as usize + pdu.payload.len());
        }
        self.segs.insert(pdu.so, pdu.payload.clone());
    }

    /// Contiguous from offset 0 through the known total?
    fn assemble(&self) -> Option<Bytes> {
        let total = self.total?;
        let mut out = Vec::with_capacity(total);
        for (so, seg) in &self.segs {
            let so = *so as usize;
            if so > out.len() {
                return None; // hole
            }
            if so + seg.len() > out.len() {
                out.extend_from_slice(&seg[out.len() - so..]);
            }
        }
        if out.len() == total {
            Some(Bytes::from(out))
        } else {
            None
        }
    }
}

/// Receive-side RLC UM with a reordering/reassembly window.
#[derive(Debug)]
pub struct RlcRx {
    t_reassembly: Nanos,
    /// Deliver strictly in SN order (hold complete packets behind a
    /// gap until t-Reassembly). Real deployments configure this per
    /// bearer: TCP-style bearers want in-order delivery (PDCP
    /// reordering); UDP/RTP bearers deliver complete SDUs immediately.
    ordered: bool,
    /// Next (unwrapped) SN to deliver.
    expected: u32,
    /// SNs ≥ `expected` already delivered out of order (dedup guard).
    delivered_set: std::collections::BTreeSet<u32>,
    /// Highest unwrapped SN seen, for 16-bit wrap resolution.
    highest: u32,
    started: bool,
    pending: BTreeMap<u32, Asm>,
    /// Packets abandoned (gap timeout or stale fragments).
    pub discarded: u64,
    pub delivered: u64,
}

impl Default for RlcRx {
    fn default() -> Self {
        RlcRx::new()
    }
}

impl RlcRx {
    pub fn new() -> RlcRx {
        RlcRx::with_timeout(T_REASSEMBLY)
    }

    pub fn with_timeout(t_reassembly: Nanos) -> RlcRx {
        RlcRx {
            t_reassembly,
            ordered: true,
            expected: 0,
            delivered_set: std::collections::BTreeSet::new(),
            highest: 0,
            started: false,
            pending: BTreeMap::new(),
            discarded: 0,
            delivered: 0,
        }
    }

    /// Unordered-delivery bearer (UDP/RTP style): complete packets are
    /// delivered immediately; the window only assembles segments.
    pub fn unordered() -> RlcRx {
        RlcRx {
            ordered: false,
            ..RlcRx::new()
        }
    }

    /// Resolve a wire SN to an unwrapped sequence near the highest seen.
    fn unwrap_sn(&mut self, sn: u16) -> u32 {
        if !self.started {
            return sn as u32;
        }
        let h = self.highest as i64;
        let base = h & !0xFFFF;
        let mut best = base | sn as i64;
        for cand in [best - 0x1_0000, best + 0x1_0000] {
            if cand >= 0 && (cand - h).abs() < (best - h).abs() {
                best = cand;
            }
        }
        best.max(0) as u32
    }

    /// Consume one received TB payload at time `now`; returns packets
    /// deliverable in order.
    pub fn on_tb(&mut self, now: Nanos, tb: &[u8]) -> Vec<Bytes> {
        let mut buf = tb;
        while let Some(pdu) = RlcPdu::read(&mut buf) {
            // MAC padding parses as empty non-final segments: stop.
            if pdu.payload.is_empty() && !pdu.last {
                break;
            }
            let sn = self.unwrap_sn(pdu.sn);
            if !self.started {
                self.started = true;
                self.expected = sn;
                self.highest = sn;
            }
            self.highest = self.highest.max(sn);
            if sn < self.expected || self.delivered_set.contains(&sn) {
                continue; // duplicate/stale (late HARQ copy)
            }
            self.pending
                .entry(sn)
                .or_insert_with(|| Asm::new(now))
                .add(&pdu);
        }
        self.drain(now)
    }

    /// Timer hook: deliver or skip past gaps whose t-Reassembly expired.
    pub fn poll_expired(&mut self, now: Nanos) -> Vec<Bytes> {
        self.drain(now)
    }

    /// Packets currently buffered in the window.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn drain(&mut self, now: Nanos) -> Vec<Bytes> {
        if !self.ordered {
            return self.drain_unordered(now);
        }
        let mut out = Vec::new();
        loop {
            // In-order completions first.
            if let Some(asm) = self.pending.get(&self.expected) {
                if let Some(b) = asm.assemble() {
                    self.pending.remove(&self.expected);
                    self.expected += 1;
                    self.delivered += 1;
                    out.push(b);
                    continue;
                }
            }
            // Stalled. Has the window waited long enough to skip?
            let oldest = self.pending.values().map(|a| a.first_seen).min();
            let expired = matches!(
                oldest,
                Some(t0) if now.saturating_sub(t0) >= self.t_reassembly
            );
            if !expired {
                break;
            }
            // Skip to the first complete pending packet, discarding the
            // gap (and any incomplete fragments inside it).
            let next_complete = self
                .pending
                .iter()
                .find_map(|(sn, a)| a.assemble().map(|b| (*sn, b)));
            match next_complete {
                Some((sn, b)) => {
                    let dropped_fragments = self.pending.range(..sn).count() as u64;
                    let missing = (sn - self.expected) as u64;
                    self.discarded += missing.max(dropped_fragments);
                    let stale: Vec<u32> = self.pending.range(..=sn).map(|(k, _)| *k).collect();
                    for k in stale {
                        self.pending.remove(&k);
                    }
                    self.expected = sn + 1;
                    self.delivered += 1;
                    out.push(b);
                }
                None => {
                    // Nothing assemblable: drop expired fragments.
                    let stale: Vec<u32> = self
                        .pending
                        .iter()
                        .filter(|(_, a)| now.saturating_sub(a.first_seen) >= self.t_reassembly)
                        .map(|(k, _)| *k)
                        .collect();
                    if stale.is_empty() {
                        break;
                    }
                    let past = stale.iter().max().unwrap() + 1;
                    for k in stale {
                        self.pending.remove(&k);
                        self.discarded += 1;
                    }
                    self.expected = self.expected.max(past);
                }
            }
        }
        out
    }
}

impl RlcRx {
    /// Unordered drain: deliver every complete packet now; GC stale
    /// fragments and advance the duplicate-suppression window.
    fn drain_unordered(&mut self, now: Nanos) -> Vec<Bytes> {
        let mut out = Vec::new();
        let complete: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, a)| a.assemble().is_some())
            .map(|(sn, _)| *sn)
            .collect();
        for sn in complete {
            let asm = self.pending.remove(&sn).expect("present");
            out.push(asm.assemble().expect("complete"));
            self.delivered += 1;
            self.delivered_set.insert(sn);
        }
        // Expire incomplete fragments.
        let stale: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, a)| now.saturating_sub(a.first_seen) >= self.t_reassembly)
            .map(|(k, _)| *k)
            .collect();
        for k in stale {
            self.pending.remove(&k);
            self.discarded += 1;
            self.delivered_set.insert(k); // never resurrect
        }
        // Advance the dedup window past contiguous delivered SNs.
        while self.delivered_set.remove(&self.expected) {
            self.expected += 1;
        }
        // Bound the dedup set (duplicates arrive within the HARQ
        // horizon, far less than 1024 SNs).
        while self.delivered_set.len() > 1024 {
            let first = *self.delivered_set.iter().next().expect("nonempty");
            self.delivered_set.remove(&first);
            self.expected = self.expected.max(first + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn packet(n: usize, tag: u8) -> Bytes {
        Bytes::from(vec![tag; n])
    }

    fn t(ms: u64) -> Nanos {
        Nanos(ms * MS)
    }

    #[test]
    fn single_packet_single_tb() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(100, 1));
        let tb = tx.build_tb(200).unwrap();
        assert_eq!(rx.on_tb(t(0), &tb), vec![packet(100, 1)]);
        assert!(tx.is_empty());
    }

    #[test]
    fn packet_spans_multiple_tbs() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(1000, 2));
        let mut got = Vec::new();
        let mut tbs = 0;
        while let Some(tb) = tx.build_tb(300) {
            got.extend(rx.on_tb(t(tbs), &tb));
            tbs += 1;
            assert!(tbs < 10);
        }
        assert_eq!(got, vec![packet(1000, 2)]);
        assert!(tbs >= 4);
    }

    #[test]
    fn multiple_packets_packed_into_one_tb() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        for i in 0..5 {
            tx.enqueue(packet(50, i));
        }
        let tb = tx.build_tb(1000).unwrap();
        let got = rx.on_tb(t(0), &tb);
        assert_eq!(got.len(), 5);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p, &packet(50, i as u8));
        }
    }

    #[test]
    fn backlog_tracks_bytes() {
        let mut tx = RlcTx::new();
        tx.enqueue(packet(100, 1));
        tx.enqueue(packet(200, 2));
        assert_eq!(tx.backlog(), 300);
        let _ = tx.build_tb(150);
        assert!(tx.backlog() < 300);
    }

    #[test]
    fn out_of_order_tbs_reassemble_without_loss() {
        // The HARQ case: TB_n is retransmitted and arrives *after*
        // TB_{n+1}. The windowed reassembler must deliver everything,
        // in order.
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(600, 3)); // spans tb1+tb2
        tx.enqueue(packet(100, 4));
        let tb1 = tx.build_tb(300).unwrap();
        let tb2 = tx.build_tb(300).unwrap();
        let tb3 = tx.build_tb(300).unwrap();
        let mut got = Vec::new();
        got.extend(rx.on_tb(t(0), &tb1));
        got.extend(rx.on_tb(t(1), &tb3)); // arrives early
        assert!(got.is_empty(), "must hold for in-order delivery");
        got.extend(rx.on_tb(t(5), &tb2)); // HARQ retx lands
        assert_eq!(got, vec![packet(600, 3), packet(100, 4)]);
        assert_eq!(rx.discarded, 0);
    }

    #[test]
    fn gap_skipped_after_t_reassembly() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(100, 1));
        tx.enqueue(packet(100, 2));
        tx.enqueue(packet(100, 3));
        // Budget sized to exactly one packet + header per TB.
        let tb1 = tx.build_tb(107).unwrap();
        let _tb2 = tx.build_tb(107).unwrap(); // lost forever
        let tb3 = tx.build_tb(107).unwrap();
        assert_eq!(rx.on_tb(t(0), &tb1), vec![packet(100, 1)]);
        assert!(rx.on_tb(t(1), &tb3).is_empty(), "held for packet 2");
        // Before the timeout: still held.
        assert!(rx.poll_expired(t(5)).is_empty());
        // After: gap skipped, packet 3 delivered, loss counted.
        assert_eq!(rx.poll_expired(t(15)), vec![packet(100, 3)]);
        assert_eq!(rx.discarded, 1);
    }

    #[test]
    fn duplicate_tb_is_harmless() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(100, 7));
        let tb = tx.build_tb(200).unwrap();
        assert_eq!(rx.on_tb(t(0), &tb).len(), 1);
        assert!(rx.on_tb(t(1), &tb).is_empty(), "duplicate ignored");
        assert_eq!(rx.delivered, 1);
    }

    #[test]
    fn empty_queue_builds_nothing() {
        let mut tx = RlcTx::new();
        assert!(tx.build_tb(100).is_none());
        tx.enqueue(packet(10, 1));
        assert!(tx.build_tb(RlcPdu::HEADER_LEN).is_none());
    }

    #[test]
    fn garbage_and_padding_yield_nothing() {
        let mut rx = RlcRx::new();
        assert!(rx.on_tb(t(0), &[0xFF; 3]).is_empty());
        // All-zero padding parses as an empty non-final PDU: ignored.
        assert!(rx.on_tb(t(0), &[0u8; 64]).is_empty());
        assert_eq!(rx.pending_len(), 0);
    }

    #[test]
    fn padding_after_data_does_not_disturb_window() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(50, 1));
        let mut tb = tx.build_tb(200).unwrap().to_vec();
        tb.resize(300, 0); // MAC padding
        assert_eq!(rx.on_tb(t(0), &tb), vec![packet(50, 1)]);
        tx.enqueue(packet(50, 2));
        let tb2 = tx.build_tb(200).unwrap();
        assert_eq!(rx.on_tb(t(1), &tb2), vec![packet(50, 2)]);
        assert_eq!(rx.discarded, 0);
    }

    #[test]
    fn sn_wraparound_is_transparent() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        // Force the TX sequence near the wrap point.
        tx.next_sn = u16::MAX - 2;
        let mut got = Vec::new();
        for i in 0..6 {
            tx.enqueue(packet(40, i));
            let tb = tx.build_tb(100).unwrap();
            got.extend(rx.on_tb(t(i as u64), &tb));
        }
        assert_eq!(got.len(), 6);
        assert_eq!(rx.discarded, 0);
    }

    #[test]
    fn sustained_loss_recovers_each_time() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        let mut delivered = 0;
        let mut now = 0u64;
        for round in 0..20u64 {
            for i in 0..5 {
                tx.enqueue(packet(400, i));
            }
            let mut i = 0;
            while let Some(tb) = tx.build_tb(250) {
                i += 1;
                now += 1;
                if i % 5 == 0 {
                    continue; // drop every 5th TB
                }
                delivered += rx.on_tb(t(now), &tb).len();
            }
            // Allow timeouts to release held packets.
            now += 30;
            delivered += rx.poll_expired(t(now)).len();
            let _ = round;
        }
        assert!(delivered >= 50, "delivered={delivered}");
        assert!(rx.discarded >= 10);
    }

    #[test]
    fn unordered_mode_delivers_immediately_past_gaps() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::unordered();
        tx.enqueue(packet(100, 1));
        tx.enqueue(packet(100, 2));
        tx.enqueue(packet(100, 3));
        let tb1 = tx.build_tb(107).unwrap();
        let _tb2 = tx.build_tb(107).unwrap(); // lost
        let tb3 = tx.build_tb(107).unwrap();
        assert_eq!(rx.on_tb(t(0), &tb1), vec![packet(100, 1)]);
        // Packet 3 delivered immediately despite the gap at SN 1.
        assert_eq!(rx.on_tb(t(1), &tb3), vec![packet(100, 3)]);
    }

    #[test]
    fn unordered_mode_suppresses_duplicates() {
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::unordered();
        tx.enqueue(packet(100, 7));
        let tb = tx.build_tb(200).unwrap();
        assert_eq!(rx.on_tb(t(0), &tb).len(), 1);
        assert!(rx.on_tb(t(1), &tb).is_empty());
        assert!(rx.on_tb(t(30), &tb).is_empty());
        assert_eq!(rx.delivered, 1);
    }

    #[test]
    fn interleaved_segments_of_same_packet_duplicate_offsets() {
        // Chase-combining HARQ can deliver the same TB twice; same
        // offsets must overwrite cleanly.
        let mut tx = RlcTx::new();
        let mut rx = RlcRx::new();
        tx.enqueue(packet(500, 9));
        let tb1 = tx.build_tb(300).unwrap();
        let tb2 = tx.build_tb(300).unwrap();
        let mut got = Vec::new();
        got.extend(rx.on_tb(t(0), &tb1));
        got.extend(rx.on_tb(t(1), &tb1)); // duplicate first half
        got.extend(rx.on_tb(t(2), &tb2));
        assert_eq!(got, vec![packet(500, 9)]);
    }
}
