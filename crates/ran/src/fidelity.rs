//! Fidelity-aware transport-block transmission and reception.
//!
//! All three DSP modes (see [`crate::cell::Fidelity`] and DESIGN.md §2)
//! share one code path:
//!
//! - **Full**: every code block is LDPC-encoded to symbols; the
//!   receiver recovers the payload from decoded bits.
//! - **Sampled**: one representative code block is physically coded at
//!   the TB's modulation and code rate; its decode outcome gates
//!   delivery of the "shadow" payload. All code blocks of a TB see the
//!   same channel, so per-TB error remains channel-dominated.
//! - **Abstract**: no IQ at all; the calibrated BLER model
//!   ([`slingshot_phy_dsp::bler`]) draws the outcome, with HARQ modeled
//!   as chase-combined SNR accumulation.

use bytes::Bytes;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use crate::cell::Fidelity;
use slingshot_fapi::mcs;
use slingshot_phy_dsp::bler;
use slingshot_phy_dsp::channel::{db_to_linear, AwgnChannel};
use slingshot_phy_dsp::scramble::GoldSequence;
use slingshot_phy_dsp::snr::estimate_snr_db;
use slingshot_phy_dsp::tbchain::{decode_tb_with, encode_tb_with, mother_buffer_len, TbParams};
use slingshot_phy_dsp::{default_scratch_pool, Cplx, DspKernels, DspScratchPool, Modulation};
use slingshot_sim::{SimRng, WorkerPool};

/// Cap on the representative code block's payload in Sampled mode:
/// 125 bytes + 3-byte CRC = 1024 info bits = one code block.
const SAMPLED_PAYLOAD_CAP: usize = 125;

/// A transport block as it travels over the air / fronthaul.
#[derive(Debug, Clone)]
pub struct TbSignal {
    /// Known pilot symbols (clean at TX; noisy after the channel).
    pub pilots: Vec<Cplx>,
    /// Data symbols (empty in Abstract mode).
    pub symbols: Vec<Cplx>,
    /// The shadow payload (empty in Full mode).
    pub shadow: Bytes,
    /// SNR (dB) the signal experienced; set when the channel is
    /// applied. NaN before.
    pub snr_db: f64,
}

/// Radio-link parameters of one TB transmission.
#[derive(Debug, Clone, Copy)]
pub struct LinkParamsTb {
    pub modulation: Modulation,
    pub mcs: u8,
    pub num_prb: u16,
    pub data_symbols: u8,
    pub rnti: u16,
    pub cell_id: u16,
    pub rv: u8,
    pub fec_iterations: usize,
}

impl LinkParamsTb {
    pub fn from_grant(
        mcs_idx: u8,
        num_prb: u16,
        data_symbols: u8,
        rnti: u16,
        cell_id: u16,
        rv: u8,
        fec_iterations: usize,
    ) -> LinkParamsTb {
        LinkParamsTb {
            modulation: mcs(mcs_idx).modulation,
            mcs: mcs_idx,
            num_prb,
            data_symbols,
            rnti,
            cell_id,
            rv,
            fec_iterations,
        }
    }

    /// Coded-bit budget of the full allocation.
    pub fn e_bits(&self) -> usize {
        slingshot_fapi::e_bits(self.mcs, self.num_prb, self.data_symbols)
    }

    /// Pilot length: one OFDM symbol across the allocation.
    pub fn pilot_len(&self) -> usize {
        self.num_prb as usize * 12
    }

    fn sampled_split(&self, payload_len: usize) -> (usize, usize) {
        let rep_bytes = payload_len.min(SAMPLED_PAYLOAD_CAP);
        let full_info = (payload_len + 3) * 8;
        let rep_info = (rep_bytes + 3) * 8;
        let bps = self.modulation.bits_per_symbol();
        let mut e_rep = self.e_bits() * rep_info / full_info;
        e_rep -= e_rep % bps;
        (rep_bytes, e_rep.max(bps))
    }

    fn tb_params(&self, e_bits: usize) -> TbParams {
        TbParams {
            modulation: self.modulation,
            e_bits,
            rnti: self.rnti,
            cell_id: self.cell_id,
            rv: self.rv,
            fec_iterations: self.fec_iterations,
        }
    }
}

/// The UE-specific pilot sequence (QPSK from a Gold sequence keyed by
/// RNTI), used by the receiver for SNR estimation.
pub fn pilot_sequence(rnti: u16, cell_id: u16, len: usize) -> Vec<Cplx> {
    let mut g = GoldSequence::new(GoldSequence::c_init_data(rnti ^ 0x5A5A, cell_id));
    let bits = g.bits(2 * len);
    let a = std::f32::consts::FRAC_1_SQRT_2;
    (0..len)
        .map(|i| {
            Cplx::new(
                if bits[2 * i] == 0 { -a } else { a },
                if bits[2 * i + 1] == 0 { -a } else { a },
            )
        })
        .collect()
}

/// Pilot cache: (RNTI, cell) → shared pilot symbol prefix.
type PilotCache = HashMap<(u16, u16), Arc<Vec<Cplx>>>;

thread_local! {
    /// Per-thread cache of pilot sequences keyed by (RNTI, cell). The
    /// same UE's pilots are regenerated on both the encode and the
    /// receive path of every TB; symbol `i` depends only on Gold bits
    /// 2i/2i+1, so a longer cached sequence serves any shorter request
    /// as a prefix.
    static PILOT_CACHE: RefCell<PilotCache> = RefCell::new(HashMap::new());
}

/// Cap on cached pilot entries per thread (guards pathological RNTI
/// churn; a deployment has a handful of active UEs).
const PILOT_CACHE_MAX: usize = 1024;

fn cached_pilots(rnti: u16, cell_id: u16, len: usize) -> Arc<Vec<Cplx>> {
    PILOT_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(p) = cache.get(&(rnti, cell_id)) {
            if p.len() >= len {
                return Arc::clone(p);
            }
        }
        if cache.len() >= PILOT_CACHE_MAX {
            cache.clear();
        }
        let p = Arc::new(pilot_sequence(rnti, cell_id, len));
        cache.insert((rnti, cell_id), Arc::clone(&p));
        p
    })
}

/// Encode a TB for transmission under the given fidelity (serial,
/// thread-local scratch).
pub fn encode_signal(
    kernels: DspKernels,
    fidelity: Fidelity,
    payload: &Bytes,
    lp: &LinkParamsTb,
) -> TbSignal {
    encode_signal_with(
        kernels,
        &WorkerPool::serial(),
        &default_scratch_pool(),
        fidelity,
        payload,
        lp,
    )
}

/// Encode a TB, fanning per-code-block work out across `pool` with
/// working buffers drawn from `scratch`. Bit-identical to
/// [`encode_signal`] for any worker count.
pub fn encode_signal_with(
    kernels: DspKernels,
    pool: &WorkerPool,
    scratch: &DspScratchPool,
    fidelity: Fidelity,
    payload: &Bytes,
    lp: &LinkParamsTb,
) -> TbSignal {
    let pilots = match fidelity {
        Fidelity::Abstract => Vec::new(),
        _ => cached_pilots(lp.rnti, lp.cell_id, lp.pilot_len())[..lp.pilot_len()].to_vec(),
    };
    let (symbols, shadow) = match fidelity {
        Fidelity::Full => (
            encode_tb_with(kernels, pool, scratch, payload, &lp.tb_params(lp.e_bits())),
            Bytes::new(),
        ),
        Fidelity::Sampled => {
            let (rep_bytes, e_rep) = lp.sampled_split(payload.len());
            let rep = payload.slice(..rep_bytes);
            (
                encode_tb_with(kernels, pool, scratch, &rep, &lp.tb_params(e_rep)),
                payload.clone(),
            )
        }
        Fidelity::Abstract => (Vec::new(), payload.clone()),
    };
    TbSignal {
        pilots,
        symbols,
        shadow,
        snr_db: f64::NAN,
    }
}

/// Pass a signal through the channel at `snr_db`. AWGN generation is
/// dispatched through `kernels` (tolerance-gated: SIMD noise only when
/// the handle's tolerance is raised; the default stays scalar).
pub fn apply_channel(
    kernels: DspKernels,
    signal: &mut TbSignal,
    snr_db: f64,
    channel: &mut AwgnChannel,
) {
    signal.snr_db = snr_db;
    if !signal.pilots.is_empty() {
        let (noisy, _) = kernels.awgn_apply(channel, &signal.pilots, snr_db);
        signal.pilots = noisy;
    }
    if !signal.symbols.is_empty() {
        let (noisy, _) = kernels.awgn_apply(channel, &signal.symbols, snr_db);
        signal.symbols = noisy;
    }
}

/// Pass a signal through the channel with chunk-parallel noise
/// generation. The noise realization differs from [`apply_channel`]
/// (per-chunk RNG streams) but is the same for any worker count; a
/// caller must use one variant consistently.
pub fn apply_channel_with(
    kernels: DspKernels,
    pool: &WorkerPool,
    signal: &mut TbSignal,
    snr_db: f64,
    channel: &mut AwgnChannel,
) {
    signal.snr_db = snr_db;
    if !signal.pilots.is_empty() {
        let (noisy, _) = kernels.awgn_apply_with(channel, pool, &signal.pilots, snr_db);
        signal.pilots = noisy;
    }
    if !signal.symbols.is_empty() {
        let (noisy, _) = kernels.awgn_apply_with(channel, pool, &signal.symbols, snr_db);
        signal.symbols = noisy;
    }
}

/// Per-process receiver soft state (HARQ buffer across fidelities).
#[derive(Debug, Default)]
struct RxProc {
    ndi: bool,
    llr_acc: Vec<f32>,
    snr_acc: Vec<f64>,
}

/// Pool of receiver HARQ soft state, keyed by (RNTI, HARQ id). This is
/// exactly the inter-TTI PHY state Slingshot discards on migration
/// ([`RxProcessPool::clear`]).
#[derive(Debug, Default)]
pub struct RxProcessPool {
    procs: HashMap<(u16, u8), RxProc>,
}

/// One HARQ process's soft state, moved out of an [`RxProcessPool`]
/// while a (possibly pool-executed) decode owns it. Opaque: callers
/// only shuttle it between [`RxProcessPool::take`], [`receive_into`],
/// and [`RxProcessPool::put`].
#[derive(Debug, Default)]
pub struct RxSoftState(RxProc);

/// Result of a TB reception attempt.
#[derive(Debug)]
pub struct RxOutcome {
    /// The payload, when decoding succeeded.
    pub payload: Option<Bytes>,
    /// Estimated (or carried) SNR in dB, for link adaptation reports.
    pub snr_db: f64,
    /// Decoder iterations spent (compute-cost proxy; 0 in Abstract).
    pub iterations: usize,
    /// Wall-clock nanoseconds inside the LDPC decoder (profiling only;
    /// 0 in Abstract and on the lost-IQ path).
    pub ldpc_ns: u64,
}

impl RxProcessPool {
    pub fn new() -> RxProcessPool {
        RxProcessPool::default()
    }

    pub fn len(&self) -> usize {
        self.procs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Discard all soft state (PHY migration / UE detach).
    pub fn clear(&mut self) {
        self.procs.clear();
    }

    /// Approximate bytes of soft state held.
    pub fn memory_bytes(&self) -> usize {
        self.procs
            .values()
            .map(|p| p.llr_acc.len() * 4 + p.snr_acc.len() * 8)
            .sum()
    }

    /// Move a HARQ process's soft state out of the pool (a fresh,
    /// empty state when the process has none). Pairs with
    /// [`RxProcessPool::put`]; this is what lets a `Send` decode job
    /// own the state while the pool stays behind.
    pub fn take(&mut self, rnti: u16, harq_id: u8) -> RxSoftState {
        RxSoftState(self.procs.remove(&(rnti, harq_id)).unwrap_or_default())
    }

    /// Return soft state taken with [`RxProcessPool::take`]. State
    /// emptied by a successful decode (or never written) is dropped,
    /// which is what retires a HARQ process.
    pub fn put(&mut self, rnti: u16, harq_id: u8, state: RxSoftState) {
        if !state.0.llr_acc.is_empty() || !state.0.snr_acc.is_empty() {
            self.procs.insert((rnti, harq_id), state.0);
        }
    }

    /// Attempt to receive one TB transmission (serial).
    ///
    /// `expected_bytes` is the TB size from the grant (`tb_bytes`);
    /// `ndi` starts a fresh HARQ series when toggled; `rng` supplies
    /// the Abstract mode's BLER draw.
    #[allow(clippy::too_many_arguments)]
    pub fn receive(
        &mut self,
        kernels: DspKernels,
        fidelity: Fidelity,
        signal: &TbSignal,
        lp: &LinkParamsTb,
        expected_bytes: usize,
        harq_id: u8,
        ndi: bool,
        rng: &mut SimRng,
    ) -> RxOutcome {
        self.receive_with(
            kernels,
            &WorkerPool::serial(),
            &default_scratch_pool(),
            fidelity,
            signal,
            lp,
            expected_bytes,
            harq_id,
            ndi,
            rng,
        )
    }

    /// [`RxProcessPool::receive`] with per-code-block decode work fanned
    /// out across `pool` and working buffers drawn from `scratch`.
    /// Identical outcome for any worker count.
    #[allow(clippy::too_many_arguments)]
    pub fn receive_with(
        &mut self,
        kernels: DspKernels,
        pool: &WorkerPool,
        scratch: &DspScratchPool,
        fidelity: Fidelity,
        signal: &TbSignal,
        lp: &LinkParamsTb,
        expected_bytes: usize,
        harq_id: u8,
        ndi: bool,
        rng: &mut SimRng,
    ) -> RxOutcome {
        let mut state = self.take(lp.rnti, harq_id);
        let out = receive_into(
            kernels,
            pool,
            scratch,
            &mut state,
            fidelity,
            signal,
            lp,
            expected_bytes,
            ndi,
            rng,
        );
        self.put(lp.rnti, harq_id, state);
        out
    }
}

/// Attempt to receive one TB transmission into caller-held soft state.
///
/// The free-function form of [`RxProcessPool::receive_with`]: the PHY
/// takes the state out of its pool, may run this inside a worker-pool
/// job (everything here is `Send`-clean), and puts the state back in
/// serial merge order. A successful decode empties the state, which is
/// how the HARQ process retires when the caller `put`s it back.
#[allow(clippy::too_many_arguments)]
pub fn receive_into(
    kernels: DspKernels,
    pool: &WorkerPool,
    scratch: &DspScratchPool,
    state: &mut RxSoftState,
    fidelity: Fidelity,
    signal: &TbSignal,
    lp: &LinkParamsTb,
    expected_bytes: usize,
    ndi: bool,
    rng: &mut SimRng,
) -> RxOutcome {
    let proc = &mut state.0;
    if proc.ndi != ndi || (proc.llr_acc.is_empty() && proc.snr_acc.is_empty()) {
        proc.llr_acc.clear();
        proc.snr_acc.clear();
        proc.ndi = ndi;
    }
    // SNR: estimate from pilots where present, else trust the
    // carried value (Abstract mode's stand-in for estimation).
    let snr_db = if !signal.pilots.is_empty() {
        let reference = cached_pilots(lp.rnti, lp.cell_id, lp.pilot_len());
        estimate_snr_db(&signal.pilots, &reference[..lp.pilot_len()])
    } else {
        signal.snr_db
    };
    match fidelity {
        Fidelity::Full | Fidelity::Sampled => {
            let (coded_bytes, e_bits) = if fidelity == Fidelity::Full {
                (expected_bytes, lp.e_bits())
            } else {
                lp.sampled_split(expected_bytes)
            };
            let need = mother_buffer_len(coded_bytes);
            if proc.llr_acc.len() != need {
                proc.llr_acc.clear();
                proc.llr_acc.resize(need, 0.0);
            }
            if signal.symbols.is_empty() {
                // Lost IQ (e.g., dropped fronthaul): nothing to
                // combine; decoding garbage fails.
                return RxOutcome {
                    payload: None,
                    snr_db,
                    iterations: 0,
                    ldpc_ns: 0,
                };
            }
            let noise_var = (1.0 / db_to_linear(snr_db)).max(1e-6) as f32;
            // Trim any transport padding (fronthaul PRB/chunk
            // rounding) to the exact coded-symbol count; short
            // bursts become erasures inside `decode_tb_with`.
            let expected_syms = e_bits / lp.modulation.bits_per_symbol();
            let symbols = &signal.symbols[..signal.symbols.len().min(expected_syms)];
            let out = decode_tb_with(
                kernels,
                pool,
                scratch,
                &mut proc.llr_acc,
                symbols,
                noise_var,
                coded_bytes,
                &lp.tb_params(e_bits),
            );
            let payload = out.payload.map(|p| {
                if fidelity == Fidelity::Full {
                    Bytes::from(p)
                } else {
                    signal.shadow.clone()
                }
            });
            if payload.is_some() {
                proc.llr_acc.clear();
                proc.snr_acc.clear();
            }
            RxOutcome {
                payload,
                snr_db,
                iterations: out.ldpc_iterations,
                ldpc_ns: out.ldpc_ns,
            }
        }
        Fidelity::Abstract => {
            proc.snr_acc.push(snr_db);
            let combined = bler::combined_snr_db(&proc.snr_acc);
            let row = mcs(lp.mcs);
            let info_bits = (expected_bytes + 3) * 8;
            let code_rate = info_bits as f64 / lp.e_bits() as f64;
            let block_bits = info_bits.min(1024);
            let p_err = bler::bler(
                combined,
                row.modulation.bits_per_symbol(),
                code_rate,
                block_bits,
                lp.fec_iterations,
            );
            let ok = !rng.chance(p_err);
            let payload = if ok {
                Some(signal.shadow.clone())
            } else {
                None
            };
            if ok {
                proc.llr_acc.clear();
                proc.snr_acc.clear();
            }
            RxOutcome {
                payload,
                snr_db,
                iterations: 0,
                ldpc_ns: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_sim::SimRng;

    /// The host's best backend — bit-exact with scalar by contract, so
    /// every outcome below is backend-independent.
    fn kern() -> DspKernels {
        DspKernels::detect()
    }

    fn lp(rv: u8) -> LinkParamsTb {
        LinkParamsTb::from_grant(4, 24, 12, 0x4601, 1, rv, 8)
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i * 13) as u8).collect::<Vec<_>>())
    }

    /// A payload filling the grant's transport block (MCS 4, 24 PRBs),
    /// so the effective code rate matches the MCS nominal rate.
    fn tbs_payload() -> Bytes {
        payload(slingshot_fapi::tbs_bytes(4, 24, 12))
    }

    fn roundtrip(fidelity: Fidelity, snr_db: f64, seed: u64) -> bool {
        let mut ch = AwgnChannel::new(SimRng::new(seed));
        let mut rng = SimRng::new(seed + 1);
        let l = lp(0);
        let data = payload(200);
        let mut sig = encode_signal(kern(), fidelity, &data, &l);
        apply_channel(kern(), &mut sig, snr_db, &mut ch);
        let mut pool = RxProcessPool::new();
        let out = pool.receive(kern(), fidelity, &sig, &l, data.len(), 0, true, &mut rng);
        out.payload.as_ref() == Some(&data)
    }

    #[test]
    fn full_fidelity_roundtrip_high_snr() {
        assert!(roundtrip(Fidelity::Full, 30.0, 1));
    }

    #[test]
    fn sampled_fidelity_roundtrip_high_snr() {
        assert!(roundtrip(Fidelity::Sampled, 30.0, 2));
    }

    #[test]
    fn abstract_fidelity_roundtrip_high_snr() {
        assert!(roundtrip(Fidelity::Abstract, 30.0, 3));
    }

    #[test]
    fn all_modes_fail_at_terrible_snr() {
        for (f, s) in [
            (Fidelity::Full, 4u64),
            (Fidelity::Sampled, 5),
            (Fidelity::Abstract, 6),
        ] {
            assert!(!roundtrip(f, -15.0, s), "{f:?}");
        }
    }

    #[test]
    fn snr_estimate_close_to_truth() {
        let mut ch = AwgnChannel::new(SimRng::new(7));
        let mut rng = SimRng::new(8);
        let l = lp(0);
        let data = payload(100);
        let mut sig = encode_signal(kern(), Fidelity::Full, &data, &l);
        apply_channel(kern(), &mut sig, 15.0, &mut ch);
        let mut pool = RxProcessPool::new();
        let out = pool.receive(
            kern(),
            Fidelity::Full,
            &sig,
            &l,
            data.len(),
            0,
            true,
            &mut rng,
        );
        assert!((out.snr_db - 15.0).abs() < 3.0, "est={}", out.snr_db);
    }

    #[test]
    fn harq_combining_works_in_sampled_mode() {
        // At an SNR where a single transmission usually fails, two
        // combined transmissions should usually succeed.
        let mut single_ok = 0;
        let mut combined_ok = 0;
        let trials = 12;
        for t in 0..trials {
            let mut ch = AwgnChannel::new(SimRng::new(100 + t));
            let mut rng = SimRng::new(200 + t);
            let data = tbs_payload();
            let mut pool = RxProcessPool::new();
            // MCS 4 (QPSK 0.59, eff 1.18) at 2.5 dB: marginal for a
            // single transmission, comfortable after combining.
            let snr = 2.5;
            let l0 = lp(0);
            let mut s0 = encode_signal(kern(), Fidelity::Sampled, &data, &l0);
            apply_channel(kern(), &mut s0, snr, &mut ch);
            let o0 = pool.receive(
                kern(),
                Fidelity::Sampled,
                &s0,
                &l0,
                data.len(),
                0,
                true,
                &mut rng,
            );
            if o0.payload.is_some() {
                single_ok += 1;
                continue;
            }
            let l1 = lp(2);
            let mut s1 = encode_signal(kern(), Fidelity::Sampled, &data, &l1);
            apply_channel(kern(), &mut s1, snr, &mut ch);
            let o1 = pool.receive(
                kern(),
                Fidelity::Sampled,
                &s1,
                &l1,
                data.len(),
                0,
                true,
                &mut rng,
            );
            if o1.payload.is_some() {
                combined_ok += 1;
            }
        }
        assert!(
            combined_ok > single_ok,
            "single={single_ok} combined={combined_ok}"
        );
    }

    #[test]
    fn abstract_mode_harq_gain() {
        // Abstract mode: repeated receives at marginal SNR should
        // succeed more often than the first attempt alone.
        let trials = 400;
        let mut first_ok = 0;
        let mut second_ok = 0;
        let mut rng = SimRng::new(42);
        for t in 0..trials {
            let l = lp(0);
            let data = tbs_payload();
            // Effective efficiency as the receiver computes it.
            let rate = ((data.len() + 3) * 8) as f64 / l.e_bits() as f64;
            let sig = {
                let mut s = encode_signal(kern(), Fidelity::Abstract, &data, &l);
                s.snr_db = slingshot_phy_dsp::bler::threshold_db(2, rate, 8) - 1.0;
                s
            };
            let mut pool = RxProcessPool::new();
            let o1 = pool.receive(
                kern(),
                Fidelity::Abstract,
                &sig,
                &l,
                data.len(),
                0,
                true,
                &mut rng,
            );
            if o1.payload.is_some() {
                first_ok += 1;
                continue;
            }
            let o2 = pool.receive(
                kern(),
                Fidelity::Abstract,
                &sig,
                &l,
                data.len(),
                0,
                true,
                &mut rng,
            );
            if o2.payload.is_some() {
                second_ok += 1;
            }
            let _ = t;
        }
        // Below threshold: first attempt fails most of the time, but a
        // combined (+3 dB) second attempt flips the odds.
        assert!(first_ok < trials / 2, "first={first_ok}");
        assert!(second_ok > (trials - first_ok) / 2, "second={second_ok}");
    }

    #[test]
    fn ndi_toggle_resets_soft_state() {
        let mut rng = SimRng::new(9);
        let l = lp(0);
        let data = payload(64);
        let mut pool = RxProcessPool::new();
        let mut sig = encode_signal(kern(), Fidelity::Abstract, &data, &l);
        sig.snr_db = -20.0;
        let _ = pool.receive(
            kern(),
            Fidelity::Abstract,
            &sig,
            &l,
            data.len(),
            3,
            true,
            &mut rng,
        );
        assert_eq!(pool.len(), 1);
        // Toggled NDI → fresh state (old SNR history must not help).
        let _ = pool.receive(
            kern(),
            Fidelity::Abstract,
            &sig,
            &l,
            data.len(),
            3,
            false,
            &mut rng,
        );
        let mem = pool.memory_bytes();
        assert!(mem <= 16, "should hold one fresh snr entry, mem={mem}");
    }

    #[test]
    fn clear_discards_everything() {
        let mut rng = SimRng::new(10);
        let l = lp(0);
        let data = payload(64);
        let mut pool = RxProcessPool::new();
        let mut sig = encode_signal(kern(), Fidelity::Abstract, &data, &l);
        sig.snr_db = -20.0;
        for h in 0..4 {
            let _ = pool.receive(
                kern(),
                Fidelity::Abstract,
                &sig,
                &l,
                data.len(),
                h,
                true,
                &mut rng,
            );
        }
        assert_eq!(pool.len(), 4);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.memory_bytes(), 0);
    }

    #[test]
    fn lost_iq_fails_cleanly_in_full_mode() {
        let mut rng = SimRng::new(11);
        let l = lp(0);
        let data = payload(100);
        let sig = TbSignal {
            pilots: pilot_sequence(l.rnti, l.cell_id, l.pilot_len()),
            symbols: Vec::new(), // fronthaul lost
            shadow: Bytes::new(),
            snr_db: 20.0,
        };
        let mut pool = RxProcessPool::new();
        let out = pool.receive(
            kern(),
            Fidelity::Full,
            &sig,
            &l,
            data.len(),
            0,
            true,
            &mut rng,
        );
        assert!(out.payload.is_none());
    }
}
