//! # slingshot-ran
//!
//! The complete vRAN stack the Slingshot paper's testbed runs,
//! re-implemented as simulation nodes: RU, PHY (FlexRAN stand-in), L2
//! (MAC scheduler + RLC), UEs, the core-network stub, and the app
//! server — plus the global message type and the fidelity-aware DSP
//! paths they share.

pub mod cell;
pub mod core_net;
pub mod fidelity;
pub mod l2;
pub mod msg;
pub mod phy;
pub mod rlc;
pub mod ru;
pub mod sched;
pub mod ue;

pub use cell::{CellConfig, Fidelity};
pub use core_net::{AppServerNode, CoreNode};
pub use fidelity::{
    apply_channel, encode_signal, pilot_sequence, LinkParamsTb, RxOutcome, RxProcessPool, TbSignal,
};
pub use l2::L2Node;
pub use msg::{CtlMsg, DlAllocation, Msg, RadioDlBurst, RadioUlBurst, UserPacket, AIR_LATENCY};
pub use phy::{PhyConfig, PhyNode};
pub use ru::RuNode;
pub use sched::{Policy, Scheduler};
pub use ue::{UeConfig, UeNode, UeState};
