//! The UE model: attach / radio-link-failure / reattach state machine,
//! grant-driven uplink transmission with real coding and HARQ
//! retransmission from its transmit buffer, downlink reception with
//! soft combining and HARQ feedback, and hosting of traffic apps.
//!
//! The RLF timer (50 ms, matching the paper's setup) and the measured
//! 6.2 s reattach delay are the two constants behind the paper's §8.1
//! baseline result: without Slingshot, a PHY crash darkens the cell
//! long enough to trip RLF, and the UE is then gone for seconds.

use std::collections::HashMap;

use bytes::Bytes;

use slingshot_fronthaul::{DciEntry, UciEntry};
use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::{DspScratchPool, SnrProcess, SnrProcessConfig};
use slingshot_sim::{
    Ctx, Instrument, InstrumentSink, Nanos, Node, NodeId, SimRng, SlotClock, SlotId,
};
use slingshot_transport::UserApp;

use crate::cell::{CellConfig, Fidelity};
use crate::fidelity::{apply_channel_with, encode_signal_with, LinkParamsTb, RxProcessPool};
use crate::l2::{build_mac_pdu, parse_mac_pdu};
use crate::msg::{timer_tokens, CtlMsg, Msg, RadioUlBurst, AIR_LATENCY};
use crate::rlc::{RlcRx, RlcTx};
use slingshot_phy_dsp::DspKernels;

const TIMER_ATTACH_DONE: u64 = timer_tokens::NODE_BASE + 1;

/// UE configuration.
#[derive(Debug, Clone)]
pub struct UeConfig {
    pub rnti: u16,
    pub ru_id: u8,
    /// Human-readable label ("OnePlus N10", "Samsung A52s", "RPi").
    pub name: String,
    pub snr: SnrProcessConfig,
    /// Attached from t=0 (pre-camped), as in the paper's experiments.
    pub preattached: bool,
}

impl UeConfig {
    pub fn new(rnti: u16, ru_id: u8, name: &str, mean_snr_db: f64) -> UeConfig {
        UeConfig {
            rnti,
            ru_id,
            name: name.to_string(),
            snr: SnrProcessConfig {
                mean_db: mean_snr_db,
                ..Default::default()
            },
            preattached: true,
        }
    }
}

/// Connection state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UeState {
    Connected,
    /// Lost the cell (RLF); waiting for it to reappear.
    Idle,
    /// Cell visible again; random access + RRC + core signaling in
    /// progress until the deadline.
    Attaching(Nanos),
}

/// One in-flight uplink HARQ process at the UE (the transmit buffer
/// that allows retransmission).
#[derive(Debug)]
struct UlTxProc {
    ndi: bool,
    payload: Bytes,
}

/// The UE node.
pub struct UeNode {
    pub cfg: UeConfig,
    cell: CellConfig,
    clock: SlotClock,
    channel: AwgnChannel,
    snr: SnrProcess,
    rng: SimRng,
    pub state: UeState,
    last_dl_burst: Nanos,
    /// Last time the network scheduled us (a DCI with our RNTI). A
    /// connected UE that stops being scheduled AND acknowledged loses
    /// radio-link sync (the baseline's failure mode: a backup stack
    /// with no context for us radiates, but never addresses us).
    last_served: Nanos,
    ru: Option<NodeId>,
    l2: Option<NodeId>,
    /// UL grants by absolute target slot.
    grants: HashMap<u64, Vec<DciEntry>>,
    ul_tx: HashMap<u8, UlTxProc>,
    dl_pool: RxProcessPool,
    /// Slot-scoped DSP scratch arenas, reused across TTIs.
    scratch: DspScratchPool,
    ul_rlc: RlcTx,
    dl_rlc: RlcRx,
    pending_ucis: Vec<UciEntry>,
    apps: Vec<Box<dyn UserApp>>,
    pub current_snr_db: f64,
    /// Stats / instrumentation.
    pub rlf_count: u64,
    pub reattach_times: Vec<Nanos>,
    pub dl_tbs_ok: u64,
    pub dl_tbs_bad: u64,
    pub ul_grants_served: u64,
    pub delivered_to_apps: u64,
}

impl UeNode {
    pub fn new(cfg: UeConfig, cell: CellConfig, clock: SlotClock, mut rng: SimRng) -> UeNode {
        let channel = AwgnChannel::new(rng.fork("channel"));
        let snr = SnrProcess::new(cfg.snr.clone(), rng.fork("snr"));
        let state = if cfg.preattached {
            UeState::Connected
        } else {
            UeState::Idle
        };
        let mean = cfg.snr.mean_db;
        let dl_rlc = if cell.rlc_ordered {
            RlcRx::new()
        } else {
            RlcRx::unordered()
        };
        UeNode {
            cfg,
            cell,
            clock,
            channel,
            snr,
            rng,
            state,
            last_dl_burst: Nanos::ZERO,
            last_served: Nanos::ZERO,
            ru: None,
            l2: None,
            grants: HashMap::new(),
            ul_tx: HashMap::new(),
            dl_pool: RxProcessPool::new(),
            scratch: DspScratchPool::new(),
            ul_rlc: RlcTx::new(),
            dl_rlc,
            pending_ucis: Vec::new(),
            apps: Vec::new(),
            current_snr_db: mean,
            rlf_count: 0,
            reattach_times: Vec::new(),
            dl_tbs_ok: 0,
            dl_tbs_bad: 0,
            ul_grants_served: 0,
            delivered_to_apps: 0,
        }
    }

    pub fn wire(&mut self, ru: NodeId, l2: NodeId) {
        self.ru = Some(ru);
        self.l2 = Some(l2);
    }

    /// Host a traffic application on this UE.
    pub fn add_app(&mut self, app: Box<dyn UserApp>) {
        self.apps.push(app);
    }

    /// Borrow a hosted app (post-run inspection).
    pub fn app<T: 'static>(&self, idx: usize) -> Option<&T> {
        let app = self.apps.get(idx)?;
        (app.as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    fn poll_apps(&mut self, now: Nanos) {
        let mut to_send = Vec::new();
        for app in &mut self.apps {
            to_send.extend(app.poll_transmit(now));
        }
        for payload in to_send {
            self.ul_rlc.enqueue(payload);
        }
    }

    fn abs_of_slot(&self, now: Nanos, target_scalar: u16) -> u64 {
        let now_abs = self.clock.absolute_slot(now);
        let now_scalar = (now_abs % (256 * 20)) as i64;
        let mut d = target_scalar as i64 - now_scalar;
        let epoch = 256 * 20i64;
        if d > epoch / 2 {
            d -= epoch;
        } else if d < -epoch / 2 {
            d += epoch;
        }
        now_abs.saturating_add_signed(d)
    }

    /// Transmit on any grant targeting the current slot.
    fn serve_grants(&mut self, ctx: &mut Ctx<'_, Msg>, abs: u64, slot: SlotId) {
        let Some(grants) = self.grants.remove(&abs) else {
            return;
        };
        if self.state != UeState::Connected {
            return;
        }
        let pool = ctx.worker_pool();
        let kernels = DspKernels::from_config(ctx.kernel_config());
        for g in grants {
            self.ul_grants_served += 1;
            // New data or retransmission? Track NDI per HARQ process.
            let fresh = match self.ul_tx.get(&g.harq_id) {
                Some(p) => p.ndi != g.ndi,
                None => true,
            };
            let payload = if fresh {
                let p = build_mac_pdu(&mut self.ul_rlc, g.tb_bytes as usize);
                self.ul_tx.insert(
                    g.harq_id,
                    UlTxProc {
                        ndi: g.ndi,
                        payload: p.clone(),
                    },
                );
                p
            } else {
                self.ul_tx
                    .get(&g.harq_id)
                    .map(|p| p.payload.clone())
                    .unwrap_or_else(|| build_mac_pdu(&mut self.ul_rlc, g.tb_bytes as usize))
            };
            let lp = LinkParamsTb::from_grant(
                g.mcs,
                g.num_prb,
                self.cell.data_symbols,
                self.cfg.rnti,
                self.cell.cell_id,
                g.rv,
                self.cell.fec_iterations,
            );
            let mut signal = encode_signal_with(
                kernels,
                &pool,
                &self.scratch,
                self.cell.fidelity,
                &payload,
                &lp,
            );
            let channel_span = ctx.profiler().span("channel", abs);
            apply_channel_with(
                kernels,
                &pool,
                &mut signal,
                self.current_snr_db,
                &mut self.channel,
            );
            drop(channel_span);
            if self.cell.fidelity == Fidelity::Abstract {
                signal.snr_db = self.current_snr_db;
            }
            let burst = RadioUlBurst {
                ru_id: self.cfg.ru_id,
                slot,
                rnti: self.cfg.rnti,
                start_prb: g.start_prb,
                num_prb: g.num_prb,
                signal,
                ucis: std::mem::take(&mut self.pending_ucis),
            };
            if let Some(ru) = self.ru {
                ctx.send_in(ru, AIR_LATENCY, Msg::RadioUl(burst));
            }
        }
    }

    fn on_dl_burst(&mut self, ctx: &mut Ctx<'_, Msg>, burst: crate::msg::RadioDlBurst) {
        let now = ctx.now();
        let pool = ctx.worker_pool();
        let kernels = DspKernels::from_config(ctx.kernel_config());
        self.last_dl_burst = now;
        match self.state {
            UeState::Idle => {
                // Cell is back: begin the reattach procedure (random
                // access, RRC re-establishment, core signaling) — the
                // measured multi-second outage of §8.1.
                self.state = UeState::Attaching(now + self.cell.reattach_delay);
                ctx.timer(self.cell.reattach_delay, TIMER_ATTACH_DONE);
                return;
            }
            UeState::Attaching(_) => return,
            UeState::Connected => {}
        }
        if burst.dcis.iter().any(|d| d.rnti == self.cfg.rnti) {
            self.last_served = now;
        }
        // Store uplink grants for their target slots.
        for dci in burst
            .dcis
            .iter()
            .filter(|d| d.uplink && d.rnti == self.cfg.rnti)
        {
            let abs = self.abs_of_slot(now, dci.target_slot_scalar);
            self.grants.entry(abs).or_default().push(*dci);
        }
        // Decode downlink assignments addressed to us.
        for dci in burst
            .dcis
            .iter()
            .filter(|d| !d.uplink && d.rnti == self.cfg.rnti)
        {
            let Some(alloc) = burst
                .pdsch
                .iter()
                .find(|a| a.rnti == self.cfg.rnti && a.start_prb == dci.start_prb)
            else {
                continue;
            };
            let lp = LinkParamsTb::from_grant(
                dci.mcs,
                dci.num_prb,
                self.cell.data_symbols,
                self.cfg.rnti,
                self.cell.cell_id,
                dci.rv,
                self.cell.fec_iterations,
            );
            // Receiver-side channel: noise applied at the UE antenna.
            let mut signal = alloc.signal.clone();
            let channel_span = ctx.profiler().span("channel", burst.slot.epoch_index());
            apply_channel_with(
                kernels,
                &pool,
                &mut signal,
                self.current_snr_db,
                &mut self.channel,
            );
            drop(channel_span);
            if self.cell.fidelity == Fidelity::Abstract {
                signal.snr_db = self.current_snr_db;
            }
            let out = self.dl_pool.receive_with(
                kernels,
                &pool,
                &self.scratch,
                self.cell.fidelity,
                &signal,
                &lp,
                dci.tb_bytes as usize,
                dci.harq_id,
                dci.ndi,
                &mut self.rng,
            );
            let ok = out.payload.is_some();
            if ok {
                self.dl_tbs_ok += 1;
            } else {
                self.dl_tbs_bad += 1;
            }
            if std::env::var("SLINGSHOT_DEBUG_DL").is_ok() && self.dl_tbs_ok + self.dl_tbs_bad < 25
            {
                eprintln!("DL decode ok={ok} mcs={} rv={} ndi={} harq={} prb={} tb={} snr_est={:.1} chan={:.1} syms={} pilots={}",
                    dci.mcs, dci.rv, dci.ndi, dci.harq_id, dci.num_prb, dci.tb_bytes, out.snr_db, self.current_snr_db,
                    signal.symbols.len(), signal.pilots.len());
            }
            self.pending_ucis.push(UciEntry {
                rnti: self.cfg.rnti,
                harq_id: dci.harq_id,
                ack: ok,
            });
            if let Some(pdu) = out.payload {
                if let Some(sdu) = parse_mac_pdu(&pdu) {
                    for packet in self.dl_rlc.on_tb(now, sdu) {
                        self.delivered_to_apps += 1;
                        for app in &mut self.apps {
                            app.on_packet(now, &packet);
                        }
                    }
                }
            }
        }
    }
}

impl Instrument for UeNode {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "rlf_count", self.rlf_count);
        sink.counter(scope, "dl_tbs_ok", self.dl_tbs_ok);
        sink.counter(scope, "dl_tbs_bad", self.dl_tbs_bad);
        sink.counter(scope, "ul_grants_served", self.ul_grants_served);
        sink.counter(scope, "delivered_to_apps", self.delivered_to_apps);
        sink.gauge(
            scope,
            "connected",
            matches!(self.state, UeState::Connected) as i64,
        );
    }
}

impl Node<Msg> for UeNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer_at(
            self.clock.next_slot_start(ctx.now()),
            timer_tokens::SLOT_TICK,
        );
        self.last_dl_burst = ctx.now();
        self.last_served = ctx.now();
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            timer_tokens::SLOT_TICK => {
                let now = ctx.now();
                let abs = self.clock.absolute_slot(now);
                let slot = SlotId::from_absolute(abs);
                self.current_snr_db = self.snr.step();
                // Radio-link failure detection: the cell went dark, or
                // it is radiating but no longer serving us.
                let dark = now.saturating_sub(self.last_dl_burst) > self.cell.rlf_timeout;
                let unserved = now.saturating_sub(self.last_served) > self.cell.rlf_timeout;
                if self.state == UeState::Connected && (dark || unserved) {
                    self.state = UeState::Idle;
                    self.rlf_count += 1;
                    self.grants.clear();
                    self.ul_tx.clear();
                    self.dl_pool.clear();
                    self.ul_rlc = RlcTx::new();
                    self.dl_rlc = if self.cell.rlc_ordered {
                        RlcRx::new()
                    } else {
                        RlcRx::unordered()
                    };
                    self.pending_ucis.clear();
                    if let Some(l2) = self.l2 {
                        // The network also notices (RRC inactivity); we
                        // short-circuit that via signaling.
                        ctx.send_in(
                            l2,
                            Nanos::from_millis(1),
                            Msg::Ctl(CtlMsg::Detach {
                                rnti: self.cfg.rnti,
                            }),
                        );
                    }
                }
                // Release downlink packets held past t-Reassembly.
                for packet in self.dl_rlc.poll_expired(now) {
                    self.delivered_to_apps += 1;
                    for app in &mut self.apps {
                        app.on_packet(now, &packet);
                    }
                }
                self.poll_apps(now);
                self.serve_grants(ctx, abs, slot);
                ctx.timer_at(self.clock.slot_start(abs + 1), timer_tokens::SLOT_TICK);
            }
            TIMER_ATTACH_DONE => {
                if let UeState::Attaching(deadline) = self.state {
                    if ctx.now() >= deadline {
                        if let Some(l2) = self.l2 {
                            ctx.send_in(
                                l2,
                                Nanos::from_millis(2),
                                Msg::Ctl(CtlMsg::AttachRequest {
                                    rnti: self.cfg.rnti,
                                }),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::RadioDl(burst) if burst.ru_id == self.cfg.ru_id => {
                self.on_dl_burst(ctx, burst);
            }
            Msg::Ctl(CtlMsg::AttachAccept { rnti }) if rnti == self.cfg.rnti => {
                if matches!(self.state, UeState::Attaching(_)) {
                    self.state = UeState::Connected;
                    self.last_served = ctx.now();
                    self.last_dl_burst = ctx.now();
                    self.reattach_times.push(ctx.now());
                }
            }
            _ => {}
        }
    }
}
