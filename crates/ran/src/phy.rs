//! The software PHY (L1) node — this reproduction's stand-in for Intel
//! FlexRAN.
//!
//! Faithful behaviors that Slingshot depends on:
//!
//! - **Strict slot cadence**: per-slot processing driven by the PTP
//!   clock; downlink C-plane packets emitted in every slot — the
//!   "natural heartbeat" the in-switch failure detector watches.
//! - **Crash on missing FAPI**: if slot requests stop arriving, the
//!   PHY crashes after a few slots (valid per the FAPI spec; FlexRAN
//!   does this — the reason Orion must feed the secondary *null* FAPI
//!   requests rather than nothing, §6.2).
//! - **Inter-TTI soft state only**: HARQ soft buffers and per-UE SNR
//!   filters ([`crate::fidelity::RxProcessPool`], `SnrFilter`) — the
//!   state Slingshot discards at migration (§4.2).
//! - **Pipelined slot processing** (§7, Fig. 7): uplink slot N's
//!   indications are emitted at the N+2 boundary, so a migrating
//!   primary still produces results for pre-boundary slots afterwards.
//! - **Null FAPI ≈ free**: per-slot CPU cost is accounted; null slots
//!   cost ~0 (§8.5).

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use slingshot_fapi::{
    CrcEntry, CrcIndication, FapiMsg, PuschPdu, RxDataIndication, RxTb, SlotIndication,
    UciIndication,
};
use slingshot_fronthaul::{
    compress_symbol_with, decompress_prbs_with, fh_header, CPlaneMsg, CSection, DciEntry, DciMsg,
    Direction, FhMessage, ShadowMsg, UPlaneMsg,
};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_phy_dsp::snr::SnrFilter;
use slingshot_phy_dsp::{Cplx, DspKernels, DspScratchPool, SC_PER_PRB};
use slingshot_sim::{
    Ctx, Instrument, InstrumentSink, Nanos, Node, NodeId, SimRng, SlotClock, SlotId, TraceEventKind,
};

use crate::cell::CellConfig;
use crate::fidelity::{
    encode_signal_with, receive_into, LinkParamsTb, RxProcessPool, RxSoftState, TbSignal,
};
use crate::msg::{timer_tokens, CtlMsg, Msg};
use crate::ru::PRBS_PER_CHUNK;

const TIMER_HEARTBEAT: u64 = timer_tokens::NODE_BASE + 1;

/// PHY configuration.
#[derive(Debug, Clone)]
pub struct PhyConfig {
    pub phy_id: u8,
    /// Min-sum decoder iterations — the §8.3 upgrade knob. Overrides
    /// the cell default.
    pub fec_iterations: usize,
    /// Crash after this many consecutive slots without FAPI requests.
    pub crash_after_missing: u32,
}

impl PhyConfig {
    pub fn new(phy_id: u8) -> PhyConfig {
        PhyConfig {
            phy_id,
            fec_iterations: 8,
            crash_after_missing: 3,
        }
    }
}

/// Per-slot uplink data being assembled from fronthaul.
#[derive(Debug, Default)]
struct UlSlotData {
    chunks: HashMap<u16, Vec<(u8, Vec<Cplx>)>>,
    shadows: HashMap<u16, (f64, Bytes)>,
}

/// Per-RU (carrier) PHY state.
struct RuCtx {
    cell_id: u16,
    ru_mac: MacAddr,
    started: bool,
    /// FAPI requests by absolute slot.
    ul_tti: HashMap<u64, Vec<PuschPdu>>,
    dl_seen: HashMap<u64, bool>,
    ul_data: HashMap<u64, UlSlotData>,
    rx_pool: RxProcessPool,
    snr_filters: HashMap<u16, SnrFilter>,
    /// Massive-MIMO extension: per-UE channel-knowledge state —
    /// (uplink TBs processed since (re)acquisition, last slot seen).
    csi: HashMap<u16, (u64, u64)>,
    /// Consecutive slots with no FAPI requests.
    missing_streak: u32,
    any_fapi_seen: bool,
}

/// CPU cost model constants (rough FlexRAN-like shape: decode cost
/// dominates and scales with iterations).
const CPU_SLOT_BASE_NS: u64 = 3_000;
const CPU_NULL_SLOT_NS: u64 = 400;
const CPU_ENCODE_PER_EBIT_NS: f64 = 0.25;
const CPU_DECODE_PER_ITER_KBIT_NS: f64 = 700.0;

/// The PHY node.
pub struct PhyNode {
    pub cfg: PhyConfig,
    cell: CellConfig,
    clock: SlotClock,
    rng: SimRng,
    mac: MacAddr,
    switch: Option<NodeId>,
    fapi_peer: Option<NodeId>,
    rus: BTreeMap<u8, RuCtx>,
    crashed: bool,
    /// Chaos hook: a stalled PHY is alive but wedged — its slot timer
    /// still fires (the clock interrupt) yet no work is done and its
    /// queues drop on the floor. It misses TTI deadlines without dying,
    /// the gray failure the in-switch detector must still catch.
    stalled: bool,
    /// Statistics / experiment instrumentation.
    pub crash_time: Option<Nanos>,
    pub busy_ns_total: u64,
    pub null_slots: u64,
    pub work_slots: u64,
    pub ul_tbs_decoded: u64,
    pub ul_crc_failures: u64,
    pub processed_ul_slots: Vec<u64>,
    started_at: Option<Nanos>,
    /// DL_TTI requests awaiting their TX_Data payloads.
    pending_dl: HashMap<(u8, u64), Vec<slingshot_fapi::PdschPdu>>,
    /// Slot-scoped DSP scratch arenas, reused across TTIs and shared
    /// with worker-pool jobs (contents never outlive one code block's
    /// processing, so handout order cannot affect results).
    scratch: DspScratchPool,
}

impl PhyNode {
    pub fn new(cfg: PhyConfig, cell: CellConfig, clock: SlotClock, rng: SimRng) -> PhyNode {
        let mac = MacAddr::for_phy(cfg.phy_id);
        PhyNode {
            cfg,
            cell,
            clock,
            rng,
            mac,
            switch: None,
            fapi_peer: None,
            rus: BTreeMap::new(),
            crashed: false,
            stalled: false,
            crash_time: None,
            busy_ns_total: 0,
            null_slots: 0,
            work_slots: 0,
            ul_tbs_decoded: 0,
            ul_crc_failures: 0,
            processed_ul_slots: Vec::new(),
            started_at: None,
            pending_dl: HashMap::new(),
            scratch: DspScratchPool::new(),
        }
    }

    pub fn wire(&mut self, switch: NodeId, fapi_peer: NodeId) {
        self.switch = Some(switch);
        self.fapi_peer = Some(fapi_peer);
    }

    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Average CPU utilization since start (busy ns / wall ns).
    pub fn cpu_utilization(&self, now: Nanos) -> f64 {
        match self.started_at {
            Some(t0) if now > t0 => self.busy_ns_total as f64 / (now - t0).0 as f64,
            _ => 0.0,
        }
    }

    /// Live-upgrade knob (§8.3): change the decoder iteration budget.
    pub fn set_fec_iterations(&mut self, iters: usize) {
        self.cfg.fec_iterations = iters;
    }

    /// Chaos hook: wedge or un-wedge the PHY's poll loop. While stalled
    /// it emits no heartbeats, processes no slots, and drops every
    /// incoming message — but stays alive. Un-stalling resumes the slot
    /// cadence; a PHY that was failed-over-from in the meantime will be
    /// starved of FAPI requests and crash itself cleanly a few slots
    /// later (the FAPI-liveness rule).
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Recovery-orchestrator scrub: drop every per-RU soft state (the
    /// §4.2 point — nothing here is worth preserving) and clear crash
    /// flags, returning the process to a factory-fresh spare. Called
    /// after the engine restarted the node, so the slot-timer chain
    /// re-armed by `on_start` resumes the cadence.
    pub fn scrub(&mut self) {
        self.rus.clear();
        self.pending_dl.clear();
        self.crashed = false;
        self.stalled = false;
        self.crash_time = None;
        self.started_at = None;
    }

    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Ablation hook: extract this RU's HARQ soft state (what a
    /// hypothetical state-transferring migration would ship across).
    /// The real Slingshot discards it.
    pub fn take_soft_state(&mut self, ru_id: u8) -> Option<RxProcessPool> {
        self.rus
            .get_mut(&ru_id)
            .map(|ru| std::mem::take(&mut ru.rx_pool))
    }

    /// Ablation hook: install transferred HARQ soft state.
    pub fn install_soft_state(&mut self, ru_id: u8, pool: RxProcessPool) {
        if let Some(ru) = self.rus.get_mut(&ru_id) {
            ru.rx_pool = pool;
        }
    }

    /// Bytes of HARQ soft state currently held for an RU.
    pub fn soft_state_bytes(&self, ru_id: u8) -> usize {
        self.rus
            .get(&ru_id)
            .map(|ru| ru.rx_pool.memory_bytes())
            .unwrap_or(0)
    }

    fn send_fapi(&mut self, ctx: &mut Ctx<'_, Msg>, msg: FapiMsg) {
        if let Some(peer) = self.fapi_peer {
            ctx.send(peer, Msg::FapiShm(msg));
        }
    }

    fn send_fh(&mut self, ctx: &mut Ctx<'_, Msg>, ru_mac: MacAddr, msg: &FhMessage) {
        let frame = Frame::new(ru_mac, self.mac, EtherType::Ecpri, msg.to_bytes());
        if let Some(sw) = self.switch {
            ctx.send(sw, Msg::Eth(frame));
        }
    }

    fn heartbeat(&mut self, ctx: &mut Ctx<'_, Msg>, slot: SlotId) {
        let targets: Vec<(u8, MacAddr)> = self
            .rus
            .iter()
            .filter(|(_, r)| r.started)
            .map(|(id, r)| (*id, r.ru_mac))
            .collect();
        for (ru_id, ru_mac) in targets {
            let msg = FhMessage::CPlane(CPlaneMsg {
                hdr: fh_header(Direction::Downlink, slot, 0, ru_id),
                sections: Vec::new(),
            });
            self.send_fh(ctx, ru_mac, &msg);
        }
    }

    /// Process downlink work for slot `n` (requests arrived ~2 slots in
    /// advance): encode PDSCH and emit fronthaul to the RU.
    fn process_dl(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        ru_id: u8,
        slot: SlotId,
        pdsch: Vec<slingshot_fapi::PdschPdu>,
        tbs: Vec<(u16, Bytes)>,
    ) {
        let Some(ru) = self.rus.get(&ru_id) else {
            return;
        };
        let ru_mac = ru.ru_mac;
        let cell_id = ru.cell_id;
        // Alive marker: a C-plane with the scheduled sections.
        let sections: Vec<CSection> = pdsch
            .iter()
            .enumerate()
            .map(|(i, p)| CSection {
                section_id: i as u16,
                start_prb: p.start_prb,
                num_prb: p.num_prb,
                beam_id: 0,
            })
            .collect();
        self.send_fh(
            ctx,
            ru_mac,
            &FhMessage::CPlane(CPlaneMsg {
                hdr: fh_header(Direction::Downlink, slot, 0, ru_id),
                sections,
            }),
        );
        if pdsch.is_empty() {
            self.busy_ns_total += CPU_NULL_SLOT_NS;
            self.null_slots += 1;
            return;
        }
        self.work_slots += 1;
        let payloads: HashMap<u16, Bytes> = tbs.into_iter().collect();
        let scalar = (slot.sfn % 256) * 20 + slot.subframe as u16 * 2 + slot.slot as u16;
        // Serial prepare: one self-contained encode job per PDU with a
        // payload, then fan the pure DSP out to the worker pool. All
        // sends stay in PDU order below, so worker count never changes
        // the trace.
        let pool = ctx.worker_pool();
        let kernels = DspKernels::from_config(ctx.kernel_config());
        let profiler = ctx.profiler();
        let abs = slot.epoch_index();
        let slot_t0 = profiler.is_enabled().then(std::time::Instant::now);
        let prepare_span = profiler.span("slot_prepare", abs);
        let fidelity = self.cell.fidelity;
        let mut picked = Vec::new();
        let mut jobs: Vec<Box<dyn FnOnce() -> TbSignal + Send>> = Vec::new();
        for (i, pdu) in pdsch.iter().enumerate() {
            let Some(payload) = payloads.get(&pdu.rnti) else {
                continue;
            };
            let lp = LinkParamsTb::from_grant(
                pdu.mcs,
                pdu.num_prb,
                self.cell.data_symbols,
                pdu.rnti,
                cell_id,
                pdu.rv,
                self.cfg.fec_iterations,
            );
            picked.push((i, lp.e_bits()));
            let payload = payload.clone();
            let job_pool = pool.clone();
            let job_scratch = self.scratch.clone();
            let job_prof = profiler.clone();
            jobs.push(Box::new(move || {
                let _encode_span = job_prof.span("dl_encode", abs);
                encode_signal_with(kernels, &job_pool, &job_scratch, fidelity, &payload, &lp)
            }));
        }
        drop(prepare_span);
        let jobs_span = profiler.span("slot_jobs", abs);
        let signals = pool.run(jobs);
        drop(jobs_span);
        let merge_span = profiler.span("slot_merge", abs);
        let mut dcis = Vec::new();
        for ((i, e_bits), signal) in picked.into_iter().zip(signals) {
            let pdu = &pdsch[i];
            self.busy_ns_total +=
                CPU_SLOT_BASE_NS + (e_bits as f64 * CPU_ENCODE_PER_EBIT_NS) as u64;
            dcis.push(DciEntry {
                rnti: pdu.rnti,
                uplink: false,
                target_slot_scalar: scalar,
                harq_id: pdu.harq_id,
                ndi: pdu.ndi,
                rv: pdu.rv,
                mcs: pdu.mcs,
                start_prb: pdu.start_prb,
                num_prb: pdu.num_prb,
                tb_bytes: pdu.tb_bytes,
            });
            self.emit_signal(ctx, ru_id, ru_mac, slot, pdu.start_prb, pdu.rnti, signal);
        }
        self.send_fh(
            ctx,
            ru_mac,
            &FhMessage::Dci(DciMsg {
                hdr: fh_header(Direction::Downlink, slot, 0, ru_id),
                entries: dcis,
            }),
        );
        drop(merge_span);
        if let Some(t0) = slot_t0 {
            profiler.complete_slot(abs, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Serialize a TB signal into U-plane / shadow fronthaul messages.
    // One parameter per fronthaul header field, in wire order.
    #[allow(clippy::too_many_arguments)]
    fn emit_signal(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        ru_id: u8,
        ru_mac: MacAddr,
        slot: SlotId,
        start_prb: u16,
        rnti: u16,
        signal: TbSignal,
    ) {
        // Reuse the signal's own pilot buffer as the flat IQ scratch —
        // the TB is consumed here, so nothing is cloned on this path.
        let TbSignal {
            pilots: mut flat,
            symbols,
            shadow,
            ..
        } = signal;
        flat.extend_from_slice(&symbols);
        while !flat.len().is_multiple_of(SC_PER_PRB) {
            flat.push(Cplx::ZERO);
        }
        // `flat` is PRB-aligned, so every chunk already is too.
        let kernels = DspKernels::from_config(ctx.kernel_config());
        let per_chunk = PRBS_PER_CHUNK * SC_PER_PRB;
        for (idx, chunk) in flat.chunks(per_chunk).enumerate() {
            self.send_fh(
                ctx,
                ru_mac,
                &FhMessage::UPlane(UPlaneMsg {
                    hdr: fh_header(Direction::Downlink, slot, idx as u8, ru_id),
                    start_prb,
                    prbs: compress_symbol_with(kernels, chunk),
                }),
            );
        }
        if !shadow.is_empty() {
            self.send_fh(
                ctx,
                ru_mac,
                &FhMessage::Shadow(ShadowMsg {
                    hdr: fh_header(Direction::Downlink, slot, 0, ru_id),
                    rnti,
                    snr_db_x100: 0,
                    data: shadow,
                }),
            );
        }
    }

    /// Process uplink slot `abs` (its fronthaul arrived during abs+1;
    /// we run at the abs+2 boundary — the 3-slot pipeline of Fig. 7).
    fn process_ul(&mut self, ctx: &mut Ctx<'_, Msg>, ru_id: u8, abs: u64) {
        let pool = ctx.worker_pool();
        let kernels = DspKernels::from_config(ctx.kernel_config());
        let profiler = ctx.profiler();
        let Some(ru) = self.rus.get_mut(&ru_id) else {
            return;
        };
        let Some(pdus) = ru.ul_tti.remove(&abs) else {
            return;
        };
        let slot = SlotId::from_absolute(abs);
        let mut data = ru.ul_data.remove(&abs).unwrap_or_default();
        if pdus.is_empty() {
            self.busy_ns_total += CPU_NULL_SLOT_NS;
            self.null_slots += 1;
            return;
        }
        self.work_slots += 1;
        self.processed_ul_slots.push(abs);
        ctx.trace_at_slot(
            TraceEventKind::UlSlotProcessed,
            slot,
            abs,
            self.cfg.phy_id as u64,
        );
        // Wall-clock TTI accounting (side channel; inert when the
        // profiler is disabled — no clock reads on default runs).
        let slot_t0 = profiler.is_enabled().then(std::time::Instant::now);
        let prepare_span = profiler.span("slot_prepare", abs);
        let cell_id = ru.cell_id;
        let fidelity = self.cell.fidelity;
        let data_symbols = self.cell.data_symbols;
        let iters = self.cfg.fec_iterations;
        // Serial prepare: everything that touches shared or ordered
        // state — fronthaul reassembly, CSI bookkeeping, HARQ soft-state
        // checkout, RNG stream splits — runs here in PDU order, so the
        // jobs below are pure and the trace is worker-count independent.
        struct UlJob {
            signal: TbSignal,
            lp: LinkParamsTb,
            tb_bytes: usize,
            ndi: bool,
            state: RxSoftState,
            rng: SimRng,
        }
        let mut prepped = Vec::with_capacity(pdus.len());
        for pdu in &pdus {
            // Reassemble the allocation's samples.
            let mut samples = Vec::new();
            if let Some(mut chunks) = data.chunks.remove(&pdu.start_prb) {
                chunks.sort_by_key(|(i, _)| *i);
                for (_, c) in chunks {
                    samples.extend(c);
                }
            }
            let lp = LinkParamsTb::from_grant(
                pdu.mcs,
                pdu.num_prb,
                data_symbols,
                pdu.rnti,
                cell_id,
                pdu.rv,
                iters,
            );
            let pilot_len = lp.pilot_len();
            let (pilots, symbols) = if samples.len() > pilot_len {
                let mut p = samples;
                let s = p.split_off(pilot_len);
                // Trim the RU's PRB padding off the data symbols.
                let expected = lp.e_bits() / lp.modulation.bits_per_symbol();
                let mut s = s;
                s.truncate(expected.max(1));
                (p, s)
            } else {
                (Vec::new(), Vec::new())
            };
            let (snr_hint, shadow) = data
                .shadows
                .get(&pdu.rnti)
                .cloned()
                .unwrap_or((f64::NAN, Bytes::new()));
            // Massive-MIMO extension (§10): a PHY without fresh channel
            // knowledge for this UE operates with reduced effective SNR
            // until its precoding/equalization state reconverges.
            let mimo_penalty = if self.cell.mimo_reconverge_slots > 0 {
                let entry = ru.csi.entry(pdu.rnti).or_insert((0, abs));
                // Long silence ⇒ stale CSI: reacquire from scratch.
                if abs.saturating_sub(entry.1) > self.cell.mimo_reconverge_slots {
                    entry.0 = 0;
                }
                entry.1 = abs;
                let progress = (entry.0 as f64 / self.cell.mimo_reconverge_slots as f64).min(1.0);
                entry.0 += 1;
                self.cell.mimo_cold_penalty_db * (1.0 - progress)
            } else {
                0.0
            };
            let signal = TbSignal {
                pilots,
                symbols,
                shadow,
                snr_db: snr_hint - mimo_penalty,
            };
            prepped.push(UlJob {
                signal,
                lp,
                tb_bytes: pdu.tb_bytes as usize,
                ndi: pdu.ndi,
                state: ru.rx_pool.take(pdu.rnti, pdu.harq_id),
                rng: self.rng.split(prepped.len() as u64),
            });
        }
        drop(prepare_span);
        // Parallel: pure per-PDU decode (itself fanning out per code
        // block through the same pool — nested submission is safe
        // because waiting workers help drain the queue).
        let jobs_span = profiler.span("slot_jobs", abs);
        let results = pool.run(
            prepped
                .into_iter()
                .map(|mut j| {
                    let job_pool = pool.clone();
                    let job_scratch = self.scratch.clone();
                    let job_prof = profiler.clone();
                    move || {
                        let decode_span = job_prof.span("ul_decode", abs);
                        let outcome = receive_into(
                            kernels,
                            &job_pool,
                            &job_scratch,
                            &mut j.state,
                            fidelity,
                            &j.signal,
                            &j.lp,
                            j.tb_bytes,
                            j.ndi,
                            &mut j.rng,
                        );
                        drop(decode_span);
                        if outcome.ldpc_ns > 0 {
                            job_prof.record_span_ns("ldpc_decode", abs, outcome.ldpc_ns);
                        }
                        (j.state, outcome)
                    }
                })
                .collect::<Vec<_>>(),
        );
        drop(jobs_span);
        // Serial merge, in PDU order: soft-state return, CPU accounting,
        // SNR filters and FAPI indications.
        let merge_span = profiler.span("slot_merge", abs);
        let ru = self.rus.get_mut(&ru_id).expect("ru exists");
        let mut crcs = Vec::new();
        let mut rx_tbs = Vec::new();
        let mut busy = CPU_SLOT_BASE_NS;
        for (pdu, (state, outcome)) in pdus.iter().zip(results) {
            ru.rx_pool.put(pdu.rnti, pdu.harq_id, state);
            // Decode cost scales with iterations × transport-block bits
            // (the whole TB: in reduced-fidelity modes the representative
            // block's iteration count stands in for all code blocks).
            let iters_used = if outcome.iterations > 0 {
                outcome.iterations
            } else {
                iters / 2 + 1
            };
            busy += (iters_used as f64
                * (pdu.tb_bytes as f64 * 8.0 / 1000.0)
                * CPU_DECODE_PER_ITER_KBIT_NS) as u64
                + 2_000;
            // SNR moving-average filter (§4.2 inter-TTI state).
            let filt = ru
                .snr_filters
                .entry(pdu.rnti)
                .or_insert_with(|| SnrFilter::new(0.1));
            let reported = if outcome.snr_db.is_finite() {
                filt.update(outcome.snr_db)
            } else {
                filt.value_or(-10.0)
            };
            let ok = outcome.payload.is_some();
            self.ul_tbs_decoded += 1;
            if !ok {
                self.ul_crc_failures += 1;
            }
            crcs.push(CrcEntry {
                rnti: pdu.rnti,
                harq_id: pdu.harq_id,
                ok,
                snr_x10: (reported * 10.0) as i16,
            });
            if let Some(payload) = outcome.payload {
                rx_tbs.push(RxTb {
                    rnti: pdu.rnti,
                    harq_id: pdu.harq_id,
                    payload,
                });
            }
        }
        self.busy_ns_total += busy;
        self.send_fapi(ctx, FapiMsg::CrcInd(CrcIndication { ru_id, slot, crcs }));
        if !rx_tbs.is_empty() {
            self.send_fapi(
                ctx,
                FapiMsg::RxData(RxDataIndication {
                    ru_id,
                    slot,
                    tbs: rx_tbs,
                }),
            );
        }
        drop(merge_span);
        if let Some(t0) = slot_t0 {
            profiler.complete_slot(abs, t0.elapsed().as_nanos() as u64);
        }
    }

    fn crash(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.crashed = true;
        self.crash_time = Some(ctx.now());
        let me = ctx.id();
        ctx.kill(me);
    }

    fn on_fapi(&mut self, ctx: &mut Ctx<'_, Msg>, msg: FapiMsg) {
        match msg {
            FapiMsg::Config(c) => {
                self.rus.insert(
                    c.ru_id,
                    RuCtx {
                        cell_id: c.cell_id,
                        ru_mac: MacAddr::for_ru(c.ru_id),
                        started: false,
                        ul_tti: HashMap::new(),
                        dl_seen: HashMap::new(),
                        ul_data: HashMap::new(),
                        rx_pool: RxProcessPool::new(),
                        snr_filters: HashMap::new(),
                        csi: HashMap::new(),
                        missing_streak: 0,
                        any_fapi_seen: false,
                    },
                );
            }
            FapiMsg::Start { ru_id } => {
                if let Some(ru) = self.rus.get_mut(&ru_id) {
                    ru.started = true;
                }
                if self.started_at.is_none() {
                    self.started_at = Some(ctx.now());
                }
            }
            FapiMsg::Stop { ru_id } => {
                if let Some(ru) = self.rus.get_mut(&ru_id) {
                    ru.started = false;
                }
            }
            FapiMsg::UlTti(req) => {
                let abs = self.abs_of(ctx.now(), req.slot);
                let (ru_mac, started) = match self.rus.get_mut(&req.ru_id) {
                    Some(ru) => {
                        ru.any_fapi_seen = true;
                        ru.missing_streak = 0;
                        ru.ul_tti.insert(abs, req.pusch.clone());
                        (ru.ru_mac, ru.started)
                    }
                    None => return,
                };
                // Emit the uplink-grant DCI over the fronthaul, carried
                // in the (downlink-capable) slot preceding the target —
                // DDDSU guarantees slot (n−1) is Special for UL slot n.
                if started && !req.pusch.is_empty() && abs >= 1 {
                    let carry = SlotId::from_absolute(abs - 1);
                    let target_scalar = (req.slot.sfn % 256) * 20
                        + req.slot.subframe as u16 * 2
                        + req.slot.slot as u16;
                    let entries = req
                        .pusch
                        .iter()
                        .map(|p| DciEntry {
                            rnti: p.rnti,
                            uplink: true,
                            target_slot_scalar: target_scalar,
                            harq_id: p.harq_id,
                            ndi: p.ndi,
                            rv: p.rv,
                            mcs: p.mcs,
                            start_prb: p.start_prb,
                            num_prb: p.num_prb,
                            tb_bytes: p.tb_bytes,
                        })
                        .collect();
                    self.send_fh(
                        ctx,
                        ru_mac,
                        &FhMessage::Dci(DciMsg {
                            hdr: fh_header(Direction::Downlink, carry, 0, req.ru_id),
                            entries,
                        }),
                    );
                }
            }
            FapiMsg::DlTti(req) => {
                let abs = self.abs_of(ctx.now(), req.slot);
                if let Some(ru) = self.rus.get_mut(&req.ru_id) {
                    ru.any_fapi_seen = true;
                    ru.missing_streak = 0;
                    ru.dl_seen.insert(abs, true);
                }
                // Null DL still emits the slot's alive C-plane; data DL
                // waits for TX_Data (sent immediately after DL_TTI by
                // the L2, so pairing via a small pending map).
                if req.pdsch.is_empty() {
                    self.process_dl(ctx, req.ru_id, req.slot, Vec::new(), Vec::new());
                } else {
                    self.pending_dl.insert((req.ru_id, abs), req.pdsch);
                }
            }
            FapiMsg::TxData(t) => {
                let abs = self.abs_of(ctx.now(), t.slot);
                if let Some(pdsch) = self.pending_dl.remove(&(t.ru_id, abs)) {
                    self.process_dl(ctx, t.ru_id, t.slot, pdsch, t.tbs);
                }
            }
            _ => {}
        }
    }

    /// Map a SlotId to the nearest absolute slot relative to the
    /// current time (SFN wraps at 1024 frames).
    fn abs_of(&self, now: Nanos, slot: SlotId) -> u64 {
        let now_abs = self.clock.absolute_slot(now);
        let now_id = SlotId::from_absolute(now_abs);
        let d = now_id.wrapping_distance(slot);
        now_abs.saturating_add_signed(d)
    }
}

impl Instrument for PhyNode {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "busy_ns_total", self.busy_ns_total);
        sink.counter(scope, "null_slots", self.null_slots);
        sink.counter(scope, "work_slots", self.work_slots);
        sink.counter(scope, "ul_tbs_decoded", self.ul_tbs_decoded);
        sink.counter(scope, "ul_crc_failures", self.ul_crc_failures);
        sink.counter(
            scope,
            "processed_ul_slots",
            self.processed_ul_slots.len() as u64,
        );
        // The PHY's own FlexRAN-style abort on missing FAPI; external
        // kills show up as node_killed trace events instead.
        sink.gauge(scope, "self_crashed", self.crash_time.is_some() as i64);
    }
}

impl Node<Msg> for PhyNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer_at(
            self.clock.next_slot_start(ctx.now()),
            timer_tokens::SLOT_TICK,
        );
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if self.crashed {
            return;
        }
        match token {
            timer_tokens::SLOT_TICK => {
                let now = ctx.now();
                let abs = self.clock.absolute_slot(now);
                if self.stalled {
                    // Wedged: keep the clock interrupt alive so the
                    // cadence can resume, but do no slot work.
                    ctx.timer_at(self.clock.slot_start(abs + 1), timer_tokens::SLOT_TICK);
                    return;
                }
                let slot = SlotId::from_absolute(abs);
                // Per-slot heartbeat at the boundary...
                self.heartbeat(ctx, slot);
                // ...and a second one mid-slot with jitter, so a healthy
                // PHY's max inter-packet gap stays well under the slot
                // length (§8.6 measures 393 µs).
                let jitter = Nanos(self.rng.below(90_000));
                ctx.timer(Nanos(250_000) + jitter, TIMER_HEARTBEAT);
                // Pipelined uplink: emit slot (abs-2)'s results now.
                if abs >= 2 {
                    let ru_ids: Vec<u8> = self.rus.keys().copied().collect();
                    for ru_id in ru_ids {
                        self.process_ul(ctx, ru_id, abs - 2);
                    }
                }
                // SLOT.indications + FAPI liveness.
                let ru_ids: Vec<u8> = self
                    .rus
                    .iter()
                    .filter(|(_, r)| r.started)
                    .map(|(id, _)| *id)
                    .collect();
                let expect = abs + self.cell.fapi_advance_slots;
                let mut must_crash = false;
                for ru_id in ru_ids {
                    self.send_fapi(ctx, FapiMsg::SlotInd(SlotIndication { ru_id, slot }));
                    let ru = self.rus.get_mut(&ru_id).expect("ru exists");
                    let have = ru.ul_tti.contains_key(&expect) || ru.dl_seen.contains_key(&expect);
                    if ru.any_fapi_seen {
                        if have {
                            ru.missing_streak = 0;
                        } else {
                            ru.missing_streak += 1;
                            ctx.trace(
                                TraceEventKind::SlotDeadlineMiss,
                                ru.missing_streak as u64,
                                expect,
                            );
                            if ru.missing_streak >= self.cfg.crash_after_missing {
                                must_crash = true;
                            }
                        }
                    }
                    // GC stale per-slot maps.
                    ru.dl_seen.retain(|k, _| *k + 8 > abs);
                    ru.ul_data.retain(|k, _| *k + 8 > abs);
                    ru.ul_tti.retain(|k, _| *k + 8 > abs);
                }
                self.busy_ns_total += CPU_NULL_SLOT_NS;
                if must_crash {
                    // FlexRAN aborts when the L2 stops feeding it slot
                    // requests — the behavior that makes null FAPIs
                    // necessary (§6.2).
                    self.crash(ctx);
                    return;
                }
                ctx.timer_at(self.clock.slot_start(abs + 1), timer_tokens::SLOT_TICK);
            }
            TIMER_HEARTBEAT => {
                if self.stalled {
                    return;
                }
                let slot = self.clock.slot_id(ctx.now());
                self.heartbeat(ctx, slot);
            }
            _ => {}
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::Ctl(CtlMsg::PhyScrub) = msg {
            // Recovery-orchestrator scrub: handled even while the
            // crashed/stalled flags are set — it is exactly how a dead
            // process is wiped before rejoining the spare pool.
            self.scrub();
            return;
        }
        if self.crashed || self.stalled {
            // A wedged poll loop never drains its rings: incoming FAPI
            // and fronthaul are lost, not deferred.
            return;
        }
        match msg {
            Msg::FapiShm(f) => self.on_fapi(ctx, f),
            Msg::Eth(frame) => {
                if frame.ethertype != EtherType::Ecpri || frame.dst != self.mac {
                    return;
                }
                let Some(fh) = FhMessage::from_bytes(&frame.payload) else {
                    return;
                };
                if fh.direction() != Direction::Uplink {
                    return;
                }
                let hdr = *fh.hdr();
                let abs = {
                    let slot = SlotId {
                        sfn: hdr.frame as u16,
                        subframe: hdr.subframe,
                        slot: hdr.slot,
                    };
                    // Resolve the 8-bit frame id against current time.
                    let now_abs = self.clock.absolute_slot(ctx.now());
                    let now_scalar = (now_abs % (256 * 20)) as i64;
                    let pkt_scalar = hdr.slot_scalar() as i64;
                    let mut d = pkt_scalar - now_scalar;
                    let epoch = 256 * 20i64;
                    if d > epoch / 2 {
                        d -= epoch;
                    } else if d < -epoch / 2 {
                        d += epoch;
                    }
                    let _ = slot;
                    now_abs.saturating_add_signed(d)
                };
                let ru_id = hdr.ru_port;
                let Some(ru) = self.rus.get_mut(&ru_id) else {
                    return;
                };
                let data = ru.ul_data.entry(abs).or_default();
                match fh {
                    FhMessage::UPlane(u) => {
                        data.chunks.entry(u.start_prb).or_default().push((
                            u.hdr.symbol,
                            decompress_prbs_with(
                                DspKernels::from_config(ctx.kernel_config()),
                                &u.prbs,
                            ),
                        ));
                    }
                    FhMessage::Shadow(s) => {
                        data.shadows
                            .insert(s.rnti, (s.snr_db_x100 as f64 / 100.0, s.data));
                    }
                    FhMessage::Uci(u) => {
                        let acks = u
                            .entries
                            .iter()
                            .map(|e| slingshot_fapi::UciAck {
                                rnti: e.rnti,
                                harq_id: e.harq_id,
                                ack: e.ack,
                            })
                            .collect();
                        let slot = SlotId::from_absolute(abs);
                        self.send_fapi(ctx, FapiMsg::UciInd(UciIndication { ru_id, slot, acks }));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
