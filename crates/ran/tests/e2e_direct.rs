//! End-to-end integration tests of the RAN stack with a plain
//! (non-Slingshot) switch: a static MAC forwarder that also resolves
//! the RU's virtual PHY address to the single PHY — the "conventional
//! RAN deployment" of paper §5.1.

use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_ran::*;
use slingshot_sim::{Ctx, Engine, LinkParams, Nanos, Node, NodeId, SimRng, SlotClock};
use slingshot_transport::{EchoResponder, PingApp, UdpCbrSource, UdpSink};

/// A dumb switch: static MAC → node routing, with the virtual PHY
/// address statically mapped to the one real PHY.
struct PlainSwitch {
    routes: Vec<(MacAddr, NodeId)>,
    /// virtual address → physical address rewrite.
    translate: Vec<(MacAddr, MacAddr)>,
}

impl Node<Msg> for PlainSwitch {
    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Eth(mut frame) = msg else { return };
        if let Some((_, phys)) = self.translate.iter().find(|(v, _)| *v == frame.dst) {
            frame.dst = *phys;
        }
        if let Some((_, node)) = self.routes.iter().find(|(m, _)| *m == frame.dst) {
            let node = *node;
            ctx.send(node, Msg::Eth(frame));
        }
    }
}

/// A fully wired single-cell testbed without Slingshot.
struct Testbed {
    engine: Engine<Msg>,
    server: NodeId,
    l2: NodeId,
    phy: NodeId,
    ru: NodeId,
    ues: Vec<NodeId>,
}

fn build(seed: u64, ue_cfgs: Vec<UeConfig>, cell: CellConfig) -> Testbed {
    let mut engine: Engine<Msg> = Engine::new(seed);
    let clock = SlotClock::new(Nanos::ZERO);
    let mut rng = SimRng::new(seed ^ 0xBEEF);

    let server = engine.add_node("server", Box::new(AppServerNode::new()));
    let core = engine.add_node("core", Box::new(CoreNode::new()));
    let mut l2n = L2Node::new(cell.clone(), clock, 0);
    for cfg in &ue_cfgs {
        if cfg.preattached {
            l2n.preattach_ue(cfg.rnti, cfg.snr.mean_db);
        }
    }
    let l2 = engine.add_node("l2", Box::new(l2n));
    let phyn = PhyNode::new(PhyConfig::new(1), cell.clone(), clock, rng.fork("phy"));
    let phy_mac = phyn.mac();
    let phy = engine.add_node("phy", Box::new(phyn));
    let run = RuNode::new(0, clock);
    let ru_mac = run.mac();
    let ru = engine.add_node("ru", Box::new(run));
    let mut ues = Vec::new();
    for cfg in ue_cfgs {
        let name = cfg.name.clone();
        let ue = UeNode::new(cfg, cell.clone(), clock, rng.fork(&name));
        ues.push(engine.add_node(&name, Box::new(ue)));
    }
    let sw = engine.add_node(
        "switch",
        Box::new(PlainSwitch {
            routes: vec![(phy_mac, phy), (ru_mac, ru)],
            translate: vec![(MacAddr::virtual_phy(0), phy_mac)],
        }),
    );

    // Wiring.
    engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
    engine.node_mut::<CoreNode>(core).unwrap().wire(l2, server);
    engine.node_mut::<L2Node>(l2).unwrap().wire(phy, core);
    engine.node_mut::<PhyNode>(phy).unwrap().wire(sw, l2);
    engine.node_mut::<RuNode>(ru).unwrap().wire(sw, ues.clone());
    for ue in &ues {
        engine.node_mut::<UeNode>(*ue).unwrap().wire(ru, l2);
    }

    // Links. Backhaul: server↔core↔L2 (the ~20 ms RTT budget of the
    // paper's ping experiments lives here). Fronthaul: 25 GbE, 20 µs.
    let backhaul = LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000);
    engine.connect_duplex(server, core, backhaul.clone());
    engine.connect_duplex(
        core,
        l2,
        LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000),
    );
    // L2↔PHY FAPI (co-located / SHM in this baseline).
    engine.connect_duplex(l2, phy, LinkParams::ideal(Nanos(2_000)));
    // Fronthaul legs through the switch.
    engine.connect_duplex(
        phy,
        sw,
        LinkParams::with_bandwidth(Nanos(5_000), 100_000_000_000),
    );
    engine.connect_duplex(
        ru,
        sw,
        LinkParams::with_bandwidth(Nanos(20_000), 25_000_000_000),
    );

    Testbed {
        engine,
        server,
        l2,
        phy,
        ru,
        ues,
    }
}

fn one_ue(snr_db: f64) -> Vec<UeConfig> {
    vec![UeConfig::new(100, 0, "ue100", snr_db)]
}

#[test]
fn uplink_udp_flow_delivers() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(1, one_ue(22.0), cell);
    // 4 Mbps uplink CBR from the UE to the server.
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)));
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    tb.engine.run_until(Nanos::from_millis(2000));
    let sink: &UdpSink = tb
        .engine
        .node::<AppServerNode>(tb.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    assert!(sink.total_rx > 500, "rx={}", sink.total_rx);
    assert!(sink.loss_rate() < 0.15, "loss={}", sink.loss_rate());
    // Steady state throughput ≈ offered rate.
    let mbps = sink.bins.mbps();
    let steady: f64 = mbps[100..].iter().sum::<f64>() / (mbps.len() - 100) as f64;
    assert!((3.0..5.0).contains(&steady), "steady={steady} Mbps");
}

#[test]
fn downlink_udp_flow_delivers() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(2, one_ue(22.0), cell);
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(UdpCbrSource::new(8_000_000, 1000, Nanos::ZERO)),
        );
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))));
    tb.engine.run_until(Nanos::from_millis(2000));
    let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
    let sink: &UdpSink = ue.app(0).unwrap();
    assert!(sink.total_rx > 1000, "rx={}", sink.total_rx);
    assert!(sink.loss_rate() < 0.15, "loss={}", sink.loss_rate());
    assert!(ue.dl_tbs_ok > 100, "dl ok={}", ue.dl_tbs_ok);
}

#[test]
fn ping_rtt_matches_paper_scale() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(3, one_ue(22.0), cell);
    // Server pings the UE every 10 ms (paper §8.7: median 22.8 ms).
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(PingApp::new(
                Nanos::from_millis(10),
                Nanos::from_millis(100),
            )),
        );
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(EchoResponder::new()));
    tb.engine.run_until(Nanos::from_millis(3000));
    let ping: &PingApp = tb
        .engine
        .node::<AppServerNode>(tb.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    {
        let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
        let echo: &EchoResponder = ue.app(0).unwrap();
        let srv = tb.engine.node::<AppServerNode>(tb.server).unwrap();
        eprintln!("dbg ping: sent={} delivered_to_ue_apps={} echoed={} srv_rx={} srv_tx={} ue_dl_ok={} ue_dl_bad={}",
            ping.sent, ue.delivered_to_apps, echo.echoed, srv.rx_packets, srv.tx_packets, ue.dl_tbs_ok, ue.dl_tbs_bad);
    }
    assert!(ping.rtts.len() > 200, "completed={}", ping.rtts.len());
    assert!(ping.success_rate() > 0.9, "success={}", ping.success_rate());
    let mut s = slingshot_sim::Sampler::new();
    for (_, rtt) in &ping.rtts {
        s.record(rtt.0);
    }
    let median_ms = s.median().unwrap() as f64 / 1e6;
    assert!(
        (12.0..40.0).contains(&median_ms),
        "median rtt = {median_ms} ms"
    );
}

#[test]
fn phy_crash_darkens_cell_then_ue_reattaches() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(4, one_ue(22.0), cell);
    tb.engine.run_until(Nanos::from_millis(500));
    // SIGKILL the PHY.
    tb.engine.kill(tb.phy);
    tb.engine.run_until(Nanos::from_millis(1000));
    let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 1, "UE should declare RLF");
    assert_ne!(ue.state, UeState::Connected);
    let ru = tb.engine.node::<RuNode>(tb.ru).unwrap();
    assert!(ru.slots_dark > 500, "dark={}", ru.slots_dark);
    // Without a standby PHY the UE stays down (no cell to reattach to).
    tb.engine.run_until(Nanos::from_millis(9000));
    let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
    assert_ne!(ue.state, UeState::Connected);
}

#[test]
fn l2_death_crashes_phy_within_slots() {
    let cell = CellConfig {
        num_prbs: 24,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(5, one_ue(20.0), cell);
    tb.engine.run_until(Nanos::from_millis(100));
    assert!(tb
        .engine
        .node::<PhyNode>(tb.phy)
        .unwrap()
        .crash_time
        .is_none());
    // Kill the L2: FAPI requests stop; FlexRAN-like crash follows.
    tb.engine.kill(tb.l2);
    tb.engine.run_until(Nanos::from_millis(200));
    let phy = tb.engine.node::<PhyNode>(tb.phy).unwrap();
    let crash = phy.crash_time.expect("PHY must crash without FAPI");
    let delta_ms = (crash - Nanos::from_millis(100)).as_millis();
    assert!(delta_ms < 10.0, "crash after {delta_ms} ms");
}

#[test]
fn deterministic_across_runs() {
    let run = |seed| {
        let cell = CellConfig {
            num_prbs: 24,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        };
        let mut tb = build(seed, one_ue(20.0), cell);
        tb.engine
            .node_mut::<UeNode>(tb.ues[0])
            .unwrap()
            .add_app(Box::new(UdpCbrSource::new(2_000_000, 800, Nanos::ZERO)));
        tb.engine
            .node_mut::<AppServerNode>(tb.server)
            .unwrap()
            .add_app(
                100,
                Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
            );
        tb.engine.run_until(Nanos::from_millis(500));
        (tb.engine.trace_hash(), tb.engine.dispatched())
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0);
}

#[test]
fn full_fidelity_small_cell_works_end_to_end() {
    // The real LDPC chain end to end (24 PRBs keeps it fast).
    let cell = CellConfig::small_test_cell();
    let mut tb = build(6, one_ue(24.0), cell);
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(UdpCbrSource::new(1_000_000, 600, Nanos::ZERO)));
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    tb.engine.run_until(Nanos::from_millis(800));
    let sink: &UdpSink = tb
        .engine
        .node::<AppServerNode>(tb.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    assert!(sink.total_rx > 50, "rx={}", sink.total_rx);
}

/// Regression guard: frames other than eCPRI are ignored by RU/PHY.
#[test]
fn foreign_frames_ignored() {
    let cell = CellConfig {
        num_prbs: 24,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(7, one_ue(20.0), cell);
    let ru_mac = MacAddr::for_ru(0);
    tb.engine.post(
        Nanos::from_millis(10),
        tb.ru,
        Msg::Eth(Frame::new(
            ru_mac,
            MacAddr::ZERO,
            EtherType::Ipv4,
            bytes::Bytes::from_static(b"not ecpri"),
        )),
    );
    tb.engine.run_until(Nanos::from_millis(50));
    // Nothing crashed, stack still alive.
    assert!(tb
        .engine
        .node::<PhyNode>(tb.phy)
        .unwrap()
        .crash_time
        .is_none());
}

#[test]
#[ignore]
fn debug_downlink_counters() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut tb = build(2, one_ue(22.0), cell);
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(UdpCbrSource::new(8_000_000, 1000, Nanos::ZERO)),
        );
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))));
    tb.engine.run_until(Nanos::from_millis(500));
    let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
    let l2 = tb.engine.node::<L2Node>(tb.l2).unwrap();
    let phy = tb.engine.node::<PhyNode>(tb.phy).unwrap();
    let ru = tb.engine.node::<RuNode>(tb.ru).unwrap();
    println!(
        "ue: dl_ok={} dl_bad={} delivered={} grants={} state={:?}",
        ue.dl_tbs_ok, ue.dl_tbs_bad, ue.delivered_to_apps, ue.ul_grants_served, ue.state
    );
    println!(
        "l2: dl_queued={} new_tx={} retx={} dl_harq_fail={} ",
        l2.dl_packets_queued, l2.sched.dl_new_tx, l2.sched.dl_retx, l2.sched.dl_harq_failures
    );
    println!(
        "phy: work_slots={} null_slots={} crash={:?}",
        phy.work_slots, phy.null_slots, phy.crash_time
    );
    println!(
        "ru: bursts={} dark={} ulframes={}",
        ru.bursts_tx, ru.slots_dark, ru.ul_frames_tx
    );
    let sink: &UdpSink = ue.app(0).unwrap();
    println!("sink rx={} lost={}", sink.total_rx, sink.total_lost);
}

/// Deep periodic fades: link adaptation walks MCS down and back up;
/// the connection rides through (the "routine wireless impairments"
/// the paper's whole premise leans on).
#[test]
fn deep_fades_are_survived_by_link_adaptation() {
    let cell = CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    };
    let mut cfg = UeConfig::new(100, 0, "fady", 21.0);
    cfg.snr = slingshot_phy_dsp::SnrProcessConfig {
        mean_db: 21.0,
        fade_chance: 0.004,
        fade_depth_db: 12.0,
        fade_steps: 60, // 30 ms fades
        ..Default::default()
    };
    let mut tb = build(8, vec![cfg], cell);
    tb.engine
        .node_mut::<UeNode>(tb.ues[0])
        .unwrap()
        .add_app(Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)));
    tb.engine
        .node_mut::<AppServerNode>(tb.server)
        .unwrap()
        .add_app(
            100,
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    tb.engine.run_until(Nanos::from_secs(4));
    let ue = tb.engine.node::<UeNode>(tb.ues[0]).unwrap();
    assert_eq!(ue.state, UeState::Connected, "fades must not disconnect");
    let sink: &UdpSink = tb
        .engine
        .node::<AppServerNode>(tb.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    assert!(sink.total_rx > 800, "rx={}", sink.total_rx);
    // Link adaptation must have moved through multiple MCS levels.
    let l2 = tb.engine.node::<L2Node>(tb.l2).unwrap();
    let ue_sched = &l2.sched.ues[&100];
    assert!(ue_sched.ul_snr_db.is_finite());
    // HARQ was exercised by the fades.
    assert!(
        l2.sched.ul_retx > 20,
        "fades should force retransmissions: {}",
        l2.sched.ul_retx
    );
}
