//! Pre-copy VM live-migration model — the paper's Fig. 3 baseline.
//!
//! QEMU/KVM pre-copy iteratively transfers dirty memory pages; the VM
//! is paused when the remaining dirty set is small enough (or the
//! round limit is hit), and the pause lasts for the final transfer
//! plus activation. A PHY like FlexRAN writes signal-processing state
//! continuously, so the dirty rate stays near the link rate and the
//! algorithm converges poorly: the paper measures a 244 ms median
//! pause over 80 runs (RDMA at 100 GbE), and FlexRAN crashed in every
//! run because vRAN platforms tolerate only ~10 µs interruptions.

use slingshot_sim::{Nanos, SimRng};

/// Parameters of one migration attempt.
#[derive(Debug, Clone)]
pub struct VmMigrationConfig {
    /// Guest memory size (bytes).
    pub memory_bytes: u64,
    /// Mean dirty rate while the PHY runs (bytes/s). FlexRAN's signal
    /// processing touches buffers every TTI, so this is large.
    pub dirty_rate_bps: f64,
    /// Run-to-run variation of the dirty rate (lognormal sigma).
    pub dirty_rate_sigma: f64,
    /// Migration link throughput (bytes/s).
    pub link_bps: f64,
    /// Stop-and-copy threshold: pause when remaining dirty bytes can
    /// be sent within this time.
    pub downtime_target: Nanos,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Destination activation / device re-plumbing overhead.
    pub activation: Nanos,
    /// Maximum thread-interruption time the guest tolerates before
    /// crashing (vRAN platform spec: ~10 µs).
    pub crash_tolerance: Nanos,
}

impl VmMigrationConfig {
    /// FlexRAN-in-a-VM over TCP on 100 GbE (effective ~30 Gbps after
    /// the TCP/migration-stream overheads QEMU sees in practice).
    pub fn flexran_tcp() -> VmMigrationConfig {
        VmMigrationConfig {
            memory_bytes: 8 << 30,
            dirty_rate_bps: 2.5e9,
            dirty_rate_sigma: 0.25,
            link_bps: 3.4e9,
            downtime_target: Nanos::from_millis(300),
            max_rounds: 30,
            activation: Nanos::from_millis(35),
            crash_tolerance: Nanos::from_micros(10),
        }
    }

    /// FlexRAN-in-a-VM with RDMA transport (the paper's faster setup;
    /// median pause 244 ms).
    pub fn flexran_rdma() -> VmMigrationConfig {
        VmMigrationConfig {
            dirty_rate_bps: 5.0e9,
            link_bps: 9.0e9,
            downtime_target: Nanos::from_millis(300),
            activation: Nanos::from_millis(25),
            ..VmMigrationConfig::flexran_tcp()
        }
    }
}

/// Result of one simulated migration.
#[derive(Debug, Clone, Copy)]
pub struct VmMigrationOutcome {
    /// Total migration duration (all rounds + pause).
    pub total: Nanos,
    /// VM pause (blackout) duration.
    pub pause: Nanos,
    /// Pre-copy rounds executed.
    pub rounds: u32,
    /// Whether the guest (FlexRAN) crashed from the interruption.
    pub guest_crashed: bool,
}

/// Simulate one pre-copy migration.
pub fn migrate_once(cfg: &VmMigrationConfig, rng: &mut SimRng) -> VmMigrationOutcome {
    // Per-run dirty rate (lognormal around the mean).
    let dirty_bps = cfg.dirty_rate_bps * (cfg.dirty_rate_sigma * rng.gaussian()).exp();
    let mut remaining = cfg.memory_bytes as f64;
    let mut total_s = 0.0f64;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let round_s = remaining / cfg.link_bps;
        total_s += round_s;
        // Pages dirtied while this round streamed.
        let dirtied = dirty_bps * round_s;
        remaining = dirtied.min(cfg.memory_bytes as f64);
        let send_time_s = remaining / cfg.link_bps;
        if send_time_s <= cfg.downtime_target.0 as f64 / 1e9 || rounds >= cfg.max_rounds {
            // Stop-and-copy: pause, send the rest, activate.
            let jitter = 1.0 + 0.1 * rng.gaussian().abs();
            let pause_ns = (send_time_s * 1e9 * jitter) as u64 + cfg.activation.0;
            let pause = Nanos(pause_ns);
            total_s += pause_ns as f64 / 1e9;
            return VmMigrationOutcome {
                total: Nanos((total_s * 1e9) as u64),
                pause,
                rounds,
                guest_crashed: pause > cfg.crash_tolerance,
            };
        }
    }
}

/// Run a batch of migrations (the paper performs 80).
pub fn migrate_batch(cfg: &VmMigrationConfig, runs: usize, seed: u64) -> Vec<VmMigrationOutcome> {
    let mut rng = SimRng::new(seed);
    (0..runs).map(|_| migrate_once(cfg, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slingshot_sim::Sampler;

    fn pauses(cfg: &VmMigrationConfig, seed: u64) -> Sampler {
        let mut s = Sampler::new();
        for o in migrate_batch(cfg, 80, seed) {
            s.record(o.pause.0);
        }
        s
    }

    #[test]
    fn rdma_median_pause_matches_paper_scale() {
        let mut s = pauses(&VmMigrationConfig::flexran_rdma(), 1);
        let median_ms = s.median().unwrap() as f64 / 1e6;
        // Paper: 244 ms median. Accept the right order of magnitude.
        assert!((120.0..450.0).contains(&median_ms), "median={median_ms}ms");
    }

    #[test]
    fn tcp_slower_than_rdma() {
        let mut tcp = pauses(&VmMigrationConfig::flexran_tcp(), 2);
        let mut rdma = pauses(&VmMigrationConfig::flexran_rdma(), 2);
        assert!(tcp.median().unwrap() > rdma.median().unwrap());
    }

    #[test]
    fn guest_always_crashes() {
        // The paper observes FlexRAN crashing in *all* migration runs:
        // every pause is orders of magnitude beyond the 10 µs budget.
        for cfg in [
            VmMigrationConfig::flexran_tcp(),
            VmMigrationConfig::flexran_rdma(),
        ] {
            for o in migrate_batch(&cfg, 80, 3) {
                assert!(o.guest_crashed);
                assert!(o.pause > Nanos::from_millis(10));
            }
        }
    }

    #[test]
    fn idle_guest_would_migrate_quickly() {
        // Sanity: with a tiny dirty rate, pre-copy converges and the
        // pause approaches the activation floor.
        let cfg = VmMigrationConfig {
            dirty_rate_bps: 1e6,
            downtime_target: Nanos::from_millis(5),
            ..VmMigrationConfig::flexran_rdma()
        };
        let outcomes = migrate_batch(&cfg, 20, 4);
        for o in outcomes {
            assert!(o.pause < Nanos::from_millis(50), "pause={}", o.pause);
            assert!(o.rounds <= 5);
        }
    }

    #[test]
    fn deterministic_batches() {
        let a: Vec<u64> = migrate_batch(&VmMigrationConfig::flexran_rdma(), 10, 9)
            .iter()
            .map(|o| o.pause.0)
            .collect();
        let b: Vec<u64> = migrate_batch(&VmMigrationConfig::flexran_rdma(), 10, 9)
            .iter()
            .map(|o| o.pause.0)
            .collect();
        assert_eq!(a, b);
    }
}
