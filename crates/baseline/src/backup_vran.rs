//! The paper's §8.1 failover **baseline**: a full hot backup vRAN stack
//! (L2 + PHY) on a separate server, with fronthaul rerouted to it on
//! failure detection — but *without* Slingshot's Orion/null-FAPI hot
//! standby. The backup stack has no UE context, so the UE must detect
//! RLF and fully re-attach: the paper measures a 6.2 s outage.
//!
//! The switch-side detection and rerouting reuse the Slingshot
//! fronthaul middlebox (exactly as the paper does: "we use our
//! fronthaul middlebox to detect it and re-route the fronthaul").

use slingshot::ctl::CtlPacket;
use slingshot::fh_mbox::FhMbox;
use slingshot::switch_node::{ForwardingModel, SwitchNode};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_ran::{
    AppServerNode, CellConfig, CoreNode, CtlMsg, L2Node, Msg, PhyConfig, PhyNode, RuNode, UeConfig,
    UeNode,
};
use slingshot_sim::{Ctx, Engine, LinkParams, Nanos, Node, NodeId, SimRng, SlotClock};
use slingshot_switch::{PktGenConfig, PortId};
use slingshot_transport::UserApp;

use std::collections::HashMap;

/// MAC of the failover controller (receives switch notifications).
pub fn failover_ctl_mac() -> MacAddr {
    MacAddr([0x02, 0x46, 0x43, 0, 0, 1])
}

const PRIMARY_PHY: u8 = 1;
const BACKUP_PHY: u8 = 2;
const RU: u8 = 0;

/// Relays user-plane and signaling traffic to whichever full stack is
/// currently active, and triggers the fronthaul reroute on failure
/// notification. (Stands in for the core network re-homing the gNB
/// connection; see DESIGN.md §2.)
pub struct StackSelector {
    switch: Option<NodeId>,
    switch_mac: MacAddr,
    primary_l2: Option<NodeId>,
    backup_l2: Option<NodeId>,
    active_is_backup: bool,
    /// Remembered attach requesters so accepts can be routed back.
    requesters: HashMap<u16, NodeId>,
    pub failed_over_at: Option<Nanos>,
}

impl StackSelector {
    pub fn new() -> StackSelector {
        StackSelector {
            switch: None,
            switch_mac: MacAddr::ZERO,
            primary_l2: None,
            backup_l2: None,
            active_is_backup: false,
            requesters: HashMap::new(),
            failed_over_at: None,
        }
    }

    pub fn wire(
        &mut self,
        switch: NodeId,
        switch_mac: MacAddr,
        primary_l2: NodeId,
        backup_l2: NodeId,
    ) {
        self.switch = Some(switch);
        self.switch_mac = switch_mac;
        self.primary_l2 = Some(primary_l2);
        self.backup_l2 = Some(backup_l2);
    }

    fn active_l2(&self) -> Option<NodeId> {
        if self.active_is_backup {
            self.backup_l2
        } else {
            self.primary_l2
        }
    }
}

impl Default for StackSelector {
    fn default() -> Self {
        StackSelector::new()
    }
}

impl Node<Msg> for StackSelector {
    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::Eth(frame)
                if frame.ethertype == EtherType::SlingshotCtl
                    && frame.dst == failover_ctl_mac() =>
            {
                if let Some(CtlPacket::FailureNotify { .. }) = CtlPacket::from_bytes(&frame.payload)
                {
                    if self.failed_over_at.is_none() {
                        self.failed_over_at = Some(ctx.now());
                        self.active_is_backup = true;
                        // Reroute fronthaul to the backup stack's PHY
                        // as of the next slot.
                        let cmd = CtlPacket::MigrateOnSlot {
                            ru_id: RU,
                            dest_phy_id: BACKUP_PHY,
                            slot_scalar: 0, // immediate (matches any slot)
                        };
                        let f = Frame::new(
                            self.switch_mac,
                            failover_ctl_mac(),
                            EtherType::SlingshotCtl,
                            cmd.to_bytes(),
                        );
                        if let Some(sw) = self.switch {
                            ctx.send(sw, Msg::Eth(f));
                        }
                    }
                }
            }
            Msg::User(p) => {
                // Downlink heads to the active L2; uplink came *from*
                // an L2 and heads to the core — but in this topology
                // the selector only sits on the downlink path.
                if let Some(l2) = self.active_l2() {
                    ctx.send(l2, Msg::User(p));
                }
            }
            Msg::Ctl(CtlMsg::AttachRequest { rnti }) => {
                self.requesters.insert(rnti, from);
                if let Some(l2) = self.active_l2() {
                    ctx.send_in(
                        l2,
                        Nanos::from_micros(100),
                        Msg::Ctl(CtlMsg::AttachRequest { rnti }),
                    );
                }
            }
            Msg::Ctl(CtlMsg::AttachAccept { rnti }) => {
                if let Some(ue) = self.requesters.get(&rnti) {
                    let ue = *ue;
                    ctx.send_in(
                        ue,
                        Nanos::from_micros(100),
                        Msg::Ctl(CtlMsg::AttachAccept { rnti }),
                    );
                }
            }
            Msg::Ctl(c) => {
                if let Some(l2) = self.active_l2() {
                    ctx.send_in(l2, Nanos::from_micros(100), Msg::Ctl(c));
                }
            }
            _ => {}
        }
    }
}

/// The baseline deployment: two full stacks behind the switch.
pub struct BaselineDeployment {
    pub engine: Engine<Msg>,
    pub switch: NodeId,
    pub ru: NodeId,
    pub primary_phy: NodeId,
    pub primary_l2: NodeId,
    pub backup_phy: NodeId,
    pub backup_l2: NodeId,
    pub selector: NodeId,
    pub core: NodeId,
    pub server: NodeId,
    pub ues: Vec<NodeId>,
}

impl BaselineDeployment {
    pub fn build(seed: u64, cell: CellConfig, ue_cfgs: Vec<UeConfig>) -> BaselineDeployment {
        let mut engine: Engine<Msg> = Engine::new(seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(seed ^ 0xBA5E);

        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        let core = engine.add_node("core", Box::new(CoreNode::new()));
        let selector = engine.add_node("selector", Box::new(StackSelector::new()));

        // Primary stack: UEs pre-attached.
        let mut l2a = L2Node::new(cell.clone(), clock, RU);
        for u in &ue_cfgs {
            if u.preattached {
                l2a.preattach_ue(u.rnti, u.snr.mean_db);
            }
        }
        let primary_l2 = engine.add_node("l2-primary", Box::new(l2a));
        let primary_phy = engine.add_node(
            "phy-primary",
            Box::new(PhyNode::new(
                PhyConfig::new(PRIMARY_PHY),
                cell.clone(),
                clock,
                rng.fork("phy-a"),
            )),
        );
        // Backup stack: cold UE state.
        let backup_l2 =
            engine.add_node("l2-backup", Box::new(L2Node::new(cell.clone(), clock, RU)));
        let backup_phy = engine.add_node(
            "phy-backup",
            Box::new(PhyNode::new(
                PhyConfig::new(BACKUP_PHY),
                cell.clone(),
                clock,
                rng.fork("phy-b"),
            )),
        );

        let run = RuNode::new(RU, clock);
        let ru_mac = run.mac();
        let ru = engine.add_node("ru", Box::new(run));
        let mut ues = Vec::new();
        for u in ue_cfgs {
            let name = u.name.clone();
            ues.push(engine.add_node(
                &name,
                Box::new(UeNode::new(u, cell.clone(), clock, rng.fork(&name))),
            ));
        }

        let mut mbox = FhMbox::new(PktGenConfig::paper_default(), failover_ctl_mac());
        mbox.install_ru(RU, ru_mac, PortId(1), PRIMARY_PHY);
        mbox.install_phy(PRIMARY_PHY, MacAddr::for_phy(PRIMARY_PHY), PortId(2));
        mbox.install_phy(BACKUP_PHY, MacAddr::for_phy(BACKUP_PHY), PortId(3));
        mbox.install_host(failover_ctl_mac(), PortId(4));
        mbox.enroll_failure_detection(PRIMARY_PHY);
        let switch_mac = mbox.switch_mac;
        let mut swn = SwitchNode::new(mbox, ForwardingModel::InSwitch, rng.fork("switch"));
        swn.attach(PortId(1), ru);
        swn.attach(PortId(2), primary_phy);
        swn.attach(PortId(3), backup_phy);
        swn.attach(PortId(4), selector);
        let switch = engine.add_node("switch", Box::new(swn));

        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        engine
            .node_mut::<CoreNode>(core)
            .unwrap()
            .wire(selector, server);
        engine
            .node_mut::<StackSelector>(selector)
            .unwrap()
            .wire(switch, switch_mac, primary_l2, backup_l2);
        engine
            .node_mut::<L2Node>(primary_l2)
            .unwrap()
            .wire(primary_phy, core);
        engine
            .node_mut::<L2Node>(backup_l2)
            .unwrap()
            .wire(backup_phy, core);
        engine
            .node_mut::<PhyNode>(primary_phy)
            .unwrap()
            .wire(switch, primary_l2);
        engine
            .node_mut::<PhyNode>(backup_phy)
            .unwrap()
            .wire(switch, backup_l2);
        engine
            .node_mut::<RuNode>(ru)
            .unwrap()
            .wire(switch, ues.clone());
        for ue in &ues {
            engine.node_mut::<UeNode>(*ue).unwrap().wire(ru, selector);
        }

        let backhaul = LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000);
        engine.connect_duplex(server, core, backhaul.clone());
        engine.connect_duplex(core, selector, LinkParams::ideal(Nanos(50_000)));
        engine.connect_duplex(selector, primary_l2, backhaul.clone());
        engine.connect_duplex(selector, backup_l2, backhaul);
        for l2 in [primary_l2, backup_l2] {
            engine.connect_duplex(
                l2,
                core,
                LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000),
            );
        }
        engine.connect_duplex(primary_l2, primary_phy, LinkParams::ideal(Nanos(2_000)));
        engine.connect_duplex(backup_l2, backup_phy, LinkParams::ideal(Nanos(2_000)));
        engine.connect_duplex(
            ru,
            switch,
            LinkParams::with_bandwidth(Nanos(20_000), 25_000_000_000),
        );
        for phy in [primary_phy, backup_phy] {
            engine.connect_duplex(
                phy,
                switch,
                LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000),
            );
        }
        engine.connect_duplex(
            selector,
            switch,
            LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000),
        );

        BaselineDeployment {
            engine,
            switch,
            ru,
            primary_phy,
            primary_l2,
            backup_phy,
            backup_l2,
            selector,
            core,
            server,
            ues,
        }
    }

    pub fn add_flow(
        &mut self,
        ue_idx: usize,
        rnti: u16,
        ue_app: Box<dyn UserApp>,
        server_app: Box<dyn UserApp>,
    ) {
        self.engine
            .node_mut::<UeNode>(self.ues[ue_idx])
            .unwrap()
            .add_app(ue_app);
        self.engine
            .node_mut::<AppServerNode>(self.server)
            .unwrap()
            .add_app(rnti, server_app);
    }

    pub fn kill_primary_at(&mut self, at: Nanos) {
        self.engine.run_until(at);
        self.engine.kill(self.primary_phy);
        self.engine.kill(self.primary_l2);
    }
}
