//! # slingshot-baseline
//!
//! The paper's two comparison points:
//!
//! - [`vm_migration`]: pre-copy VM live migration of a FlexRAN-like
//!   guest (Fig. 3) — hundreds of milliseconds of pause, guest crashes
//!   in every run.
//! - [`backup_vran`]: today's best-available failover without
//!   Slingshot — a full hot backup vRAN stack with switch-based
//!   fronthaul rerouting, which still incurs a ~6.2 s outage because
//!   the UE must fully re-attach (§8.1).

pub mod backup_vran;
pub mod vm_migration;

pub use backup_vran::{BaselineDeployment, StackSelector};
pub use vm_migration::{migrate_batch, migrate_once, VmMigrationConfig, VmMigrationOutcome};
