//! Baseline failover end-to-end: without Slingshot, a PHY crash causes
//! RLF and a multi-second re-attach outage (paper §8.1: 6.2 s).

use slingshot_baseline::BaselineDeployment;
use slingshot_ran::{CellConfig, Fidelity, RuNode, UeConfig, UeNode, UeState};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn cell() -> CellConfig {
    CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

#[test]
fn baseline_outage_is_multiple_seconds() {
    let mut d = BaselineDeployment::build(1, cell(), vec![UeConfig::new(100, 0, "ue100", 22.0)]);
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(2_000_000, 800, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    let kill_at = Nanos::from_millis(1000);
    d.kill_primary_at(kill_at);
    d.engine.run_until(Nanos::from_secs(10));

    // The selector observed the failure and rerouted the fronthaul.
    let sel = d
        .engine
        .node::<slingshot_baseline::StackSelector>(d.selector)
        .unwrap();
    let failed_at = sel.failed_over_at.expect("failure detected");
    assert!((failed_at - kill_at) < Nanos::from_millis(2));

    // The UE hit RLF (cell dark > 50 ms while the backup took over an
    // empty context) and took ~6.2 s to reattach.
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 1, "UE must lose the cell in the baseline");
    assert_eq!(ue.state, UeState::Connected, "eventually reattached");
    let reattached = *ue.reattach_times.first().expect("reattached");
    let outage = (reattached - kill_at).as_secs();
    assert!(
        (5.5..8.0).contains(&outage),
        "outage was {outage:.2} s (paper: 6.2 s)"
    );

    // Traffic blackout spans multiple seconds of 10 ms bins.
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let zeros = sink.bins.zero_bins_between(kill_at, Nanos::from_secs(9));
    assert!(zeros > 400, "blackout bins = {zeros}");

    // And traffic eventually resumes through the backup stack.
    let mbps = sink.bins.mbps();
    let tail = &mbps[mbps.len().saturating_sub(50)..];
    let tail_avg: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(tail_avg > 1.0, "post-recovery rate = {tail_avg}");
}

#[test]
fn baseline_ru_goes_dark_between_failure_and_reroute_only() {
    let mut d = BaselineDeployment::build(2, cell(), vec![UeConfig::new(100, 0, "ue100", 22.0)]);
    d.kill_primary_at(Nanos::from_millis(1000));
    d.engine.run_until(Nanos::from_secs(3));
    // After the reroute the backup PHY feeds the RU, so dark slots are
    // bounded (roughly the detection window).
    let ru = d.engine.node::<RuNode>(d.ru).unwrap();
    assert!(ru.slots_dark < 20, "dark={}", ru.slots_dark);
}
