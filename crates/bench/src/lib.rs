//! # slingshot-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §4 for the index), plus Criterion micro-benchmarks.
//! This library holds the shared scenario builders and report helpers.

use slingshot::{Deployment, DeploymentConfig};
use slingshot_phy_dsp::SnrProcessConfig;
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::Nanos;

/// The paper's three UEs (Table 1), with SNR means chosen so their
/// behavior matches the roles they play in the figures: the phones sit
/// closer to the decode threshold than the Raspberry Pi.
pub fn paper_ues() -> Vec<UeConfig> {
    vec![
        ue("OnePlus-N10", 100, 19.5),
        ue("Samsung-A52s", 101, 16.5),
        ue("Raspberry-Pi", 102, 24.0),
    ]
}

pub fn ue(name: &str, rnti: u16, snr_db: f64) -> UeConfig {
    UeConfig {
        snr: SnrProcessConfig {
            mean_db: snr_db,
            ..Default::default()
        },
        ..UeConfig::new(rnti, 0, name, snr_db)
    }
}

/// Full-size cell (273 PRBs) at Sampled fidelity — the standard
/// configuration for the end-to-end figures.
pub fn figure_cell() -> CellConfig {
    CellConfig {
        num_prbs: 273,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

/// Fast cell for minute-long stress runs (Table 2).
pub fn stress_cell() -> CellConfig {
    CellConfig {
        num_prbs: 273,
        fidelity: Fidelity::Abstract,
        // The stress flow is UDP: a UDP/RTP-style bearer delivers
        // complete SDUs immediately (no in-order hold).
        rlc_ordered: false,
        ..CellConfig::default()
    }
}

/// Standard single-RU Slingshot deployment for figures.
pub fn figure_deployment(seed: u64, ues: Vec<UeConfig>) -> Deployment {
    Deployment::build(
        DeploymentConfig {
            cell: figure_cell(),
            seed,
            ..DeploymentConfig::default()
        },
        ues,
    )
}

/// Print a figure/table header in a uniform style.
pub fn banner(title: &str, paper: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("paper reference: {paper}");
    println!("==============================================================");
}

/// Render a time series as tab-separated `t value` rows.
pub fn print_series(label: &str, t0: Nanos, bin: Nanos, values: &[f64]) {
    println!("# series: {label} (t_seconds\tvalue)");
    for (i, v) in values.iter().enumerate() {
        let t = (t0.0 + i as u64 * bin.0) as f64 / 1e9;
        println!("{t:.3}\t{v:.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ues_distinct() {
        let ues = paper_ues();
        assert_eq!(ues.len(), 3);
        let mut rntis: Vec<u16> = ues.iter().map(|u| u.rnti).collect();
        rntis.dedup();
        assert_eq!(rntis.len(), 3);
    }

    #[test]
    fn cells_use_full_bandwidth() {
        assert_eq!(figure_cell().num_prbs, 273);
        assert_eq!(stress_cell().fidelity, Fidelity::Abstract);
    }
}
