//! # slingshot-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §4 for the index), plus Criterion micro-benchmarks.
//! This library holds the shared scenario builders and report helpers.

use slingshot::{Deployment, DeploymentBuilder};
use slingshot_phy_dsp::SnrProcessConfig;
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::Nanos;

/// The paper's three UEs (Table 1), with SNR means chosen so their
/// behavior matches the roles they play in the figures: the phones sit
/// closer to the decode threshold than the Raspberry Pi.
pub fn paper_ues() -> Vec<UeConfig> {
    vec![
        ue("OnePlus-N10", 100, 19.5),
        ue("Samsung-A52s", 101, 16.5),
        ue("Raspberry-Pi", 102, 24.0),
    ]
}

pub fn ue(name: &str, rnti: u16, snr_db: f64) -> UeConfig {
    UeConfig {
        snr: SnrProcessConfig {
            mean_db: snr_db,
            ..Default::default()
        },
        ..UeConfig::new(rnti, 0, name, snr_db)
    }
}

/// Full-size cell (273 PRBs) at Sampled fidelity — the standard
/// configuration for the end-to-end figures.
pub fn figure_cell() -> CellConfig {
    CellConfig {
        num_prbs: 273,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

/// Fast cell for minute-long stress runs (Table 2).
pub fn stress_cell() -> CellConfig {
    CellConfig {
        num_prbs: 273,
        fidelity: Fidelity::Abstract,
        // The stress flow is UDP: a UDP/RTP-style bearer delivers
        // complete SDUs immediately (no in-order hold).
        rlc_ordered: false,
        ..CellConfig::default()
    }
}

/// Standard single-RU Slingshot deployment for figures.
pub fn figure_deployment(seed: u64, ues: Vec<UeConfig>) -> Deployment {
    DeploymentBuilder::new()
        .seed(seed)
        .cell(figure_cell())
        .ues(ues)
        .build()
}

/// Machine-readable companion to a figure binary's stdout: scalar
/// results and (x, y) series, written as `<name>.json` into
/// `$BENCH_JSON_DIR` (default: the current directory). Keeps the
/// human-readable stdout as the primary artifact while letting plot
/// scripts and regression tooling consume the numbers directly.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    name: String,
    title: String,
    paper: String,
    labels: Vec<(String, String)>,
    scalars: Vec<(String, f64)>,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl BenchReport {
    pub fn new(name: &str, title: &str, paper: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            title: title.to_string(),
            paper: paper.to_string(),
            labels: Vec::new(),
            scalars: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Record a named string label (e.g. `backend: "avx2"`) — run
    /// configuration that downstream tooling needs to interpret the
    /// scalars, kept separate so numbers stay numbers.
    pub fn label(&mut self, key: &str, value: &str) {
        self.labels.push((key.to_string(), value.to_string()));
    }

    /// Record a named scalar result (e.g. `max_lost_ttis`).
    pub fn scalar(&mut self, key: &str, value: f64) {
        self.scalars.push((key.to_string(), value));
    }

    /// Record a named (x, y) series (e.g. a latency time series).
    pub fn series(&mut self, key: &str, points: Vec<(f64, f64)>) {
        self.series.push((key.to_string(), points));
    }

    /// Serialize to a JSON string (insertion order preserved).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"name\":{}", json_str(&self.name)));
        out.push_str(&format!(",\"title\":{}", json_str(&self.title)));
        out.push_str(&format!(",\"paper\":{}", json_str(&self.paper)));
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
        }
        out.push_str("},\"scalars\":{");
        for (i, (k, v)) in self.scalars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), json_num(*v)));
        }
        out.push_str("},\"series\":{");
        for (i, (k, pts)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:[", json_str(k)));
            for (j, (x, y)) in pts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", json_num(*x), json_num(*y)));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Write `<name>.json` into `$BENCH_JSON_DIR` (or the current
    /// directory) and return the path. Errors are reported, not fatal:
    /// figure binaries should not fail because the artifact directory
    /// is read-only.
    pub fn write(&self) -> Option<std::path::PathBuf> {
        let dir = std::env::var_os("BENCH_JSON_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("."));
        let path = dir.join(format!("{}.json", self.name));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("# wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("# could not write {}: {e}", path.display());
                None
            }
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Print a figure/table header in a uniform style.
pub fn banner(title: &str, paper: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("paper reference: {paper}");
    println!("==============================================================");
}

/// Render a time series as tab-separated `t value` rows.
pub fn print_series(label: &str, t0: Nanos, bin: Nanos, values: &[f64]) {
    println!("# series: {label} (t_seconds\tvalue)");
    for (i, v) in values.iter().enumerate() {
        let t = (t0.0 + i as u64 * bin.0) as f64 / 1e9;
        println!("{t:.3}\t{v:.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ues_distinct() {
        let ues = paper_ues();
        assert_eq!(ues.len(), 3);
        let mut rntis: Vec<u16> = ues.iter().map(|u| u.rnti).collect();
        rntis.dedup();
        assert_eq!(rntis.len(), 3);
    }

    #[test]
    fn cells_use_full_bandwidth() {
        assert_eq!(figure_cell().num_prbs, 273);
        assert_eq!(stress_cell().fidelity, Fidelity::Abstract);
    }

    #[test]
    fn bench_report_json_shape() {
        let mut r = BenchReport::new("t", "A \"title\"", "ref");
        r.scalar("a", 1.5);
        r.scalar("bad", f64::NAN);
        r.series("s", vec![(0.0, 1.0), (1.0, 2.5)]);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"t\""));
        assert!(j.contains("A \\\"title\\\""));
        assert!(j.contains("\"a\":1.5"));
        assert!(j.contains("\"bad\":null"));
        assert!(j.contains("\"s\":[[0,1],[1,2.5]]"));
    }
}
