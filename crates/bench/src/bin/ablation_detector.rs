//! Ablation — failure-detector timeout T and tick count n (§5.2/§8.6):
//! smaller T detects faster but false-fires once T dips below the
//! healthy stream's maximum inter-packet gap; larger n sharpens the
//! precision at the cost of generated-packet load.

use slingshot::{DeploymentBuilder, OrionL2Node};
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_ran::UeNode;
use slingshot_sim::Nanos;
use slingshot_switch::PktGenConfig;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn run(period_us: u64, ticks: u32, kill: bool, seed: u64) -> (u64, Option<Nanos>, u64) {
    let det = PktGenConfig {
        period: Nanos::from_micros(period_us),
        ticks_per_period: ticks,
    };
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(figure_cell())
        .detector(det)
        .ue(ue("ue", 100, 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(6_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    let kill_at = Nanos::from_millis(1500);
    if kill {
        d.kill_primary_at(kill_at);
        d.engine.run_until(Nanos::from_millis(2000));
    } else {
        d.engine.run_until(Nanos::from_secs(3));
    }
    let sw = d.engine.node::<slingshot::SwitchNode>(d.switch).unwrap();
    let reported = sw.mbox.failures_reported;
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    let detect = orion
        .last_failure_notified
        .map(|t| t.saturating_sub(kill_at));
    let rlf = d.engine.node::<UeNode>(d.ues[0]).unwrap().rlf_count;
    (reported, detect, rlf)
}

fn main() {
    banner(
        "Ablation: failure-detector timeout T × tick count n",
        "paper picks T=450 µs (max healthy gap 393 µs), n=50 (9 µs precision)",
    );
    println!(
        "{:>8} {:>6} {:>10} {:>22} {:>18}",
        "T (µs)", "n", "gen pkt/s", "false positives (3 s)", "detect (µs)"
    );
    for (period_us, ticks) in [
        (150u64, 50u32),
        (250, 50),
        (350, 50),
        (450, 10),
        (450, 50),
        (450, 200),
        (1000, 50),
        (2000, 50),
    ] {
        let det = PktGenConfig {
            period: Nanos::from_micros(period_us),
            ticks_per_period: ticks,
        };
        // Healthy run: count spurious failure reports.
        let (false_pos, _, _) = run(period_us, ticks, false, 7000 + period_us);
        // Failure run: detection latency.
        let (_, detect, rlf) = run(period_us, ticks, true, 8000 + period_us);
        println!(
            "{:>8} {:>6} {:>10.0} {:>22} {:>15.1} {}",
            period_us,
            ticks,
            det.packets_per_second(),
            false_pos,
            detect.map(|d| d.as_micros()).unwrap_or(f64::NAN),
            if rlf > 0 { "(UE hit RLF!)" } else { "" }
        );
    }
    println!(
        "\nT below the healthy max inter-packet gap (~335–393 µs) false-fires;\n\
         larger T delays detection linearly; n only trades precision vs load."
    );
}
