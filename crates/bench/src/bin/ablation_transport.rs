//! Ablation — Orion's lean stateless transport vs an nFAPI-style
//! stateful (SCTP-like) transport (§6.1). The stateful association must
//! be torn down and re-established when the PHY endpoint migrates: two
//! round trips of handshake before the first FAPI message can flow,
//! plus per-message sequencing/acknowledgment overhead and kernel
//! association state that would otherwise need transferring. Orion's
//! datagram transport carries zero inter-slot state, so migration costs
//! it nothing.

use slingshot::nfapi::{handshake_time, AssocState, SctpLikeEndpoint};
use slingshot_bench::banner;
use slingshot_sim::{Nanos, SLOT_DURATION};

fn main() {
    banner(
        "Ablation: Orion stateless transport vs nFAPI-style SCTP association",
        "§6.1: nFAPI's stateful protocol is mismatched with TTI-boundary migration",
    );

    // Per-migration signaling blackout before FAPI can flow again.
    println!("re-establishment cost after the PHY endpoint moves:");
    println!(
        "{:>28} {:>16} {:>18}",
        "server-network one-way", "nFAPI handshake", "in TTIs (500 µs)"
    );
    for one_way_us in [5u64, 50, 250, 1000] {
        let hs = handshake_time(Nanos::from_micros(one_way_us));
        println!(
            "{:>25} µs {:>13} µs {:>18.2}",
            one_way_us,
            hs.0 / 1000,
            hs.0 as f64 / SLOT_DURATION.0 as f64
        );
    }
    println!("{:>28} {:>16} {:>18}", "Orion (stateless)", "0 µs", "0.00");

    // Association state that a transfer-based design would have to move
    // (and that dies with a crashed PHY in the failover case).
    let mut l2 = SctpLikeEndpoint::new(1);
    let mut phy = SctpLikeEndpoint::new(2);
    let init = l2.connect();
    let (r1, _) = phy.on_chunk(Nanos(0), init);
    let (r2, _) = l2.on_chunk(Nanos(1), r1[0].clone());
    let (r3, _) = phy.on_chunk(Nanos(2), r2[0].clone());
    let _ = l2.on_chunk(Nanos(3), r3[0].clone());
    assert_eq!(l2.state, AssocState::Established);
    // One slot's FAPI in flight: UL_TTI + DL_TTI + TX_Data segments.
    let mut wire_msgs = 0u64;
    for len in [48u32, 64, 8192, 8192, 8192] {
        let _ = l2.send_data(Nanos(10), len).unwrap();
        wire_msgs += 1;
    }
    println!(
        "\nper-slot transport overhead with one slot's FAPI in flight:\n\
         \x20 nFAPI: {} data chunks + {} SACKs per slot, {} B of association\n\
         \x20        state bound to the old endpoint at migration time\n\
         \x20 Orion: {} datagrams, 0 acks, 0 B of transport state",
        wire_msgs,
        wire_msgs,
        l2.state_bytes(),
        wire_msgs
    );
    println!(
        "\nand in the failover case the association state lives in a *crashed*\n\
         process — there is nothing left to transfer; re-establishment (above)\n\
         is the floor. Orion pays neither cost (§6.1)."
    );
}
