//! Ablation — null-FAPI hot standby vs naïve duplicate-work standby
//! (§6.2): duplicating the primary's real FAPI stream keeps the standby
//! equally hot but costs ~100% of the primary's compute; null FAPIs
//! keep it alive for ~nothing, and failover behaves identically.

use slingshot::{DeploymentBuilder, OrionL2Node};
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_ran::{PhyNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

struct Outcome {
    standby_cpu: f64,
    primary_cpu: f64,
    ue_rlf: u64,
    failover_ok: bool,
}

fn run(duplicate: bool, seed: u64) -> Outcome {
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(figure_cell())
        .ue(ue("ue", 100, 22.0))
        .build();
    d.engine
        .node_mut::<OrionL2Node>(d.orion_l2)
        .unwrap()
        .duplicate_standby = duplicate;
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(15_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d.engine.run_until(Nanos::from_secs(3));
    let now = d.engine.now();
    let standby_cpu = d
        .engine
        .node::<PhyNode>(d.secondary_phy)
        .unwrap()
        .cpu_utilization(now);
    let primary_cpu = d
        .engine
        .node::<PhyNode>(d.primary_phy)
        .unwrap()
        .cpu_utilization(now);
    // Both designs must fail over cleanly.
    d.kill_primary_at(Nanos::from_secs(3));
    d.engine.run_until(Nanos::from_secs(4));
    let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    Outcome {
        standby_cpu,
        primary_cpu,
        ue_rlf: ue_node.rlf_count,
        failover_ok: orion.failovers == 1,
    }
}

fn main() {
    banner(
        "Ablation: hot-standby maintenance — null FAPIs vs duplicated work",
        "§6.2: duplication ⇒ 100% compute overhead; null FAPIs ⇒ negligible",
    );
    println!(
        "{:>18} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "standby design", "primary CPU", "standby CPU", "overhead", "failover", "UE RLF"
    );
    for (label, duplicate, seed) in [("null FAPIs", false, 61u64), ("duplicate work", true, 62)] {
        let o = run(duplicate, seed);
        println!(
            "{label:>18} {:>13.2}% {:>13.2}% {:>9.0}% {:>10} {:>10}",
            o.primary_cpu * 100.0,
            o.standby_cpu * 100.0,
            o.standby_cpu / o.primary_cpu.max(1e-9) * 100.0,
            if o.failover_ok { "ok" } else { "BROKEN" },
            o.ue_rlf
        );
    }
    println!("\nboth keep the standby alive and fail over identically; only the bill differs.");
}
