//! Fig. 10 — TCP and UDP throughput during resilience events, 10 ms
//! bins. (a) Downlink across failover: no noticeable degradation.
//! (b) Uplink: UDP dips briefly and recovers ≤20 ms; TCP drops to zero
//! for tens of ms and recovers ~110 ms after failure (RTO-driven);
//! planned migration shows no drop.

use slingshot::Deployment;
use slingshot_bench::{banner, figure_deployment, print_series, ue};
use slingshot_ran::{AppServerNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{TcpReceiver, TcpSender, UdpCbrSource, UdpSink};

const WARMUP: Nanos = Nanos::from_millis(800);
const EVENT_AT: Nanos = Nanos::from_millis(1000);
const END: Nanos = Nanos::from_millis(1600);
const BIN: Nanos = Nanos::from_millis(10);

fn window(series: &[f64]) -> &[f64] {
    // 150 ms before the event to 500 ms after (event at bin 100).
    let lo = ((EVENT_AT.0 - WARMUP.0) / BIN.0) as usize;
    let lo = lo.saturating_sub(15);
    &series[lo..(lo + 65).min(series.len())]
}

fn deployment(seed: u64) -> Deployment {
    figure_deployment(seed, vec![ue("ue", 100, 22.0)])
}

fn report(label: &str, series: Vec<f64>) {
    let t0 = Nanos(EVENT_AT.0 - 150 * 1_000_000);
    print_series(label, t0, BIN, window(&series));
    let zeros = window(&series).iter().filter(|v| **v == 0.0).count();
    println!("# {label}: zero 10 ms bins in window = {zeros}");
}

fn main() {
    banner(
        "Fig. 10: throughput during resilience events (10 ms bins)",
        "(a) DL unaffected; (b) UL UDP dips & recovers ≤20 ms, TCP stalls ~80 ms, planned: no drop",
    );

    // (a) Downlink UDP across failover.
    {
        let mut d = deployment(101);
        d.add_flow(
            0,
            100,
            Box::new(UdpSink::new(Nanos::ZERO, BIN)),
            Box::new(UdpCbrSource::new(40_000_000, 1200, Nanos::ZERO)),
        );
        d.kill_primary_at(EVENT_AT);
        d.engine.run_until(END);
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        let sink: &UdpSink = ue_node.app(0).unwrap();
        report("fig10a DL UDP failover (Mbps)", sink.bins.mbps());
    }

    // (a) Downlink TCP across failover.
    {
        let mut d = deployment(102);
        d.add_flow(
            0,
            100,
            Box::new(TcpReceiver::new(Nanos::ZERO, BIN)),
            Box::new(TcpSender::new()),
        );
        d.kill_primary_at(EVENT_AT);
        d.engine.run_until(END);
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        let rcv: &TcpReceiver = ue_node.app(0).unwrap();
        report("fig10a DL TCP failover (Mbps)", rcv.bins.mbps());
    }

    // (b) Uplink UDP across failover.
    {
        let mut d = deployment(103);
        d.add_flow(
            0,
            100,
            Box::new(UdpCbrSource::new(15_800_000, 1200, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, BIN)),
        );
        d.kill_primary_at(EVENT_AT);
        d.engine.run_until(END);
        let sink: &UdpSink = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(100, 0)
            .unwrap();
        report("fig10b UL UDP failover (Mbps)", sink.bins.mbps());
    }

    // (b) Uplink TCP across failover: expect an RTO stall then a
    // retransmission burst.
    {
        let mut d = deployment(104);
        d.add_flow(
            0,
            100,
            Box::new(TcpSender::new()),
            Box::new(TcpReceiver::new(Nanos::ZERO, BIN)),
        );
        d.kill_primary_at(EVENT_AT);
        d.engine.run_until(END);
        let rcv: &TcpReceiver = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(100, 0)
            .unwrap();
        let series = rcv.bins.mbps();
        report("fig10b UL TCP failover (Mbps)", series.clone());
        // Recovery time: first bin after the event with ≥50% of the
        // pre-event average.
        let pre_avg: f64 = series[60..95].iter().sum::<f64>() / 35.0;
        let event_bin = (EVENT_AT.0 / BIN.0) as usize;
        let recovery = series[event_bin..]
            .iter()
            .enumerate()
            .filter(|(i, v)| *i > 0 && **v >= 0.5 * pre_avg)
            .map(|(i, _)| i * 10)
            .next();
        println!(
            "# UL TCP: pre-failure avg {pre_avg:.1} Mbps; recovered to ≥50% after {recovery:?} ms (paper: 110 ms)"
        );
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        let snd: &TcpSender = ue_node.app(0).unwrap();
        println!(
            "# UL TCP: sender timeouts={} retransmissions={}",
            snd.timeouts, snd.retransmissions
        );
    }

    // (b) Uplink TCP across a *planned* migration: no drop.
    {
        let mut d = deployment(105);
        d.add_flow(
            0,
            100,
            Box::new(TcpSender::new()),
            Box::new(TcpReceiver::new(Nanos::ZERO, BIN)),
        );
        d.planned_migration_at(EVENT_AT);
        d.engine.run_until(END);
        let rcv: &TcpReceiver = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(100, 0)
            .unwrap();
        report("fig10b UL TCP planned migration (Mbps)", rcv.bins.mbps());
    }
}
