//! §8.5 — overhead of maintaining a hot standby secondary PHY on null
//! FAPIs: marginal CPU ≈ 0, no L2 overhead, and the null-FAPI network
//! traffic is far below 1 MB/s.

use slingshot::{DeploymentBuilder, OrionL2Node};
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_ran::PhyNode;
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    banner(
        "§8.5: overhead of the hot standby secondary PHY",
        "null FAPIs make standby CPU negligible; network < 1 MB/s",
    );
    let dur = Nanos::from_secs(5);
    let mut d = DeploymentBuilder::new()
        .seed(851)
        .cell(figure_cell())
        .ue(ue("ue", 100, 22.0))
        .build();
    // Real work on the primary: bidirectional traffic.
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(15_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d.engine.run_until(dur);

    let now = d.engine.now();
    let primary = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    let secondary = d.engine.node::<PhyNode>(d.secondary_phy).unwrap();
    let p_cpu = primary.cpu_utilization(now);
    let s_cpu = secondary.cpu_utilization(now);
    println!(
        "primary PHY:   cpu={:.3}% busy, work slots={}, null slots={}",
        p_cpu * 100.0,
        primary.work_slots,
        primary.null_slots
    );
    println!(
        "secondary PHY: cpu={:.4}% busy, work slots={}, null slots={}",
        s_cpu * 100.0,
        secondary.work_slots,
        secondary.null_slots
    );
    println!(
        "secondary/primary CPU ratio: {:.4} (paper: 'no significant increase')",
        s_cpu / p_cpu.max(1e-12)
    );
    assert!(s_cpu < 0.05 * p_cpu, "standby must be near-free");
    assert_eq!(secondary.work_slots, 0, "standby does no signal processing");
    assert!(secondary.crash_time.is_none(), "null FAPIs keep it alive");

    // Null-FAPI network overhead: bytes arriving at the standby
    // server's Orion from the L2 side.
    let orion_sec = d
        .engine
        .node::<slingshot::OrionPhyNode>(d.orion_secondary)
        .unwrap();
    let mbytes_per_s = orion_sec.rx_bytes_from_l2 as f64 / dur.as_secs() / 1e6;
    println!(
        "null-FAPI traffic to the standby server: {:.3} MB/s (paper: < 1 MB/s)",
        mbytes_per_s
    );
    assert!(mbytes_per_s < 1.0);

    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    println!(
        "null FAPI requests sent: {} over {:.0} s ({}/slot pair)",
        orion.null_fapi_sent,
        dur.as_secs(),
        2
    );

    // Ablation: a duplicate-work standby (what naïve duplication would
    // cost) = primary's CPU again — i.e., 100% overhead.
    println!(
        "\nablation — duplicating the primary's work instead of null FAPIs \
         would cost {:.3}% CPU (100% of the primary), vs {:.4}% with Slingshot",
        p_cpu * 100.0,
        s_cpu * 100.0
    );
}
