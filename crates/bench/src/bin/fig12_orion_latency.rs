//! Fig. 12 — one-way latency added by Orion for different downlink
//! user throughputs (idle, 100 Mbps, 1.1, 2.8, 3.4 Gbps): median, 99th
//! and 99.999th percentiles, all under ~200 µs and within the one-TTI
//! FAPI transfer budget.
//!
//! Methodology mirrors §8.7: the L2→PHY FAPI message stream for each
//! load level is pushed through the Orion forwarding-cost model and
//! lean transport exactly as the deployment does (per-message +
//! per-byte busy-poll cost, FIFO through one core), and we measure the
//! added one-way delay per DL_TTI/TX_Data message.

use slingshot::OrionCost;
use slingshot_bench::{banner, BenchReport};
use slingshot_sim::{Nanos, Sampler, SimRng, SLOT_DURATION};

/// One simulated second of slot-paced FAPI traffic at a given DL rate.
fn run_level(dl_bps: f64, seed: u64) -> (Sampler, Sampler) {
    let cost = OrionCost::default();
    let mut rng = SimRng::new(seed);
    let mut l2_side = Sampler::new(); // L2-side Orion queueing+service
    let mut e2e = Sampler::new(); // L2-side + wire + PHY-side
    let slots = 20_000u64; // 10 s of slots
    let mut busy_l2 = Nanos::ZERO;
    let mut busy_phy = Nanos::ZERO;
    // 3 of 5 slots are DL (DDDSU); TX_Data bytes per DL slot.
    let bytes_per_dl_slot = (dl_bps * SLOT_DURATION.0 as f64 / 1e9 / 8.0 * 5.0 / 3.0) as usize;
    for s in 0..slots {
        let now = Nanos(s * SLOT_DURATION.0);
        let is_dl = s % 5 < 3;
        // Each slot carries UL_TTI + DL_TTI (small); DL slots add
        // TX_Data segmented into ≤8 KB FAPI messages.
        let mut msgs: Vec<usize> = vec![48, 64];
        if is_dl && bytes_per_dl_slot > 0 {
            let mut rem = bytes_per_dl_slot;
            while rem > 0 {
                let take = rem.min(8192);
                msgs.push(take + 32);
                rem -= take;
            }
        }
        for bytes in msgs {
            // Jittered arrival within the first 100 µs of the slot.
            let arrival = now + Nanos(rng.below(100_000));
            // L2-side Orion service (FIFO).
            let start = busy_l2.max(arrival);
            let svc = cost.per_msg + Nanos((bytes as f64 * cost.per_byte_ns) as u64);
            busy_l2 = start + svc;
            let after_l2 = busy_l2;
            l2_side.record((after_l2 - arrival).0);
            // Wire: 100 GbE serialization + 2 µs propagation.
            let wire = Nanos((bytes as u64 * 8 * 1_000_000_000) / 100_000_000_000) + Nanos(2_000);
            let at_phy_orion = after_l2 + wire;
            // PHY-side Orion service.
            let start = busy_phy.max(at_phy_orion);
            busy_phy = start + svc;
            e2e.record((busy_phy - arrival).0);
        }
    }
    (l2_side, e2e)
}

fn main() {
    banner(
        "Fig. 12: one-way latency added by Orion vs downlink throughput",
        "median/99th/99.999th all < 200 µs, within the 500 µs TTI FAPI budget",
    );
    let mut report = BenchReport::new(
        "fig12_orion_latency",
        "Fig. 12: one-way latency added by Orion vs downlink throughput",
        "median/99th/99.999th all < 200 µs, within the 500 µs TTI FAPI budget",
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "DL load", "median µs", "p99 µs", "p99.999 µs"
    );
    for (label, bps, seed) in [
        ("idle", 0.0, 1u64),
        ("100 Mbps", 100e6, 2),
        ("1.1 Gbps", 1.1e9, 3),
        ("2.8 Gbps", 2.8e9, 4),
        ("3.4 Gbps", 3.4e9, 5),
    ] {
        let (_l2, mut e2e) = run_level(bps, seed);
        let p = |s: &mut Sampler, q: f64| s.percentile(q).unwrap() as f64 / 1e3;
        println!(
            "{label:>10} {:>12.1} {:>12.1} {:>12.1}",
            p(&mut e2e, 50.0),
            p(&mut e2e, 99.0),
            p(&mut e2e, 99.999)
        );
        report.scalar(&format!("median_us:{label}"), p(&mut e2e, 50.0));
        report.scalar(&format!("p99_us:{label}"), p(&mut e2e, 99.0));
        report.scalar(&format!("p99999_us:{label}"), p(&mut e2e, 99.999));
        let max = e2e.max().unwrap() as f64 / 1e3;
        assert!(
            max < SLOT_DURATION.0 as f64 / 1e3,
            "Orion latency {max} µs exceeded one TTI"
        );
    }
    println!("\n(FlexRAN budgets one TTI, 500 µs, for FAPI transfers — §8.7)");
    report.write();
}
