//! Fig. 9 — ping latency for three UEs across a PHY failover, sampled
//! every 10 ms over a ~2 s window centered at the failure: the
//! disruption resembles natural wireless fluctuations.

use slingshot_bench::{banner, figure_deployment, paper_ues, BenchReport};
use slingshot_ran::{AppServerNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{EchoResponder, PingApp};

fn main() {
    banner(
        "Fig. 9: ping latency across PHY failover (3 UEs, 10 ms pings)",
        "latency unaffected for two UEs; ≤ ~15 ms transient for one, within normal fluctuation",
    );
    let mut report = BenchReport::new(
        "fig9_ping",
        "Fig. 9: ping latency across PHY failover (3 UEs, 10 ms pings)",
        "latency unaffected for two UEs; ≤ ~15 ms transient for one",
    );
    let fail_at = Nanos::from_millis(1500);
    let mut d = figure_deployment(91, paper_ues());
    let rntis = [100u16, 101, 102];
    for (i, rnti) in rntis.iter().enumerate() {
        d.add_flow(
            i,
            *rnti,
            Box::new(EchoResponder::new()),
            Box::new(PingApp::new(
                Nanos::from_millis(10),
                Nanos::from_millis(100),
            )),
        );
    }
    d.kill_primary_at(fail_at);
    d.engine.run_until(Nanos::from_millis(2700));

    let orion = d.engine.node::<slingshot::OrionL2Node>(d.orion_l2).unwrap();
    println!(
        "# failure notified at t={:.6} s (killed at {:.3} s)",
        orion.last_failure_notified.unwrap().as_secs(),
        fail_at.as_secs()
    );
    report.scalar("killed_at_s", fail_at.as_secs());
    report.scalar(
        "failure_notified_s",
        orion.last_failure_notified.unwrap().as_secs(),
    );

    let names = ["OnePlus-N10", "Samsung-A52s", "Raspberry-Pi"];
    for (i, rnti) in rntis.iter().enumerate() {
        let ping: &PingApp = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(*rnti, 0)
            .unwrap();
        println!(
            "\n# {} — (t_seconds\trtt_ms), window ±1 s of failure",
            names[i]
        );
        let win_lo = fail_at.saturating_sub(Nanos::from_millis(1000));
        let win_hi = fail_at + Nanos::from_millis(1000);
        let mut max_in_window = 0.0f64;
        let mut baseline = Vec::new();
        for (sent, rtt) in &ping.rtts {
            if *sent >= win_lo && *sent < win_hi {
                println!("{:.3}\t{:.1}", sent.as_secs(), rtt.as_millis());
                max_in_window = max_in_window.max(rtt.as_millis());
            } else {
                baseline.push(rtt.as_millis());
            }
        }
        let base_avg: f64 = baseline.iter().sum::<f64>() / baseline.len().max(1) as f64;
        println!(
            "# {}: baseline avg {:.1} ms, max in failover window {:.1} ms, answered {}/{}",
            names[i], base_avg, max_in_window, ping.received, ping.sent
        );
        report.series(
            &format!("rtt_ms:{}", names[i]),
            ping.rtts
                .iter()
                .map(|(sent, rtt)| (sent.as_secs(), rtt.as_millis()))
                .collect(),
        );
        report.scalar(&format!("baseline_avg_ms:{}", names[i]), base_avg);
        report.scalar(&format!("max_failover_ms:{}", names[i]), max_in_window);
        report.scalar(&format!("answered:{}", names[i]), ping.received as f64);
        report.scalar(&format!("sent:{}", names[i]), ping.sent as f64);
        let ue = d.engine.node::<UeNode>(d.ues[i]).unwrap();
        assert_eq!(ue.rlf_count, 0, "{} must stay connected", names[i]);
    }
    report.write();
}
