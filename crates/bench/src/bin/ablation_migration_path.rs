//! Ablation — data-plane `migrate_on_slot` vs control-plane rule update
//! (§5.1): the control plane takes milliseconds (29 ms at p99.9 in the
//! paper's testbed) and cannot align the remap to a TTI boundary, so
//! the RU can receive a mixed, protocol-violating packet sequence and
//! the handover point is uncontrolled. The data-plane request store
//! executes exactly at the requested slot.

use slingshot::{Deployment, DeploymentBuilder, SwitchNode, SECONDARY_PHY_ID};
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_ran::{PhyNode, UeNode};
use slingshot_sim::{Nanos, Sampler};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn deployment(seed: u64) -> Deployment {
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(figure_cell())
        .ue(ue("ue", 100, 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(10_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d
}

fn dropped_ul_ttis(d: &Deployment) -> usize {
    let mut slots: Vec<u64> = Vec::new();
    for phy in [d.primary_phy, d.secondary_phy] {
        slots.extend(&d.engine.node::<PhyNode>(phy).unwrap().processed_ul_slots);
    }
    slots.sort_unstable();
    slots.dedup();
    let expected = (slots.last().unwrap() - slots.first().unwrap()) / 5 + 1;
    expected as usize - slots.len()
}

fn main() {
    banner(
        "Ablation: data-plane migration store vs control-plane rule update",
        "§5.1: control plane = ms latency + no TTI alignment; data plane = exact boundary",
    );

    // Data-plane path (Slingshot): planned migration.
    {
        let mut d = deployment(71);
        d.planned_migration_at(Nanos::from_millis(800));
        d.engine.run_until(Nanos::from_millis(1600));
        let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
        println!(
            "data-plane:    executed at an exact slot boundary; dropped UL TTIs = {}, UE RLF = {}",
            dropped_ul_ttis(&d),
            d.engine.node::<UeNode>(d.ues[0]).unwrap().rlf_count
        );
        assert_eq!(sw.mbox.migrations_executed, 1);
    }

    // Control-plane path: same migration via a table-update RPC.
    {
        let mut latencies = Sampler::new();
        let mut worst_drop = 0usize;
        for i in 0..5u64 {
            let mut d = deployment(72 + i);
            d.engine.run_until(Nanos::from_millis(800));
            d.engine
                .node_mut::<SwitchNode>(d.switch)
                .unwrap()
                .request_control_plane_remap(0, SECONDARY_PHY_ID);
            d.engine.run_until(Nanos::from_millis(1600));
            let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
            for l in &sw.cp_remap_latencies {
                latencies.record(l.0);
            }
            worst_drop = worst_drop.max(dropped_ul_ttis(&d));
        }
        println!(
            "control-plane: rule-update latency median {:.1} ms, max {:.1} ms (paper p99.9: 29 ms);",
            latencies.median().unwrap() as f64 / 1e6,
            latencies.max().unwrap() as f64 / 1e6
        );
        println!(
            "               remap lands mid-slot at an uncontrolled time; worst dropped UL TTIs = {worst_drop}"
        );
        println!(
            "               (and during the update window the RU/PHY pair is in an\n\
             \x20              unplanned split: requests flow to one PHY while fronthaul\n\
             \x20              is steered to another — the interoperability hazard §5.1\n\
             \x20              calls out)"
        );
    }
}
