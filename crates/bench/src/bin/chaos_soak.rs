//! Chaos soak harness: N seeds x M scenarios through the deterministic
//! chaos engine, every run judged by the trace oracle.
//!
//! Each seed runs the fixed scenario suite (one per major fault class)
//! plus one scenario sampled from the randomized chaos distribution.
//! Any oracle violation prints the seed and the full fault schedule —
//! re-running with the same seed reproduces the failing run
//! byte-for-byte — and dumps the offending run's Chrome trace next to
//! the JSON report for post-mortem in Perfetto.
//!
//! Knobs:
//! - `--seeds <n>` / `CHAOS_SEEDS=<n>`: number of seeds (default 16).
//!   The CI smoke uses 4; the nightly soak uses 64.
//! - `BENCH_JSON_DIR`: where the JSON report and failure traces go.
//!
//! Exit status is non-zero iff any invariant was violated or a replay
//! diverged.

use slingshot::chaos::{chaos_deployment, chaos_pool_deployment, expectations_for, ChaosRunner};
use slingshot_bench::{banner, BenchReport};
use slingshot_sim::chaos::{oracle, ChaosDistribution, FaultKind, FaultTarget, Scenario};
use slingshot_sim::slo::{self, SloConfig};

/// One scenario per major fault class, exercised under every seed's
/// deployment (traffic timing, channel noise and link jitter all vary
/// with the seed).
fn fixed_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("crash", 2400).fault(1000, FaultTarget::ActivePhy, FaultKind::PhyCrash),
        Scenario::new("hang", 2600).fault(
            1000,
            FaultTarget::ActivePhy,
            FaultKind::PhyHang { slots: 40 },
        ),
        Scenario::new("planned", 2400).fault(
            1000,
            FaultTarget::OrionL2,
            FaultKind::PlannedMigration,
        ),
        Scenario::new("fh-burst", 2400).fault(
            1000,
            FaultTarget::Fronthaul,
            FaultKind::BurstLoss { p: 0.2, slots: 60 },
        ),
    ]
}

/// Sequential multi-cell crash scenarios against the 4-cell / 2-spare
/// pool deployment. Three (and then four) back-to-back crashes in
/// distinct cells outnumber the pool, so these runs only pass if the
/// orchestrator scrubs and recycles dead ex-primaries between failures;
/// the oracle holds every crash to the single-failure bounds and audits
/// the pool ledger.
fn pool_scenarios() -> Vec<Scenario> {
    vec![
        Scenario::new("pool-3crash", 1700)
            .fault(700, FaultTarget::ActivePhyOf(0), FaultKind::PhyCrash)
            .fault(760, FaultTarget::ActivePhyOf(1), FaultKind::PhyCrash)
            .fault(820, FaultTarget::ActivePhyOf(2), FaultKind::PhyCrash),
        Scenario::new("pool-4crash", 1900)
            .fault(700, FaultTarget::ActivePhyOf(0), FaultKind::PhyCrash)
            .fault(760, FaultTarget::ActivePhyOf(1), FaultKind::PhyCrash)
            .fault(820, FaultTarget::ActivePhyOf(2), FaultKind::PhyCrash)
            .fault(880, FaultTarget::ActivePhyOf(3), FaultKind::PhyCrash),
    ]
}

struct RunResult {
    ok: bool,
    dropped_ttis: u64,
    max_detection_us: f64,
    /// Fleet nines from the SLO analyzer over this run's trace.
    nines: f64,
    /// Worst per-cell dropped-TTI p99 (0 when nothing was dropped).
    worst_cell_dropped_tti_p99: u64,
    /// Fleet MTTR in ms (0.0 when the run had no outage).
    mttr_ms: f64,
}

/// Run one (deployment seed, scenario) pair and report violations.
fn run_one(deploy_seed: u64, scenario: &Scenario, chaos_seed: u64) -> RunResult {
    run_with_deployment(chaos_deployment(deploy_seed), scenario, chaos_seed, None)
}

/// Like [`run_one`] but on the shared-pool deployment, holding every
/// crash to the per-cell single-failure TTI budget.
fn run_one_pool(deploy_seed: u64, scenario: &Scenario, chaos_seed: u64) -> RunResult {
    run_with_deployment(
        chaos_pool_deployment(deploy_seed),
        scenario,
        chaos_seed,
        Some(3),
    )
}

fn run_with_deployment(
    mut d: slingshot::Deployment,
    scenario: &Scenario,
    chaos_seed: u64,
    tti_budget: Option<u64>,
) -> RunResult {
    let mut exp = expectations_for(&d, scenario);
    if let Some(budget) = tti_budget {
        exp.max_dropped_ttis = budget;
    }
    let mut runner = ChaosRunner::new(scenario);
    runner.run(&mut d, scenario.horizon_slots);
    let report = oracle::check(d.engine.event_trace(), &exp);

    // Same trace, service-level view: nines / MTTR / dropped-TTI tails
    // for the per-seed availability summary in the JSON report.
    let slo_cfg = SloConfig {
        horizon_slots: scenario.horizon_slots,
        initial_active: exp.initial_active.clone(),
        ..SloConfig::default()
    };
    let slo = slo::analyze(d.engine.event_trace(), &slo_cfg);

    let status = if report.ok() { "ok" } else { "VIOLATED" };
    println!(
        "seed={chaos_seed} scenario={:<10} {status}  dropped_ttis={} detections={} max_det={:.1}us nines={:.2}",
        scenario.name,
        report.dropped_ttis,
        report.detections,
        report.max_detection_latency.0 as f64 / 1e3,
        slo.fleet.nines,
    );
    if !report.ok() {
        eprintln!(
            "FAILING SEED: {chaos_seed} (deployment seed {})",
            d.cfg.seed
        );
        eprintln!("  reproduce: CHAOS_SEEDS is irrelevant; this pair is fully determined");
        eprintln!("  schedule: {}", scenario.describe());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        for (at, what) in &runner.log {
            eprintln!("  applied @{:.3}ms: {what}", at.0 as f64 / 1e6);
        }
        dump_failure_trace(&d, scenario, chaos_seed);
    }
    RunResult {
        ok: report.ok(),
        dropped_ttis: report.dropped_ttis,
        max_detection_us: report.max_detection_latency.0 as f64 / 1e3,
        nines: slo.fleet.nines,
        worst_cell_dropped_tti_p99: slo.fleet.worst_cell_dropped_tti_p99,
        mttr_ms: slo.fleet.mttr.map_or(0.0, |m| m.0 as f64 / 1e6),
    }
}

/// Write the failing run's Chrome trace into `$BENCH_JSON_DIR`.
fn dump_failure_trace(d: &slingshot::Deployment, scenario: &Scenario, seed: u64) {
    let dir = std::env::var_os("BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = dir.join(format!("chaos_fail_{}_{seed}.trace.json", scenario.name));
    let names: Vec<String> = d.engine.node_names().to_vec();
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            if let Err(e) = d.engine.event_trace().write_chrome_trace(&mut f, &names) {
                eprintln!("  could not write {}: {e}", path.display());
            } else {
                eprintln!("  trace dumped: {}", path.display());
            }
        }
        Err(e) => eprintln!("  could not create {}: {e}", path.display()),
    }
}

/// Replay a seed's randomized run and require a byte-identical trace.
fn replay_is_identical(seed: u64, scenario: &Scenario) -> bool {
    let run = || {
        let mut d = chaos_deployment(seed);
        let mut runner = ChaosRunner::new(scenario);
        runner.run(&mut d, scenario.horizon_slots);
        d.engine.event_trace().to_bytes()
    };
    let first = run();
    let second = run();
    first == second
}

fn seed_count() -> u64 {
    let mut from_env = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--seeds" {
            from_env = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        }
    }
    from_env.unwrap_or(16).max(1)
}

fn main() {
    let seeds = seed_count();
    banner(
        &format!("Chaos soak: {seeds} seeds x (4 fixed + 2 pool + 1 random) scenarios"),
        "invariants from paper sections 5.2 (detection), 6.1 (dropped TTIs), 4.3/4.4 (exactly-one-PHY, re-pairing + pool accounting)",
    );

    let dist = ChaosDistribution::default();
    let fixed = fixed_scenarios();
    let pool = pool_scenarios();
    let mut runs = 0u64;
    let mut failures = 0u64;
    let mut replay_mismatches = 0u64;
    let mut worst_detection_us = 0f64;
    let mut total_dropped = 0u64;
    // Per-seed availability summary: the worst run of each seed, as
    // (seed, value) series in the JSON report.
    let mut seed_min_nines: Vec<(f64, f64)> = Vec::new();
    let mut seed_worst_p99: Vec<(f64, f64)> = Vec::new();
    let mut seed_max_mttr_ms: Vec<(f64, f64)> = Vec::new();

    for seed in 0..seeds {
        let mut min_nines = f64::INFINITY;
        let mut worst_p99 = 0u64;
        let mut max_mttr_ms = 0f64;
        let mut tally = |r: &RunResult,
                         runs: &mut u64,
                         failures: &mut u64,
                         total_dropped: &mut u64,
                         worst_detection_us: &mut f64| {
            *runs += 1;
            *failures += u64::from(!r.ok);
            *total_dropped += r.dropped_ttis;
            *worst_detection_us = worst_detection_us.max(r.max_detection_us);
            min_nines = min_nines.min(r.nines);
            worst_p99 = worst_p99.max(r.worst_cell_dropped_tti_p99);
            max_mttr_ms = max_mttr_ms.max(r.mttr_ms);
        };
        for (idx, scenario) in fixed.iter().enumerate() {
            let r = run_one(1000 * seed + idx as u64, scenario, seed);
            tally(
                &r,
                &mut runs,
                &mut failures,
                &mut total_dropped,
                &mut worst_detection_us,
            );
        }
        for (idx, scenario) in pool.iter().enumerate() {
            let r = run_one_pool(2000 * seed + idx as u64, scenario, seed);
            tally(
                &r,
                &mut runs,
                &mut failures,
                &mut total_dropped,
                &mut worst_detection_us,
            );
        }
        let random = dist.sample(seed);
        let r = run_one(seed, &random, seed);
        tally(
            &r,
            &mut runs,
            &mut failures,
            &mut total_dropped,
            &mut worst_detection_us,
        );
        seed_min_nines.push((seed as f64, min_nines));
        seed_worst_p99.push((seed as f64, worst_p99 as f64));
        seed_max_mttr_ms.push((seed as f64, max_mttr_ms));
    }

    // Determinism spot check: the first two seeds' randomized runs must
    // replay byte-identically (the property that makes every failing
    // seed above reproducible).
    for seed in 0..seeds.min(2) {
        let scenario = dist.sample(seed);
        if replay_is_identical(seed, &scenario) {
            println!("seed={seed} replay: byte-identical");
        } else {
            replay_mismatches += 1;
            eprintln!("seed={seed} replay DIVERGED: {}", scenario.describe());
        }
    }

    println!(
        "\n{runs} runs, {failures} violations, {replay_mismatches} replay mismatches, \
         worst detection {worst_detection_us:.1} us, {total_dropped} dropped TTIs total"
    );

    let mut report = BenchReport::new(
        "chaos_soak",
        "Chaos soak: randomized + scheduled fault injection",
        "sections 5.2, 6.1, 4.3, 4.4",
    );
    report.scalar("seeds", seeds as f64);
    report.scalar("runs", runs as f64);
    report.scalar("violations", failures as f64);
    report.scalar("replay_mismatches", replay_mismatches as f64);
    report.scalar("worst_detection_us", worst_detection_us);
    report.scalar("total_dropped_ttis", total_dropped as f64);
    report.scalar(
        "min_seed_nines",
        seed_min_nines
            .iter()
            .map(|p| p.1)
            .fold(f64::INFINITY, f64::min),
    );
    report.series("per_seed_min_nines", seed_min_nines);
    report.series("per_seed_worst_cell_dropped_tti_p99", seed_worst_p99);
    report.series("per_seed_max_mttr_ms", seed_max_mttr_ms);
    report.write();

    if failures > 0 || replay_mismatches > 0 {
        std::process::exit(1);
    }
}
