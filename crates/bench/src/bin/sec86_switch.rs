//! §8.6 — switch microbenchmarks: (a) ASIC resource usage of the
//! Slingshot data plane at the 256-RU / 256-PHY scale; (b) the maximum
//! inter-packet gap of a healthy PHY's downlink stream, which sets the
//! failure-detector timeout (paper: 393 µs measured → 450 µs chosen).

use slingshot::FhMbox;
use slingshot_bench::{banner, figure_deployment, ue};
use slingshot_netsim::MacAddr;
use slingshot_sim::Nanos;
use slingshot_switch::{estimate, PktGenConfig, ResourceBudget};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    banner(
        "§8.6: switch resource usage and inter-packet gap",
        "crossbar 5.2% · ALU 10.4% · gateway 14.1% · SRAM 5.3% · hash 9.5%; max gap 393 µs",
    );

    // (a) Resource estimate at 256 RUs / 256 PHYs.
    let usage = estimate(&FhMbox::manifest(256, 256), &ResourceBudget::default());
    println!("resource usage at 256 RUs / 256 PHYs (fraction of one pipeline):");
    println!(
        "  crossbar : {:>5.1}%   (paper:  5.2%)",
        usage.crossbar * 100.0
    );
    println!("  ALU      : {:>5.1}%   (paper: 10.4%)", usage.alu * 100.0);
    println!(
        "  gateway  : {:>5.1}%   (paper: 14.1%)",
        usage.gateway * 100.0
    );
    println!("  SRAM     : {:>5.1}%   (paper:  5.3%)", usage.sram * 100.0);
    println!(
        "  hash bits: {:>5.1}%   (paper:  9.5%)",
        usage.hash_bits * 100.0
    );
    assert!(usage.fits());
    // Scaling: more RUs/PHYs mostly grow SRAM (the paper's note) —
    // visible once entry counts exceed the hash-way block floor.
    let big = estimate(&FhMbox::manifest(16384, 16384), &ResourceBudget::default());
    println!(
        "  at 256 RUs: SRAM {:.1}% → hypothetical 16k RUs: {:.1}% (only SRAM grows; \
         crossbar {:.1}%, ALU {:.1}% unchanged)",
        usage.sram * 100.0,
        big.sram * 100.0,
        big.crossbar * 100.0,
        big.alu * 100.0
    );

    // (b) Inter-packet gap of a healthy PHY's downlink stream, idle and
    // busy, measured by timestamping at the switch — here via the
    // deployment's link counters + a capture of arrival times.
    for (label, dl_bps, seed) in [
        ("idle", 0u64, 861u64),
        ("busy (40 Mbps DL)", 40_000_000, 862),
    ] {
        let mut d = figure_deployment(seed, vec![ue("ue", 100, 22.0)]);
        if dl_bps > 0 {
            d.add_flow(
                0,
                100,
                Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
                Box::new(UdpCbrSource::new(dl_bps, 1200, Nanos::ZERO)),
            );
        }
        // The middlebox timestamps every downlink packet per PHY —
        // the same measurement the paper takes by mirroring
        // timestamped packets from the switch (§8.6).
        d.engine.run_until(Nanos::from_secs(3));
        let sw = d.engine.node::<slingshot::SwitchNode>(d.switch).unwrap();
        let max_gap = sw.mbox.max_dl_gap(slingshot::PRIMARY_PHY_ID);
        let stats = d.engine.link_stats(d.primary_phy, d.switch).unwrap();
        println!(
            "{label}: {} downlink packets in 3 s; max inter-packet gap {:.0} µs (paper: 393 µs max)",
            stats.sent,
            max_gap.as_micros()
        );
        assert!(
            max_gap < PktGenConfig::paper_default().period,
            "a healthy PHY must never exceed the detector timeout"
        );
    }
    let det = PktGenConfig::paper_default();
    println!(
        "detector: T={} µs, n={} ticks → precision {} µs, {:.0} generated pkts/s, worst-case detection {} µs",
        det.period.0 / 1000,
        det.ticks_per_period,
        det.precision().0 / 1000,
        det.packets_per_second(),
        det.worst_case_detection().0 / 1000
    );
    let _ = MacAddr::ZERO;
}
