//! Long-horizon availability report: a seeded crash process over
//! hundreds of thousands of Abstract-fidelity slots, swept across
//! cells x spare-pool-size, with every run distilled into service-level
//! numbers (nines, MTBF/MTTR, TTR and dropped-TTI distributions) by the
//! `sim::slo` analyzer.
//!
//! Two kinds of configuration run:
//!
//! - `c4_s2` — the canonical 4-cell / 2-spare triple-crash schedule
//!   (the same fault train as chaos_soak's `pool-3crash`) stretched to
//!   a long horizon, so the reported nines reflect steady-state service
//!   around a bounded, fully-understood disruption. This is the number
//!   the baseline floor gates.
//! - `proc_cN_sM` — a renewal crash process: `PhyCrash` faults aimed at
//!   a uniformly random cell's *current* active PHY, with inter-arrival
//!   gaps drawn by the same spacing rule `ChaosDistribution::sample`
//!   uses (`min_gap + U[0, min_gap)` slots), repeated until the horizon
//!   is exhausted. Over a long horizon this demands dozens-to-hundreds
//!   of grant -> scrub -> return pool cycles per run.
//!
//! Knobs (env):
//!   AVAIL_QUICK=1            short horizons + the two headline configs
//!                            (the CI smoke); full mode sweeps
//!                            cells {2,4} x spares {1,2}
//!   AVAIL_BASELINE=<path>    baseline file: `<key> <min_nines>` lines;
//!                            fail the run if a measured config's nines
//!                            drop below its floor (absolute, not 80%:
//!                            nines are already log-scaled)
//!
//! JSON artifacts in `$BENCH_JSON_DIR`: `availability_report.json`
//! (scalar summary per config) plus one full `SloReport` JSON per
//! configuration (`availability_<config>.json`). A truncated trace ring
//! (events evicted mid-run) is a hard failure: availability numbers
//! derived from a wrapped ring undercount outages.

use slingshot::{ChaosRunner, Deployment, DeploymentBuilder, DeploymentConfig};
use slingshot_bench::{banner, BenchReport};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::chaos::{ChaosDistribution, FaultKind, FaultTarget, Scenario};
use slingshot_sim::slo::{self, SloConfig};
use slingshot_sim::trace::TraceEventKind;
use slingshot_sim::{Nanos, SimRng};
use slingshot_transport::{UdpCbrSource, UdpSink};

/// A pooled multi-cell deployment at Abstract fidelity: the failover
/// machinery (heartbeats, detector, orchestrator) is identical to the
/// Sampled chaos testbed, but slots are cheap enough to run hundreds of
/// thousands of them per configuration.
fn pool_deployment(seed: u64, cells: usize, spares: usize) -> Deployment {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Abstract,
            rlc_ordered: false,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    };
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(cells)
        .spare_pool(spares);
    for i in 0..cells {
        b = b.ue(UeConfig::new(
            100 + i as u16,
            i as u8,
            &format!("ue{i}"),
            22.0,
        ));
    }
    let mut d = b.build();
    for i in 0..cells {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    d
}

/// A renewal crash process: faults at gaps of `min_gap + U[0, min_gap)`
/// slots (the `ChaosDistribution::sample` spacing rule), each aimed at
/// a random cell's active PHY, until `cooldown_slots` before the
/// horizon. The same seed always yields the same schedule.
fn crash_process(
    name: &str,
    dist: &ChaosDistribution,
    seed: u64,
    cells: usize,
    horizon: u64,
) -> Scenario {
    let mut rng = SimRng::new(seed ^ 0x00ca_5cad_e500_5107);
    let mut s = Scenario::new(name, horizon);
    let mut slot = dist.first_fault_slot + rng.below(dist.min_gap_slots);
    while slot + dist.cooldown_slots < horizon {
        let victim = rng.below(cells as u64) as u8;
        s = s.fault(slot, FaultTarget::ActivePhyOf(victim), FaultKind::PhyCrash);
        slot += dist.min_gap_slots + rng.below(dist.min_gap_slots);
    }
    s
}

/// The chaos suite's `pool-3crash` fault train on a long horizon.
fn triple_crash(horizon: u64) -> Scenario {
    Scenario::new("triple-crash", horizon)
        .fault(700, FaultTarget::ActivePhyOf(0), FaultKind::PhyCrash)
        .fault(760, FaultTarget::ActivePhyOf(1), FaultKind::PhyCrash)
        .fault(820, FaultTarget::ActivePhyOf(2), FaultKind::PhyCrash)
}

struct ConfigResult {
    key: String,
    nines: f64,
    report_json: String,
    truncated: bool,
}

/// Run one configuration end to end and reduce its trace to SLOs.
fn run_config(
    key: &str,
    seed: u64,
    cells: usize,
    spares: usize,
    scenario: &Scenario,
) -> ConfigResult {
    let mut d = pool_deployment(seed, cells, spares);
    // Keep only what the SLO analyzer consumes — per-slot chatter
    // (heartbeats, FAPI forwarding) would need a multi-hundred-MB ring
    // at this horizon — and size the ring for one UlSlotProcessed per
    // delivered UL TTI plus lifecycle noise around each crash.
    let trace = d.engine.event_trace_mut();
    trace.set_kind_filter(&[
        TraceEventKind::MapFlip,
        TraceEventKind::UlSlotProcessed,
        TraceEventKind::DetectorSaturated,
        TraceEventKind::SpareRequested,
        TraceEventKind::SpareGranted,
        TraceEventKind::SpareReturned,
        TraceEventKind::StandbyRepaired,
    ]);
    let ul_ttis = scenario.horizon_slots / 5 * cells as u64;
    trace.set_capacity((ul_ttis + 65_536) as usize);

    let mut runner = ChaosRunner::new(scenario);
    runner.run(&mut d, scenario.horizon_slots);

    let slo_cfg = SloConfig {
        horizon_slots: scenario.horizon_slots,
        initial_active: d
            .cells
            .iter()
            .map(|c| (c.ru_id as u64, c.primary_phy_id as u64))
            .collect(),
        ..SloConfig::default()
    };
    let report = slo::analyze(d.engine.event_trace(), &slo_cfg);

    println!(
        "--- {key}: {} cells, {} spares, {} crashes, {} slots ---",
        cells,
        spares,
        scenario.faults.len(),
        scenario.horizon_slots
    );
    println!("{}", report.to_text());

    ConfigResult {
        key: key.to_string(),
        nines: report.fleet.nines,
        report_json: report.to_json(),
        truncated: report.truncated,
    }
}

fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read AVAIL_BASELINE {path}: {e}"));
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("baseline key").to_string();
            let v: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline line: {l:?}"));
            (key, v)
        })
        .collect()
}

fn write_slo_json(key: &str, json: &str) {
    let dir = std::env::var_os("BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = dir.join(format!("availability_{key}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("could not write {}: {e}", path.display());
    }
}

fn main() {
    let quick = std::env::var("AVAIL_QUICK").is_ok_and(|v| v != "0")
        || std::env::args().any(|a| a == "--quick");
    // Full mode: ~100 s of simulated air time per configuration. Quick
    // mode keeps the same structure at an eighth of the horizon so the
    // CI gate finishes in seconds.
    let horizon: u64 = if quick { 24_000 } else { 200_000 };
    banner(
        &format!(
            "Availability report: {horizon}-slot horizon, crash process over cells x spares{}",
            if quick { " (quick)" } else { "" }
        ),
        "sections 6.1 (dropped TTIs), 4.4 (spare provisioning); long-horizon SLO view",
    );

    // Inter-arrival spacing for the renewal process: minutes-scale MTBF
    // would make crashes vanishingly rare at this horizon, so gaps are
    // seconds-scale — every run exercises many full pool cycles while
    // staying clear of the ~40-slot scrub turnaround.
    let dist = ChaosDistribution {
        first_fault_slot: 1_000,
        last_fault_slot: horizon,
        min_gap_slots: 4_000,
        cooldown_slots: 1_000,
        ..ChaosDistribution::default()
    };

    let sweep: &[(usize, usize)] = if quick {
        &[(4, 2)]
    } else {
        &[(2, 1), (2, 2), (4, 1), (4, 2)]
    };

    let mut results: Vec<ConfigResult> = Vec::new();

    // The gated headline config: pool-3crash on 4 cells / 2 spares.
    results.push(run_config("c4_s2", 42, 4, 2, &triple_crash(horizon)));

    for &(cells, spares) in sweep {
        let key = format!("proc_c{cells}_s{spares}");
        let scenario = crash_process(&key, &dist, 7, cells, horizon);
        results.push(run_config(&key, 42, cells, spares, &scenario));
    }

    let mut report = BenchReport::new(
        "availability_report",
        "Long-horizon availability / SLO sweep",
        "sections 6.1, 4.4",
    );
    report.scalar("horizon_slots", horizon as f64);
    let mut truncated_any = false;
    for r in &results {
        report.scalar(&format!("{}_nines", r.key), r.nines);
        write_slo_json(&r.key, &r.report_json);
        truncated_any |= r.truncated;
    }
    report.write();

    let mut failed = truncated_any;
    if truncated_any {
        eprintln!("FAIL: trace ring wrapped mid-run; availability numbers are untrustworthy");
    }
    if let Ok(path) = std::env::var("AVAIL_BASELINE") {
        for (key, floor) in load_baseline(&path) {
            match results.iter().find(|r| format!("{}_nines", r.key) == key) {
                Some(r) if r.nines < floor => {
                    eprintln!(
                        "REGRESSION: {key} = {:.2} nines, below floor {floor:.2}",
                        r.nines
                    );
                    failed = true;
                }
                Some(r) => println!("# baseline {key}: {:.2} vs floor {floor:.2} ok", r.nines),
                None => println!("# baseline {key}: not measured, skipped"),
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
