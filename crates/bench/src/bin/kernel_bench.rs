//! DSP kernel throughput harness: per-kernel ops/sec for the hot
//! baseband primitives (CRC, scrambling, LDPC encode/decode,
//! modulate/demap), measured standalone so a kernel regression is
//! visible before it washes out in end-to-end slot throughput.
//!
//! Unlike the Criterion micro-benchmarks (`cargo bench --bench dsp`),
//! this binary is cheap enough for CI: quick mode runs in well under a
//! second and compares against conservative floors, the same contract
//! as `slots_per_sec`.
//!
//! Knobs (env):
//!   KERNEL_QUICK=1           ~10 ms per kernel instead of ~100 ms
//!   KERNEL_BACKEND=<b>       kernel backend: scalar | avx2 | neon |
//!                            detect (default: best available)
//!   KERNEL_BASELINE=<path>   baseline file: `<key> <ops_per_sec>`
//!                            lines; fail the run if any measured
//!                            kernel drops below 80% of its floor.
//!                            A key may carry a `@<backend>` suffix;
//!                            suffixed floors only apply when that
//!                            backend is the one running and take
//!                            precedence over the bare key.
//!
//! JSON artifact: `kernel_bench.json` in `$BENCH_JSON_DIR`, scalars
//! keyed `<kernel>_ops_per_sec` plus `<kernel>_us` per-op times; the
//! `labels.backend` field records which kernel backend ran.

use std::hint::black_box;
use std::time::{Duration, Instant};

use slingshot_bench::{banner, BenchReport};
use slingshot_phy_dsp::crc::{attach_crc24a, crc16};
use slingshot_phy_dsp::iq::SC_PER_PRB;
use slingshot_phy_dsp::modulation::modulate_packed_into;
use slingshot_phy_dsp::scramble::{cached_sequence, descramble_llrs_packed, scramble_packed};
use slingshot_phy_dsp::{BitBuf, Cplx, DspKernels, LdpcCode, LdpcScratch, Modulation};
use slingshot_sim::SimRng;

/// Time one kernel: repeat `op` until `budget` elapses (at least 3
/// runs), return (ops/sec, µs/op).
fn measure<F: FnMut()>(budget: Duration, mut op: F) -> (f64, f64) {
    // Warm up once so lazy tables (Gold cache, mod LUTs) are built.
    op();
    let started = Instant::now();
    let mut runs = 0u64;
    while runs < 3 || started.elapsed() < budget {
        op();
        runs += 1;
    }
    let secs = started.elapsed().as_secs_f64();
    (runs as f64 / secs, secs / runs as f64 * 1e6)
}

fn random_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_bitbuf(bits: usize, seed: u64) -> BitBuf {
    let mut rng = SimRng::new(seed);
    let mut buf = BitBuf::with_capacity(bits);
    for _ in 0..bits {
        buf.push((rng.next_u64() & 1) as u8);
    }
    buf
}

fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read KERNEL_BASELINE {path}: {e}"));
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("baseline key").to_string();
            let v: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline line: {l:?}"));
            (key, v)
        })
        .collect()
}

fn main() {
    let quick = std::env::var("KERNEL_QUICK").is_ok_and(|v| v != "0");
    let budget = if quick {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(100)
    };

    // Honors KERNEL_BACKEND; best available backend otherwise.
    let kernels = DspKernels::from_env();

    banner(
        "DSP kernel throughput: ops/sec per baseband primitive",
        "word-packed kernel engineering (DESIGN.md §5e, §5h)",
    );
    println!(
        "# {} mode, ≥{} ms per kernel, backend={}\n",
        if quick { "quick" } else { "full" },
        budget.as_millis(),
        kernels.name(),
    );

    let mut report = BenchReport::new(
        "kernel_bench",
        "DSP kernel throughput (ops per second)",
        "DESIGN.md §5e, §5h",
    );
    report.label("backend", kernels.name());
    let mut measured: Vec<(String, f64)> = Vec::new();

    println!("{:<28} {:>14} {:>12}", "kernel", "ops/sec", "µs/op");
    let mut record = |key: &str, (ops, us): (f64, f64), report: &mut BenchReport| {
        println!("{key:<28} {ops:>14.0} {us:>12.2}");
        report.scalar(&format!("{key}_ops_per_sec"), ops);
        report.scalar(&format!("{key}_us"), us);
        measured.push((key.to_string(), ops));
    };

    // CRC over an MTU-sized payload.
    let payload = random_payload(1500, 1);
    let r = measure(budget, || {
        black_box(attach_crc24a(black_box(&payload)));
    });
    record("crc24a_1500B", r, &mut report);
    let r = measure(budget, || {
        black_box(crc16(black_box(&payload)));
    });
    record("crc16_1500B", r, &mut report);

    // Word-packed (de)scrambling of an 8 kbit block.
    let seq = cached_sequence(0xC0FFEE, 8192);
    let mut bits = random_bitbuf(8192, 2);
    let r = measure(budget, || {
        scramble_packed(black_box(&mut bits), &seq, 0);
    });
    record("scramble_8k", r, &mut report);
    let mut llrs: Vec<f32> = {
        let mut rng = SimRng::new(3);
        (0..8192).map(|_| rng.gaussian() as f32).collect()
    };
    let r = measure(budget, || {
        descramble_llrs_packed(black_box(&mut llrs), &seq, 0);
    });
    record("descramble_8k", r, &mut report);

    // LDPC at the transport-block segment size.
    let code = LdpcCode::new(1024);
    let info = random_bitbuf(1024, 4);
    let mut cw = BitBuf::with_capacity(code.n());
    let r = measure(budget, || {
        cw.clear();
        code.encode_packed(black_box(&info), &mut cw);
        black_box(&cw);
    });
    record("ldpc_encode_k1024", r, &mut report);
    let channel_llrs: Vec<f32> = {
        // ~4 dB BPSK LLRs so the decoder does a realistic number of
        // min-sum iterations rather than terminating on iteration 0.
        let mut rng = SimRng::new(5);
        let sigma2 = 10f32.powf(-0.4);
        (0..code.n())
            .map(|i| {
                let x = if cw.get(i) == 0 { 1.0 } else { -1.0 };
                let y = x + sigma2.sqrt() * rng.gaussian() as f32;
                2.0 * y / sigma2
            })
            .collect()
    };
    let mut scratch = LdpcScratch::default();
    let r = measure(budget, || {
        black_box(kernels.ldpc_decode_into(&code, black_box(&channel_llrs), 8, &mut scratch));
    });
    record("ldpc_decode_k1024", r, &mut report);

    // Modulation round trip, 1k symbols of 64-QAM.
    let mod_bits = random_bitbuf(6144, 6);
    let mut syms: Vec<Cplx> = Vec::new();
    let r = measure(budget, || {
        syms.clear();
        modulate_packed_into(black_box(&mod_bits), Modulation::Qam64, &mut syms);
        black_box(&syms);
    });
    record("modulate_1k_qam64", r, &mut report);
    let mut demod: Vec<f32> = Vec::new();
    let r = measure(budget, || {
        kernels.demodulate_llr_into(black_box(&syms), Modulation::Qam64, 0.05, &mut demod);
        black_box(&demod);
    });
    record("demap_1k_qam64", r, &mut report);

    // BFP fronthaul compression, one PRB each way.
    let prb_samples: [Cplx; SC_PER_PRB] =
        std::array::from_fn(|i| Cplx::new((i as f32 * 0.4).cos(), (i as f32 * 0.4).sin()));
    let r = measure(budget, || {
        black_box(kernels.bfp_compress(black_box(&prb_samples)));
    });
    record("bfp_compress_prb", r, &mut report);
    let prb = kernels.bfp_compress(&prb_samples);
    let r = measure(budget, || {
        black_box(kernels.bfp_decompress(black_box(&prb)));
    });
    record("bfp_decompress_prb", r, &mut report);

    report.write();

    if let Ok(path) = std::env::var("KERNEL_BASELINE") {
        let backend = kernels.name();
        let baseline = load_baseline(&path);
        let mut regressed = false;
        for (raw_key, base) in &baseline {
            // `<kernel>@<backend>` floors apply only when that backend
            // ran; a bare key is a floor for every backend unless a
            // backend-specific floor shadows it.
            let (key, floor_backend) = match raw_key.split_once('@') {
                Some((k, b)) => (k, Some(b)),
                None => (raw_key.as_str(), None),
            };
            match floor_backend {
                Some(b) if b != backend => {
                    println!("# baseline {raw_key}: backend {b} not running, skipped");
                    continue;
                }
                None if baseline
                    .iter()
                    .any(|(other, _)| *other == format!("{key}@{backend}")) =>
                {
                    println!("# baseline {raw_key}: shadowed by {key}@{backend}");
                    continue;
                }
                _ => {}
            }
            match measured.iter().find(|(k, _)| k == key) {
                Some((_, got)) if *got < 0.8 * base => {
                    eprintln!(
                        "REGRESSION: {key}@{backend} = {got:.0} ops/sec, below 80% of floor {base:.0}"
                    );
                    regressed = true;
                }
                Some((_, got)) => println!("# baseline {raw_key}: {got:.0} vs floor {base:.0} ok"),
                None => println!("# baseline {raw_key}: not measured, skipped"),
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
