//! Run every figure/table harness in sequence (the `cargo bench`
//! companion for the end-to-end experiments). Each harness is also an
//! individual binary; this runner simply chains them so one command
//! regenerates the whole evaluation.

use std::process::Command;

const BINS: &[&str] = &[
    "fig3_vm_migration",
    "fig8_video",
    "fig9_ping",
    "fig10_throughput",
    "fig11_upgrade",
    "fig12_orion_latency",
    "table2_stress",
    "sec5_software_mbox",
    "sec82_dropped_ttis",
    "sec85_overhead",
    "sec86_switch",
    "ablation_detector",
    "ablation_standby",
    "ablation_migration_path",
    "ablation_state_transfer",
    "ablation_transport",
    "ext_massive_mimo",
];

fn main() {
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(*bin);
        }
    }
    println!("\n################ summary ################");
    if failures.is_empty() {
        println!("all {} experiment harnesses completed", BINS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
