//! Extension — massive-MIMO soft state (paper §10): massive-MIMO PHYs
//! keep per-UE precoding/equalization matrices that take tens to
//! hundreds of slots to rebuild. The paper argues this is still *soft*
//! state — discardable without breaking correctness, but with a larger
//! (and longer) UE performance dip after migration than the
//! small-antenna configurations of §8. This harness sweeps the
//! reconvergence horizon and measures the post-migration dip.

use slingshot::DeploymentBuilder;
use slingshot_bench::{banner, stress_cell, ue};
use slingshot_ran::UeNode;
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn run(reconverge_slots: u64, seed: u64) -> (f64, f64, u64) {
    let mut cell = stress_cell();
    cell.mimo_reconverge_slots = reconverge_slots;
    cell.mimo_cold_penalty_db = 8.0;
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(cell)
        .ue(ue("mimo-ue", 100, 17.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(30_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    let migrate_at = Nanos::from_secs(2);
    d.planned_migration_at(migrate_at);
    d.engine.run_until(Nanos::from_secs(4));
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let mbps = sink.bins.mbps();
    let pre: f64 = mbps[100..195].iter().sum::<f64>() / 95.0;
    // Dip: worst 50 ms (5-bin) moving average in the 500 ms after the
    // migration.
    let post = &mbps[200..250.min(mbps.len())];
    let mut worst = f64::MAX;
    for w in post.windows(5) {
        worst = worst.min(w.iter().sum::<f64>() / 5.0);
    }
    // Recovery time: first 50 ms window back at ≥ 85% of pre.
    let rec = post
        .windows(5)
        .position(|w| w.iter().sum::<f64>() / 5.0 >= 0.85 * pre)
        .map(|i| i as u64 * 10)
        .unwrap_or(9999);
    let rlf = d.engine.node::<UeNode>(d.ues[0]).unwrap().rlf_count;
    assert_eq!(rlf, 0, "migration must not trigger a radio link failure");
    (pre, worst, rec)
}

fn main() {
    banner(
        "Extension: massive-MIMO soft state — reconvergence after migration",
        "§10: inter-slot state lasting 10s–100s of slots is still discardable soft state",
    );
    println!(
        "{:>20} {:>12} {:>16} {:>14}",
        "reconverge (slots)", "pre (Mbps)", "worst 50ms (Mbps)", "recovery (ms)"
    );
    for (slots, seed) in [(0u64, 41u64), (40, 42), (200, 43), (600, 44)] {
        let (pre, worst, rec) = run(slots, seed);
        println!("{slots:>20} {pre:>12.1} {worst:>16.1} {rec:>14}");
    }
    println!(
        "\nlarger MIMO state horizons deepen and lengthen the post-migration dip\n\
         (link adaptation + HARQ ride through it; connectivity is never lost),\n\
         matching §10's expectation: still soft state, larger UE impact."
    );
}
