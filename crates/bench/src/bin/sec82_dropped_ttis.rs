//! §8.2 — dropped TTIs during PHY failover: Slingshot drops at most
//! three TTIs (two orders of magnitude better than VM migration's
//! hundreds of milliseconds), and detection fires within the 450 µs
//! switch timeout plus one tick.

use slingshot::OrionL2Node;
use slingshot_baseline::{migrate_batch, VmMigrationConfig};
use slingshot_bench::{banner, figure_deployment, ue, BenchReport};
use slingshot_ran::{PhyNode, UeNode};
use slingshot_sim::{Nanos, Sampler, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn main() {
    banner(
        "§8.2: dropped TTIs and detection latency across failovers",
        "≤ 3 dropped TTIs; detection ≤ 450 µs + 9 µs tick after the heartbeat gap",
    );
    let mut report = BenchReport::new(
        "sec82_dropped_ttis",
        "§8.2: dropped TTIs and detection latency across failovers",
        "≤ 3 dropped TTIs; detection ≤ 450 µs + 9 µs tick after the heartbeat gap",
    );
    let mut missing_s = Sampler::new();
    let mut detect_s = Sampler::new();
    let mut detect_series = Vec::new();
    let mut missing_series = Vec::new();
    println!(
        "{:>5} {:>12} {:>16} {:>10}",
        "run", "kill offset", "detect µs", "lost TTIs"
    );
    for i in 0..10u64 {
        let mut d = figure_deployment(820 + i, vec![ue("ue", 100, 22.0)]);
        d.add_flow(
            0,
            100,
            Box::new(UdpCbrSource::new(8_000_000, 1000, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
        // Kill at a varying offset within the slot.
        let kill_at = Nanos(Nanos::from_millis(700).0 + i * 53_000);
        d.kill_primary_at(kill_at);
        d.engine.run_until(Nanos::from_millis(1500));

        let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
        let detect = (orion.last_failure_notified.unwrap() - kill_at).0;
        detect_s.record(detect);

        let mut slots: Vec<u64> = Vec::new();
        for phy in [d.primary_phy, d.secondary_phy] {
            slots.extend(&d.engine.node::<PhyNode>(phy).unwrap().processed_ul_slots);
        }
        slots.sort_unstable();
        slots.dedup();
        let expected = (slots.last().unwrap() - slots.first().unwrap()) / 5 + 1;
        let missing = expected as usize - slots.len();
        missing_s.record(missing as u64);
        detect_series.push((i as f64, detect as f64 / 1e3));
        missing_series.push((i as f64, missing as f64));
        println!(
            "{:>5} {:>10}µs {:>16.1} {:>10}",
            i,
            (kill_at.0 % SLOT_DURATION.0) / 1000,
            detect as f64 / 1e3,
            missing
        );
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        assert_eq!(ue_node.rlf_count, 0);
    }
    println!(
        "\nlost uplink TTIs: max={} (paper: ≤ 3)",
        missing_s.max().unwrap()
    );
    println!(
        "detection latency µs: min={:.0} median={:.0} max={:.0}",
        detect_s.min().unwrap() as f64 / 1e3,
        detect_s.median().unwrap() as f64 / 1e3,
        detect_s.max().unwrap() as f64 / 1e3
    );
    assert!(missing_s.max().unwrap() <= 3);

    // Contrast: VM migration drops several hundred ms of TTIs.
    let outcomes = migrate_batch(&VmMigrationConfig::flexran_rdma(), 80, 82);
    let mut pauses = Sampler::new();
    for o in outcomes {
        pauses.record(o.pause.0);
    }
    let median_ttis = pauses.median().unwrap() / SLOT_DURATION.0;
    println!(
        "\nVM migration (Fig. 3 model) would drop ≈{median_ttis} TTIs at its median pause — \
         {}x worse",
        median_ttis / 3
    );
    report.series("detect_us_by_run", detect_series);
    report.series("lost_ttis_by_run", missing_series);
    report.scalar("max_lost_ttis", missing_s.max().unwrap() as f64);
    report.scalar("detect_us_min", detect_s.min().unwrap() as f64 / 1e3);
    report.scalar("detect_us_median", detect_s.median().unwrap() as f64 / 1e3);
    report.scalar("detect_us_max", detect_s.max().unwrap() as f64 / 1e3);
    report.scalar("vm_migration_median_ttis", median_ttis as f64);
    report.write();
}
