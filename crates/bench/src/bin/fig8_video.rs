//! Fig. 8 — downlink video-conferencing bitrate across a PHY failure
//! in the third second: (1) no failure, (2) failure without Slingshot
//! (full backup vRAN; UE re-attaches after ~6.2 s), (3) failure with
//! Slingshot (steady bitrate).

use slingshot_baseline::BaselineDeployment;
use slingshot_bench::{banner, figure_cell, figure_deployment, print_series, ue};
use slingshot_ran::{AppServerNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{VideoReceiver, VideoSender};

const DURATION: Nanos = Nanos::from_secs(12);
const FAIL_AT: Nanos = Nanos::from_millis(3000);
const BITRATE: u64 = 500_000;

fn video_flow() -> (Box<VideoSender>, Box<VideoReceiver>) {
    (
        Box::new(VideoSender::new(BITRATE, Nanos::ZERO)),
        Box::new(VideoReceiver::new(Nanos::ZERO)),
    )
}

fn kbps_of(d: &slingshot::Deployment) -> Vec<f64> {
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    let rx: &VideoReceiver = ue.app(0).unwrap();
    rx.kbps_series()
}

fn main() {
    banner(
        "Fig. 8: video bitrate across PHY failure at t≈3 s",
        "no failure: steady ~500 kbps | w/o Slingshot: 0 for ~6.2 s | with Slingshot: steady",
    );

    // (1) No failure.
    {
        let mut d = figure_deployment(81, vec![ue("ue", 100, 22.0)]);
        let (tx, rx) = video_flow();
        d.add_flow(0, 100, rx, tx); // sender at server, receiver at UE
        d.engine.run_until(DURATION);
        print_series(
            "no-failure (kbps)",
            Nanos::ZERO,
            Nanos::from_millis(1000),
            &kbps_of(&d),
        );
    }

    // (2) Failure without Slingshot: hot backup vRAN, RU rerouted, but
    // the UE must fully re-attach.
    {
        let mut d = BaselineDeployment::build(82, figure_cell(), vec![ue("ue", 100, 22.0)]);
        let (tx, rx) = video_flow();
        d.engine.node_mut::<UeNode>(d.ues[0]).unwrap().add_app(rx);
        d.engine
            .node_mut::<AppServerNode>(d.server)
            .unwrap()
            .add_app(100, tx);
        d.kill_primary_at(FAIL_AT);
        d.engine.run_until(DURATION);
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        let rx: &VideoReceiver = ue_node.app(0).unwrap();
        print_series(
            "failure-without-slingshot (kbps)",
            Nanos::ZERO,
            Nanos::from_millis(1000),
            &rx.kbps_series(),
        );
        let reattach = ue_node
            .reattach_times
            .first()
            .map(|t| (*t - FAIL_AT).as_secs());
        println!("# UE outage: {:?} s (paper: 6.2 s)", reattach);
    }

    // (3) Failure with Slingshot.
    {
        let mut d = figure_deployment(83, vec![ue("ue", 100, 22.0)]);
        let (tx, rx) = video_flow();
        d.add_flow(0, 100, rx, tx);
        d.kill_primary_at(FAIL_AT);
        d.engine.run_until(DURATION);
        let series = kbps_of(&d);
        print_series(
            "failure-with-slingshot (kbps)",
            Nanos::ZERO,
            Nanos::from_millis(1000),
            &series,
        );
        let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
        println!(
            "# UE RLF count with Slingshot: {} (expected 0)",
            ue_node.rlf_count
        );
        let around_failure = &series[2..6];
        println!("# bitrate around the failure second: {around_failure:?}");
    }
}
