//! §5 ablation — in-switch vs DPDK software fronthaul middlebox. The
//! paper reports the software variant adds ≈10 µs at the 99.999th
//! percentile of one-way fronthaul latency, eating ~10% of the sub-
//! 100 µs fronthaul budget (shrinking the serviceable radius), plus an
//! extra NIC hop and dedicated CPU cores.

use slingshot::{DeploymentBuilder, ForwardingModel};
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_sim::{Nanos, Sampler};
use slingshot_transport::{UdpCbrSource, UdpSink};

/// Measure the fronthaul one-way forwarding cost distribution by
/// driving the deployment and sampling per-frame switch latency from
/// the forwarding model directly (the pipeline or software cost is the
/// only difference between the two configurations).
fn run(model: ForwardingModel, seed: u64) -> Sampler {
    // Sample the forwarding-cost model over the same frame schedule a
    // busy fronthaul produces.
    let mut rng = slingshot_sim::SimRng::new(seed);
    let mut s = Sampler::new();
    for _ in 0..2_000_000 {
        let d = match model {
            ForwardingModel::InSwitch => slingshot_switch::PIPELINE_LATENCY,
            ForwardingModel::Software { base, tail_mean } => {
                base + Nanos(rng.exponential(tail_mean.0 as f64) as u64)
            }
        };
        s.record(d.0);
    }
    s
}

fn main() {
    banner(
        "§5 ablation: in-switch vs software fronthaul middlebox",
        "software adds ≈10 µs at p99.999 → ~10% of the 100 µs fronthaul budget",
    );
    let mut insw = run(ForwardingModel::InSwitch, 51);
    let mut sw = run(ForwardingModel::software_default(), 52);
    println!(
        "{:>22} {:>12} {:>12} {:>12}",
        "model", "median µs", "p99 µs", "p99.999 µs"
    );
    for (label, s) in [
        ("in-switch (Tofino)", &mut insw),
        ("software (DPDK)", &mut sw),
    ] {
        println!(
            "{label:>22} {:>12.2} {:>12.2} {:>12.2}",
            s.median().unwrap() as f64 / 1e3,
            s.percentile(99.0).unwrap() as f64 / 1e3,
            s.percentile(99.999).unwrap() as f64 / 1e3,
        );
    }
    let added = (sw.percentile(99.999).unwrap() - insw.percentile(99.999).unwrap()) as f64 / 1e3;
    println!("\nadded p99.999 one-way latency: {added:.1} µs (paper: ≈10 µs)");
    println!("fronthaul budget consumed: {:.0}% of 100 µs", added);

    // End-to-end check: the software middlebox still *works*, it just
    // costs latency — run a short traffic sanity pass on both.
    for (label, model, seed) in [
        ("in-switch", ForwardingModel::InSwitch, 53u64),
        ("software", ForwardingModel::software_default(), 54),
    ] {
        let mut d = DeploymentBuilder::new()
            .seed(seed)
            .cell(figure_cell())
            .forwarding(model)
            .ue(ue("ue", 100, 22.0))
            .build();
        d.add_flow(
            0,
            100,
            Box::new(UdpCbrSource::new(8_000_000, 1000, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
        d.engine.run_until(Nanos::from_millis(800));
        let sink: &UdpSink = d
            .engine
            .node::<slingshot_ran::AppServerNode>(d.server)
            .unwrap()
            .app(100, 0)
            .unwrap();
        println!("{label}: e2e uplink rx packets = {}", sink.total_rx);
    }
}
