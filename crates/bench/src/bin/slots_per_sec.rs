//! Slot-pipeline throughput harness: how many cell-slots per second of
//! wall clock the simulator sustains, swept over deployment size (1, 2,
//! 4, 8 cells) and DSP worker-pool size (1 vs N workers).
//!
//! Every run uses `Fidelity::Full` — real LDPC on every code block —
//! with one UL-heavy UE per cell, so the measurement is dominated by
//! the same baseband compute the worker pool parallelizes. For each
//! cell count the harness also proves the determinism contract: the
//! N-worker run's event trace must be byte-identical to the 1-worker
//! run's, or the binary exits non-zero.
//!
//! Knobs (env):
//!   SLOTS_CELLS=1,2,4,8    cell counts to sweep
//!   SLOTS_WORKERS=1,4      worker-pool sizes to sweep
//!   SLOTS_MS=200           simulated milliseconds per run
//!   SLOTS_PRBS=51          cell bandwidth in PRBs
//!   KERNEL_BACKEND=<b>     DSP kernel backend: scalar | avx2 | neon |
//!                          detect (default: best available)
//!   SLOTS_BASELINE=<path>  baseline file: `<key> <slots_per_sec>`
//!                          lines; fail the run if any measured config
//!                          drops below 80% of its baseline. A key may
//!                          carry a `@<backend>` suffix; suffixed
//!                          floors only apply when that backend runs
//!                          and take precedence over the bare key.
//!
//! JSON artifact: `slots_per_sec.json` in `$BENCH_JSON_DIR`, scalars
//! keyed `c{cells}_w{workers}` plus `speedup_c{cells}` ratios; the
//! `labels.backend` field records which kernel backend ran.

use std::time::Instant;

use slingshot::DeploymentBuilder;
use slingshot_bench::{banner, BenchReport};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::{KernelConfig, Nanos, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad {name}: {s:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
        .unwrap_or(default)
}

struct RunOutcome {
    slots_per_sec: f64,
    trace_bytes: Vec<u8>,
}

/// One measured run: `cells` cells, one UL-heavy UE each, `workers`
/// DSP workers, `sim_ms` of simulated time.
fn run_one(cells: usize, workers: usize, sim_ms: u64, prbs: u16) -> RunOutcome {
    let ues: Vec<UeConfig> = (0..cells)
        .map(|c| UeConfig::new(100 + c as u16, c as u8, &format!("ue-c{c}"), 22.0))
        .collect();
    let mut d = DeploymentBuilder::new()
        .seed(4242)
        .cell(CellConfig {
            num_prbs: prbs,
            fidelity: Fidelity::Full,
            ..CellConfig::default()
        })
        .cells(cells)
        .workers(workers)
        .ues(ues)
        .build();
    for i in 0..cells {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(12_000_000, 1200, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    let horizon = Nanos::from_millis(sim_ms);
    let started = Instant::now();
    d.engine.run_until(horizon);
    let wall = started.elapsed().as_secs_f64();
    let cell_slots = cells as u64 * (horizon.0 / SLOT_DURATION.0);
    RunOutcome {
        slots_per_sec: cell_slots as f64 / wall,
        trace_bytes: d.engine.event_trace().to_bytes(),
    }
}

/// Parse a baseline file of `<key> <slots_per_sec>` lines (`#` starts
/// a comment).
fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read SLOTS_BASELINE {path}: {e}"));
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("baseline key").to_string();
            let v: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline line: {l:?}"));
            (key, v)
        })
        .collect()
}

fn main() {
    let cells_sweep = env_usize_list("SLOTS_CELLS", &[1, 2, 4, 8]);
    let workers_sweep = env_usize_list("SLOTS_WORKERS", &[1, 4]);
    let sim_ms = env_u64("SLOTS_MS", 200);
    let prbs = env_u64("SLOTS_PRBS", 51) as u16;

    // The engine picks this up from KERNEL_BACKEND / auto-detection;
    // resolve it here too so the report can label the run.
    let backend = KernelConfig::from_env().backend.name();

    banner(
        "slot-pipeline throughput: cell-slots/sec over cells × workers",
        "deterministic parallel slot pipeline (DESIGN.md §5d, §5h)",
    );
    println!(
        "# Fidelity::Full, {prbs} PRBs, {sim_ms} ms simulated, one 12 Mbps UL UE per cell, \
         kernel backend {backend}\n"
    );

    let mut report = BenchReport::new(
        "slots_per_sec",
        "Slot-pipeline throughput (cell-slots per wall-clock second)",
        "DESIGN.md §5d, §5h",
    );
    report.label("backend", backend);
    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut determinism_ok = true;

    println!(
        "{:>6} {:>8} {:>14} {:>10}",
        "cells", "workers", "slots/sec", "speedup"
    );
    for &cells in &cells_sweep {
        let mut serial_rate = None;
        let mut serial_trace: Option<Vec<u8>> = None;
        for &workers in &workers_sweep {
            let out = run_one(cells, workers, sim_ms, prbs);
            let speedup = serial_rate
                .map(|s: f64| out.slots_per_sec / s)
                .unwrap_or(1.0);
            if workers == 1 {
                serial_rate = Some(out.slots_per_sec);
                serial_trace = Some(out.trace_bytes);
            } else if let Some(base) = &serial_trace {
                // The determinism contract: the pool must be invisible
                // to the event trace.
                if *base != out.trace_bytes {
                    eprintln!(
                        "DETERMINISM VIOLATION: cells={cells} workers={workers} trace \
                         differs from the single-worker run"
                    );
                    determinism_ok = false;
                }
            }
            let key = format!("c{cells}_w{workers}");
            println!(
                "{:>6} {:>8} {:>14.1} {:>9.2}x",
                cells, workers, out.slots_per_sec, speedup
            );
            report.scalar(&key, out.slots_per_sec);
            if workers != 1 && serial_rate.is_some() {
                report.scalar(&format!("speedup_c{cells}_w{workers}"), speedup);
            }
            measured.push((key, out.slots_per_sec));
        }
    }

    report.write();

    if !determinism_ok {
        std::process::exit(1);
    }

    if let Ok(path) = std::env::var("SLOTS_BASELINE") {
        let baseline = load_baseline(&path);
        let mut regressed = false;
        for (raw_key, base) in &baseline {
            // `<key>@<backend>` floors apply only when that backend is
            // running; a bare key covers every backend unless a
            // backend-specific floor shadows it.
            let (key, floor_backend) = match raw_key.split_once('@') {
                Some((k, b)) => (k, Some(b)),
                None => (raw_key.as_str(), None),
            };
            match floor_backend {
                Some(b) if b != backend => {
                    println!("# baseline {raw_key}: backend {b} not running, skipped");
                    continue;
                }
                None if baseline
                    .iter()
                    .any(|(other, _)| *other == format!("{key}@{backend}")) =>
                {
                    println!("# baseline {raw_key}: shadowed by {key}@{backend}");
                    continue;
                }
                _ => {}
            }
            match measured.iter().find(|(k, _)| k == key) {
                Some((_, got)) if *got < 0.8 * base => {
                    eprintln!(
                        "REGRESSION: {key}@{backend} = {got:.1} slots/sec, below 80% of \
                         baseline {base:.1}"
                    );
                    regressed = true;
                }
                Some((_, got)) => {
                    println!("# baseline {raw_key}: {got:.1} vs {base:.1} ok");
                }
                None => println!("# baseline {raw_key}: not measured in this sweep, skipped"),
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
