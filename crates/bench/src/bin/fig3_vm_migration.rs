//! Fig. 3 — CDF of VM pause time while live-migrating a FlexRAN-like
//! guest over TCP vs RDMA (80 runs each); the guest crashes in all runs.

use slingshot_baseline::{migrate_batch, VmMigrationConfig};
use slingshot_bench::banner;
use slingshot_sim::Sampler;

fn main() {
    banner(
        "Fig. 3: VM pause time while migrating FlexRAN in a VM",
        "median 244 ms (RDMA); FlexRAN crashes in all runs",
    );
    for (label, cfg, seed) in [
        ("TCP", VmMigrationConfig::flexran_tcp(), 31),
        ("RDMA", VmMigrationConfig::flexran_rdma(), 32),
    ] {
        let outcomes = migrate_batch(&cfg, 80, seed);
        let mut s = Sampler::new();
        let mut crashed = 0;
        for o in &outcomes {
            s.record(o.pause.0);
            crashed += o.guest_crashed as u32;
        }
        println!("\n--- {label} ({} runs) ---", outcomes.len());
        println!(
            "pause ms: median={:.1} p10={:.1} p90={:.1} max={:.1}",
            s.median().unwrap() as f64 / 1e6,
            s.percentile(10.0).unwrap() as f64 / 1e6,
            s.percentile(90.0).unwrap() as f64 / 1e6,
            s.max().unwrap() as f64 / 1e6,
        );
        println!("FlexRAN crashed in {crashed}/{} runs", outcomes.len());
        println!("# CDF (pause_ms\tfraction)");
        for (v, f) in s.cdf(20) {
            println!("{:.1}\t{:.3}", v as f64 / 1e6, f);
        }
    }
    println!("\nFor comparison: Slingshot migrates at a TTI boundary with at");
    println!("most 3 dropped TTIs (1.5 ms) — see sec82_dropped_ttis.");
}
