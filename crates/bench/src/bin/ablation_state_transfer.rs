//! Ablation — discarding vs (hypothetically) transferring HARQ soft
//! state at migration (§4.2, Table 2's premise). Slingshot discards the
//! primary's soft buffers; a state-transferring design would ship them
//! to the secondary. This harness measures what the discard actually
//! costs: the post-migration CRC failure bump, against the bytes a
//! transfer would have had to move within the sub-millisecond window.

use slingshot::DeploymentBuilder;
use slingshot_bench::{banner, figure_cell, ue};
use slingshot_ran::{PhyNode, RxProcessPool, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

struct Outcome {
    crc_failures_after: u64,
    decoded_after: u64,
    soft_state_bytes: usize,
    ue_rlf: u64,
}

/// Run a planned migration at t=800 ms; optionally "teleport" the
/// primary's soft state into the secondary at the boundary (the
/// hypothetical transfer, free of charge — an upper bound on its
/// benefit).
fn run(transfer: bool, seed: u64) -> Outcome {
    // A UE near threshold so HARQ is busy: plenty of in-flight soft
    // state to lose.
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(figure_cell())
        .ue(ue("edge-ue", 100, 16.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(12_000_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    let migrate_at = Nanos::from_millis(800);
    d.planned_migration_at(migrate_at);
    d.engine.run_until(migrate_at + Nanos::from_micros(1600));
    // Snapshot the soft state right around the boundary.
    let soft_state_bytes = d
        .engine
        .node::<PhyNode>(d.primary_phy)
        .unwrap()
        .soft_state_bytes(0);
    if transfer {
        let pool: Option<RxProcessPool> = d
            .engine
            .node_mut::<PhyNode>(d.primary_phy)
            .unwrap()
            .take_soft_state(0);
        if let Some(pool) = pool {
            d.engine
                .node_mut::<PhyNode>(d.secondary_phy)
                .unwrap()
                .install_soft_state(0, pool);
        }
    }
    let (f0, n0) = {
        let p = d.engine.node::<PhyNode>(d.secondary_phy).unwrap();
        (p.ul_crc_failures, p.ul_tbs_decoded)
    };
    // Watch the 100 ms after the boundary.
    d.engine.run_until(migrate_at + Nanos::from_millis(100));
    let p = d.engine.node::<PhyNode>(d.secondary_phy).unwrap();
    Outcome {
        crc_failures_after: p.ul_crc_failures - f0,
        decoded_after: p.ul_tbs_decoded - n0,
        soft_state_bytes,
        ue_rlf: d.engine.node::<UeNode>(d.ues[0]).unwrap().rlf_count,
    }
}

fn main() {
    banner(
        "Ablation: discarding vs transferring HARQ soft state at migration",
        "§4.2: discards look like channel noise; HARQ retransmission absorbs them",
    );
    println!(
        "{:>12} {:>18} {:>16} {:>16} {:>8}",
        "variant", "post-mig CRC fail", "post-mig TBs", "state bytes", "UE RLF"
    );
    let mut discard_fail = 0u64;
    let mut transfer_fail = 0u64;
    for (label, transfer) in [("discard", false), ("transfer", true)] {
        let mut fails = 0;
        let mut tbs = 0;
        let mut bytes = 0;
        let mut rlf = 0;
        let runs = 5u64;
        for i in 0..runs {
            let o = run(transfer, 90 + i);
            fails += o.crc_failures_after;
            tbs += o.decoded_after;
            bytes = bytes.max(o.soft_state_bytes);
            rlf += o.ue_rlf;
        }
        println!(
            "{label:>12} {:>18} {:>16} {:>16} {:>8}",
            fails, tbs, bytes, rlf
        );
        if transfer {
            transfer_fail = fails;
        } else {
            discard_fail = fails;
        }
    }
    println!(
        "\ndiscard costs {} extra CRC failures across 5 runs × 100 ms windows —\n\
         all absorbed by HARQ retransmission (zero RLF). A transfer would have\n\
         to move the soft buffers within a sub-ms window *from a crashed\n\
         process* in the failover case, which is why the paper discards.",
        discard_fail.saturating_sub(transfer_fail)
    );
}
