//! Table 2 — stress test for discarding PHY state: repeated PHY
//! migrations at 1/10/20/50 per second over 60 s with an uplink UDP
//! flow. Metrics: 10 ms blackout intervals, min/max per-10 ms
//! throughput, max per-10 ms packet loss, interrupted HARQ sequences,
//! and average UDP loss.

use slingshot::DeploymentBuilder;
use slingshot_bench::{banner, stress_cell, ue};
use slingshot_ran::{AppServerNode, L2Node, Msg, PhyNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

const MEASURE: Nanos = Nanos::from_secs(60);
const WARMUP: Nanos = Nanos::from_millis(500);

struct Row {
    rate: u32,
    blackouts: usize,
    min_tput: f64,
    max_tput: f64,
    max_loss: f64,
    interrupted_harq: u64,
    avg_loss: f64,
    rlf: u64,
}

fn run(rate_per_s: u32, seed: u64) -> Row {
    let mut d = DeploymentBuilder::new()
        .seed(seed)
        .cell(stress_cell())
        .ue(ue("ue", 100, 21.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(15_800_000, 1200, Nanos::ZERO)),
        Box::new(UdpSink::new(WARMUP, Nanos::from_millis(10))),
    );
    // Schedule back-and-forth planned migrations for the whole window.
    let interval = Nanos(1_000_000_000 / rate_per_s as u64);
    let mut t = WARMUP + interval;
    while t < WARMUP + MEASURE {
        d.engine.post(
            t,
            d.orion_l2,
            Msg::Ctl(slingshot_ran::CtlMsg::PlannedMigration { ru_id: 0 }),
        );
        t += interval;
    }
    d.engine
        .run_until(WARMUP + MEASURE + Nanos::from_millis(200));

    let harq_interrupted = {
        // HARQ series the scheduler abandoned (max retransmissions) —
        // soft-state discards showing up as broken HARQ sequences.
        let l2 = d.engine.node::<L2Node>(d.l2).unwrap();
        l2.sched.ul_harq_failures + l2.sched.dl_harq_failures
    };
    let ue_node = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    let sink: &UdpSink = d
        .engine
        .node::<AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let mbps = sink.bins.mbps();
    let window = &mbps[..((MEASURE.0 / 10_000_000) as usize).min(mbps.len())];
    let blackouts = sink.bins.zero_bins_between(WARMUP, WARMUP + MEASURE);
    let min_tput = window.iter().cloned().fold(f64::MAX, f64::min);
    let max_tput = window.iter().cloned().fold(0.0, f64::max);
    Row {
        rate: rate_per_s,
        blackouts,
        min_tput,
        max_tput,
        max_loss: sink.max_bin_loss_rate(),
        interrupted_harq: harq_interrupted,
        avg_loss: sink.loss_rate(),
        rlf: ue_node.rlf_count,
    }
}

fn main() {
    banner(
        "Table 2: stress test — PHY migrations at 1–50/s for 60 s, uplink UDP",
        "paper: 0 blackout bins up to 20/s; 118 interrupted HARQ seqs at 20/s; loss 0.1%→3.9%",
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>5}",
        "mig/s", "#blackout", "min Mbps", "max Mbps", "max loss", "harq-intr", "avg loss", "RLF"
    );
    for (rate, seed) in [(1u32, 21), (10, 22), (20, 23), (50, 24)] {
        let r = run(rate, seed);
        println!(
            "{:>6} {:>10} {:>10.1} {:>10.1} {:>9.0}% {:>12} {:>9.2}% {:>5}",
            r.rate,
            r.blackouts,
            r.min_tput,
            r.max_tput,
            r.max_loss * 100.0,
            r.interrupted_harq,
            r.avg_loss * 100.0,
            r.rlf
        );
        // The availability claim: sub-10 ms downtime at ≤20 mig/s.
        if rate <= 20 {
            assert_eq!(r.rlf, 0, "UE must never RLF at {rate}/s");
        }
    }
    // Footnote on the PHY-side soft state being discarded each time.
    let d = DeploymentBuilder::new()
        .seed(25)
        .cell(stress_cell())
        .ue(ue("ue", 100, 21.0))
        .build();
    let _ = d.engine.node::<PhyNode>(d.primary_phy);
    println!("\n(each migration discards HARQ soft buffers and SNR filters; see §8.4)");
}
