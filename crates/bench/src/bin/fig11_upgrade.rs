//! Fig. 11 — live PHY upgrade: the secondary (new) PHY is configured
//! with more FEC iterations, improving decoding. Before the upgrade the
//! two phones decode poorly (the scheduler's MCS choices assume a
//! better decoder than the old build has) and the Raspberry Pi takes an
//! unfairly large share; after the zero-downtime migration, throughput
//! improves and the UEs share bandwidth more evenly.

use slingshot::DeploymentBuilder;
use slingshot_bench::{banner, figure_cell, paper_ues};
use slingshot_ran::{AppServerNode, PhyNode, UeNode};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

const UPGRADE_AT: Nanos = Nanos::from_secs(5);
const END: Nanos = Nanos::from_secs(10);

fn main() {
    banner(
        "Fig. 11: uplink UDP per UE before/after a live PHY upgrade",
        "before: phones starved, RPi unfairly high; after: higher & fairer; zero downtime",
    );
    let mut cell = figure_cell();
    // The scheduler (and the new PHY) assume a healthy decoder budget;
    // the *old* PHY build underperforms it.
    cell.fec_iterations = 8;
    let mut d = DeploymentBuilder::new()
        .seed(111)
        .cell(cell)
        .secondary_fec_iterations(16)
        .ues(paper_ues())
        .build();
    // Old build: half the iterations the link adaptation assumes.
    d.engine
        .node_mut::<PhyNode>(d.primary_phy)
        .unwrap()
        .set_fec_iterations(2);

    let rntis = [100u16, 101, 102];
    for (i, rnti) in rntis.iter().enumerate() {
        d.add_flow(
            i,
            *rnti,
            Box::new(UdpCbrSource::new(18_000_000, 1200, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(500))),
        );
    }
    d.planned_migration_at(UPGRADE_AT);
    d.engine.run_until(END);

    let names = ["OnePlus-N10", "Samsung-A52s", "Raspberry-Pi"];
    let mut before = Vec::new();
    let mut after = Vec::new();
    println!("# per-UE uplink throughput (t_seconds\tMbps)");
    for (i, rnti) in rntis.iter().enumerate() {
        let sink: &UdpSink = d
            .engine
            .node::<AppServerNode>(d.server)
            .unwrap()
            .app(*rnti, 0)
            .unwrap();
        let mbps = sink.bins.mbps();
        println!("# {}", names[i]);
        for (bin, v) in mbps.iter().enumerate() {
            println!("{:.1}\t{v:.2}", bin as f64 * 0.5);
        }
        let b: f64 = mbps[2..10].iter().sum::<f64>() / 8.0;
        let a: f64 = mbps[12..20].iter().sum::<f64>() / 8.0;
        before.push(b);
        after.push(a);
    }
    println!("\n# summary (Mbps):           before    after");
    for i in 0..3 {
        println!("# {:<14} {:>10.2} {:>8.2}", names[i], before[i], after[i]);
    }
    let fairness = |v: &[f64]| {
        let sum: f64 = v.iter().sum();
        let sumsq: f64 = v.iter().map(|x| x * x).sum();
        sum * sum / (v.len() as f64 * sumsq)
    };
    println!(
        "# Jain fairness: before={:.3} after={:.3}",
        fairness(&before),
        fairness(&after)
    );
    for (i, ue_id) in d.ues.iter().enumerate() {
        let ue = d.engine.node::<UeNode>(*ue_id).unwrap();
        assert_eq!(
            ue.rlf_count, 0,
            "{}: upgrade must be zero-downtime",
            names[i]
        );
    }
    println!("# zero downtime: no UE RLF during the upgrade");
}
