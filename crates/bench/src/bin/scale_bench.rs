//! City-scale capacity harness for the sharded leaf/spine engine: how
//! many cells the fabric sustains, swept over cells × UEs-per-cell ×
//! exec-shards × workers at Abstract fidelity.
//!
//! **Sustainability** is judged per shard, the quantity that matters on
//! scale-out hardware: a deployment is sustainable when every lane
//! (the spine domain and each leaf cell-group) executes one slot's
//! worth of its own events within the 500 µs slot duration, with 10%
//! headroom reserved for the barrier. Per-lane busy time is measured
//! directly by the engine (`lane_busy_ns`), so the verdict reflects
//! "each shard pinned to a dedicated core" regardless of how many
//! cores the benchmark host happens to have. The aggregate wall-clock
//! cell-slots/s is reported alongside for single-host throughput
//! tracking.
//!
//! The harness also enforces the sharding contract: for a fixed
//! topology, every (shards, workers) combination must produce a
//! byte-identical event trace, or the binary exits non-zero.
//!
//! Knobs (env):
//!   SCALE_CELLS=16,32,64,128  cell counts to sweep
//!   SCALE_UES=1               UEs per cell to sweep
//!   SCALE_SHARDS=1,4          exec-shard counts to sweep
//!   SCALE_WORKERS=1           worker-pool sizes to sweep
//!   SCALE_GROUPS=4            leaf groups (topology; fixed per run)
//!   SCALE_MS=40               simulated milliseconds per run
//!   SCALE_REPS=2              repetitions per config (best kept)
//!   SCALE_FIDELITY=abstract   abstract | sampled
//!   SCALE_QUICK=1             small sweep for CI (overridden by the
//!                             explicit knobs above)
//!   SCALE_BASELINE=<path>     baseline file: `<key> <value>` lines;
//!                             throughput keys fail below 80% of
//!                             baseline, `max_sustainable_cells` is an
//!                             absolute floor
//!
//! JSON artifact: `scale_bench.json` in `$BENCH_JSON_DIR`, scalars
//! keyed `c{cells}_u{ues}_s{shards}_w{workers}` (cell-slots/s) plus
//! `lane_slot_us_c{cells}_u{ues}` (worst lane's per-slot busy µs),
//! `bytes_per_cell_c{cells}_u{ues}`, and `max_sustainable_cells`.

use std::time::Instant;

use slingshot::{DeploymentBuilder, DeploymentConfig};
use slingshot_bench::{banner, BenchReport};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::{Nanos, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

/// Per-shard real-time budget: one slot of lane work must fit in the
/// slot duration minus 10% barrier headroom.
const LANE_SLOT_BUDGET_NS: u64 = SLOT_DURATION.0 * 9 / 10;

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad {name}: {s:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v:?}")))
        .unwrap_or(default)
}

struct RunOutcome {
    slots_per_sec: f64,
    bytes_per_cell: f64,
    /// Worst lane's busy nanoseconds per simulated slot.
    max_lane_slot_ns: u64,
    trace_bytes: Vec<u8>,
}

fn run_one(
    cells: usize,
    ues_per_cell: usize,
    groups: usize,
    shards: usize,
    workers: usize,
    sim_ms: u64,
    fidelity: Fidelity,
) -> RunOutcome {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity,
            ..CellConfig::default()
        },
        seed: 4242,
        ..DeploymentConfig::default()
    };
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(cells)
        .cell_groups(groups.min(cells))
        .shards(shards)
        .workers(workers);
    for c in 0..cells {
        for u in 0..ues_per_cell {
            b = b.ue(UeConfig::new(
                (100 + c * ues_per_cell + u) as u16,
                c as u8,
                &format!("ue-c{c}-{u}"),
                22.0,
            ));
        }
    }
    let mut d = b.build();
    for i in 0..cells * ues_per_cell {
        d.add_flow(
            i,
            (100 + i) as u16,
            Box::new(UdpCbrSource::new(1_000_000, 600, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    let horizon = Nanos::from_millis(sim_ms);
    let n_slots = horizon.0 / SLOT_DURATION.0;
    let started = Instant::now();
    d.engine.run_until(horizon);
    let wall = started.elapsed().as_secs_f64();
    let cell_slots = cells as u64 * n_slots;
    let link_bytes = d.engine.total_link_stats().bytes;
    let max_lane_slot_ns = d.engine.lane_busy_ns().into_iter().max().unwrap_or(0) / n_slots.max(1);
    RunOutcome {
        slots_per_sec: cell_slots as f64 / wall,
        bytes_per_cell: link_bytes as f64 / cells as f64,
        max_lane_slot_ns,
        trace_bytes: d.engine.event_trace().to_bytes(),
    }
}

fn load_baseline(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read SCALE_BASELINE {path}: {e}"));
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut it = l.split_whitespace();
            let key = it.next().expect("baseline key").to_string();
            let v: f64 = it
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline line: {l:?}"));
            (key, v)
        })
        .collect()
}

fn main() {
    let quick = env_u64("SCALE_QUICK", 0) != 0;
    let cells_sweep = env_usize_list(
        "SCALE_CELLS",
        if quick { &[16, 64] } else { &[16, 32, 64, 128] },
    );
    let ues_sweep = env_usize_list("SCALE_UES", &[1]);
    let shards_sweep = env_usize_list("SCALE_SHARDS", &[1, 4]);
    let workers_sweep = env_usize_list("SCALE_WORKERS", &[1]);
    let groups = env_u64("SCALE_GROUPS", 4) as usize;
    let sim_ms = env_u64("SCALE_MS", 40);
    let reps = env_u64("SCALE_REPS", 2).max(1);
    let fidelity = match std::env::var("SCALE_FIDELITY").as_deref() {
        Ok("sampled") => Fidelity::Sampled,
        Ok("abstract") | Err(_) => Fidelity::Abstract,
        Ok(other) => panic!("bad SCALE_FIDELITY: {other:?} (abstract|sampled)"),
    };

    banner(
        "city-scale capacity: per-shard slot budget over cells × UEs × shards × workers",
        "sharded leaf/spine engine (DESIGN.md §5g)",
    );
    println!(
        "# {fidelity:?} fidelity, {groups} leaf groups, {sim_ms} ms simulated, {reps} rep(s), \
         1 Mbps UL per UE"
    );
    println!(
        "# sustainable = worst lane's per-slot busy time <= {} us \
         (slot {} us minus barrier headroom)\n",
        LANE_SLOT_BUDGET_NS / 1_000,
        SLOT_DURATION.0 / 1_000
    );

    let mut report = BenchReport::new(
        "scale_bench",
        "City-scale capacity: per-shard slot budget and aggregate cell-slots/s on the sharded fabric",
        "DESIGN.md §5g",
    );
    let mut measured: Vec<(String, f64)> = Vec::new();
    let mut determinism_ok = true;
    let mut max_sustainable = 0usize;

    println!(
        "{:>6} {:>4} {:>7} {:>8} {:>14} {:>14} {:>13} {:>12}",
        "cells",
        "ues",
        "shards",
        "workers",
        "slots/sec",
        "bytes/cell",
        "lane us/slot",
        "sustainable"
    );
    for &cells in &cells_sweep {
        for &ues in &ues_sweep {
            let mut reference: Option<Vec<u8>> = None;
            let mut best_lane_slot_ns = u64::MAX;
            let mut bytes_per_cell = 0.0;
            for &shards in &shards_sweep {
                for &workers in &workers_sweep {
                    // Best-of-reps, per metric: wall-clock throughput and
                    // lane budget are both noise-prone on shared hosts,
                    // and their best reps need not coincide.
                    let mut best_rate = 0.0f64;
                    let mut best_lane = u64::MAX;
                    for _ in 0..reps {
                        let out = run_one(cells, ues, groups, shards, workers, sim_ms, fidelity);
                        match &reference {
                            None => reference = Some(out.trace_bytes.clone()),
                            Some(base) if *base != out.trace_bytes => {
                                eprintln!(
                                    "DETERMINISM VIOLATION: cells={cells} ues={ues} \
                                     shards={shards} workers={workers} trace differs from \
                                     the first configuration"
                                );
                                determinism_ok = false;
                            }
                            Some(_) => {}
                        }
                        best_rate = best_rate.max(out.slots_per_sec);
                        best_lane = best_lane.min(out.max_lane_slot_ns);
                        bytes_per_cell = out.bytes_per_cell;
                    }
                    best_lane_slot_ns = best_lane_slot_ns.min(best_lane);
                    let sustainable = best_lane <= LANE_SLOT_BUDGET_NS;
                    println!(
                        "{:>6} {:>4} {:>7} {:>8} {:>14.1} {:>14.1} {:>13.1} {:>12}",
                        cells,
                        ues,
                        shards,
                        workers,
                        best_rate,
                        bytes_per_cell,
                        best_lane as f64 / 1_000.0,
                        if sustainable { "yes" } else { "NO" }
                    );
                    let key = format!("c{cells}_u{ues}_s{shards}_w{workers}");
                    report.scalar(&key, best_rate);
                    measured.push((key, best_rate));
                }
            }
            report.scalar(&format!("bytes_per_cell_c{cells}_u{ues}"), bytes_per_cell);
            report.scalar(
                &format!("lane_slot_us_c{cells}_u{ues}"),
                best_lane_slot_ns as f64 / 1_000.0,
            );
            // The headline number is judged on the default UE load (the
            // first entry of the sweep) so extra UE dimensions don't
            // move it.
            if ues == ues_sweep[0] && best_lane_slot_ns <= LANE_SLOT_BUDGET_NS {
                max_sustainable = max_sustainable.max(cells);
            }
        }
    }

    println!("\n# max sustainable cells (every shard within slot budget): {max_sustainable}");
    report.scalar("max_sustainable_cells", max_sustainable as f64);
    measured.push(("max_sustainable_cells".to_string(), max_sustainable as f64));
    report.write();

    if !determinism_ok {
        std::process::exit(1);
    }

    if let Ok(path) = std::env::var("SCALE_BASELINE") {
        let mut regressed = false;
        for (key, base) in load_baseline(&path) {
            let floor = if key == "max_sustainable_cells" {
                base // capacity floor is absolute, not 80%-slacked
            } else {
                0.8 * base
            };
            match measured.iter().find(|(k, _)| *k == key) {
                Some((_, got)) if *got < floor => {
                    eprintln!(
                        "REGRESSION: {key} = {got:.1}, below floor {floor:.1} (baseline {base:.1})"
                    );
                    regressed = true;
                }
                Some((_, got)) => {
                    println!("# baseline {key}: {got:.1} vs {base:.1} ok");
                }
                None => println!("# baseline {key}: not measured in this sweep, skipped"),
            }
        }
        if regressed {
            std::process::exit(1);
        }
    }
}
