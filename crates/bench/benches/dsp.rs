//! Criterion micro-benchmarks for the signal-processing substrate: the
//! per-TB costs that determine how many cells a PHY core can carry.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use slingshot_phy_dsp::channel::AwgnChannel;
use slingshot_phy_dsp::crc::{attach_crc24a, check_crc24a};
use slingshot_phy_dsp::iq::{Cplx, SC_PER_PRB};
use slingshot_phy_dsp::modulation::{modulate, Modulation};
use slingshot_phy_dsp::scramble::{descramble_llrs, scramble_bits, GoldSequence};
use slingshot_phy_dsp::tbchain::{mother_buffer_len, TbParams};
use slingshot_phy_dsp::{DspKernels, LdpcCode};
use slingshot_sim::SimRng;

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xA5u8; 1500];
    let framed = attach_crc24a(&data);
    let mut g = c.benchmark_group("crc24a");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("attach_1500B", |b| {
        b.iter(|| attach_crc24a(std::hint::black_box(&data)))
    });
    g.bench_function("check_1500B", |b| {
        b.iter(|| check_crc24a(std::hint::black_box(&framed)))
    });
    g.finish();
}

fn bench_scrambler(c: &mut Criterion) {
    let mut bits = vec![0u8; 8192];
    let mut llrs = vec![1.0f32; 8192];
    let init = GoldSequence::c_init_data(0x4601, 42);
    let mut g = c.benchmark_group("scrambler");
    g.throughput(Throughput::Elements(8192));
    g.bench_function("scramble_8k_bits", |b| {
        b.iter(|| scramble_bits(std::hint::black_box(&mut bits), init))
    });
    g.bench_function("descramble_8k_llrs", |b| {
        b.iter(|| descramble_llrs(std::hint::black_box(&mut llrs), init))
    });
    g.finish();
}

fn bench_modulation(c: &mut Criterion) {
    // Honors KERNEL_BACKEND; best available backend otherwise.
    let kernels = DspKernels::from_env();
    let mut rng = SimRng::new(1);
    let mut g = c.benchmark_group("modulation");
    for m in [Modulation::Qpsk, Modulation::Qam64, Modulation::Qam256] {
        let bits: Vec<u8> = (0..m.bits_per_symbol() * 1024)
            .map(|_| (rng.next_u64() & 1) as u8)
            .collect();
        let syms = modulate(&bits, m);
        g.throughput(Throughput::Elements(1024));
        g.bench_function(format!("modulate_1k_syms_{m:?}"), |b| {
            b.iter(|| modulate(std::hint::black_box(&bits), m))
        });
        g.bench_function(format!("demap_llr_1k_syms_{m:?}"), |b| {
            b.iter(|| kernels.demodulate_llr(std::hint::black_box(&syms), m, 0.05))
        });
    }
    g.finish();
}

fn bench_ldpc(c: &mut Criterion) {
    let code = LdpcCode::new(1024);
    let mut rng = SimRng::new(2);
    let info: Vec<u8> = (0..1024).map(|_| (rng.next_u64() & 1) as u8).collect();
    let cw = code.encode(&info);
    // Noisy LLRs at a decodable SNR.
    let mut ch = AwgnChannel::new(SimRng::new(3));
    let syms: Vec<Cplx> = cw
        .iter()
        .map(|b| Cplx::new(if *b == 0 { 1.0 } else { -1.0 }, 0.0))
        .collect();
    let (noisy, nv) = ch.apply(&syms, 4.0);
    let llrs: Vec<f32> = noisy.iter().map(|s| 2.0 * s.re / nv).collect();
    let mut g = c.benchmark_group("ldpc_k1024");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("encode", |b| {
        b.iter(|| code.encode(std::hint::black_box(&info)))
    });
    for iters in [2usize, 8, 16] {
        g.bench_function(format!("decode_{iters}iters_4dB"), |b| {
            b.iter(|| code.decode(std::hint::black_box(&llrs), iters))
        });
    }
    g.finish();
}

fn bench_tb_chain(c: &mut Criterion) {
    let kernels = DspKernels::from_env();
    let payload: Vec<u8> = (0..125u32).map(|i| i as u8).collect();
    let p = TbParams {
        modulation: Modulation::Qam64,
        e_bits: 1536,
        rnti: 0x4601,
        cell_id: 42,
        rv: 0,
        fec_iterations: 8,
    };
    let syms = kernels.encode_tb(&payload, &p);
    let mut ch = AwgnChannel::new(SimRng::new(4));
    let (rx, nv) = ch.apply(&syms, 25.0);
    let mut g = c.benchmark_group("tb_chain_64qam_r067");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode_tb", |b| {
        b.iter(|| kernels.encode_tb(std::hint::black_box(&payload), &p))
    });
    g.bench_function("decode_tb", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f32; mother_buffer_len(payload.len())];
            kernels.decode_tb(&mut acc, std::hint::black_box(&rx), nv, payload.len(), &p)
        })
    });
    g.finish();
}

fn bench_bfp(c: &mut Criterion) {
    let kernels = DspKernels::from_env();
    let samples: [Cplx; SC_PER_PRB] =
        std::array::from_fn(|i| Cplx::new((i as f32 * 0.4).cos(), (i as f32 * 0.4).sin()));
    let prb = kernels.bfp_compress(&samples);
    let mut g = c.benchmark_group("bfp");
    g.throughput(Throughput::Elements(SC_PER_PRB as u64));
    g.bench_function("compress_prb", |b| {
        b.iter(|| kernels.bfp_compress(std::hint::black_box(&samples)))
    });
    g.bench_function("decompress_prb", |b| {
        b.iter(|| kernels.bfp_decompress(std::hint::black_box(&prb)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_scrambler,
    bench_modulation,
    bench_ldpc,
    bench_tb_chain,
    bench_bfp
);
criterion_main!(benches);
