//! Criterion micro-benchmarks for the Slingshot middleboxes: the
//! per-packet switch pipeline work, the failure-detector tick, and the
//! protocol codecs on the forwarding fast paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use slingshot::{CtlPacket, FhMbox};
use slingshot_fapi::{DlTtiRequest, FapiMsg, PdschPdu};
use slingshot_fronthaul::{fh_header, CPlaneMsg, Direction, FhMessage, UPlaneMsg};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_phy_dsp::iq::{Cplx, SC_PER_PRB};
use slingshot_phy_dsp::DspKernels;
use slingshot_sim::{Nanos, SlotId};
use slingshot_switch::{PktGenConfig, PortId, SwitchProgram};

fn mbox_with_topology(rus: u8, phys: u8) -> FhMbox {
    let mut m = FhMbox::new(PktGenConfig::paper_default(), MacAddr::for_l2(0));
    for r in 0..rus {
        m.install_ru(r, MacAddr::for_ru(r), PortId(r as u16), 0);
    }
    for p in 0..phys {
        m.install_phy(p, MacAddr::for_phy(p), PortId(200 + p as u16));
        m.enroll_failure_detection(p);
    }
    m.install_host(MacAddr::for_l2(0), PortId(999));
    m
}

fn ul_frame() -> Frame {
    let samples: [Cplx; SC_PER_PRB] = [Cplx::new(0.3, -0.2); SC_PER_PRB];
    let msg = FhMessage::UPlane(UPlaneMsg {
        hdr: fh_header(Direction::Uplink, SlotId::from_absolute(1234), 3, 0),
        start_prb: 0,
        prbs: vec![DspKernels::from_env().bfp_compress(&samples); 48],
    });
    Frame::new(
        MacAddr::virtual_phy(0),
        MacAddr::for_ru(0),
        EtherType::Ecpri,
        msg.to_bytes(),
    )
}

fn dl_frame(phy: u8) -> Frame {
    let msg = FhMessage::CPlane(CPlaneMsg {
        hdr: fh_header(Direction::Downlink, SlotId::from_absolute(1234), 0, 0),
        sections: vec![],
    });
    Frame::new(
        MacAddr::for_ru(0),
        MacAddr::for_phy(phy),
        EtherType::Ecpri,
        msg.to_bytes(),
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fh_mbox_pipeline");
    g.throughput(Throughput::Elements(1));
    {
        let mut m = mbox_with_topology(16, 16);
        let f = ul_frame();
        g.bench_function("uplink_translate_fwd", |b| {
            b.iter(|| m.process(Nanos(0), PortId(0), std::hint::black_box(f.clone())))
        });
    }
    {
        let mut m = mbox_with_topology(16, 16);
        let f = dl_frame(0); // active PHY
        g.bench_function("downlink_active_fwd", |b| {
            b.iter(|| m.process(Nanos(0), PortId(200), std::hint::black_box(f.clone())))
        });
    }
    {
        let mut m = mbox_with_topology(16, 16);
        let f = dl_frame(1); // standby: filtered
        g.bench_function("downlink_standby_filter", |b| {
            b.iter(|| m.process(Nanos(0), PortId(201), std::hint::black_box(f.clone())))
        });
    }
    {
        // Migration matcher armed but not yet triggered: the per-packet
        // register compare cost.
        let mut m = mbox_with_topology(16, 16);
        let switch_mac = m.switch_mac;
        let cmd = CtlPacket::MigrateOnSlot {
            ru_id: 0,
            dest_phy_id: 1,
            slot_scalar: 5000,
        };
        m.process(
            Nanos(0),
            PortId(999),
            Frame::new(
                switch_mac,
                MacAddr::ZERO,
                EtherType::SlingshotCtl,
                cmd.to_bytes(),
            ),
        );
        let f = ul_frame();
        g.bench_function("uplink_with_pending_migration", |b| {
            b.iter(|| m.process(Nanos(0), PortId(0), std::hint::black_box(f.clone())))
        });
    }
    g.finish();
}

fn bench_detector_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_detector");
    for phys in [2u8, 64, 255] {
        let mut m = mbox_with_topology(1, phys);
        // Arm all detectors with one heartbeat each.
        for p in 0..phys {
            m.process(Nanos(0), PortId(200 + p as u16), dl_frame(p));
        }
        g.throughput(Throughput::Elements(phys as u64));
        g.bench_function(format!("tick_{phys}_phys"), |b| {
            b.iter(|| m.on_generator_tick(std::hint::black_box(Nanos(0))))
        });
    }
    g.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");
    // Fronthaul U-plane (the line-rate path).
    let f = ul_frame();
    g.throughput(Throughput::Bytes(f.payload.len() as u64));
    g.bench_function("fronthaul_peek_headers", |b| {
        b.iter(|| slingshot_fronthaul::peek_headers(std::hint::black_box(&f.payload)))
    });
    g.bench_function("fronthaul_full_parse", |b| {
        b.iter(|| FhMessage::from_bytes(std::hint::black_box(&f.payload)))
    });
    // FAPI encode/decode (Orion's per-message work).
    let msg = FapiMsg::DlTti(DlTtiRequest {
        ru_id: 0,
        slot: SlotId::from_absolute(99),
        pdsch: vec![
            PdschPdu {
                rnti: 0x4601,
                harq_id: 1,
                ndi: true,
                rv: 0,
                mcs: 15,
                start_prb: 0,
                num_prb: 273,
                tb_bytes: 30000,
            };
            4
        ],
    });
    let bytes = slingshot_fapi::encode(&msg);
    g.bench_function("fapi_encode_dl_tti", |b| {
        b.iter(|| slingshot_fapi::encode(std::hint::black_box(&msg)))
    });
    g.bench_function("fapi_decode_dl_tti", |b| {
        b.iter(|| slingshot_fapi::decode(std::hint::black_box(&bytes)))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_detector_tick, bench_codecs);
criterion_main!(benches);
