//! Lane-load diagnostic for the sharded fabric: builds a cells/4-leaf
//! deployment at Abstract fidelity, runs 40 simulated ms, and prints
//! where the events actually went — per-lane dispatch counts, per-lane
//! busy time, wall vs CPU time, and a trace-kind histogram. Use it to
//! answer "which lane is hot and why" when scale_bench flags a
//! configuration as unsustainable.
//!
//! Knobs: PROBE_CELLS=64 PROBE_UES=0|1 PROBE_FLOWS=0|1
//! PROBE_BPS=1000000 (per-UE uplink rate) PROBE_METRICS=1 (dump the
//! metrics registry to target/probe_metrics.txt).
//!
//! With `--features dispatch-histogram` the engine additionally counts
//! dispatches per (node-name-prefix, event-kind), attributing load to
//! protocol chains (FAPI, heartbeats, detector ticks, standby replay).
use std::collections::BTreeMap;

use slingshot::{DeploymentBuilder, DeploymentConfig};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

fn envn(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Process CPU time from the scheduler's own accounting, so a noisy
/// shared host doesn't masquerade as simulator load.
fn cpu_ns() -> u64 {
    let mut total = 0u64;
    if let Ok(rd) = std::fs::read_dir("/proc/self/task") {
        for t in rd.flatten() {
            if let Ok(txt) = std::fs::read_to_string(t.path().join("schedstat")) {
                if let Some(first) = txt.split_whitespace().next() {
                    total += first.parse::<u64>().unwrap_or(0);
                }
            }
        }
    }
    total
}

fn main() {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Abstract,
            ..CellConfig::default()
        },
        seed: 4242,
        ..DeploymentConfig::default()
    };
    let cells = envn("PROBE_CELLS", 64);
    let ues = envn("PROBE_UES", 1);
    let flows = envn("PROBE_FLOWS", 1);
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(cells)
        .cell_groups(4)
        .shards(4)
        .workers(4);
    if ues > 0 {
        for c in 0..cells {
            b = b.ue(UeConfig::new(
                (100 + c) as u16,
                c as u8,
                &format!("ue{c}"),
                22.0,
            ));
        }
    }
    let mut d = b.build();
    if ues > 0 && flows > 0 {
        for i in 0..cells {
            d.add_flow(
                i,
                (100 + i) as u16,
                Box::new(UdpCbrSource::new(
                    envn("PROBE_BPS", 1_000_000) as u64,
                    600,
                    Nanos::ZERO,
                )),
                Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
            );
        }
    }
    let t = std::time::Instant::now();
    let c0 = cpu_ns();
    d.engine.run_until(Nanos::from_millis(40));
    let cpu_ms = (cpu_ns() - c0) as f64 / 1e6;
    eprintln!(
        "cells={cells} ues={ues} flows={flows} wall {:?} cpu {cpu_ms:.1}ms dispatched {}",
        t.elapsed(),
        d.engine.dispatched()
    );
    eprintln!("lane loads (events): {:?}", d.engine.lane_loads());
    eprintln!("lane busy (ns): {:?}", d.engine.lane_busy_ns());
    if std::env::var("PROBE_METRICS").is_ok() {
        d.publish_metrics();
        let txt = d.engine.metrics().to_text();
        std::fs::write("target/probe_metrics.txt", &txt).unwrap();
    }
    let mut hist: BTreeMap<String, usize> = BTreeMap::new();
    for ev in d.engine.event_trace().iter() {
        *hist.entry(format!("{:?}", ev.kind)).or_default() += 1;
    }
    eprintln!("trace kinds: {hist:?}");
    #[cfg(feature = "dispatch-histogram")]
    eprintln!(
        "dispatch: {:#?}",
        slingshot_sim::engine::DISPATCH_HISTOGRAM.lock().unwrap()
    );
}
