//! # slingshot-fronthaul
//!
//! O-RAN split-7.2x-style fronthaul protocol: eCPRI framing, the
//! frame/subframe/slot application header that the in-switch middlebox
//! parses for TTI-boundary migration (paper §5.1), C-plane control
//! sections, and U-plane messages carrying block-floating-point
//! compressed IQ samples.

pub mod ecpri;
pub mod messages;

pub use ecpri::{peek_headers, Direction, EcpriHeader, EcpriMsgType, FhHeader};
#[allow(deprecated)]
pub use messages::{compress_symbol, decompress_prbs};
pub use messages::{
    compress_symbol_with, decompress_prbs_with, fh_header, CPlaneMsg, CSection, DciEntry, DciMsg,
    FhMessage, ShadowMsg, UPlaneMsg, UciEntry, UciMsg,
};
