//! Full fronthaul message bodies: C-plane sections and U-plane IQ data.
//!
//! A healthy PHY emits at least one downlink C-plane message per slot
//! (scheduling the RU's transmission window) — the "natural heartbeat"
//! Slingshot's in-switch failure detector monitors (§5.2.1). U-plane
//! messages carry block-floating-point compressed PRBs of IQ samples.

use bytes::{Buf, BufMut, Bytes};

use crate::ecpri::{Direction, EcpriHeader, EcpriMsgType, FhHeader};
use slingshot_phy_dsp::iq::{bfp_from_bytes, bfp_write_bytes, BfpPrb, SC_PER_PRB};
use slingshot_phy_dsp::{Cplx, DspKernels};
use slingshot_sim::SlotId;

/// A C-plane section: one scheduled region of the resource grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CSection {
    pub section_id: u16,
    pub start_prb: u16,
    pub num_prb: u16,
    /// Resource-element mask / beam id — carried opaquely.
    pub beam_id: u16,
}

impl CSection {
    pub const WIRE_LEN: usize = 8;

    fn write(&self, buf: &mut impl BufMut) {
        buf.put_u16(self.section_id);
        buf.put_u16(self.start_prb);
        buf.put_u16(self.num_prb);
        buf.put_u16(self.beam_id);
    }

    fn read(buf: &mut impl Buf) -> Option<CSection> {
        if buf.remaining() < Self::WIRE_LEN {
            return None;
        }
        Some(CSection {
            section_id: buf.get_u16(),
            start_prb: buf.get_u16(),
            num_prb: buf.get_u16(),
            beam_id: buf.get_u16(),
        })
    }
}

/// A C-plane (real-time control) message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CPlaneMsg {
    pub hdr: FhHeader,
    pub sections: Vec<CSection>,
}

/// A U-plane (IQ data) message: compressed PRBs starting at `start_prb`.
#[derive(Debug, Clone, PartialEq)]
pub struct UPlaneMsg {
    pub hdr: FhHeader,
    pub start_prb: u16,
    pub prbs: Vec<BfpPrb>,
}

/// One decoded downlink control information entry (a scheduling grant
/// or assignment). Carried on the fronthaul as a vendor-extension
/// message instead of coded PDCCH IQ (see [`EcpriMsgType::VendorDci`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DciEntry {
    pub rnti: u16,
    /// True for an uplink grant, false for a downlink assignment.
    pub uplink: bool,
    /// The slot the grant/assignment applies to may differ from the
    /// carrying slot (uplink grants are delivered in advance).
    pub target_slot_scalar: u16,
    pub harq_id: u8,
    pub ndi: bool,
    pub rv: u8,
    pub mcs: u8,
    pub start_prb: u16,
    pub num_prb: u16,
    pub tb_bytes: u32,
}

/// A vendor-extension DCI message (PHY → RU → over the air).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DciMsg {
    pub hdr: FhHeader,
    pub entries: Vec<DciEntry>,
}

/// One uplink control entry: a HARQ acknowledgment for a downlink TB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UciEntry {
    pub rnti: u16,
    pub harq_id: u8,
    pub ack: bool,
}

/// A vendor-extension UCI message (RU → PHY).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UciMsg {
    pub hdr: FhHeader,
    pub entries: Vec<UciEntry>,
}

/// A vendor-extension shadow-payload message (reduced-fidelity DSP
/// modes; see [`crate::ecpri::EcpriMsgType::VendorShadow`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowMsg {
    pub hdr: FhHeader,
    pub rnti: u16,
    /// SNR (dB × 100) the carried signal experienced — stands in for
    /// what pilot estimation would measure in full-fidelity mode.
    pub snr_db_x100: i32,
    pub data: Bytes,
}

/// Any fronthaul message.
#[derive(Debug, Clone, PartialEq)]
pub enum FhMessage {
    CPlane(CPlaneMsg),
    UPlane(UPlaneMsg),
    Dci(DciMsg),
    Uci(UciMsg),
    Shadow(ShadowMsg),
}

impl FhMessage {
    pub fn hdr(&self) -> &FhHeader {
        match self {
            FhMessage::CPlane(m) => &m.hdr,
            FhMessage::UPlane(m) => &m.hdr,
            FhMessage::Dci(m) => &m.hdr,
            FhMessage::Uci(m) => &m.hdr,
            FhMessage::Shadow(m) => &m.hdr,
        }
    }

    pub fn direction(&self) -> Direction {
        self.hdr().direction
    }

    /// Exact serialized body length (app header + payload, excluding
    /// the eCPRI header). Every field is fixed-width, so the frame can
    /// be written into a single exactly-sized allocation.
    fn body_len(&self) -> usize {
        FhHeader::WIRE_LEN
            + match self {
                FhMessage::CPlane(m) => 2 + m.sections.len() * CSection::WIRE_LEN,
                FhMessage::UPlane(m) => 4 + m.prbs.len() * BfpPrb::WIRE_BYTES,
                FhMessage::Dci(m) => 2 + m.entries.len() * 17,
                FhMessage::Uci(m) => 2 + m.entries.len() * 4,
                FhMessage::Shadow(m) => 10 + m.data.len(),
            }
    }

    /// Serialize to an Ethernet payload (eCPRI header + app header +
    /// body) — one exactly-sized allocation per frame; no intermediate
    /// body buffer, and [`Bytes::from`] takes the Vec without copying.
    pub fn to_bytes(&self) -> Bytes {
        let body_len = self.body_len();
        let ec = EcpriHeader {
            msg_type: match self {
                FhMessage::CPlane(_) => EcpriMsgType::RtControl,
                FhMessage::UPlane(_) => EcpriMsgType::IqData,
                FhMessage::Dci(_) => EcpriMsgType::VendorDci,
                FhMessage::Uci(_) => EcpriMsgType::VendorUci,
                FhMessage::Shadow(_) => EcpriMsgType::VendorShadow,
            },
            payload_len: body_len as u16,
        };
        let mut out = Vec::with_capacity(EcpriHeader::WIRE_LEN + body_len);
        ec.write(&mut out);
        match self {
            FhMessage::CPlane(m) => {
                m.hdr.write(&mut out);
                out.put_u16(m.sections.len() as u16);
                for s in &m.sections {
                    s.write(&mut out);
                }
            }
            FhMessage::UPlane(m) => {
                m.hdr.write(&mut out);
                out.put_u16(m.start_prb);
                out.put_u16(m.prbs.len() as u16);
                for p in &m.prbs {
                    bfp_write_bytes(p, &mut out);
                }
            }
            FhMessage::Dci(m) => {
                m.hdr.write(&mut out);
                out.put_u16(m.entries.len() as u16);
                for e in &m.entries {
                    out.put_u16(e.rnti);
                    out.put_u8(e.uplink as u8);
                    out.put_u16(e.target_slot_scalar);
                    out.put_u8(e.harq_id);
                    out.put_u8(e.ndi as u8);
                    out.put_u8(e.rv);
                    out.put_u8(e.mcs);
                    out.put_u16(e.start_prb);
                    out.put_u16(e.num_prb);
                    out.put_u32(e.tb_bytes);
                }
            }
            FhMessage::Uci(m) => {
                m.hdr.write(&mut out);
                out.put_u16(m.entries.len() as u16);
                for e in &m.entries {
                    out.put_u16(e.rnti);
                    out.put_u8(e.harq_id);
                    out.put_u8(e.ack as u8);
                }
            }
            FhMessage::Shadow(m) => {
                m.hdr.write(&mut out);
                out.put_u16(m.rnti);
                out.put_i32(m.snr_db_x100);
                out.put_u32(m.data.len() as u32);
                out.extend_from_slice(&m.data);
            }
        }
        debug_assert_eq!(out.len(), EcpriHeader::WIRE_LEN + body_len);
        Bytes::from(out)
    }

    /// Parse from an Ethernet payload.
    pub fn from_bytes(payload: &[u8]) -> Option<FhMessage> {
        let mut buf = payload;
        let ec = EcpriHeader::read(&mut buf)?;
        let hdr = FhHeader::read(&mut buf)?;
        match ec.msg_type {
            EcpriMsgType::RtControl => {
                if buf.remaining() < 2 {
                    return None;
                }
                let n = buf.get_u16() as usize;
                if n > 4096 {
                    return None;
                }
                let mut sections = Vec::with_capacity(n);
                for _ in 0..n {
                    sections.push(CSection::read(&mut buf)?);
                }
                Some(FhMessage::CPlane(CPlaneMsg { hdr, sections }))
            }
            EcpriMsgType::IqData => {
                if buf.remaining() < 4 {
                    return None;
                }
                let start_prb = buf.get_u16();
                let n = buf.get_u16() as usize;
                if n > 4096 {
                    return None;
                }
                let mut prbs = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < BfpPrb::WIRE_BYTES {
                        return None;
                    }
                    let prb = bfp_from_bytes(&buf.chunk()[..BfpPrb::WIRE_BYTES])?;
                    buf.advance(BfpPrb::WIRE_BYTES);
                    prbs.push(prb);
                }
                Some(FhMessage::UPlane(UPlaneMsg {
                    hdr,
                    start_prb,
                    prbs,
                }))
            }
            EcpriMsgType::VendorDci => {
                if buf.remaining() < 2 {
                    return None;
                }
                let n = buf.get_u16() as usize;
                if n > 4096 {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < 17 {
                        return None;
                    }
                    entries.push(DciEntry {
                        rnti: buf.get_u16(),
                        uplink: buf.get_u8() != 0,
                        target_slot_scalar: buf.get_u16(),
                        harq_id: buf.get_u8(),
                        ndi: buf.get_u8() != 0,
                        rv: buf.get_u8(),
                        mcs: buf.get_u8(),
                        start_prb: buf.get_u16(),
                        num_prb: buf.get_u16(),
                        tb_bytes: buf.get_u32(),
                    });
                }
                Some(FhMessage::Dci(DciMsg { hdr, entries }))
            }
            EcpriMsgType::VendorUci => {
                if buf.remaining() < 2 {
                    return None;
                }
                let n = buf.get_u16() as usize;
                if n > 4096 {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    if buf.remaining() < 4 {
                        return None;
                    }
                    entries.push(UciEntry {
                        rnti: buf.get_u16(),
                        harq_id: buf.get_u8(),
                        ack: buf.get_u8() != 0,
                    });
                }
                Some(FhMessage::Uci(UciMsg { hdr, entries }))
            }
            EcpriMsgType::VendorShadow => {
                if buf.remaining() < 10 {
                    return None;
                }
                let rnti = buf.get_u16();
                let snr_db_x100 = buf.get_i32();
                let len = buf.get_u32() as usize;
                if len > 16 * 1024 * 1024 || buf.remaining() < len {
                    return None;
                }
                let data = Bytes::copy_from_slice(&buf.chunk()[..len]);
                Some(FhMessage::Shadow(ShadowMsg {
                    hdr,
                    rnti,
                    snr_db_x100,
                    data,
                }))
            }
        }
    }
}

/// Build the application header for a slot/symbol.
pub fn fh_header(direction: Direction, slot: SlotId, symbol: u8, ru_port: u8) -> FhHeader {
    FhHeader {
        direction,
        frame: (slot.sfn % 256) as u8,
        subframe: slot.subframe,
        slot: slot.slot,
        symbol,
        ru_port,
    }
}

/// Compress a symbol's worth of samples (multiple of 12) into PRBs.
///
/// Bit-exact across kernel backends (the BFP kernels are part of the
/// always-on exactness contract), so the choice of `kernels` never
/// changes the wire bytes — only how fast they are produced.
pub fn compress_symbol_with(kernels: DspKernels, samples: &[Cplx]) -> Vec<BfpPrb> {
    assert!(samples.len().is_multiple_of(SC_PER_PRB));
    samples
        .chunks(SC_PER_PRB)
        .map(|c| {
            let mut arr = [Cplx::ZERO; SC_PER_PRB];
            arr.copy_from_slice(c);
            kernels.bfp_compress(&arr)
        })
        .collect()
}

/// Decompress PRBs back into a flat sample vector.
pub fn decompress_prbs_with(kernels: DspKernels, prbs: &[BfpPrb]) -> Vec<Cplx> {
    let mut out = Vec::with_capacity(prbs.len() * SC_PER_PRB);
    for p in prbs {
        out.extend_from_slice(&kernels.bfp_decompress(p));
    }
    out
}

#[deprecated(note = "use compress_symbol_with(DspKernels, ..) — backend-dispatched")]
pub fn compress_symbol(samples: &[Cplx]) -> Vec<BfpPrb> {
    compress_symbol_with(DspKernels::scalar(), samples)
}

#[deprecated(note = "use decompress_prbs_with(DspKernels, ..) — backend-dispatched")]
pub fn decompress_prbs(prbs: &[BfpPrb]) -> Vec<Cplx> {
    decompress_prbs_with(DspKernels::scalar(), prbs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecpri::peek_headers;

    fn slot() -> SlotId {
        SlotId {
            sfn: 300,
            subframe: 4,
            slot: 1,
        }
    }

    fn samples(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::new((i as f32 * 0.3).cos(), (i as f32 * 0.3).sin()))
            .collect()
    }

    /// Shadow the deprecated free functions with handle-backed helpers;
    /// `detect()` exercises the SIMD path where the host supports it
    /// (bit-exact with scalar by contract).
    fn compress_symbol(s: &[Cplx]) -> Vec<BfpPrb> {
        compress_symbol_with(DspKernels::detect(), s)
    }

    fn decompress_prbs(prbs: &[BfpPrb]) -> Vec<Cplx> {
        decompress_prbs_with(DspKernels::detect(), prbs)
    }

    #[test]
    fn cplane_roundtrip() {
        let msg = FhMessage::CPlane(CPlaneMsg {
            hdr: fh_header(Direction::Downlink, slot(), 0, 1),
            sections: vec![
                CSection {
                    section_id: 1,
                    start_prb: 0,
                    num_prb: 100,
                    beam_id: 0,
                },
                CSection {
                    section_id: 2,
                    start_prb: 100,
                    num_prb: 173,
                    beam_id: 7,
                },
            ],
        });
        let bytes = msg.to_bytes();
        assert_eq!(FhMessage::from_bytes(&bytes), Some(msg));
    }

    #[test]
    fn uplane_roundtrip_preserves_iq_within_quantization() {
        let s = samples(48); // 4 PRBs
        let msg = FhMessage::UPlane(UPlaneMsg {
            hdr: fh_header(Direction::Uplink, slot(), 5, 0),
            start_prb: 10,
            prbs: compress_symbol(&s),
        });
        let bytes = msg.to_bytes();
        let parsed = FhMessage::from_bytes(&bytes).unwrap();
        match parsed {
            FhMessage::UPlane(u) => {
                assert_eq!(u.start_prb, 10);
                let d = decompress_prbs(&u.prbs);
                assert_eq!(d.len(), 48);
                for (a, b) in s.iter().zip(&d) {
                    assert!((*a - *b).abs() < 0.01);
                }
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn to_bytes_is_exactly_sized() {
        let msgs = [
            FhMessage::CPlane(CPlaneMsg {
                hdr: fh_header(Direction::Downlink, slot(), 0, 1),
                sections: vec![CSection {
                    section_id: 1,
                    start_prb: 0,
                    num_prb: 100,
                    beam_id: 0,
                }],
            }),
            FhMessage::UPlane(UPlaneMsg {
                hdr: fh_header(Direction::Uplink, slot(), 5, 0),
                start_prb: 10,
                prbs: compress_symbol(&samples(48)),
            }),
            FhMessage::Shadow(ShadowMsg {
                hdr: fh_header(Direction::Uplink, slot(), 0, 0),
                rnti: 100,
                snr_db_x100: -1234,
                data: Bytes::from(vec![9u8; 37]),
            }),
        ];
        for msg in msgs {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), EcpriHeader::WIRE_LEN + msg.body_len());
            assert_eq!(FhMessage::from_bytes(&bytes), Some(msg));
        }
    }

    #[test]
    fn frame_field_is_sfn_mod_256() {
        let h = fh_header(Direction::Downlink, slot(), 0, 0);
        assert_eq!(h.frame, (300 % 256) as u8);
    }

    #[test]
    fn peek_matches_full_parse() {
        let msg = FhMessage::CPlane(CPlaneMsg {
            hdr: fh_header(Direction::Downlink, slot(), 0, 3),
            sections: vec![],
        });
        let bytes = msg.to_bytes();
        let (t, h) = peek_headers(&bytes).unwrap();
        assert_eq!(t, EcpriMsgType::RtControl);
        assert_eq!(&h, msg.hdr());
    }

    #[test]
    fn truncated_uplane_rejected() {
        let s = samples(24);
        let msg = FhMessage::UPlane(UPlaneMsg {
            hdr: fh_header(Direction::Uplink, slot(), 1, 0),
            start_prb: 0,
            prbs: compress_symbol(&s),
        });
        let bytes = msg.to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 11] {
            assert!(FhMessage::from_bytes(&bytes[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn absurd_counts_rejected() {
        // Craft a C-plane claiming 65535 sections.
        let mut body = Vec::new();
        fh_header(Direction::Downlink, slot(), 0, 0).write(&mut body);
        body.put_u16(u16::MAX);
        let mut out = Vec::new();
        EcpriHeader {
            msg_type: EcpriMsgType::RtControl,
            payload_len: body.len() as u16,
        }
        .write(&mut out);
        out.extend_from_slice(&body);
        assert!(FhMessage::from_bytes(&out).is_none());
    }

    #[test]
    fn compress_symbol_requires_prb_multiple() {
        let s = samples(24);
        assert_eq!(compress_symbol(&s).len(), 2);
    }

    #[test]
    #[should_panic]
    fn compress_symbol_rejects_partial_prb() {
        compress_symbol(&samples(13));
    }
}
