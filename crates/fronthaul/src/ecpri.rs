//! eCPRI framing and the fronthaul application header.
//!
//! O-RAN split 7.2x carries fronthaul messages in Ethernet frames with
//! an eCPRI common header followed by an application header that names
//! the PHY-level frame / subframe / slot / symbol the payload belongs
//! to. Those timing fields are the key to the paper's §5.1 insight:
//! the switch data plane can detect TTI boundaries by parsing them,
//! without being time-synchronized itself.

use bytes::{Buf, BufMut};

/// eCPRI protocol revision nibble used on the wire.
pub const ECPRI_VERSION: u8 = 1;

/// eCPRI message types we use (subset of the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EcpriMsgType {
    /// IQ data — the U-plane.
    IqData,
    /// Real-time control data — the C-plane.
    RtControl,
    /// Vendor extension: decoded PDCCH content (DCI). Real deployments
    /// carry PDCCH as IQ inside the U-plane; we carry its *content*
    /// explicitly so the reproduction does not have to model PDCCH
    /// polar coding (documented substitution, DESIGN.md §2).
    VendorDci,
    /// Vendor extension: decoded PUCCH content (UCI / HARQ feedback),
    /// same substitution as [`EcpriMsgType::VendorDci`].
    VendorUci,
    /// Vendor extension: the "shadow" transport-block payload used by
    /// the reduced-fidelity DSP modes (Sampled/Abstract, DESIGN.md §2),
    /// where not every code block's IQ is physically modeled. Opaque to
    /// the switch, which only parses the timing headers.
    VendorShadow,
}

impl EcpriMsgType {
    pub fn as_u8(self) -> u8 {
        match self {
            EcpriMsgType::IqData => 0x00,
            EcpriMsgType::RtControl => 0x02,
            EcpriMsgType::VendorDci => 0x40,
            EcpriMsgType::VendorUci => 0x41,
            EcpriMsgType::VendorShadow => 0x42,
        }
    }

    pub fn from_u8(v: u8) -> Option<EcpriMsgType> {
        match v {
            0x00 => Some(EcpriMsgType::IqData),
            0x02 => Some(EcpriMsgType::RtControl),
            0x40 => Some(EcpriMsgType::VendorDci),
            0x41 => Some(EcpriMsgType::VendorUci),
            0x42 => Some(EcpriMsgType::VendorShadow),
            _ => None,
        }
    }
}

/// Transfer direction of a fronthaul message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// RU → PHY (received radio samples).
    Uplink,
    /// PHY → RU (samples / control to transmit).
    Downlink,
}

impl Direction {
    pub fn as_u8(self) -> u8 {
        match self {
            Direction::Uplink => 0,
            Direction::Downlink => 1,
        }
    }

    pub fn from_u8(v: u8) -> Option<Direction> {
        match v {
            0 => Some(Direction::Uplink),
            1 => Some(Direction::Downlink),
            _ => None,
        }
    }
}

/// The fronthaul application header carried after the eCPRI common
/// header. `frame` is the SFN modulo 256, as in O-RAN's 8-bit frameId.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FhHeader {
    pub direction: Direction,
    /// SFN mod 256.
    pub frame: u8,
    /// Subframe within the frame (0..10).
    pub subframe: u8,
    /// Slot within the subframe (0..2 at µ=1).
    pub slot: u8,
    /// OFDM symbol within the slot (0..14).
    pub symbol: u8,
    /// RU antenna/eAxC port the message belongs to.
    pub ru_port: u8,
}

impl FhHeader {
    pub const WIRE_LEN: usize = 6;

    pub fn write(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.direction.as_u8());
        buf.put_u8(self.frame);
        buf.put_u8(self.subframe);
        buf.put_u8(self.slot);
        buf.put_u8(self.symbol);
        buf.put_u8(self.ru_port);
    }

    pub fn read(buf: &mut impl Buf) -> Option<FhHeader> {
        if buf.remaining() < Self::WIRE_LEN {
            return None;
        }
        let direction = Direction::from_u8(buf.get_u8())?;
        Some(FhHeader {
            direction,
            frame: buf.get_u8(),
            subframe: buf.get_u8(),
            slot: buf.get_u8(),
            symbol: buf.get_u8(),
            ru_port: buf.get_u8(),
        })
    }

    /// The (frame, subframe, slot) triple as a comparable scalar in
    /// 0..(256*10*2): what the switch's migration matcher compares
    /// against a `migrate_on_slot` command. Wraps every 2.56 s.
    pub fn slot_scalar(&self) -> u16 {
        (self.frame as u16) * 20 + (self.subframe as u16) * 2 + self.slot as u16
    }
}

/// The eCPRI common header (4 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcpriHeader {
    pub msg_type: EcpriMsgType,
    /// Payload bytes following the common header.
    pub payload_len: u16,
}

impl EcpriHeader {
    pub const WIRE_LEN: usize = 4;

    pub fn write(&self, buf: &mut impl BufMut) {
        buf.put_u8(ECPRI_VERSION << 4);
        buf.put_u8(self.msg_type.as_u8());
        buf.put_u16(self.payload_len);
    }

    pub fn read(buf: &mut impl Buf) -> Option<EcpriHeader> {
        if buf.remaining() < Self::WIRE_LEN {
            return None;
        }
        let ver = buf.get_u8() >> 4;
        if ver != ECPRI_VERSION {
            return None;
        }
        let msg_type = EcpriMsgType::from_u8(buf.get_u8())?;
        let payload_len = buf.get_u16();
        Some(EcpriHeader {
            msg_type,
            payload_len,
        })
    }
}

/// Cheap parse of just the headers — what the in-switch middlebox does
/// at line rate. Returns the eCPRI type and the application header
/// without touching the IQ payload.
pub fn peek_headers(payload: &[u8]) -> Option<(EcpriMsgType, FhHeader)> {
    let mut buf = payload;
    let ec = EcpriHeader::read(&mut buf)?;
    let fh = FhHeader::read(&mut buf)?;
    Some((ec.msg_type, fh))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> FhHeader {
        FhHeader {
            direction: Direction::Downlink,
            frame: 200,
            subframe: 7,
            slot: 1,
            symbol: 3,
            ru_port: 2,
        }
    }

    #[test]
    fn fh_header_roundtrip() {
        let h = hdr();
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), FhHeader::WIRE_LEN);
        let parsed = FhHeader::read(&mut &buf[..]).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ecpri_header_roundtrip() {
        let e = EcpriHeader {
            msg_type: EcpriMsgType::RtControl,
            payload_len: 1234,
        };
        let mut buf = Vec::new();
        e.write(&mut buf);
        let parsed = EcpriHeader::read(&mut &buf[..]).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn bad_version_rejected() {
        let e = EcpriHeader {
            msg_type: EcpriMsgType::IqData,
            payload_len: 0,
        };
        let mut buf = Vec::new();
        e.write(&mut buf);
        buf[0] = 0x30; // version 3
        assert!(EcpriHeader::read(&mut &buf[..]).is_none());
    }

    #[test]
    fn short_buffers_rejected() {
        assert!(FhHeader::read(&mut &[0u8; 3][..]).is_none());
        assert!(EcpriHeader::read(&mut &[0u8; 2][..]).is_none());
        assert!(peek_headers(&[0u8; 5]).is_none());
    }

    #[test]
    fn unknown_msg_type_rejected() {
        let buf = [ECPRI_VERSION << 4, 0x07, 0, 0];
        assert!(EcpriHeader::read(&mut &buf[..]).is_none());
    }

    #[test]
    fn peek_parses_both_headers() {
        let mut buf = Vec::new();
        EcpriHeader {
            msg_type: EcpriMsgType::IqData,
            payload_len: 6,
        }
        .write(&mut buf);
        hdr().write(&mut buf);
        buf.extend_from_slice(&[0xAA; 32]); // opaque IQ
        let (t, h) = peek_headers(&buf).unwrap();
        assert_eq!(t, EcpriMsgType::IqData);
        assert_eq!(h, hdr());
    }

    #[test]
    fn slot_scalar_ordering_and_wrap() {
        let a = FhHeader {
            frame: 0,
            subframe: 0,
            slot: 0,
            ..hdr()
        };
        let b = FhHeader {
            frame: 0,
            subframe: 0,
            slot: 1,
            ..hdr()
        };
        let c = FhHeader {
            frame: 0,
            subframe: 1,
            slot: 0,
            ..hdr()
        };
        let d = FhHeader {
            frame: 1,
            subframe: 0,
            slot: 0,
            ..hdr()
        };
        assert!(a.slot_scalar() < b.slot_scalar());
        assert!(b.slot_scalar() < c.slot_scalar());
        assert!(c.slot_scalar() < d.slot_scalar());
        let max = FhHeader {
            frame: 255,
            subframe: 9,
            slot: 1,
            ..hdr()
        };
        assert_eq!(max.slot_scalar(), 256 * 20 - 1);
    }
}
