//! The in-switch fronthaul middlebox (paper §5) and in-switch RAN
//! failure detector (§5.2), written as a program against the
//! `slingshot-switch` match-action/register primitives.
//!
//! Data structures, exactly as in the paper (Fig. 5):
//!
//! - **ID directory** (match-action table): RU MAC → 8-bit RU id.
//! - **PHY directory** (match-action table): PHY MAC → 8-bit PHY id.
//! - **Address directory** (match-action table): PHY id → PHY MAC.
//! - **RU→PHY mapping** (register array, data-plane writable).
//! - **Migration request store** (register array): per-RU pending
//!   `migrate_on_slot` command (slot scalar + destination PHY id).
//! - **Failure-detector counters** (register array): per-PHY counter
//!   reset by each downlink fronthaul packet, incremented by generator
//!   timer packets; saturation at `n` triggers a failure notification.
//!
//! The indirection through 8-bit ids is the paper's key trick for a
//! data-plane-updatable mapping: a full MAC→MAC hash table cannot be
//! updated at line rate, but a 256-entry register array indexed by RU
//! id can (§5.1).

use slingshot_fronthaul::{peek_headers, Direction};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_sim::{Nanos, SlotId, TraceEventKind};
use slingshot_switch::{
    ExactTable, PipelineManifest, PktGenConfig, PortId, RegisterArray, SwitchAction, SwitchProgram,
};

use crate::ctl::{pack_migration_entry, scalar_at_or_after, unpack_migration_entry, CtlPacket};

/// Marker in the failure counter meaning "failure already reported";
/// prevents repeated notifications until the PHY's packets reappear.
const COUNTER_REPORTED: u64 = 0xFF;

/// Cap on queued-but-undrained trace events. The hosting node drains
/// after every `process`/`on_generator_tick` call, so the queue only
/// grows when the middlebox is driven directly (unit tests, benches);
/// the cap keeps those callers allocation-bounded.
const PENDING_TRACE_CAP: usize = 1024;

/// A trace event staged inside the switch program. `SwitchProgram`
/// callbacks have no engine context, so events queue here and the
/// hosting [`crate::SwitchNode`] drains them into the engine trace.
#[derive(Debug, Clone, Copy)]
pub struct PendingTraceEvent {
    pub kind: TraceEventKind,
    pub a: u64,
    pub b: u64,
    /// Slot carried by the triggering packet, if any (else the drain
    /// site stamps the slot derived from the current time).
    pub slot: Option<SlotId>,
}

/// Reconstruct a representative [`SlotId`] from an on-the-wire slot
/// scalar (the 0..5120 value the switch matches on). The scalar only
/// covers 256 frames, so the SFN is modulo 256 — fine for display.
fn slot_from_scalar(scalar: u16) -> SlotId {
    SlotId::from_absolute(scalar as u64)
}

/// The middlebox program state.
pub struct FhMbox {
    /// RU MAC → RU id.
    id_directory: ExactTable,
    /// PHY MAC → PHY id.
    phy_directory: ExactTable,
    /// PHY id → PHY MAC.
    address_directory: ExactTable,
    /// Plain L2 forwarding: MAC → egress port (RUs, PHYs, servers).
    port_table: ExactTable,
    /// RU id → active PHY id.
    ru_to_phy: RegisterArray,
    /// RU id → pending migration request, packed as
    /// (valid << 24) | (dest_phy << 16) | slot_scalar.
    migration_store: RegisterArray,
    /// RU id → pending standby install (spare-pool re-pairing), same
    /// packed layout as `migration_store`. At the boundary the spare's
    /// virtual-PHY mapping goes live in the directories and the PHY is
    /// enrolled in failure detection — the data-plane half of promoting
    /// a pooled spare to hot standby.
    standby_store: RegisterArray,
    /// PHY id → missed-tick counter.
    fail_counters: RegisterArray,
    /// PHY id → enrolled in failure detection (1) or not (0).
    fail_enrolled: RegisterArray,
    /// PHY id → has emitted at least one downlink packet. The detector
    /// arms only after the first heartbeat, so a PHY that is still
    /// booting is not declared dead.
    fail_seen: RegisterArray,
    /// Ascending PHY ids with `fail_enrolled == 1` — a software-side
    /// index over the register array so the 9 µs generator tick scans
    /// only enrolled PHYs instead of the whole register space. Kept in
    /// lockstep with `fail_enrolled`; scan order (ascending) matches the
    /// full-array scan it replaces, so behavior is identical.
    enrolled_scan: Vec<usize>,
    /// Failure detector config (T, n).
    pub detector: PktGenConfig,
    /// Where failure notifications are sent (every L2-side Orion).
    notify_macs: Vec<MacAddr>,
    /// The switch's own MAC for control packets addressed to it.
    pub switch_mac: MacAddr,
    /// Per-PHY downlink heartbeat gap statistics (simulation-side
    /// observability, mirroring the paper's timestamp-and-mirror P4
    /// measurement of §8.6): (last arrival, max gap seen).
    pub dl_gap_stats: Vec<(Nanos, Nanos)>,
    /// Counters for observability.
    pub migrations_executed: u64,
    pub standby_installs: u64,
    pub dl_filtered: u64,
    pub failures_reported: u64,
    pub ctl_packets: u64,
    /// Trace events staged for the hosting node to drain (see
    /// [`PendingTraceEvent`]).
    pending_trace: Vec<PendingTraceEvent>,
    /// Events discarded because `pending_trace` hit its cap (only
    /// possible when nothing drains the queue).
    pub trace_overflow: u64,
    /// Per-PHY scalar of the last slot a `HeartbeatSeen` event was
    /// traced for, +1 (0 = none): heartbeats are coalesced to one trace
    /// event per (PHY, slot) to bound trace volume.
    hb_traced: Vec<u32>,
}

impl FhMbox {
    /// The well-known MAC every fronthaul middlebox answers control
    /// packets on. Shared across leaves in a fabric build: a control
    /// frame addressed here is handled by whichever switch first sees
    /// it (the sender's leaf), and the spine routes switch-addressed
    /// frames from remote senders by the RU id in the payload.
    pub const SWITCH_MAC: MacAddr = MacAddr([0x02, 0x53, 0x57, 0, 0, 1]);

    pub fn new(detector: PktGenConfig, notify_mac: MacAddr) -> FhMbox {
        FhMbox::with_notify_targets(detector, vec![notify_mac])
    }

    /// A middlebox notifying several L2-side Orions (multi-L2
    /// deployments: one notification packet per registered target).
    pub fn with_notify_targets(detector: PktGenConfig, notify_macs: Vec<MacAddr>) -> FhMbox {
        FhMbox {
            id_directory: ExactTable::new("id_directory", 256, 48, 8),
            phy_directory: ExactTable::new("phy_directory", 256, 48, 8),
            address_directory: ExactTable::new("address_directory", 256, 8, 48),
            port_table: ExactTable::new("port_table", 1024, 48, 16),
            ru_to_phy: RegisterArray::new("ru_to_phy", 256, 8),
            migration_store: RegisterArray::new("migration_store", 256, 32),
            standby_store: RegisterArray::new("standby_store", 256, 32),
            enrolled_scan: Vec::new(),
            fail_counters: RegisterArray::new("fail_counters", 256, 8),
            fail_enrolled: RegisterArray::new("fail_enrolled", 256, 1),
            fail_seen: RegisterArray::new("fail_seen", 256, 1),
            detector,
            notify_macs,
            switch_mac: FhMbox::SWITCH_MAC,
            dl_gap_stats: vec![(Nanos::ZERO, Nanos::ZERO); 256],
            migrations_executed: 0,
            standby_installs: 0,
            dl_filtered: 0,
            failures_reported: 0,
            ctl_packets: 0,
            pending_trace: Vec::new(),
            trace_overflow: 0,
            hb_traced: vec![0; 256],
        }
    }

    fn stage_trace(&mut self, kind: TraceEventKind, a: u64, b: u64, slot: Option<SlotId>) {
        if self.pending_trace.len() >= PENDING_TRACE_CAP {
            self.trace_overflow += 1;
            return;
        }
        self.pending_trace
            .push(PendingTraceEvent { kind, a, b, slot });
    }

    /// Take all staged trace events (called by the hosting node after
    /// every program callback).
    pub fn drain_trace(&mut self) -> Vec<PendingTraceEvent> {
        std::mem::take(&mut self.pending_trace)
    }

    /// Control-plane installation of an RU (at deployment time).
    pub fn install_ru(&mut self, ru_id: u8, mac: MacAddr, port: PortId, initial_phy: u8) {
        self.id_directory
            .insert(mac.as_u64(), ru_id as u64)
            .unwrap();
        self.port_table.insert(mac.as_u64(), port.0 as u64).unwrap();
        self.ru_to_phy.write(ru_id as usize, initial_phy as u64);
    }

    /// Control-plane installation of a PHY server.
    pub fn install_phy(&mut self, phy_id: u8, mac: MacAddr, port: PortId) {
        self.phy_directory
            .insert(mac.as_u64(), phy_id as u64)
            .unwrap();
        self.address_directory
            .insert(phy_id as u64, mac.as_u64())
            .unwrap();
        self.port_table.insert(mac.as_u64(), port.0 as u64).unwrap();
    }

    /// Enroll a PHY in failure detection (a PHY that is expected to be
    /// emitting heartbeats — both primary and hot standby).
    pub fn enroll_failure_detection(&mut self, phy_id: u8) {
        self.fail_enrolled.write(phy_id as usize, 1);
        self.fail_counters.write(phy_id as usize, 0);
        if let Err(at) = self.enrolled_scan.binary_search(&(phy_id as usize)) {
            self.enrolled_scan.insert(at, phy_id as usize);
        }
    }

    pub fn unenroll_failure_detection(&mut self, phy_id: u8) {
        self.fail_enrolled.write(phy_id as usize, 0);
        self.fail_seen.write(phy_id as usize, 0);
        if let Ok(at) = self.enrolled_scan.binary_search(&(phy_id as usize)) {
            self.enrolled_scan.remove(at);
        }
    }

    /// Plain (non-fronthaul) host installation: servers, Orion nodes.
    pub fn install_host(&mut self, mac: MacAddr, port: PortId) {
        self.port_table.insert(mac.as_u64(), port.0 as u64).unwrap();
    }

    /// Maximum observed inter-packet gap in a PHY's downlink stream.
    pub fn max_dl_gap(&self, phy_id: u8) -> Nanos {
        self.dl_gap_stats[phy_id as usize].1
    }

    /// Control-plane remap: write the RU→PHY mapping directly, as a
    /// table-update RPC would — *not* aligned to any slot boundary.
    /// Used by the migration-path ablation; the real Slingshot path is
    /// the data-plane migration request store.
    pub fn control_plane_remap(&mut self, ru_id: u8, phy_id: u8) {
        let old = self.ru_to_phy.read(ru_id as usize);
        self.ru_to_phy.write(ru_id as usize, phy_id as u64);
        self.migration_store.write(ru_id as usize, 0);
        self.stage_trace(
            TraceEventKind::MapFlip,
            ru_id as u64,
            (old << 16) | phy_id as u64,
            None,
        );
    }

    /// The currently active PHY for an RU.
    pub fn active_phy(&mut self, ru_id: u8) -> u8 {
        self.ru_to_phy.read(ru_id as usize) as u8
    }

    /// The armed-but-unexecuted migration request for an RU, if any:
    /// `(dest_phy, slot_scalar)`.
    pub fn pending_migration(&mut self, ru_id: u8) -> Option<(u8, u16)> {
        unpack_migration_entry(self.migration_store.read(ru_id as usize))
    }

    fn forward_by_table(&mut self, frame: Frame) -> Vec<SwitchAction> {
        match self.port_table.lookup(frame.dst.as_u64()) {
            Some(port) => vec![SwitchAction::Forward {
                port: PortId(port as u16),
                frame,
            }],
            None => vec![SwitchAction::Drop],
        }
    }

    /// Check the migration request store against a packet's slot and
    /// execute the remap in the data plane if it matches (§5.1).
    fn maybe_migrate(&mut self, ru_id: u8, slot_scalar: u16) {
        let req = self.migration_store.read(ru_id as usize);
        let Some((dest, boundary)) = unpack_migration_entry(req) else {
            return;
        };
        if scalar_at_or_after(slot_scalar, boundary) {
            let old = self.ru_to_phy.read(ru_id as usize);
            self.ru_to_phy.write(ru_id as usize, dest as u64);
            self.migration_store.write(ru_id as usize, 0);
            self.migrations_executed += 1;
            self.stage_trace(
                TraceEventKind::MapFlip,
                ru_id as u64,
                (old << 16) | dest as u64,
                Some(slot_from_scalar(slot_scalar)),
            );
        }
    }

    /// Check the standby request store and, at the boundary, install the
    /// granted spare's virtual-PHY mapping: PHY/address directory
    /// entries plus failure-detector enrollment. The RU→PHY map is NOT
    /// touched — the spare comes up as hot standby, its downlink
    /// filtered until a later migration makes it active.
    fn maybe_install_standby(&mut self, ru_id: u8, slot_scalar: u16) {
        let req = self.standby_store.read(ru_id as usize);
        let Some((phy, boundary)) = unpack_migration_entry(req) else {
            return;
        };
        if scalar_at_or_after(slot_scalar, boundary) {
            let mac = MacAddr::for_phy(phy);
            // ExactTable::insert overwrites on duplicate keys, so
            // re-installing a scrubbed ex-primary is idempotent.
            let _ = self.phy_directory.insert(mac.as_u64(), phy as u64);
            let _ = self.address_directory.insert(phy as u64, mac.as_u64());
            self.enroll_failure_detection(phy);
            // A recycled ex-primary carries `fail_seen` from its previous
            // life; clear it so the detector re-arms only on the first
            // heartbeat of the new incarnation (no false positive while
            // the replayed init-FAPI is still in flight).
            self.fail_seen.write(phy as usize, 0);
            self.standby_store.write(ru_id as usize, 0);
            self.standby_installs += 1;
        }
    }

    /// The resource manifest of this pipeline, for the §8.6 estimate.
    pub fn manifest(rus: u32, phys: u32) -> PipelineManifest {
        PipelineManifest::default()
            .table("id_directory", rus, 48, 8)
            .table("phy_directory", phys, 48, 8)
            .table("address_directory", phys, 8, 48)
            .table("port_table", rus + phys + 8, 48, 16)
            .register("ru_to_phy", rus, 8, 1)
            .register("migration_store", rus, 32, 1)
            .register("standby_store", rus, 32, 1)
            .register("fail_counters", phys, 8, 1)
            .register("fail_enrolled", phys, 1, 1)
            .register("fail_seen", phys, 1, 1)
            // Branch points: direction, ethertype, migration-match,
            // DL-filter, counter-saturation, notify path.
            .with_gateways(27)
    }
}

impl SwitchProgram for FhMbox {
    fn process(&mut self, now: Nanos, _ingress: PortId, frame: Frame) -> Vec<SwitchAction> {
        match frame.ethertype {
            EtherType::SlingshotCtl if frame.dst == self.switch_mac => {
                self.ctl_packets += 1;
                match CtlPacket::from_bytes(&frame.payload) {
                    Some(CtlPacket::MigrateOnSlot {
                        ru_id,
                        dest_phy_id,
                        slot_scalar,
                    }) => {
                        let packed = pack_migration_entry(dest_phy_id, slot_scalar);
                        self.migration_store.write(ru_id as usize, packed);
                        self.stage_trace(
                            TraceEventKind::MigrateArmed,
                            ru_id as u64,
                            ((dest_phy_id as u64) << 16) | slot_scalar as u64,
                            Some(slot_from_scalar(slot_scalar)),
                        );
                    }
                    Some(CtlPacket::InstallStandby {
                        ru_id,
                        phy_id,
                        slot_scalar,
                    }) => {
                        // Stage the spare's virtual-PHY install; executed
                        // at the slot boundary by the data plane, same
                        // mechanism as migrate_on_slot.
                        let packed = pack_migration_entry(phy_id, slot_scalar);
                        self.standby_store.write(ru_id as usize, packed);
                    }
                    _ => {}
                }
                vec![SwitchAction::Drop]
            }
            EtherType::Ecpri => {
                let Some((_, hdr)) = peek_headers(&frame.payload) else {
                    return vec![SwitchAction::Drop];
                };
                match hdr.direction {
                    Direction::Uplink => {
                        // RU → PHY: translate the virtual PHY address.
                        let Some(ru_id) = self.id_directory.lookup(frame.src.as_u64()) else {
                            return vec![SwitchAction::Drop];
                        };
                        let ru_id = ru_id as u8;
                        self.maybe_migrate(ru_id, hdr.slot_scalar());
                        self.maybe_install_standby(ru_id, hdr.slot_scalar());
                        let phy_id = self.ru_to_phy.read(ru_id as usize);
                        let Some(mac) = self.address_directory.lookup(phy_id) else {
                            return vec![SwitchAction::Drop];
                        };
                        let mut f = frame;
                        f.dst = MacAddr::from_u64(mac);
                        self.forward_by_table(f)
                    }
                    Direction::Downlink => {
                        // PHY → RU: reset the heartbeat counter, run the
                        // migration matcher, and filter inactive PHYs.
                        let Some(phy_id) = self.phy_directory.lookup(frame.src.as_u64()) else {
                            return vec![SwitchAction::Drop];
                        };
                        self.fail_counters.write(phy_id as usize, 0);
                        if self.fail_seen.read(phy_id as usize) == 0
                            && self.fail_enrolled.read(phy_id as usize) == 1
                        {
                            // First heartbeat from an enrolled PHY arms
                            // its detector.
                            self.stage_trace(
                                TraceEventKind::DetectorArmed,
                                phy_id,
                                0,
                                Some(slot_from_scalar(hdr.slot_scalar())),
                            );
                        }
                        self.fail_seen.write(phy_id as usize, 1);
                        // Heartbeats are the highest-volume event in the
                        // system; trace at most one per (PHY, slot).
                        let scalar = hdr.slot_scalar();
                        if self.hb_traced[phy_id as usize] != scalar as u32 + 1 {
                            self.hb_traced[phy_id as usize] = scalar as u32 + 1;
                            self.stage_trace(
                                TraceEventKind::HeartbeatSeen,
                                phy_id,
                                scalar as u64,
                                Some(slot_from_scalar(scalar)),
                            );
                        }
                        {
                            let (last, max_gap) = &mut self.dl_gap_stats[phy_id as usize];
                            if last.0 > 0 {
                                let gap = now.saturating_sub(*last);
                                if gap > *max_gap {
                                    *max_gap = gap;
                                }
                            }
                            *last = now;
                        }
                        let Some(ru_id) = self.id_directory.lookup(frame.dst.as_u64()) else {
                            return vec![SwitchAction::Drop];
                        };
                        let ru_id = ru_id as u8;
                        self.maybe_migrate(ru_id, hdr.slot_scalar());
                        self.maybe_install_standby(ru_id, hdr.slot_scalar());
                        let active = self.ru_to_phy.read(ru_id as usize);
                        if active != phy_id {
                            // The hot standby's downlink never reaches
                            // the RU (§5: "blocking downlink
                            // control-plane packets from a hot-standby
                            // secondary PHY").
                            self.dl_filtered += 1;
                            self.stage_trace(
                                TraceEventKind::DlFiltered,
                                phy_id,
                                hdr.slot_scalar() as u64,
                                Some(slot_from_scalar(hdr.slot_scalar())),
                            );
                            return vec![SwitchAction::Drop];
                        }
                        self.forward_by_table(frame)
                    }
                }
            }
            // Everything else (Orion UDP, user plane): plain forwarding.
            _ => self.forward_by_table(frame),
        }
    }

    fn on_generator_tick(&mut self, _now: Nanos) -> Vec<SwitchAction> {
        let n = self.detector.ticks_per_period as u64;
        let mut out = Vec::new();
        for i in 0..self.enrolled_scan.len() {
            let phy = self.enrolled_scan[i];
            if self.fail_seen.read(phy) == 0 {
                continue;
            }
            let c = self.fail_counters.read(phy);
            if c == COUNTER_REPORTED {
                continue;
            }
            let c = c + 1;
            if c >= n.min(COUNTER_REPORTED - 1) {
                // Saturated: the timer packet is reformatted into a
                // failure notification (§5.2.2). The trace event carries
                // the last heartbeat's arrival time so detection latency
                // (= now − last heartbeat, §5.2) is derivable from the
                // trace alone.
                self.fail_counters.write(phy, COUNTER_REPORTED);
                self.failures_reported += 1;
                let last_heartbeat = self.dl_gap_stats[phy].0;
                self.stage_trace(
                    TraceEventKind::DetectorSaturated,
                    phy as u64,
                    last_heartbeat.0,
                    None,
                );
                let pkt = CtlPacket::FailureNotify { phy_id: phy as u8 };
                for (i, mac) in self.notify_macs.clone().into_iter().enumerate() {
                    let frame = Frame::new(
                        mac,
                        self.switch_mac,
                        EtherType::SlingshotCtl,
                        pkt.to_bytes(),
                    );
                    self.stage_trace(
                        TraceEventKind::FailureNotifySent,
                        phy as u64,
                        i as u64,
                        None,
                    );
                    out.extend(self.forward_by_table(frame));
                }
            } else {
                // One progress event per outage, at half saturation —
                // tracing every 9 µs tick would flood the ring.
                if c == n / 2 {
                    self.stage_trace(TraceEventKind::DetectorTick, phy as u64, c, None);
                }
                self.fail_counters.write(phy, c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use slingshot_fronthaul::{fh_header, CPlaneMsg, FhMessage, UPlaneMsg};
    use slingshot_sim::SlotId;
    use slingshot_switch::{estimate, ResourceBudget};

    fn mbox() -> FhMbox {
        let mut m = FhMbox::new(PktGenConfig::paper_default(), MacAddr::for_l2(0));
        m.install_ru(0, MacAddr::for_ru(0), PortId(1), 1);
        m.install_phy(1, MacAddr::for_phy(1), PortId(2));
        m.install_phy(2, MacAddr::for_phy(2), PortId(3));
        m.install_host(MacAddr::for_l2(0), PortId(4));
        m
    }

    fn ul_frame(slot: SlotId) -> Frame {
        let msg = FhMessage::UPlane(UPlaneMsg {
            hdr: fh_header(slingshot_fronthaul::Direction::Uplink, slot, 0, 0),
            start_prb: 0,
            prbs: vec![],
        });
        Frame::new(
            MacAddr::virtual_phy(0),
            MacAddr::for_ru(0),
            EtherType::Ecpri,
            msg.to_bytes(),
        )
    }

    fn dl_frame(from_phy: u8, slot: SlotId) -> Frame {
        let msg = FhMessage::CPlane(CPlaneMsg {
            hdr: fh_header(slingshot_fronthaul::Direction::Downlink, slot, 0, 0),
            sections: vec![],
        });
        Frame::new(
            MacAddr::for_ru(0),
            MacAddr::for_phy(from_phy),
            EtherType::Ecpri,
            msg.to_bytes(),
        )
    }

    fn slot(abs: u64) -> SlotId {
        SlotId::from_absolute(abs)
    }

    fn fwd_port(actions: &[SwitchAction]) -> Option<PortId> {
        actions.first().and_then(SwitchAction::forward_to)
    }

    #[test]
    fn uplink_translated_to_active_phy() {
        let mut m = mbox();
        let acts = m.process(Nanos(0), PortId(1), ul_frame(slot(10)));
        assert_eq!(fwd_port(&acts), Some(PortId(2)));
        match &acts[0] {
            SwitchAction::Forward { frame, .. } => {
                assert_eq!(frame.dst, MacAddr::for_phy(1), "virtual address rewritten");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn downlink_from_standby_is_filtered() {
        let mut m = mbox();
        let acts = m.process(Nanos(0), PortId(3), dl_frame(2, slot(10)));
        assert_eq!(acts, vec![SwitchAction::Drop]);
        assert_eq!(m.dl_filtered, 1);
        // Active PHY's downlink passes.
        let acts = m.process(Nanos(0), PortId(2), dl_frame(1, slot(10)));
        assert_eq!(fwd_port(&acts), Some(PortId(1)));
    }

    #[test]
    fn migration_executes_exactly_at_boundary() {
        let mut m = mbox();
        // Command: migrate RU 0 to PHY 2 at slot 100.
        let cmd = CtlPacket::MigrateOnSlot {
            ru_id: 0,
            dest_phy_id: 2,
            slot_scalar: 100,
        };
        let switch_mac = m.switch_mac;
        m.process(
            Nanos(0),
            PortId(4),
            Frame::new(
                switch_mac,
                MacAddr::for_l2(0),
                EtherType::SlingshotCtl,
                cmd.to_bytes(),
            ),
        );
        // Slot 99: still the old PHY.
        let acts = m.process(Nanos(0), PortId(1), ul_frame(slot(99)));
        match &acts[0] {
            SwitchAction::Forward { frame, .. } => assert_eq!(frame.dst, MacAddr::for_phy(1)),
            _ => panic!(),
        }
        assert_eq!(m.migrations_executed, 0);
        // Slot 100: remapped in the data plane by this very packet.
        let acts = m.process(Nanos(0), PortId(1), ul_frame(slot(100)));
        match &acts[0] {
            SwitchAction::Forward { frame, .. } => assert_eq!(frame.dst, MacAddr::for_phy(2)),
            _ => panic!(),
        }
        assert_eq!(m.migrations_executed, 1);
        assert_eq!(m.active_phy(0), 2);
        // Old PHY's downlink now filtered; new PHY's passes.
        assert_eq!(
            m.process(Nanos(0), PortId(2), dl_frame(1, slot(101))),
            vec![SwitchAction::Drop]
        );
        assert!(fwd_port(&m.process(Nanos(0), PortId(3), dl_frame(2, slot(101)))).is_some());
    }

    #[test]
    fn migration_triggered_by_downlink_too() {
        let mut m = mbox();
        let cmd = CtlPacket::MigrateOnSlot {
            ru_id: 0,
            dest_phy_id: 2,
            slot_scalar: 50,
        };
        let switch_mac = m.switch_mac;
        m.process(
            Nanos(0),
            PortId(4),
            Frame::new(
                switch_mac,
                MacAddr::ZERO,
                EtherType::SlingshotCtl,
                cmd.to_bytes(),
            ),
        );
        // A downlink packet from the *new* PHY for slot 50 executes the
        // migration even before any uplink packet arrives.
        let acts = m.process(Nanos(0), PortId(3), dl_frame(2, slot(50)));
        assert!(fwd_port(&acts).is_some());
        assert_eq!(m.active_phy(0), 2);
    }

    #[test]
    fn migration_wraps_across_frame_epoch() {
        let mut m = mbox();
        let cmd = CtlPacket::MigrateOnSlot {
            ru_id: 0,
            dest_phy_id: 2,
            slot_scalar: 2, // just after the 5120-scalar wrap
        };
        let switch_mac = m.switch_mac;
        m.process(
            Nanos(0),
            PortId(4),
            Frame::new(
                switch_mac,
                MacAddr::ZERO,
                EtherType::SlingshotCtl,
                cmd.to_bytes(),
            ),
        );
        // Slot scalar 5118 (= before the wrap) must NOT trigger.
        let acts = m.process(Nanos(0), PortId(1), ul_frame(slot(5118)));
        match &acts[0] {
            SwitchAction::Forward { frame, .. } => assert_eq!(frame.dst, MacAddr::for_phy(1)),
            _ => panic!(),
        }
        // Scalar 3 (after wrap) triggers.
        let acts = m.process(Nanos(0), PortId(1), ul_frame(slot(5120 + 3)));
        match &acts[0] {
            SwitchAction::Forward { frame, .. } => assert_eq!(frame.dst, MacAddr::for_phy(2)),
            _ => panic!(),
        }
    }

    #[test]
    fn failure_detector_fires_after_n_ticks() {
        let mut m = mbox();
        m.enroll_failure_detection(1);
        let n = m.detector.ticks_per_period;
        // Before the first heartbeat the detector stays disarmed (a
        // booting PHY must not be declared dead).
        for _ in 0..3 * n {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        assert_eq!(m.failures_reported, 0);
        // Healthy: packets keep resetting the counter.
        for _ in 0..3 * n {
            m.process(Nanos(0), PortId(2), dl_frame(1, slot(1)));
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        // PHY dies: counter saturates after n ticks.
        let mut notified = Vec::new();
        for _ in 0..n {
            notified.extend(m.on_generator_tick(Nanos(0)));
        }
        assert_eq!(m.failures_reported, 1);
        assert_eq!(notified.len(), 1);
        match &notified[0] {
            SwitchAction::Forward { frame, .. } => {
                assert_eq!(frame.dst, MacAddr::for_l2(0));
                assert_eq!(
                    CtlPacket::from_bytes(&frame.payload),
                    Some(CtlPacket::FailureNotify { phy_id: 1 })
                );
            }
            _ => panic!("expected notification"),
        }
        // No repeated notifications while still dead.
        for _ in 0..3 * n {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        // PHY comes back: counter resets, detection re-arms.
        m.process(Nanos(0), PortId(2), dl_frame(1, slot(2)));
        for _ in 0..n {
            let _ = m.on_generator_tick(Nanos(0));
        }
        assert_eq!(m.failures_reported, 2);
    }

    #[test]
    fn detector_saturates_at_exactly_n_ticks() {
        // The paper's configuration: T = 450 µs emulated by n = 50
        // ticks of 9 µs. Saturation must happen on the 50th tick after
        // the last heartbeat — not the 49th, not the 51st.
        let mut m = mbox();
        let cfg = m.detector;
        assert_eq!(cfg.ticks_per_period, 50);
        assert_eq!(
            Nanos(cfg.tick_interval().0 * cfg.ticks_per_period as u64),
            Nanos::from_micros(450)
        );
        m.enroll_failure_detection(1);
        m.process(Nanos(0), PortId(2), dl_frame(1, slot(1)));
        for tick in 1..cfg.ticks_per_period {
            assert!(
                m.on_generator_tick(Nanos(0)).is_empty(),
                "notified early at tick {tick}"
            );
        }
        assert_eq!(m.failures_reported, 0);
        let out = m.on_generator_tick(Nanos(0));
        assert_eq!(m.failures_reported, 1, "must saturate exactly at n");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn detector_reset_race_with_inflight_packet() {
        // A heartbeat that lands one tick before saturation must fully
        // reset the counter: the next notification needs n more ticks,
        // not one.
        let mut m = mbox();
        let n = m.detector.ticks_per_period;
        m.enroll_failure_detection(1);
        m.process(Nanos(0), PortId(2), dl_frame(1, slot(1)));
        for _ in 0..n - 1 {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        // The in-flight packet arrives with the counter at n-1.
        m.process(Nanos(0), PortId(2), dl_frame(1, slot(2)));
        for _ in 0..n - 1 {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        assert_eq!(m.failures_reported, 0, "reset must win the race");
        assert!(!m.on_generator_tick(Nanos(0)).is_empty());
        assert_eq!(m.failures_reported, 1);
        // The mirror race: a packet that was in flight when the counter
        // saturated arrives *after* the notification. It clears the
        // reported marker, so a subsequent outage is detected afresh
        // after n ticks (and not a single tick).
        m.process(Nanos(0), PortId(2), dl_frame(1, slot(3)));
        for _ in 0..n - 1 {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        assert_eq!(m.failures_reported, 1);
        assert!(!m.on_generator_tick(Nanos(0)).is_empty());
        assert_eq!(m.failures_reported, 2);
    }

    #[test]
    fn standby_install_executes_at_boundary() {
        let mut m = mbox();
        // PHY 3 is a pooled spare: the switch knows its port (plain
        // host) but it has no virtual-PHY identity yet.
        m.install_host(MacAddr::for_phy(3), PortId(5));
        assert_eq!(
            m.process(Nanos(0), PortId(5), dl_frame(3, slot(10))),
            vec![SwitchAction::Drop],
            "un-installed spare's fronthaul is unknown-source dropped"
        );
        assert_eq!(m.dl_filtered, 0);
        let cmd = CtlPacket::InstallStandby {
            ru_id: 0,
            phy_id: 3,
            slot_scalar: 100,
        };
        let switch_mac = m.switch_mac;
        m.process(
            Nanos(0),
            PortId(4),
            Frame::new(
                switch_mac,
                MacAddr::ZERO,
                EtherType::SlingshotCtl,
                cmd.to_bytes(),
            ),
        );
        // Before the boundary nothing is installed.
        m.process(Nanos(0), PortId(1), ul_frame(slot(99)));
        assert_eq!(m.standby_installs, 0);
        // An uplink packet at the boundary slot executes the install in
        // the data plane.
        m.process(Nanos(0), PortId(1), ul_frame(slot(100)));
        assert_eq!(m.standby_installs, 1);
        // The spare now has a virtual-PHY identity: its downlink is
        // recognized (and standby-filtered, since RU 0 is still active
        // on PHY 1), and the failure detector is enrolled.
        assert_eq!(
            m.process(Nanos(0), PortId(5), dl_frame(3, slot(101))),
            vec![SwitchAction::Drop]
        );
        assert_eq!(m.dl_filtered, 1, "now filtered as hot standby, not unknown");
        // Active mapping untouched — the spare is standby, not primary.
        assert_eq!(m.active_phy(0), 1);
        // Heartbeats arm its detector; silence then saturates it.
        let n = m.detector.ticks_per_period;
        for _ in 0..n {
            let _ = m.on_generator_tick(Nanos(0));
        }
        assert_eq!(m.failures_reported, 1, "enrolled spare is monitored");
    }

    #[test]
    fn unenrolled_phy_not_monitored() {
        let mut m = mbox();
        m.enroll_failure_detection(1);
        m.unenroll_failure_detection(1);
        for _ in 0..200 {
            assert!(m.on_generator_tick(Nanos(0)).is_empty());
        }
        assert_eq!(m.failures_reported, 0);
    }

    #[test]
    fn unknown_sources_dropped() {
        let mut m = mbox();
        let mut f = ul_frame(slot(1));
        f.src = MacAddr([9; 6]);
        assert_eq!(m.process(Nanos(0), PortId(9), f), vec![SwitchAction::Drop]);
    }

    #[test]
    fn non_fronthaul_traffic_forwarded_plain() {
        let mut m = mbox();
        let f = Frame::new(
            MacAddr::for_l2(0),
            MacAddr::for_phy(1),
            EtherType::Ipv4,
            Bytes::from_static(b"orion udp"),
        );
        assert_eq!(
            fwd_port(&m.process(Nanos(0), PortId(2), f)),
            Some(PortId(4))
        );
    }

    #[test]
    fn resources_fit_at_256_rus() {
        let usage = estimate(&FhMbox::manifest(256, 256), &ResourceBudget::default());
        assert!(usage.fits(), "{usage:?}");
        // Paper §8.6 scale: each resource in single-digit to low-teens %.
        assert!(usage.crossbar < 0.20, "crossbar={}", usage.crossbar);
        assert!(usage.alu < 0.25, "alu={}", usage.alu);
        assert!(usage.gateway < 0.25, "gateway={}", usage.gateway);
        assert!(usage.sram < 0.15, "sram={}", usage.sram);
        assert!(usage.hash_bits < 0.20, "hash={}", usage.hash_bits);
    }
}
