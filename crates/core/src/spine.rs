//! The spine switch of a leaf/spine fronthaul fabric.
//!
//! City-scale builds shard cells into groups, each behind its own leaf
//! switch (a full [`crate::FhMbox`] middlebox). The spine stitches the
//! leaves to the shared spine-side services — recovery orchestrator,
//! pooled spare PHYs and their Orion agents — and is deliberately *not*
//! a middlebox: it keeps no PHY/RU directories and runs no failure
//! detector (those stay leaf-local, preserving the paper's in-switch
//! detection latency). It forwards by a static host table, with one
//! special case: a Slingshot control frame addressed to the well-known
//! switch MAC (e.g. the orchestrator's `InstallStandby`) has no unique
//! host destination, so the spine peeks at the control payload's RU id
//! and relays the frame to the leaf that owns that cell.

use std::collections::HashMap;

use slingshot_netsim::{EtherType, MacAddr};
use slingshot_ran::Msg;
use slingshot_sim::{Ctx, Instrument, InstrumentSink, Node, NodeId, SimRng};
use slingshot_switch::PortId;

use crate::ctl::CtlPacket;
use crate::fh_mbox::FhMbox;
use crate::switch_node::ForwardingModel;

/// A MAC-table forwarder joining leaf switches to spine-side services.
pub struct SpineSwitchNode {
    /// Host MAC → egress port.
    routes: HashMap<MacAddr, PortId>,
    /// RU id → the port of the leaf owning that cell (control-frame
    /// relay table).
    ru_ports: HashMap<u8, PortId>,
    /// Port → attached engine node.
    ports: HashMap<PortId, NodeId>,
    model: ForwardingModel,
    rng: SimRng,
    pub forwarded: u64,
    pub dropped: u64,
    /// Switch-addressed control frames relayed by RU-id peek.
    pub ctl_relayed: u64,
}

impl SpineSwitchNode {
    pub fn new(model: ForwardingModel, rng: SimRng) -> SpineSwitchNode {
        SpineSwitchNode {
            routes: HashMap::new(),
            ru_ports: HashMap::new(),
            ports: HashMap::new(),
            model,
            rng,
            forwarded: 0,
            dropped: 0,
            ctl_relayed: 0,
        }
    }

    /// Route frames for `mac` out of `port`.
    pub fn install_host(&mut self, mac: MacAddr, port: PortId) {
        self.routes.insert(mac, port);
    }

    /// Relay switch-addressed control frames concerning `ru_id` out of
    /// `port` (the owning leaf's port).
    pub fn install_ru_route(&mut self, ru_id: u8, port: PortId) {
        self.ru_ports.insert(ru_id, port);
    }

    /// Attach an engine node to a spine port.
    pub fn attach(&mut self, port: PortId, node: NodeId) {
        self.ports.insert(port, node);
    }

    fn egress_for(&self, frame: &slingshot_netsim::Frame) -> Option<PortId> {
        if frame.ethertype == EtherType::SlingshotCtl && frame.dst == FhMbox::SWITCH_MAC {
            // No unique host owns the switch MAC; the control payload's
            // RU id names the cell — and hence the leaf — it concerns.
            return CtlPacket::from_bytes(&frame.payload)
                .and_then(|pkt| pkt.ru_id())
                .and_then(|ru| self.ru_ports.get(&ru).copied());
        }
        self.routes.get(&frame.dst).copied()
    }
}

impl Instrument for SpineSwitchNode {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "forwarded_frames", self.forwarded);
        sink.counter(scope, "dropped_frames", self.dropped);
        sink.counter(scope, "ctl_relayed", self.ctl_relayed);
    }
}

impl Node<Msg> for SpineSwitchNode {
    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Eth(frame) = msg else { return };
        let is_ctl_relay =
            frame.ethertype == EtherType::SlingshotCtl && frame.dst == FhMbox::SWITCH_MAC;
        let Some(node) = self.egress_for(&frame).and_then(|p| self.ports.get(&p)) else {
            self.dropped += 1;
            return;
        };
        let node = *node;
        let delay = self.model.delay(&mut self.rng);
        ctx.send_link_in(node, delay, Msg::Eth(frame));
        self.forwarded += 1;
        if is_ctl_relay {
            self.ctl_relayed += 1;
        }
    }
}
