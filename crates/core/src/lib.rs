//! # slingshot
//!
//! The paper's primary contribution: transparent resilience for the
//! vRAN PHY layer via stateless PHY migration, built from:
//!
//! - [`fh_mbox`]: the in-switch fronthaul middlebox (§5) — virtual PHY
//!   addresses, an ID-indirected data-plane-updatable RU→PHY mapping,
//!   the migration request store, downlink filtering of standby PHYs —
//!   and the in-switch failure detector (§5.2) that uses downlink
//!   fronthaul packets as natural heartbeats.
//! - [`orion`]: the L2↔PHY FAPI middlebox (§6) — lean stateless UDP
//!   transport, null-FAPI hot standby, response filtering, duplicated
//!   initialization, migration initiation, and pipelined-slot draining.
//! - [`ctl`]: the `migrate_on_slot` / failure-notification packets.
//! - [`switch_node`]: the engine node hosting the middlebox program,
//!   with in-switch vs software forwarding models (the §5 ablation).
//! - [`deployment`]: a builder wiring the full testbed of Fig. 4(b).
//! - [`chaos`]: the deployment-aware chaos runner — expands
//!   `slingshot_sim::chaos` scenarios into timed kill/stall/degrade
//!   operations against the live topology and judges the resulting
//!   event trace with the invariant oracle.

pub mod chaos;
pub mod ctl;
pub mod deployment;
pub mod fh_mbox;
pub mod multi_ru;
pub mod nfapi;
pub mod orion;
pub mod recovery;
pub mod spine;
pub mod switch_node;

pub use chaos::{
    chaos_deployment, chaos_pool_deployment, expectations_for, run_scenario, run_scenario_with,
    ChaosRunner,
};
pub use ctl::CtlPacket;
pub use deployment::{
    CellDeployment, Deployment, DeploymentBuilder, DeploymentConfig, L2_ID, PRIMARY_PHY_ID, RU_ID,
    SECONDARY_PHY_ID, SPARE_PHY_ID,
};
pub use fh_mbox::FhMbox;
pub use multi_ru::{CellNodes, DualRuDeployment};
pub use orion::{orion_l2_mac, orion_phy_mac, OrionCost, OrionL2Node, OrionPhyNode};
pub use recovery::{recovery_mac, RecoveryOrchestrator};
pub use spine::SpineSwitchNode;
pub use switch_node::{ForwardingModel, SwitchNode};
