//! Chaos runner: applies [`slingshot_sim::chaos`] scenarios to a live
//! [`Deployment`].
//!
//! The scenario DSL is deployment-agnostic data (symbolic targets,
//! slot-scheduled fault kinds); this module is the part that knows the
//! Fig. 4(b) topology. Each fault expands into one or two timed
//! primitive operations (kill, stall, link degrade + restore, process
//! restart, control-plane post), and the runner drives the engine
//! `run_until` each operation's instant before applying it. Symbolic
//! targets are resolved *at apply time* — "the active PHY" after an
//! earlier failover in the same scenario is the post-failover owner,
//! read from the switch's own data-plane RU→PHY register.
//!
//! Everything is deterministic: the engine's seeded RNG covers the
//! probabilistic link faults, and the runner itself draws no
//! randomness, so a `(deployment seed, scenario)` pair always produces
//! a byte-identical event trace.

use std::collections::HashMap;

use slingshot_ran::{CellConfig, CtlMsg, Fidelity, Msg, PhyNode, UeConfig};
use slingshot_sim::chaos::{oracle, FaultKind, FaultTarget, Scenario};
use slingshot_sim::{LinkParams, Nanos, NodeId, SLOT_DURATION};
use slingshot_transport::{UdpCbrSource, UdpSink};

use crate::deployment::{
    Deployment, DeploymentConfig, PRIMARY_PHY_ID, RU_ID, SECONDARY_PHY_ID, SPARE_PHY_ID,
};
use crate::orion::OrionL2Node;
use crate::switch_node::SwitchNode;

/// Simulated time of an absolute slot's start (the deployment's slot
/// clock has epoch 0).
fn slot_time(abs_slot: u64) -> Nanos {
    Nanos(abs_slot * SLOT_DURATION.0)
}

/// How a link-level fault rewrites a link's parameters for its window.
#[derive(Debug, Clone, Copy)]
enum LinkPatch {
    /// Drop everything.
    Partition,
    /// Random drop with probability `p`.
    Loss(f64),
    /// Random payload corruption with probability `p`.
    Corrupt(f64),
    /// Random duplication with probability `p`.
    Dup(f64),
    /// Random reordering: hold a packet back by the given delay with
    /// probability `p`.
    Reorder(f64, Nanos),
}

impl LinkPatch {
    fn apply(self, params: &mut LinkParams) {
        match self {
            LinkPatch::Partition => params.drop_chance = 1.0,
            LinkPatch::Loss(p) => params.drop_chance = p,
            LinkPatch::Corrupt(p) => params.corrupt_chance = p,
            LinkPatch::Dup(p) => params.dup_chance = p,
            LinkPatch::Reorder(p, hold) => {
                params.reorder_chance = p;
                params.reorder_hold = hold;
            }
        }
    }
}

/// One primitive operation at one instant. `fault` indexes the
/// originating fault in the sorted schedule so paired begin/end
/// operations (stall/unstall, degrade/restore, kill/restart) share
/// state resolved when the window opened.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// SIGKILL a PHY process (resolved from a symbolic target).
    Kill(FaultTarget),
    /// Wedge a PHY's poll loop (alive but missing every deadline).
    Stall(FaultTarget),
    /// Release a wedged PHY.
    Unstall,
    /// Save and rewrite the target's link parameters.
    Degrade(FaultTarget, LinkPatch),
    /// Restore the link parameters saved by the paired `Degrade`.
    Restore,
    /// Kill a process that will come back (Orion restart).
    KillProcess(FaultTarget),
    /// Revive the process killed by the paired `KillProcess`, re-running
    /// its startup path with retained configuration.
    RestartProcess,
    /// Post `n` planned-migration requests to the L2-side Orion, spaced
    /// 10 µs apart (1 = a planned migration, >1 = a request storm).
    PostPlanned(u32),
}

/// Applies one [`Scenario`] to one [`Deployment`].
pub struct ChaosRunner {
    /// `(time, fault index, op)`, sorted by time then fault index.
    ops: Vec<(Nanos, usize, Op)>,
    /// Link parameters saved by `Degrade`, keyed by fault index.
    saved_links: HashMap<usize, Vec<(NodeId, NodeId, LinkParams)>>,
    /// Node wedged by `Stall`, keyed by fault index.
    stalled: HashMap<usize, NodeId>,
    /// Node killed by `KillProcess`, keyed by fault index.
    downed: HashMap<usize, NodeId>,
    /// Human-readable record of everything actually applied (targets
    /// resolved), for failure reports.
    pub log: Vec<(Nanos, String)>,
}

impl ChaosRunner {
    /// Expand a scenario into its timed operation schedule.
    pub fn new(scenario: &Scenario) -> ChaosRunner {
        let mut ops = Vec::new();
        for (i, f) in scenario.sorted_faults().into_iter().enumerate() {
            let t0 = slot_time(f.at_slot);
            let t1 = slot_time(f.at_slot + f.kind.duration_slots());
            match f.kind {
                FaultKind::PhyCrash => ops.push((t0, i, Op::Kill(f.target))),
                FaultKind::PhyHang { .. } => {
                    ops.push((t0, i, Op::Stall(f.target)));
                    ops.push((t1, i, Op::Unstall));
                }
                FaultKind::LinkPartition { .. } => {
                    ops.push((t0, i, Op::Degrade(f.target, LinkPatch::Partition)));
                    ops.push((t1, i, Op::Restore));
                }
                FaultKind::BurstLoss { p, .. } => {
                    ops.push((t0, i, Op::Degrade(f.target, LinkPatch::Loss(p))));
                    ops.push((t1, i, Op::Restore));
                }
                FaultKind::IqCorrupt { p, .. } => {
                    ops.push((t0, i, Op::Degrade(f.target, LinkPatch::Corrupt(p))));
                    ops.push((t1, i, Op::Restore));
                }
                FaultKind::DupPackets { p, .. } => {
                    ops.push((t0, i, Op::Degrade(f.target, LinkPatch::Dup(p))));
                    ops.push((t1, i, Op::Restore));
                }
                FaultKind::ReorderPackets { p, hold, .. } => {
                    ops.push((t0, i, Op::Degrade(f.target, LinkPatch::Reorder(p, hold))));
                    ops.push((t1, i, Op::Restore));
                }
                FaultKind::OrionRestart { .. } => {
                    ops.push((t0, i, Op::KillProcess(f.target)));
                    ops.push((t1, i, Op::RestartProcess));
                }
                FaultKind::MigrationStorm { requests } => {
                    ops.push((t0, i, Op::PostPlanned(requests)));
                }
                FaultKind::PlannedMigration => ops.push((t0, i, Op::PostPlanned(1))),
            }
        }
        ops.sort_by_key(|&(t, i, _)| (t, i));
        ChaosRunner {
            ops,
            saved_links: HashMap::new(),
            stalled: HashMap::new(),
            downed: HashMap::new(),
            log: Vec::new(),
        }
    }

    /// Drive the deployment through every scheduled operation, then to
    /// `horizon_slots`.
    pub fn run(&mut self, d: &mut Deployment, horizon_slots: u64) {
        let ops = std::mem::take(&mut self.ops);
        for (t, fault, op) in ops {
            d.engine.run_until(t);
            self.apply(d, fault, op);
        }
        d.engine.run_until(slot_time(horizon_slots));
    }

    fn note(&mut self, at: Nanos, what: String) {
        self.log.push((at, what));
    }

    fn apply(&mut self, d: &mut Deployment, fault: usize, op: Op) {
        let now = d.engine.now();
        match op {
            Op::Kill(target) => match resolve_phy_node(d, target) {
                Some(node) => {
                    d.engine.kill(node);
                    self.note(now, format!("kill {}", d.engine.node_name(node)));
                }
                None => self.note(now, format!("kill {target}: no such PHY, skipped")),
            },
            Op::Stall(target) => match resolve_phy_node(d, target) {
                Some(node) => {
                    if let Some(phy) = d.engine.node_mut::<PhyNode>(node) {
                        phy.set_stalled(true);
                        self.stalled.insert(fault, node);
                        self.note(now, format!("stall {}", d.engine.node_name(node)));
                    }
                }
                None => self.note(now, format!("stall {target}: no such PHY, skipped")),
            },
            Op::Unstall => {
                if let Some(node) = self.stalled.remove(&fault) {
                    if let Some(phy) = d.engine.node_mut::<PhyNode>(node) {
                        phy.set_stalled(false);
                    }
                    self.note(now, format!("unstall {}", d.engine.node_name(node)));
                }
            }
            Op::Degrade(target, patch) => {
                let mut saved = Vec::new();
                for (a, b) in resolve_links(d, target) {
                    if let Some(params) = d.engine.link_params(a, b) {
                        saved.push((a, b, params.clone()));
                        let mut degraded = params;
                        patch.apply(&mut degraded);
                        d.engine.reconfigure_link(a, b, degraded);
                    }
                }
                self.note(
                    now,
                    format!(
                        "degrade {target} ({} link directions): {patch:?}",
                        saved.len()
                    ),
                );
                self.saved_links.insert(fault, saved);
            }
            Op::Restore => {
                for (a, b, params) in self.saved_links.remove(&fault).unwrap_or_default() {
                    d.engine.reconfigure_link(a, b, params);
                }
                self.note(now, "restore links".to_string());
            }
            Op::KillProcess(target) => match resolve_process_node(d, target) {
                Some(node) => {
                    d.engine.kill(node);
                    self.downed.insert(fault, node);
                    self.note(now, format!("down {}", d.engine.node_name(node)));
                }
                None => self.note(now, format!("down {target}: no such process, skipped")),
            },
            Op::RestartProcess => {
                if let Some(node) = self.downed.remove(&fault) {
                    d.engine.restart(node);
                    self.note(now, format!("restart {}", d.engine.node_name(node)));
                }
            }
            Op::PostPlanned(count) => {
                for k in 0..count {
                    d.engine.post(
                        now + Nanos(10_000 * k as u64),
                        d.orion_l2,
                        Msg::Ctl(CtlMsg::PlannedMigration { ru_id: RU_ID }),
                    );
                }
                self.note(now, format!("post {count} planned-migration request(s)"));
            }
        }
    }
}

/// The engine node of the PHY currently playing the symbolic role, or
/// `None` when the role is unfilled (e.g. standby already consumed and
/// no spare configured).
fn resolve_phy_node(d: &mut Deployment, target: FaultTarget) -> Option<NodeId> {
    let phy_id = resolve_phy_id(d, target)?;
    phy_node_of(d, phy_id)
}

/// The PHY id currently playing the symbolic role, read from the live
/// control/data plane. `ActivePhy`/`StandbyPhy` are cell-0 aliases of
/// the per-cell `ActivePhyOf`/`StandbyPhyOf` targets.
pub fn resolve_phy_id(d: &mut Deployment, target: FaultTarget) -> Option<u8> {
    match target {
        // The data plane is the ground truth for who serves the RU.
        FaultTarget::ActivePhy => resolve_phy_id(d, FaultTarget::ActivePhyOf(RU_ID)),
        FaultTarget::StandbyPhy => resolve_phy_id(d, FaultTarget::StandbyPhyOf(RU_ID)),
        FaultTarget::ActivePhyOf(ru) => {
            // In a fabric build the RU's leaf middlebox owns the
            // RU→PHY register; single-switch builds resolve to the one
            // shared switch.
            let switch = d.switch_for_ru(ru);
            Some(d.engine.node_mut::<SwitchNode>(switch)?.active_phy(ru))
        }
        FaultTarget::StandbyPhyOf(ru) => {
            let orion_l2 = d.cells.get(ru as usize)?.orion_l2;
            d.engine.node::<OrionL2Node>(orion_l2)?.standby_of(ru)
        }
        _ => None,
    }
}

/// Map a PHY id to its engine node. Every cell PHY and pooled spare is
/// in the deployment's `phy_nodes` directory; the legacy single-RU
/// match is kept as a fallback for hand-built deployments.
pub fn phy_node_of(d: &Deployment, phy_id: u8) -> Option<NodeId> {
    d.phy_nodes.get(&phy_id).copied().or(match phy_id {
        PRIMARY_PHY_ID => Some(d.primary_phy),
        SECONDARY_PHY_ID => Some(d.secondary_phy),
        SPARE_PHY_ID => d.spare_phy,
        _ => None,
    })
}

/// The phy-side Orion shim paired with a PHY id.
fn orion_node_of(d: &Deployment, phy_id: u8) -> Option<NodeId> {
    d.phy_orions.get(&phy_id).copied().or(match phy_id {
        PRIMARY_PHY_ID => Some(d.orion_primary),
        SECONDARY_PHY_ID => Some(d.orion_secondary),
        SPARE_PHY_ID => d.orion_spare,
        _ => None,
    })
}

/// The directed engine links a link-level fault covers. The undirected
/// fronthaul targets act on cell 0's RU (per-cell PHY targets resolve
/// through the live mapping).
fn resolve_links(d: &mut Deployment, target: FaultTarget) -> Vec<(NodeId, NodeId)> {
    // Each endpoint's links terminate at the switch it is cabled to:
    // its leaf in a fabric build, the shared switch otherwise.
    match target {
        FaultTarget::Fronthaul => {
            let sw = d.switch_for_node(d.ru);
            vec![(d.ru, sw), (sw, d.ru)]
        }
        FaultTarget::FronthaulUplink => vec![(d.ru, d.switch_for_node(d.ru))],
        FaultTarget::FronthaulDownlink => vec![(d.switch_for_node(d.ru), d.ru)],
        FaultTarget::OrionL2 => {
            let sw = d.switch_for_node(d.orion_l2);
            vec![(d.orion_l2, sw), (sw, d.orion_l2)]
        }
        FaultTarget::ActivePhy
        | FaultTarget::StandbyPhy
        | FaultTarget::ActivePhyOf(_)
        | FaultTarget::StandbyPhyOf(_) => match resolve_phy_node(d, target) {
            Some(phy) => {
                let sw = d.switch_for_node(phy);
                vec![(phy, sw), (sw, phy)]
            }
            None => Vec::new(),
        },
    }
}

/// The process an [`FaultKind::OrionRestart`] bounces: the L2-side shim
/// for [`FaultTarget::OrionL2`], the paired PHY-side shim for PHY
/// targets.
fn resolve_process_node(d: &mut Deployment, target: FaultTarget) -> Option<NodeId> {
    match target {
        FaultTarget::OrionL2 => Some(d.orion_l2),
        FaultTarget::ActivePhy
        | FaultTarget::StandbyPhy
        | FaultTarget::ActivePhyOf(_)
        | FaultTarget::StandbyPhyOf(_) => {
            let phy_id = resolve_phy_id(d, target)?;
            orion_node_of(d, phy_id)
        }
        _ => None,
    }
}

/// The standard chaos testbed: the full Fig. 4(b) deployment with a
/// spare PHY (so failover scenarios can re-pair, §4.4) and a 4 Mbps
/// uplink UDP flow from one UE — the same traffic shape as the §8
/// failover experiments.
pub fn chaos_deployment(seed: u64) -> Deployment {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        with_spare_phy: true,
        ..DeploymentConfig::default()
    };
    let mut d = crate::deployment::DeploymentBuilder::new()
        .config(cfg)
        .ue(UeConfig::new(100, 0, "ue100", 22.0))
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d
}

/// The multi-cell chaos testbed: four cells sharing a two-deep spare
/// pool behind the recovery orchestrator, each cell carrying the same
/// 4 Mbps uplink UDP flow as the single-cell testbed. This is the
/// deployment the sequential-crash scenarios run against: three crashes
/// in distinct cells exceed the pool, so surviving them proves the
/// scrub-and-recycle path, not just the initial provisioning.
pub fn chaos_pool_deployment(seed: u64) -> Deployment {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    };
    let mut b = crate::deployment::DeploymentBuilder::new()
        .config(cfg)
        .cells(4)
        .spare_pool(2);
    for i in 0..4u8 {
        b = b.ue(UeConfig::new(100 + i as u16, i, &format!("ue{i}"), 22.0));
    }
    let mut d = b.build();
    for i in 0..4usize {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    d
}

/// Damage-derived expectations for a scenario on this deployment. For
/// multi-cell deployments the oracle is switched into per-cell mode
/// (initial active-PHY map from the built topology) and, when a spare
/// pool is configured, the pool-accounting invariant is armed.
pub fn expectations_for(d: &Deployment, scenario: &Scenario) -> oracle::Expectations {
    let has_spare = d.cfg.with_spare_phy || d.cfg.spare_pool > 0;
    let mut exp = oracle::Expectations::for_scenario(scenario, has_spare);
    if d.cells.len() > 1 {
        exp.initial_active = d
            .cells
            .iter()
            .map(|c| (c.ru_id as u64, c.primary_phy_id as u64))
            .collect();
        // Per-cell repair is checked from each cell's flip timeline, so
        // the global any-cell variant is redundant noise in this mode.
        exp.expect_repair = false;
    }
    if d.cfg.spare_pool > 0 {
        exp.expect_pool = Some(d.cfg.spare_pool as u64);
    }
    exp
}

/// Run a scenario against a deployment and judge the resulting trace
/// with expectations derived from the injected damage.
pub fn run_scenario(d: &mut Deployment, scenario: &Scenario) -> oracle::OracleReport {
    let exp = expectations_for(d, scenario);
    run_scenario_with(d, scenario, &exp)
}

/// Run a scenario and judge against explicit expectations.
pub fn run_scenario_with(
    d: &mut Deployment,
    scenario: &Scenario,
    exp: &oracle::Expectations,
) -> oracle::OracleReport {
    let mut runner = ChaosRunner::new(scenario);
    runner.run(d, scenario.horizon_slots);
    oracle::check(d.engine.event_trace(), exp)
}
