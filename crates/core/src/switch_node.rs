//! Engine node hosting a switch program (the fronthaul middlebox).
//!
//! Two forwarding-latency models are provided: the in-switch deployment
//! (fixed nanosecond pipeline latency — the paper's design) and a
//! DPDK-style software middlebox (microsecond-scale, jittery, an extra
//! hop) used by the §5 ablation that measures why the in-switch design
//! matters for the fronthaul latency budget.

use std::collections::HashMap;

use slingshot_netsim::Capture;
use slingshot_ran::Msg;
use slingshot_sim::{Ctx, Instrument, InstrumentSink, Nanos, Node, NodeId, SimRng};
use slingshot_switch::{PortId, SwitchAction, SwitchProgram, PIPELINE_LATENCY};

use crate::fh_mbox::FhMbox;
use slingshot_switch::ControlPlaneModel;

const TIMER_PKTGEN: u64 = 900;
const TIMER_CP_REMAP: u64 = 901;

/// Per-packet forwarding-cost model.
#[derive(Debug, Clone, Copy)]
pub enum ForwardingModel {
    /// Tofino-style: fixed pipeline latency, no jitter (§5).
    InSwitch,
    /// DPDK software middlebox: base cost + exponential-ish tail. The
    /// paper measures ≈10 µs added at p99.999.
    Software { base: Nanos, tail_mean: Nanos },
}

impl ForwardingModel {
    pub fn software_default() -> ForwardingModel {
        ForwardingModel::Software {
            base: Nanos(2_000),
            tail_mean: Nanos(900),
        }
    }

    pub(crate) fn delay(&self, rng: &mut SimRng) -> Nanos {
        match self {
            ForwardingModel::InSwitch => PIPELINE_LATENCY,
            ForwardingModel::Software { base, tail_mean } => {
                let tail = rng.exponential(tail_mean.0 as f64) as u64;
                *base + Nanos(tail)
            }
        }
    }
}

/// The switch node: owns the middlebox program, maps ports to engine
/// nodes, and runs the packet generator.
pub struct SwitchNode {
    pub mbox: FhMbox,
    ports: HashMap<PortId, NodeId>,
    model: ForwardingModel,
    rng: SimRng,
    pktgen_enabled: bool,
    /// Control-plane rule-update latency model (ablation path).
    cp_model: ControlPlaneModel,
    /// Remaps waiting on the control plane, FIFO.
    cp_pending: std::collections::VecDeque<(u8, u8)>,
    /// Completion times of executed control-plane remaps.
    pub cp_remap_latencies: Vec<Nanos>,
    /// Optional frame mirror (the timestamp-and-mirror measurement
    /// technique of §8.6, as a pcap-style capture).
    pub capture: Option<Capture>,
    /// Forwarded/dropped counters.
    pub forwarded: u64,
    pub dropped: u64,
}

impl SwitchNode {
    pub fn new(mbox: FhMbox, model: ForwardingModel, mut rng: SimRng) -> SwitchNode {
        SwitchNode {
            mbox,
            ports: HashMap::new(),
            model,
            cp_model: ControlPlaneModel::new(rng.fork("control-plane")),
            cp_pending: std::collections::VecDeque::new(),
            cp_remap_latencies: Vec::new(),
            rng,
            pktgen_enabled: true,
            capture: None,
            forwarded: 0,
            dropped: 0,
        }
    }

    /// Mirror every forwarded frame into a capture (ingress-timestamped
    /// at forwarding time), as the paper's §8.6 P4 program does.
    pub fn enable_capture(&mut self) -> Capture {
        let cap = Capture::new();
        self.capture = Some(cap.clone());
        cap
    }

    /// Request a remap through the switch *control plane* (milliseconds
    /// of latency, no slot alignment) — the ablation alternative to the
    /// data-plane `migrate_on_slot` mechanism. Must be invoked via
    /// [`slingshot_sim::Engine::post`]-style external scheduling; the
    /// node applies it after the modeled rule-update latency.
    pub fn request_control_plane_remap(&mut self, ru_id: u8, dest_phy: u8) {
        self.cp_pending.push_back((ru_id, dest_phy));
    }

    /// Attach an engine node to a switch port.
    pub fn attach(&mut self, port: PortId, node: NodeId) {
        self.ports.insert(port, node);
    }

    /// The PHY currently serving `ru_id` per the data-plane RU→PHY
    /// mapping. Chaos tooling resolves symbolic targets ("the active
    /// PHY") through this at fault-apply time, so a fault scheduled
    /// after a failover lands on the post-failover owner.
    pub fn active_phy(&mut self, ru_id: u8) -> u8 {
        self.mbox.active_phy(ru_id)
    }

    pub fn set_pktgen(&mut self, enabled: bool) {
        self.pktgen_enabled = enabled;
    }

    /// Move trace events staged inside the switch program into the
    /// engine's event trace, preserving packet-carried slot identities.
    fn drain_mbox_trace(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for ev in self.mbox.drain_trace() {
            match ev.slot {
                Some(slot) => ctx.trace_at_slot(ev.kind, slot, ev.a, ev.b),
                None => ctx.trace(ev.kind, ev.a, ev.b),
            }
        }
    }

    fn apply_actions(&mut self, ctx: &mut Ctx<'_, Msg>, actions: Vec<SwitchAction>) {
        for action in actions {
            match action {
                SwitchAction::Forward { port, frame } => {
                    if let Some(cap) = &self.capture {
                        cap.record(ctx.now(), &frame);
                    }
                    if let Some(node) = self.ports.get(&port) {
                        let node = *node;
                        let delay = self.model.delay(&mut self.rng);
                        // Pipeline (or software-forwarding) cost, then
                        // the egress link's latency/bandwidth/faults.
                        ctx.send_link_in(node, delay, Msg::Eth(frame));
                        self.forwarded += 1;
                    } else {
                        self.dropped += 1;
                    }
                }
                SwitchAction::Drop => self.dropped += 1,
            }
        }
    }
}

impl Instrument for SwitchNode {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "forwarded_frames", self.forwarded);
        sink.counter(scope, "dropped_frames", self.dropped);
        sink.counter(
            scope,
            "cp_remaps_executed",
            self.cp_remap_latencies.len() as u64,
        );
        sink.counter(scope, "migrations_executed", self.mbox.migrations_executed);
        sink.counter(scope, "dl_filtered", self.mbox.dl_filtered);
        sink.counter(scope, "failures_reported", self.mbox.failures_reported);
        sink.counter(scope, "ctl_packets", self.mbox.ctl_packets);
        sink.counter(scope, "trace_overflow", self.mbox.trace_overflow);
    }
}

impl Node<Msg> for SwitchNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.pktgen_enabled {
            ctx.timer(self.mbox.detector.tick_interval(), TIMER_PKTGEN);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        match token {
            TIMER_PKTGEN => {
                let actions = self.mbox.on_generator_tick(ctx.now());
                self.drain_mbox_trace(ctx);
                self.apply_actions(ctx, actions);
                // Drive any pending control-plane remap: draw its rule-
                // update latency once and schedule the apply.
                if let Some((ru, phy)) = self.cp_pending.pop_front() {
                    let latency = self.cp_model.update_latency();
                    self.cp_remap_latencies.push(latency);
                    ctx.timer(
                        latency,
                        TIMER_CP_REMAP + ((ru as u64) << 16) + ((phy as u64) << 32),
                    );
                }
                ctx.timer(self.mbox.detector.tick_interval(), TIMER_PKTGEN);
            }
            t if t & 0xFFFF == TIMER_CP_REMAP => {
                let ru = ((t >> 16) & 0xFF) as u8;
                let phy = ((t >> 32) & 0xFF) as u8;
                self.mbox.control_plane_remap(ru, phy);
                self.drain_mbox_trace(ctx);
            }
            _ => {}
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
        let Msg::Eth(frame) = msg else { return };
        // Ingress port = the port the sender is attached to.
        let ingress = self
            .ports
            .iter()
            .find(|(_, n)| **n == from)
            .map(|(p, _)| *p)
            .unwrap_or(PortId::CPU);
        let actions = self.mbox.process(ctx.now(), ingress, frame);
        self.drain_mbox_trace(ctx);
        self.apply_actions(ctx, actions);
    }
}
