//! An nFAPI-style *stateful* transport model — the design Orion
//! deliberately rejects (§6.1).
//!
//! The Small Cell Forum's nFAPI decouples L2 and PHY over SCTP:
//! a connection-oriented association with a 4-way handshake, per-stream
//! sequencing, cumulative acknowledgments, and retransmission. That
//! state is exactly what makes migration expensive: moving the PHY
//! endpoint means tearing the association down and re-establishing it
//! (or transferring kernel SCTP state), and every in-flight sequenced
//! message is bound to the old association.
//!
//! Orion instead uses a lean stateless datagram protocol (the
//! datacenter network is reliable enough, and slot-scoped FAPI messages
//! are naturally idempotent per slot), so migrating at a TTI boundary
//! carries **zero transport state** (§6.1). This module implements a
//! compact but real SCTP-like state machine so the
//! `ablation_transport` bench can put numbers on that contrast; it is
//! deliberately not wired into the deployment.

use slingshot_sim::Nanos;
use std::collections::BTreeMap;

/// Association states (a condensed SCTP handshake).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    Closed,
    /// INIT sent, awaiting INIT-ACK.
    CookieWait,
    /// COOKIE-ECHO sent, awaiting COOKIE-ACK.
    CookieEchoed,
    Established,
}

/// Wire chunks of the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Chunk {
    Init {
        tag: u32,
    },
    InitAck {
        tag: u32,
    },
    CookieEcho {
        tag: u32,
    },
    CookieAck,
    /// Sequenced data (a FAPI message body).
    Data {
        tsn: u64,
        payload_len: u32,
    },
    /// Cumulative acknowledgment.
    Sack {
        cum_tsn: u64,
    },
    Abort,
}

/// One endpoint of an nFAPI-over-SCTP-like association.
#[derive(Debug)]
pub struct SctpLikeEndpoint {
    pub state: AssocState,
    local_tag: u32,
    peer_tag: Option<u32>,
    /// Next transmission sequence number to assign.
    next_tsn: u64,
    /// Unacknowledged data, keyed by TSN, with last-send time.
    unacked: BTreeMap<u64, (u32, Nanos)>,
    /// Highest contiguously received TSN from the peer.
    cum_rx_tsn: Option<u64>,
    /// Retransmission timeout.
    pub rto: Nanos,
    /// Counters.
    pub retransmissions: u64,
    pub delivered: u64,
    pub handshakes_completed: u64,
}

impl SctpLikeEndpoint {
    pub fn new(local_tag: u32) -> SctpLikeEndpoint {
        SctpLikeEndpoint {
            state: AssocState::Closed,
            local_tag,
            peer_tag: None,
            next_tsn: 1,
            unacked: BTreeMap::new(),
            cum_rx_tsn: None,
            rto: Nanos::from_millis(10),
            retransmissions: 0,
            delivered: 0,
            handshakes_completed: 0,
        }
    }

    /// Begin association establishment: emits INIT.
    pub fn connect(&mut self) -> Chunk {
        self.state = AssocState::CookieWait;
        Chunk::Init {
            tag: self.local_tag,
        }
    }

    /// Bytes of association state held at this endpoint — what a
    /// state-transferring migration would need to ship.
    pub fn state_bytes(&self) -> usize {
        // Tags, TSN counters, timers, per-chunk retransmission entries.
        64 + self.unacked.len() * 24
    }

    /// Handle an incoming chunk; returns chunks to send back and
    /// whether a sequenced message was delivered to the application.
    pub fn on_chunk(&mut self, now: Nanos, chunk: Chunk) -> (Vec<Chunk>, Option<u32>) {
        match (self.state, chunk) {
            (AssocState::Closed, Chunk::Init { tag }) => {
                self.peer_tag = Some(tag);
                (
                    vec![Chunk::InitAck {
                        tag: self.local_tag,
                    }],
                    None,
                )
            }
            (AssocState::CookieWait, Chunk::InitAck { tag }) => {
                self.peer_tag = Some(tag);
                self.state = AssocState::CookieEchoed;
                (
                    vec![Chunk::CookieEcho {
                        tag: self.local_tag,
                    }],
                    None,
                )
            }
            (AssocState::Closed, Chunk::CookieEcho { tag }) => {
                self.peer_tag = Some(tag);
                self.state = AssocState::Established;
                self.handshakes_completed += 1;
                (vec![Chunk::CookieAck], None)
            }
            (AssocState::CookieEchoed, Chunk::CookieAck) => {
                self.state = AssocState::Established;
                self.handshakes_completed += 1;
                (Vec::new(), None)
            }
            (AssocState::Established, Chunk::Data { tsn, payload_len }) => {
                // In-order delivery only (SCTP ordered stream).
                let expected = self.cum_rx_tsn.map(|t| t + 1).unwrap_or(1);
                let mut delivered = None;
                if tsn == expected {
                    self.cum_rx_tsn = Some(tsn);
                    self.delivered += 1;
                    delivered = Some(payload_len);
                }
                let cum = self.cum_rx_tsn.unwrap_or(0);
                (vec![Chunk::Sack { cum_tsn: cum }], delivered)
            }
            (AssocState::Established, Chunk::Sack { cum_tsn }) => {
                self.unacked.retain(|tsn, _| *tsn > cum_tsn);
                (Vec::new(), None)
            }
            (_, Chunk::Abort) => {
                self.reset();
                (Vec::new(), None)
            }
            // Anything else in the wrong state is protocol noise; a
            // full implementation aborts, we just ignore.
            _ => {
                let _ = now;
                (Vec::new(), None)
            }
        }
    }

    /// Queue application data; only legal on an established association.
    pub fn send_data(&mut self, now: Nanos, payload_len: u32) -> Option<Chunk> {
        if self.state != AssocState::Established {
            return None;
        }
        let tsn = self.next_tsn;
        self.next_tsn += 1;
        self.unacked.insert(tsn, (payload_len, now));
        Some(Chunk::Data { tsn, payload_len })
    }

    /// Retransmit anything past its RTO.
    pub fn poll_retransmit(&mut self, now: Nanos) -> Vec<Chunk> {
        let mut out = Vec::new();
        for (tsn, (len, sent)) in self.unacked.iter_mut() {
            if now.saturating_sub(*sent) >= self.rto {
                *sent = now;
                self.retransmissions += 1;
                out.push(Chunk::Data {
                    tsn: *tsn,
                    payload_len: *len,
                });
            }
        }
        out
    }

    /// Tear the association down (peer migrated away): all transport
    /// state is invalidated and a fresh handshake is required before
    /// any FAPI message can flow — the §6.1 migration cost.
    pub fn reset(&mut self) {
        self.state = AssocState::Closed;
        self.peer_tag = None;
        self.next_tsn = 1;
        self.unacked.clear();
        self.cum_rx_tsn = None;
    }
}

/// Time to (re)establish an association over a network with the given
/// one-way latency: the 4-way handshake is two round trips.
pub fn handshake_time(one_way: Nanos) -> Nanos {
    Nanos(4 * one_way.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn establish(a: &mut SctpLikeEndpoint, b: &mut SctpLikeEndpoint) {
        let init = a.connect();
        let (r1, _) = b.on_chunk(Nanos(0), init);
        let (r2, _) = a.on_chunk(Nanos(1), r1[0].clone());
        let (r3, _) = b.on_chunk(Nanos(2), r2[0].clone());
        let (_, _) = a.on_chunk(Nanos(3), r3[0].clone());
        assert_eq!(a.state, AssocState::Established);
        assert_eq!(b.state, AssocState::Established);
    }

    #[test]
    fn four_way_handshake_establishes() {
        let mut a = SctpLikeEndpoint::new(11);
        let mut b = SctpLikeEndpoint::new(22);
        establish(&mut a, &mut b);
        assert_eq!(a.handshakes_completed, 1);
        assert_eq!(b.handshakes_completed, 1);
    }

    #[test]
    fn data_refused_before_establishment() {
        let mut a = SctpLikeEndpoint::new(1);
        assert!(a.send_data(Nanos(0), 100).is_none());
        let _ = a.connect();
        assert!(a.send_data(Nanos(0), 100).is_none(), "still handshaking");
    }

    #[test]
    fn sequenced_delivery_and_ack() {
        let mut a = SctpLikeEndpoint::new(1);
        let mut b = SctpLikeEndpoint::new(2);
        establish(&mut a, &mut b);
        let d1 = a.send_data(Nanos(10), 64).unwrap();
        let d2 = a.send_data(Nanos(11), 64).unwrap();
        // Out-of-order arrival: d2 first is NOT delivered (ordered
        // stream), then d1 unblocks only itself.
        let (sacks, delivered) = b.on_chunk(Nanos(12), d2.clone());
        assert!(delivered.is_none());
        assert_eq!(sacks, vec![Chunk::Sack { cum_tsn: 0 }]);
        let (_, delivered) = b.on_chunk(Nanos(13), d1);
        assert_eq!(delivered, Some(64));
        // Redelivery of d2 in order now succeeds.
        let (sacks, delivered) = b.on_chunk(Nanos(14), d2);
        assert_eq!(delivered, Some(64));
        assert_eq!(sacks, vec![Chunk::Sack { cum_tsn: 2 }]);
        // The SACK clears the sender's retransmission queue.
        let (_, _) = a.on_chunk(Nanos(15), sacks[0].clone());
        assert_eq!(a.state_bytes(), 64, "no unacked chunks left");
    }

    #[test]
    fn lost_data_retransmits_after_rto() {
        let mut a = SctpLikeEndpoint::new(1);
        let mut b = SctpLikeEndpoint::new(2);
        establish(&mut a, &mut b);
        let _lost = a.send_data(Nanos(0), 128).unwrap();
        assert!(a.poll_retransmit(Nanos::from_millis(5)).is_empty());
        let rtx = a.poll_retransmit(Nanos::from_millis(11));
        assert_eq!(rtx.len(), 1);
        assert_eq!(a.retransmissions, 1);
        let (_, delivered) = b.on_chunk(Nanos::from_millis(12), rtx[0].clone());
        assert_eq!(delivered, Some(128));
    }

    #[test]
    fn migration_invalidates_association() {
        let mut l2 = SctpLikeEndpoint::new(1);
        let mut phy = SctpLikeEndpoint::new(2);
        establish(&mut l2, &mut phy);
        for _ in 0..5 {
            let _ = l2.send_data(Nanos(0), 64);
        }
        assert!(l2.state_bytes() > 64, "in-flight transport state exists");
        // The PHY endpoint migrates: the old association is gone.
        l2.reset();
        assert_eq!(l2.state, AssocState::Closed);
        assert!(
            l2.send_data(Nanos(1), 64).is_none(),
            "no data until re-handshake"
        );
        // Re-establish with the new PHY endpoint.
        let mut new_phy = SctpLikeEndpoint::new(3);
        establish(&mut l2, &mut new_phy);
        assert!(l2.send_data(Nanos(2), 64).is_some());
    }

    #[test]
    fn handshake_time_is_two_rtts() {
        assert_eq!(
            handshake_time(Nanos::from_micros(50)),
            Nanos::from_micros(200)
        );
    }
}
