//! Full Slingshot testbed builder: the paper's Figure 4(b) topology —
//! RU(s) and servers behind one programmable switch running the
//! fronthaul middlebox, a primary and hot-standby PHY each paired with
//! a PHY-side Orion, the L2 paired with the L2-side Orion, the core
//! network stub, the app server, and UEs. All links and latencies are
//! configurable; defaults approximate the paper's testbed (Table 1).
//!
//! Entry point: [`DeploymentBuilder`] — a fluent builder that scales
//! from the classic single-cell testbed to an N-cell deployment (each
//! cell with its own RU, L2, and primary/secondary PHY pair behind the
//! shared switch), optionally running slot DSP on a worker pool:
//!
//! ```ignore
//! let mut d = DeploymentBuilder::new()
//!     .seed(7)
//!     .cells(4)
//!     .workers(4)
//!     .ues(ue_cfgs)
//!     .build();
//! ```

use std::collections::BTreeMap;

use slingshot_netsim::MacAddr;
use slingshot_ran::{
    AppServerNode, CellConfig, CoreNode, CtlMsg, L2Node, Msg, PhyConfig, PhyNode, RuNode, UeConfig,
    UeNode,
};
use slingshot_sim::chaos::{oracle::OracleReport, Scenario};
use slingshot_sim::{
    Engine, Instrument, InstrumentSink, KernelBackend, KernelConfig, LinkParams, LogHistogram,
    Nanos, NodeId, SimRng, SlotClock, WorkerPool,
};
use slingshot_switch::{PktGenConfig, PortId};
use slingshot_transport::UserApp;

use slingshot_switch::PortSpace;

use crate::fh_mbox::FhMbox;
use crate::orion::{orion_l2_mac, orion_phy_mac, OrionL2Node, OrionPhyNode};
use crate::recovery::{recovery_mac, RecoveryOrchestrator};
use crate::spine::SpineSwitchNode;
use crate::switch_node::{ForwardingModel, SwitchNode};

/// Deployment-wide configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    pub cell: CellConfig,
    pub seed: u64,
    /// Failure-detector configuration (paper: T=450 µs, n=50).
    pub detector: PktGenConfig,
    /// Fronthaul link: RU ↔ switch (paper: fiber, sub-100 µs budget).
    pub fronthaul_link: LinkParams,
    /// Server links: PHY/L2 servers ↔ switch (100 GbE).
    pub server_link: LinkParams,
    /// Backhaul: core ↔ L2 and core ↔ app server.
    pub backhaul_link: LinkParams,
    /// Middlebox forwarding model (in-switch vs software ablation).
    pub forwarding: ForwardingModel,
    /// FEC iterations for the secondary PHY (≠ primary models the
    /// Fig. 11 upgraded build).
    pub secondary_fec_iterations: Option<usize>,
    /// Register one extra spare PHY server (replacement standby pool).
    ///
    /// Single-cell legacy knob; multi-cell deployments treat it as
    /// `spare_pool = 1`. Prefer [`DeploymentBuilder::spare_pool`].
    pub with_spare_phy: bool,
    /// Number of shared spare PHY servers in the recovery pool, usable
    /// by any cell. `> 0` also deploys a [`RecoveryOrchestrator`] that
    /// re-pairs failed-over cells and scrubs/recycles dead primaries.
    pub spare_pool: usize,
}

impl Default for DeploymentConfig {
    fn default() -> DeploymentConfig {
        DeploymentConfig {
            cell: CellConfig::default(),
            seed: 1,
            detector: PktGenConfig::paper_default(),
            fronthaul_link: LinkParams::with_bandwidth(Nanos(20_000), 25_000_000_000),
            server_link: LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000),
            backhaul_link: LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000),
            forwarding: ForwardingModel::InSwitch,
            secondary_fec_iterations: None,
            with_spare_phy: false,
            spare_pool: 0,
        }
    }
}

/// One cell's node handles inside a [`Deployment`]: its RU, gNB stack
/// (L2 + L2-side Orion), primary/secondary PHY pair with their
/// PHY-side Orions, and UEs.
#[derive(Debug, Clone)]
pub struct CellDeployment {
    pub ru: NodeId,
    pub l2: NodeId,
    pub orion_l2: NodeId,
    pub primary_phy: NodeId,
    pub secondary_phy: NodeId,
    pub orion_primary: NodeId,
    pub orion_secondary: NodeId,
    pub ues: Vec<NodeId>,
    pub ru_id: u8,
    pub cell_id: u16,
    pub primary_phy_id: u8,
    pub secondary_phy_id: u8,
}

/// Node ids of a built deployment.
///
/// Cell 0's handles are mirrored in the legacy top-level fields
/// (`ru`, `primary_phy`, …); `cells` holds every cell, in order.
pub struct Deployment {
    pub engine: Engine<Msg>,
    pub switch: NodeId,
    pub ru: NodeId,
    pub primary_phy: NodeId,
    pub secondary_phy: NodeId,
    pub spare_phy: Option<NodeId>,
    pub orion_primary: NodeId,
    pub orion_secondary: NodeId,
    pub orion_spare: Option<NodeId>,
    pub orion_l2: NodeId,
    pub l2: NodeId,
    pub core: NodeId,
    pub server: NodeId,
    /// All UEs across all cells, flattened in cell order.
    pub ues: Vec<NodeId>,
    /// Per-cell node handles (index = cell/RU id).
    pub cells: Vec<CellDeployment>,
    /// Pooled shared spares: `(phy id, PhyNode, OrionPhyNode)` — empty
    /// unless the deployment was built with `spare_pool(m)` at N cells.
    pub spare_phys: Vec<(u8, NodeId, NodeId)>,
    /// The recovery orchestrator, when a spare pool is deployed.
    pub recovery: Option<NodeId>,
    /// Every PHY id in the deployment → its engine node (chaos
    /// targeting, test assertions).
    pub phy_nodes: BTreeMap<u8, NodeId>,
    /// Every PHY id → its PHY-side Orion node.
    pub phy_orions: BTreeMap<u8, NodeId>,
    /// Size of the engine's DSP worker pool (1 = serial).
    pub workers: usize,
    /// Chaos scenario staged by [`DeploymentBuilder::chaos`], consumed
    /// by [`Deployment::run_chaos`].
    pub chaos: Option<Scenario>,
    /// Leaf switches of a fabric build, in cell-group order (empty for
    /// the classic single-switch topologies; then `switch` is the one
    /// middlebox). In a fabric build `switch` is the spine.
    pub leaves: Vec<NodeId>,
    /// The spine switch of a fabric build.
    pub spine: Option<NodeId>,
    /// RU id → the leaf switch whose middlebox serves that cell
    /// (fabric builds only; use [`Deployment::switch_for_ru`]).
    pub switch_of_ru: BTreeMap<u8, NodeId>,
    /// Endpoint node → the switch it is cabled to (fabric builds only;
    /// use [`Deployment::switch_for_node`]).
    pub attached_switch: BTreeMap<NodeId, NodeId>,
    /// Engine lane map staged by the fabric build; the builder consumes
    /// it (after trace sizing) to install the dispatch lanes.
    fabric_lanes: Option<(Vec<u32>, usize)>,
    pub cfg: DeploymentConfig,
}

/// PHY ids used by the standard single-RU deployment.
pub const PRIMARY_PHY_ID: u8 = 1;
pub const SECONDARY_PHY_ID: u8 = 2;
pub const SPARE_PHY_ID: u8 = 3;
pub const RU_ID: u8 = 0;
pub const L2_ID: u8 = 0;

/// Switch-port stride between cells: cell `i` occupies ports
/// `20i+1..20i+19` (matching the legacy single-cell numbers at i=0).
const PORT_STRIDE: u16 = 20;

/// Fluent builder for [`Deployment`] — the one entry point for every
/// testbed shape: seed, cell count, DSP worker pool, link/detector
/// tuning, chaos scenario staging, and trace-sink sizing.
#[derive(Debug, Clone, Default)]
pub struct DeploymentBuilder {
    cfg: DeploymentConfig,
    cells: usize,
    workers: usize,
    cell_groups: usize,
    shards: Option<usize>,
    trace_capacity: Option<usize>,
    chaos: Option<Scenario>,
    ues: Vec<UeConfig>,
    kernels: Option<KernelConfig>,
}

impl DeploymentBuilder {
    pub fn new() -> DeploymentBuilder {
        DeploymentBuilder {
            cfg: DeploymentConfig::default(),
            cells: 1,
            workers: 1,
            cell_groups: 1,
            shards: None,
            trace_capacity: None,
            chaos: None,
            ues: Vec::new(),
            kernels: None,
        }
    }

    /// Engine + channel seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Number of cells (RU + L2 + primary/secondary PHY pair each).
    /// Combine with [`DeploymentBuilder::spare_pool`] for an N-cell /
    /// M-spare deployment with orchestrated re-pairing.
    pub fn cells(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one cell");
        self.cells = n;
        self
    }

    /// Size of the engine's DSP worker pool. `1` (the default) keeps
    /// every slot serial; `n > 1` fans per-PDU / per-code-block work
    /// out while preserving the byte-identical event trace.
    pub fn workers(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one worker");
        self.workers = n;
        self
    }

    /// Pin the DSP kernel backend for every node in the deployment.
    /// Falls back to scalar when the requested backend is not available
    /// on this host. The default (no call) honors the `KERNEL_BACKEND`
    /// env var and otherwise auto-detects the best backend — which is
    /// trace-identical to scalar for every always-exact kernel, so the
    /// golden hashes don't depend on the host CPU.
    pub fn kernel_backend(mut self, backend: KernelBackend) -> Self {
        self.kernels = Some(KernelConfig::forced(backend));
        self
    }

    /// Full kernel configuration (backend + AWGN tolerance knob) for
    /// callers that opt into tolerance-gated SIMD orderings. With a
    /// nonzero tolerance the AWGN kernel may use a vectorized sampler
    /// whose noise stream differs from scalar's — trace hashes then
    /// legitimately diverge from the scalar golden set.
    pub fn kernel_config(mut self, kernels: KernelConfig) -> Self {
        self.kernels = Some(kernels);
        self
    }

    /// Radio/cell parameters shared by every cell (cell ids increment
    /// per cell from `cell.cell_id`).
    pub fn cell(mut self, cell: CellConfig) -> Self {
        self.cfg.cell = cell;
        self
    }

    /// Failure-detector tuning.
    pub fn detector(mut self, detector: PktGenConfig) -> Self {
        self.cfg.detector = detector;
        self
    }

    /// Fronthaul / server / backhaul link parameters.
    pub fn links(
        mut self,
        fronthaul: LinkParams,
        server: LinkParams,
        backhaul: LinkParams,
    ) -> Self {
        self.cfg.fronthaul_link = fronthaul;
        self.cfg.server_link = server;
        self.cfg.backhaul_link = backhaul;
        self
    }

    /// Middlebox forwarding model (in-switch vs software ablation).
    pub fn forwarding(mut self, forwarding: ForwardingModel) -> Self {
        self.cfg.forwarding = forwarding;
        self
    }

    /// Run the secondary PHY with a different FEC iteration budget
    /// (the Fig. 11 live-upgrade experiment).
    pub fn secondary_fec_iterations(mut self, iters: usize) -> Self {
        self.cfg.secondary_fec_iterations = Some(iters);
        self
    }

    /// Register one extra spare PHY server. Legacy knob: at `cells(1)`
    /// this is the classic local spare; at `cells(n > 1)` it is treated
    /// as `spare_pool(1)`. Prefer [`DeploymentBuilder::spare_pool`].
    pub fn spare_phy(mut self, on: bool) -> Self {
        self.cfg.with_spare_phy = on;
        self
    }

    /// Provision `m` *shared* spare PHY servers usable by any cell,
    /// plus a recovery orchestrator that, after a failover drains a
    /// cell's standby, grants a pooled spare, installs its virtual-PHY
    /// mapping in the switch, replays the cell's init-FAPI to it, and
    /// re-pairs the cell — and that scrubs dead ex-primaries back into
    /// the pool. At `cells(1)`, `spare_pool(1)` is equivalent to the
    /// legacy `spare_phy(true)` local spare.
    pub fn spare_pool(mut self, m: usize) -> Self {
        self.cfg.spare_pool = m;
        self
    }

    /// Partition the cells into `g` contiguous groups, each behind its
    /// own leaf switch (a full fronthaul middlebox with a leaf-local
    /// failure detector), joined by a spine switch that carries the
    /// shared spare pool and the recovery orchestrator. `1` (the
    /// default) keeps the classic single-switch topology — and its
    /// byte-exact traces. `g ≥ 2` is a *structural* knob: it changes
    /// the topology (and therefore the trace) and shards the engine
    /// into `g + 1` dispatch lanes (one per leaf plus the spine
    /// domain), synchronized at slot boundaries.
    pub fn cell_groups(mut self, g: usize) -> Self {
        assert!(g >= 1, "at least one cell group");
        self.cell_groups = g;
        self
    }

    /// How many parallel jobs the sharded engine chunks its lane set
    /// into per slot window. Purely an *execution* knob: for any value
    /// (and any worker count) the event trace is byte-identical — only
    /// wall-clock changes. Defaults to the lane count; no effect on
    /// single-switch (`cell_groups(1)`) builds.
    pub fn shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "at least one shard");
        self.shards = Some(k);
        self
    }

    /// Add one UE (its `ru_id` selects the cell).
    pub fn ue(mut self, ue: UeConfig) -> Self {
        self.ues.push(ue);
        self
    }

    /// Add several UEs.
    pub fn ues(mut self, ues: impl IntoIterator<Item = UeConfig>) -> Self {
        self.ues.extend(ues);
        self
    }

    /// Stage a chaos scenario to be applied by
    /// [`Deployment::run_chaos`] after build.
    pub fn chaos(mut self, scenario: Scenario) -> Self {
        self.chaos = Some(scenario);
        self
    }

    /// Size the slot-aware event-trace sink (ring capacity in events).
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Replace the whole low-level config at once (escape hatch for
    /// presets built around [`DeploymentConfig`]).
    pub fn config(mut self, cfg: DeploymentConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Build and wire the deployment.
    pub fn build(self) -> Deployment {
        let mut cfg = self.cfg;
        if self.cells == 1 {
            // Single-cell: the pool degenerates to the classic local
            // spare (there is only one cell to re-pair).
            assert!(
                cfg.spare_pool <= 1,
                "single-cell deployments support at most one spare"
            );
            if cfg.spare_pool == 1 {
                cfg.with_spare_phy = true;
            }
        } else if cfg.with_spare_phy && cfg.spare_pool == 0 {
            // Legacy knob at N cells: one shared spare.
            cfg.spare_pool = 1;
        }
        let groups = self.cell_groups;
        let mut d = if self.cells == 1 {
            assert!(
                groups == 1,
                "single-cell deployments have a single switch; drop cell_groups"
            );
            Deployment::build_single(cfg, self.ues)
        } else if groups > 1 {
            Deployment::build_fabric(cfg, self.cells, self.ues, groups)
        } else {
            Deployment::build_multi(cfg, self.cells, self.ues)
        };
        d.workers = self.workers;
        d.engine.set_worker_pool(WorkerPool::new(self.workers));
        if let Some(kernels) = self.kernels {
            d.engine.set_kernel_config(kernels);
        }
        if let Some(cap) = self.trace_capacity {
            d.engine.event_trace_mut().set_capacity(cap);
        }
        // Install dispatch lanes after trace sizing so per-lane staging
        // buffers are forked with the final ring capacity.
        if let Some((lane_of, lanes)) = d.fabric_lanes.take() {
            d.engine.enable_shards(lane_of, lanes);
            if let Some(k) = self.shards {
                d.engine.set_exec_shards(k);
            }
        }
        d.chaos = self.chaos;
        d
    }
}

/// Collects [`Instrument`] output so it can be applied to the engine's
/// registry after the node borrows end (set semantics — idempotent).
#[derive(Default)]
struct MetricsCollector {
    counters: Vec<(String, String, u64)>,
    gauges: Vec<(String, String, i64)>,
    hists: Vec<(String, String, LogHistogram)>,
}

impl InstrumentSink for MetricsCollector {
    fn counter(&mut self, scope: &str, name: &str, value: u64) {
        self.counters
            .push((scope.to_string(), name.to_string(), value));
    }
    fn gauge(&mut self, scope: &str, name: &str, value: i64) {
        self.gauges
            .push((scope.to_string(), name.to_string(), value));
    }
    fn histogram(&mut self, scope: &str, name: &str, h: &LogHistogram) {
        self.hists
            .push((scope.to_string(), name.to_string(), h.clone()));
    }
}

impl Deployment {
    /// Build the standard single-RU Slingshot deployment.
    #[deprecated(since = "0.3.0", note = "use DeploymentBuilder instead")]
    pub fn build(cfg: DeploymentConfig, ue_cfgs: Vec<UeConfig>) -> Deployment {
        DeploymentBuilder::new().config(cfg).ues(ue_cfgs).build()
    }

    /// Single-cell construction (the classic Fig. 4(b) testbed).
    fn build_single(cfg: DeploymentConfig, ue_cfgs: Vec<UeConfig>) -> Deployment {
        let mut engine: Engine<Msg> = Engine::new(cfg.seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(cfg.seed ^ 0x5113_6507);

        // --- nodes ---
        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        let core = engine.add_node("core", Box::new(CoreNode::new()));
        let mut l2n = L2Node::new(cfg.cell.clone(), clock, RU_ID);
        for u in &ue_cfgs {
            if u.preattached {
                l2n.preattach_ue(u.rnti, u.snr.mean_db);
            }
        }
        let l2 = engine.add_node("l2", Box::new(l2n));

        let mk_phy = |id: u8, iters: Option<usize>, rng: &mut SimRng| {
            let mut pc = PhyConfig::new(id);
            if let Some(it) = iters {
                pc.fec_iterations = it;
            } else {
                pc.fec_iterations = cfg.cell.fec_iterations;
            }
            PhyNode::new(pc, cfg.cell.clone(), clock, rng.fork(&format!("phy{id}")))
        };
        let primary_phy = engine.add_node(
            "phy-primary",
            Box::new(mk_phy(PRIMARY_PHY_ID, None, &mut rng)),
        );
        let secondary_phy = engine.add_node(
            "phy-secondary",
            Box::new(mk_phy(
                SECONDARY_PHY_ID,
                cfg.secondary_fec_iterations,
                &mut rng,
            )),
        );
        let spare_phy = cfg
            .with_spare_phy
            .then(|| engine.add_node("phy-spare", Box::new(mk_phy(SPARE_PHY_ID, None, &mut rng))));

        let orion_primary = engine.add_node(
            "orion-phy1",
            Box::new(OrionPhyNode::new(PRIMARY_PHY_ID, L2_ID)),
        );
        let orion_secondary = engine.add_node(
            "orion-phy2",
            Box::new(OrionPhyNode::new(SECONDARY_PHY_ID, L2_ID)),
        );
        let orion_spare = cfg.with_spare_phy.then(|| {
            engine.add_node(
                "orion-phy3",
                Box::new(OrionPhyNode::new(SPARE_PHY_ID, L2_ID)),
            )
        });
        let orion_l2 = engine.add_node("orion-l2", Box::new(OrionL2Node::new(L2_ID, clock)));

        let run = RuNode::new(RU_ID, clock);
        let ru_mac = run.mac();
        let ru = engine.add_node("ru", Box::new(run));

        let mut ues = Vec::new();
        for u in ue_cfgs {
            let name = u.name.clone();
            let node = UeNode::new(u, cfg.cell.clone(), clock, rng.fork(&name));
            ues.push(engine.add_node(&name, Box::new(node)));
        }

        // --- the switch + middlebox program ---
        let mut mbox = FhMbox::new(cfg.detector, orion_l2_mac(L2_ID));
        // Ports: 1=RU, 2=primary server, 3=secondary server, 4=L2
        // server, 5=spare server.
        mbox.install_ru(RU_ID, ru_mac, PortId(1), PRIMARY_PHY_ID);
        mbox.install_phy(PRIMARY_PHY_ID, MacAddr::for_phy(PRIMARY_PHY_ID), PortId(2));
        mbox.install_phy(
            SECONDARY_PHY_ID,
            MacAddr::for_phy(SECONDARY_PHY_ID),
            PortId(3),
        );
        mbox.install_host(orion_l2_mac(L2_ID), PortId(4));
        if cfg.with_spare_phy {
            mbox.install_phy(SPARE_PHY_ID, MacAddr::for_phy(SPARE_PHY_ID), PortId(5));
            mbox.install_host(orion_phy_mac(SPARE_PHY_ID), PortId(5));
        }
        mbox.enroll_failure_detection(PRIMARY_PHY_ID);
        mbox.enroll_failure_detection(SECONDARY_PHY_ID);
        // The Orion processes share a physical server with their PHY
        // but are distinct traffic endpoints; give each MAC its own
        // (virtual) switch port so egress resolves to the right node.
        mbox.install_host(orion_phy_mac(PRIMARY_PHY_ID), PortId(12));
        mbox.install_host(orion_phy_mac(SECONDARY_PHY_ID), PortId(13));
        if cfg.with_spare_phy {
            mbox.install_host(orion_phy_mac(SPARE_PHY_ID), PortId(15));
        }
        // Re-point the orion MACs (install_host above overrode the
        // earlier shared-port entries at ports 2/3/5).
        let switch_mac = mbox.switch_mac;
        let mut swn = SwitchNode::new(mbox, cfg.forwarding, rng.fork("switch"));
        // Build-time port audit: every attachment claims its port; a
        // duplicate claim panics here instead of corrupting forwarding.
        let mut ports = PortSpace::new("switch");
        swn.attach(ports.claim(PortId(1), "ru"), ru);
        swn.attach(ports.claim(PortId(2), "phy-primary"), primary_phy);
        swn.attach(ports.claim(PortId(3), "phy-secondary"), secondary_phy);
        swn.attach(ports.claim(PortId(4), "orion-l2"), orion_l2);
        swn.attach(ports.claim(PortId(12), "orion-phy1"), orion_primary);
        swn.attach(ports.claim(PortId(13), "orion-phy2"), orion_secondary);
        if let Some(p) = spare_phy {
            swn.attach(ports.claim(PortId(5), "phy-spare"), p);
        }
        if let Some(o) = orion_spare {
            swn.attach(ports.claim(PortId(15), "orion-phy3"), o);
        }
        let switch = engine.add_node("switch", Box::new(swn));

        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        engine.node_mut::<CoreNode>(core).unwrap().wire(l2, server);
        engine.node_mut::<L2Node>(l2).unwrap().wire(orion_l2, core);
        engine
            .node_mut::<PhyNode>(primary_phy)
            .unwrap()
            .wire(switch, orion_primary);
        engine
            .node_mut::<PhyNode>(secondary_phy)
            .unwrap()
            .wire(switch, orion_secondary);
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.node_mut::<PhyNode>(p).unwrap().wire(switch, o);
            engine.node_mut::<OrionPhyNode>(o).unwrap().wire(switch, p);
        }
        engine
            .node_mut::<OrionPhyNode>(orion_primary)
            .unwrap()
            .wire(switch, primary_phy);
        engine
            .node_mut::<OrionPhyNode>(orion_secondary)
            .unwrap()
            .wire(switch, secondary_phy);
        {
            let ol2 = engine.node_mut::<OrionL2Node>(orion_l2).unwrap();
            ol2.wire(switch, l2, switch_mac);
            ol2.bind_ru(RU_ID, PRIMARY_PHY_ID, Some(SECONDARY_PHY_ID));
            if cfg.with_spare_phy {
                ol2.add_spare(SPARE_PHY_ID);
            }
        }
        engine
            .node_mut::<RuNode>(ru)
            .unwrap()
            .wire(switch, ues.clone());
        for ue in &ues {
            engine.node_mut::<UeNode>(*ue).unwrap().wire(ru, l2);
        }

        // --- links ---
        engine.connect_duplex(server, core, cfg.backhaul_link.clone());
        engine.connect_duplex(core, l2, cfg.backhaul_link.clone());
        engine.connect_duplex(l2, orion_l2, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(ru, switch, cfg.fronthaul_link.clone());
        for node in [
            primary_phy,
            secondary_phy,
            orion_primary,
            orion_secondary,
            orion_l2,
        ] {
            engine.connect_duplex(node, switch, cfg.server_link.clone());
        }
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.connect_duplex(p, switch, cfg.server_link.clone());
            engine.connect_duplex(o, switch, cfg.server_link.clone());
        }
        // PHY ↔ its Orion: same-host SHM.
        engine.connect_duplex(primary_phy, orion_primary, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(
            secondary_phy,
            orion_secondary,
            LinkParams::ideal(Nanos(500)),
        );
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.connect_duplex(p, o, LinkParams::ideal(Nanos(500)));
        }

        let cells = vec![CellDeployment {
            ru,
            l2,
            orion_l2,
            primary_phy,
            secondary_phy,
            orion_primary,
            orion_secondary,
            ues: ues.clone(),
            ru_id: RU_ID,
            cell_id: cfg.cell.cell_id,
            primary_phy_id: PRIMARY_PHY_ID,
            secondary_phy_id: SECONDARY_PHY_ID,
        }];

        let mut phy_nodes = BTreeMap::from([
            (PRIMARY_PHY_ID, primary_phy),
            (SECONDARY_PHY_ID, secondary_phy),
        ]);
        let mut phy_orions = BTreeMap::from([
            (PRIMARY_PHY_ID, orion_primary),
            (SECONDARY_PHY_ID, orion_secondary),
        ]);
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            phy_nodes.insert(SPARE_PHY_ID, p);
            phy_orions.insert(SPARE_PHY_ID, o);
        }

        Deployment {
            engine,
            switch,
            ru,
            primary_phy,
            secondary_phy,
            spare_phy,
            orion_primary,
            orion_secondary,
            orion_spare,
            orion_l2,
            l2,
            core,
            server,
            ues,
            cells,
            spare_phys: Vec::new(),
            recovery: None,
            phy_nodes,
            phy_orions,
            workers: 1,
            chaos: None,
            leaves: Vec::new(),
            spine: None,
            switch_of_ru: BTreeMap::new(),
            attached_switch: BTreeMap::new(),
            fabric_lanes: None,
            cfg,
        }
    }

    /// N-cell construction: each cell gets its own RU, L2 (+ L2-side
    /// Orion), and primary/secondary PHY pair (+ PHY-side Orions), all
    /// behind the shared switch/middlebox, core, and app server. Cell
    /// `i` uses RU id `i`, cell id `base + i`, PHY ids `2i+1`/`2i+2`,
    /// and switch ports `20i+1..` (stride [`PORT_STRIDE`]).
    fn build_multi(cfg: DeploymentConfig, n_cells: usize, ue_cfgs: Vec<UeConfig>) -> Deployment {
        assert!(
            ue_cfgs.iter().all(|u| (u.ru_id as usize) < n_cells),
            "every UE's ru_id must address a built cell"
        );
        let mut engine: Engine<Msg> = Engine::new(cfg.seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(cfg.seed ^ 0x5113_6507);

        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        let core = engine.add_node("core", Box::new(CoreNode::new()));

        // Per-cell UE config partitions, in cell order.
        let mut cell_ues: Vec<Vec<UeConfig>> = vec![Vec::new(); n_cells];
        for u in ue_cfgs {
            cell_ues[u.ru_id as usize].push(u);
        }

        // Failure notifications fan out to every L2-side Orion and, when
        // a spare pool is deployed, to the recovery orchestrator (it
        // schedules the dead server's scrub-and-return).
        let mut notify: Vec<MacAddr> = (0..n_cells).map(|i| orion_l2_mac(i as u8)).collect();
        if cfg.spare_pool > 0 {
            notify.push(recovery_mac());
        }
        let mut mbox = FhMbox::with_notify_targets(cfg.detector, notify);
        let mut attach: Vec<(PortId, NodeId)> = Vec::new();
        let mut cells: Vec<CellDeployment> = Vec::new();
        let mut all_ues: Vec<NodeId> = Vec::new();

        for (i, ues_cfg) in cell_ues.iter().enumerate() {
            let ru_id = i as u8;
            let pri_id = (2 * i + 1) as u8;
            let sec_id = (2 * i + 2) as u8;
            let base_port = PORT_STRIDE * i as u16;
            let mut cell = cfg.cell.clone();
            cell.cell_id = cfg.cell.cell_id + i as u16;

            let mut l2n = L2Node::new(cell.clone(), clock, ru_id);
            for u in ues_cfg {
                if u.preattached {
                    l2n.preattach_ue(u.rnti, u.snr.mean_db);
                }
            }
            let l2 = engine.add_node(&format!("c{i}-l2"), Box::new(l2n));

            let mk_phy = |id: u8, iters: Option<usize>, rng: &mut SimRng| {
                let mut pc = PhyConfig::new(id);
                pc.fec_iterations = iters.unwrap_or(cell.fec_iterations);
                PhyNode::new(pc, cell.clone(), clock, rng.fork(&format!("phy{id}")))
            };
            let primary_phy = engine.add_node(
                &format!("c{i}-phy-primary"),
                Box::new(mk_phy(pri_id, None, &mut rng)),
            );
            let secondary_phy = engine.add_node(
                &format!("c{i}-phy-secondary"),
                Box::new(mk_phy(sec_id, cfg.secondary_fec_iterations, &mut rng)),
            );
            let orion_primary = engine.add_node(
                &format!("c{i}-orion-phy{pri_id}"),
                Box::new(OrionPhyNode::new(pri_id, ru_id)),
            );
            let orion_secondary = engine.add_node(
                &format!("c{i}-orion-phy{sec_id}"),
                Box::new(OrionPhyNode::new(sec_id, ru_id)),
            );
            let orion_l2 = engine.add_node(
                &format!("c{i}-orion-l2"),
                Box::new(OrionL2Node::new(ru_id, clock)),
            );

            let run = RuNode::new(ru_id, clock);
            let ru_mac = run.mac();
            let ru = engine.add_node(&format!("c{i}-ru"), Box::new(run));

            let mut ues = Vec::new();
            for u in ues_cfg.clone() {
                let name = u.name.clone();
                let node = UeNode::new(u, cell.clone(), clock, rng.fork(&name));
                ues.push(engine.add_node(&name, Box::new(node)));
            }

            mbox.install_ru(ru_id, ru_mac, PortId(base_port + 1), pri_id);
            mbox.install_phy(pri_id, MacAddr::for_phy(pri_id), PortId(base_port + 2));
            mbox.install_phy(sec_id, MacAddr::for_phy(sec_id), PortId(base_port + 3));
            mbox.install_host(orion_l2_mac(ru_id), PortId(base_port + 4));
            mbox.install_host(orion_phy_mac(pri_id), PortId(base_port + 12));
            mbox.install_host(orion_phy_mac(sec_id), PortId(base_port + 13));
            mbox.enroll_failure_detection(pri_id);
            mbox.enroll_failure_detection(sec_id);
            attach.push((PortId(base_port + 1), ru));
            attach.push((PortId(base_port + 2), primary_phy));
            attach.push((PortId(base_port + 3), secondary_phy));
            attach.push((PortId(base_port + 4), orion_l2));
            attach.push((PortId(base_port + 12), orion_primary));
            attach.push((PortId(base_port + 13), orion_secondary));

            all_ues.extend(ues.iter().copied());
            cells.push(CellDeployment {
                ru,
                l2,
                orion_l2,
                primary_phy,
                secondary_phy,
                orion_primary,
                orion_secondary,
                ues,
                ru_id,
                cell_id: cell.cell_id,
                primary_phy_id: pri_id,
                secondary_phy_id: sec_id,
            });
        }

        // --- shared spare pool + recovery orchestrator ---
        // Spares take PHY ids after every cell pair (2n+1+j) and switch
        // ports in the region past the last cell. Each is installed as a
        // plain host only: its virtual-PHY identity is installed by the
        // orchestrator's InstallStandby at grant time.
        let spare_region = PORT_STRIDE * n_cells as u16;
        let mut spares: Vec<(u8, NodeId, NodeId)> = Vec::new();
        for j in 0..cfg.spare_pool {
            let id = (2 * n_cells + 1 + j) as u8;
            let mut pc = PhyConfig::new(id);
            pc.fec_iterations = cfg.cell.fec_iterations;
            let phy = engine.add_node(
                &format!("spare-phy{id}"),
                Box::new(PhyNode::new(
                    pc,
                    cfg.cell.clone(),
                    clock,
                    rng.fork(&format!("phy{id}")),
                )),
            );
            let orion = engine.add_node(
                &format!("spare-orion-phy{id}"),
                Box::new(OrionPhyNode::new(id, 0)),
            );
            let pport = spare_region + 1 + 2 * j as u16;
            let oport = spare_region + 2 + 2 * j as u16;
            mbox.install_host(MacAddr::for_phy(id), PortId(pport));
            mbox.install_host(orion_phy_mac(id), PortId(oport));
            attach.push((PortId(pport), phy));
            attach.push((PortId(oport), orion));
            spares.push((id, phy, orion));
        }
        let recovery = (cfg.spare_pool > 0).then(|| {
            let rport = spare_region + 1 + 2 * cfg.spare_pool as u16;
            let node = engine.add_node("recovery", Box::new(RecoveryOrchestrator::new(clock)));
            mbox.install_host(recovery_mac(), PortId(rport));
            attach.push((PortId(rport), node));
            node
        });

        let switch_mac = mbox.switch_mac;
        let mut swn = SwitchNode::new(mbox, cfg.forwarding, rng.fork("switch"));
        // Build-time port audit: the stride layout wraps the u16 port
        // space at city scale; claiming every port catches a collision
        // here, with both claimants named, instead of silently
        // cross-wiring cells.
        let mut ports = PortSpace::new("switch");
        for (port, node) in attach {
            swn.attach(ports.claim(port, engine.node_name(node)), node);
        }
        let switch = engine.add_node("switch", Box::new(swn));

        // --- wiring ---
        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        {
            let c = engine.node_mut::<CoreNode>(core).unwrap();
            c.wire(cells[0].l2, server);
            for (i, cell) in cells.iter().enumerate() {
                for u in &cell_ues[i] {
                    c.route_ue(u.rnti, cell.l2);
                }
            }
        }
        for cell in &cells {
            engine
                .node_mut::<L2Node>(cell.l2)
                .unwrap()
                .wire(cell.orion_l2, core);
            engine
                .node_mut::<PhyNode>(cell.primary_phy)
                .unwrap()
                .wire(switch, cell.orion_primary);
            engine
                .node_mut::<PhyNode>(cell.secondary_phy)
                .unwrap()
                .wire(switch, cell.orion_secondary);
            for (orion, phy) in [
                (cell.orion_primary, cell.primary_phy),
                (cell.orion_secondary, cell.secondary_phy),
            ] {
                let o = engine.node_mut::<OrionPhyNode>(orion).unwrap();
                o.wire(switch, phy);
                o.route_ru(cell.ru_id, orion_l2_mac(cell.ru_id));
            }
            {
                let o = engine.node_mut::<OrionL2Node>(cell.orion_l2).unwrap();
                o.wire(switch, cell.l2, switch_mac);
                o.bind_ru(cell.ru_id, cell.primary_phy_id, Some(cell.secondary_phy_id));
            }
            engine
                .node_mut::<RuNode>(cell.ru)
                .unwrap()
                .wire(switch, cell.ues.clone());
            for ue in &cell.ues {
                engine
                    .node_mut::<UeNode>(*ue)
                    .unwrap()
                    .wire(cell.ru, cell.l2);
            }
        }
        for (_, phy, orion) in &spares {
            engine
                .node_mut::<PhyNode>(*phy)
                .unwrap()
                .wire(switch, *orion);
            let o = engine.node_mut::<OrionPhyNode>(*orion).unwrap();
            o.wire(switch, *phy);
            // A pooled spare may end up serving any cell: pre-route every
            // RU's indications to that cell's L2-side Orion.
            for cell in &cells {
                o.route_ru(cell.ru_id, orion_l2_mac(cell.ru_id));
            }
        }
        if let Some(rec) = recovery {
            {
                let r = engine.node_mut::<RecoveryOrchestrator>(rec).unwrap();
                r.wire(switch, switch_mac);
                for (id, phy, _) in &spares {
                    r.add_spare(*id, *phy);
                }
                for cell in &cells {
                    r.register_cell(cell.ru_id, orion_l2_mac(cell.ru_id));
                    r.register_phy(cell.primary_phy_id, cell.primary_phy);
                    r.register_phy(cell.secondary_phy_id, cell.secondary_phy);
                }
            }
            for cell in &cells {
                engine
                    .node_mut::<OrionL2Node>(cell.orion_l2)
                    .unwrap()
                    .set_recovery_orchestrator(recovery_mac());
            }
        }

        // --- links ---
        engine.connect_duplex(server, core, cfg.backhaul_link.clone());
        for cell in &cells {
            engine.connect_duplex(core, cell.l2, cfg.backhaul_link.clone());
            engine.connect_duplex(cell.l2, cell.orion_l2, LinkParams::ideal(Nanos(500)));
            engine.connect_duplex(cell.ru, switch, cfg.fronthaul_link.clone());
            for node in [
                cell.primary_phy,
                cell.secondary_phy,
                cell.orion_primary,
                cell.orion_secondary,
                cell.orion_l2,
            ] {
                engine.connect_duplex(node, switch, cfg.server_link.clone());
            }
            engine.connect_duplex(
                cell.primary_phy,
                cell.orion_primary,
                LinkParams::ideal(Nanos(500)),
            );
            engine.connect_duplex(
                cell.secondary_phy,
                cell.orion_secondary,
                LinkParams::ideal(Nanos(500)),
            );
        }
        for (_, phy, orion) in &spares {
            engine.connect_duplex(*phy, switch, cfg.server_link.clone());
            engine.connect_duplex(*orion, switch, cfg.server_link.clone());
            engine.connect_duplex(*phy, *orion, LinkParams::ideal(Nanos(500)));
        }
        if let Some(rec) = recovery {
            engine.connect_duplex(rec, switch, cfg.server_link.clone());
        }

        let mut phy_nodes = BTreeMap::new();
        let mut phy_orions = BTreeMap::new();
        for cell in &cells {
            phy_nodes.insert(cell.primary_phy_id, cell.primary_phy);
            phy_nodes.insert(cell.secondary_phy_id, cell.secondary_phy);
            phy_orions.insert(cell.primary_phy_id, cell.orion_primary);
            phy_orions.insert(cell.secondary_phy_id, cell.orion_secondary);
        }
        for (id, phy, orion) in &spares {
            phy_nodes.insert(*id, *phy);
            phy_orions.insert(*id, *orion);
        }

        let c0 = cells[0].clone();
        Deployment {
            engine,
            switch,
            ru: c0.ru,
            primary_phy: c0.primary_phy,
            secondary_phy: c0.secondary_phy,
            spare_phy: None,
            orion_primary: c0.orion_primary,
            orion_secondary: c0.orion_secondary,
            orion_spare: None,
            orion_l2: c0.orion_l2,
            l2: c0.l2,
            core,
            server,
            ues: all_ues,
            cells,
            spare_phys: spares,
            recovery,
            phy_nodes,
            phy_orions,
            workers: 1,
            chaos: None,
            leaves: Vec::new(),
            spine: None,
            switch_of_ru: BTreeMap::new(),
            attached_switch: BTreeMap::new(),
            fabric_lanes: None,
            cfg,
        }
    }

    /// Leaf/spine fabric construction (`cell_groups(g ≥ 2)`): cells are
    /// split into `g` contiguous near-even groups, each behind its own
    /// leaf switch running a full fronthaul middlebox (failure
    /// detection stays leaf-local, preserving the in-switch detection
    /// latency). A spine switch joins the leaves to the spine-side
    /// services — app server, core, pooled spares, and the recovery
    /// orchestrator — forwarding by host MAC and relaying
    /// switch-addressed control frames to the owning leaf by RU id.
    ///
    /// The engine is staged for `g + 1` dispatch lanes: lane 0 is the
    /// spine domain, lane `1 + g` each leaf group. Cross-lane traffic
    /// (backhaul, spare-pool control, leaf↔spine frames) synchronizes
    /// at slot boundaries.
    fn build_fabric(
        cfg: DeploymentConfig,
        n_cells: usize,
        ue_cfgs: Vec<UeConfig>,
        groups: usize,
    ) -> Deployment {
        assert!(groups >= 2, "fabric builds need at least two groups");
        assert!(
            n_cells >= groups,
            "need at least one cell per group ({n_cells} cells, {groups} groups)"
        );
        assert!(
            ue_cfgs.iter().all(|u| (u.ru_id as usize) < n_cells),
            "every UE's ru_id must address a built cell"
        );
        let mut engine: Engine<Msg> = Engine::new(cfg.seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(cfg.seed ^ 0x5113_6507);

        // Contiguous near-even partition: the first `extra` groups get
        // one extra cell.
        let base = n_cells / groups;
        let extra = n_cells % groups;
        let mut group_of_cell: Vec<usize> = Vec::with_capacity(n_cells);
        for g in 0..groups {
            for _ in 0..base + usize::from(g < extra) {
                group_of_cell.push(g);
            }
        }

        // Lane tags recorded as nodes are added; lane 0 = spine domain.
        let mut lane_tag: Vec<(NodeId, u32)> = Vec::new();

        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        lane_tag.push((server, 0));
        let core = engine.add_node("core", Box::new(CoreNode::new()));
        lane_tag.push((core, 0));

        let mut cell_ues: Vec<Vec<UeConfig>> = vec![Vec::new(); n_cells];
        for u in ue_cfgs {
            cell_ues[u.ru_id as usize].push(u);
        }

        // One middlebox per leaf; failure notifications fan out to the
        // leaf's own L2-side Orions plus (via the uplink) the recovery
        // orchestrator on the spine.
        let mut mboxes: Vec<FhMbox> = (0..groups)
            .map(|g| {
                let mut notify: Vec<MacAddr> = (0..n_cells)
                    .filter(|i| group_of_cell[*i] == g)
                    .map(|i| orion_l2_mac(i as u8))
                    .collect();
                if cfg.spare_pool > 0 {
                    notify.push(recovery_mac());
                }
                FhMbox::with_notify_targets(cfg.detector, notify)
            })
            .collect();
        let mut leaf_ports: Vec<PortSpace> = (0..groups)
            .map(|g| PortSpace::new(&format!("leaf{g}")))
            .collect();
        let mut leaf_attach: Vec<Vec<(PortId, NodeId)>> = vec![Vec::new(); groups];
        let mut cells: Vec<CellDeployment> = Vec::new();
        let mut all_ues: Vec<NodeId> = Vec::new();

        for (i, ues_cfg) in cell_ues.iter().enumerate() {
            let g = group_of_cell[i];
            let lane = (1 + g) as u32;
            let ru_id = i as u8;
            let pri_id = (2 * i + 1) as u8;
            let sec_id = (2 * i + 2) as u8;
            let mut cell = cfg.cell.clone();
            cell.cell_id = cfg.cell.cell_id + i as u16;

            let mut l2n = L2Node::new(cell.clone(), clock, ru_id);
            for u in ues_cfg {
                if u.preattached {
                    l2n.preattach_ue(u.rnti, u.snr.mean_db);
                }
            }
            let l2 = engine.add_node(&format!("c{i}-l2"), Box::new(l2n));

            let mk_phy = |id: u8, iters: Option<usize>, rng: &mut SimRng| {
                let mut pc = PhyConfig::new(id);
                pc.fec_iterations = iters.unwrap_or(cell.fec_iterations);
                PhyNode::new(pc, cell.clone(), clock, rng.fork(&format!("phy{id}")))
            };
            let primary_phy = engine.add_node(
                &format!("c{i}-phy-primary"),
                Box::new(mk_phy(pri_id, None, &mut rng)),
            );
            let secondary_phy = engine.add_node(
                &format!("c{i}-phy-secondary"),
                Box::new(mk_phy(sec_id, cfg.secondary_fec_iterations, &mut rng)),
            );
            let orion_primary = engine.add_node(
                &format!("c{i}-orion-phy{pri_id}"),
                Box::new(OrionPhyNode::new(pri_id, ru_id)),
            );
            let orion_secondary = engine.add_node(
                &format!("c{i}-orion-phy{sec_id}"),
                Box::new(OrionPhyNode::new(sec_id, ru_id)),
            );
            let orion_l2 = engine.add_node(
                &format!("c{i}-orion-l2"),
                Box::new(OrionL2Node::new(ru_id, clock)),
            );

            let run = RuNode::new(ru_id, clock);
            let ru_mac = run.mac();
            let ru = engine.add_node(&format!("c{i}-ru"), Box::new(run));

            let mut ues = Vec::new();
            for u in ues_cfg.clone() {
                let name = u.name.clone();
                let node = UeNode::new(u, cell.clone(), clock, rng.fork(&name));
                ues.push(engine.add_node(&name, Box::new(node)));
            }
            for id in [
                l2,
                primary_phy,
                secondary_phy,
                orion_primary,
                orion_secondary,
            ]
            .into_iter()
            .chain([orion_l2, ru])
            .chain(ues.iter().copied())
            {
                lane_tag.push((id, lane));
            }

            let mbox = &mut mboxes[g];
            let ports = &mut leaf_ports[g];
            let p_ru = ports.alloc(&format!("c{i}-ru"));
            let p_pri = ports.alloc(&format!("c{i}-phy-primary"));
            let p_sec = ports.alloc(&format!("c{i}-phy-secondary"));
            let p_ol2 = ports.alloc(&format!("c{i}-orion-l2"));
            let p_opri = ports.alloc(&format!("c{i}-orion-phy{pri_id}"));
            let p_osec = ports.alloc(&format!("c{i}-orion-phy{sec_id}"));
            mbox.install_ru(ru_id, ru_mac, p_ru, pri_id);
            mbox.install_phy(pri_id, MacAddr::for_phy(pri_id), p_pri);
            mbox.install_phy(sec_id, MacAddr::for_phy(sec_id), p_sec);
            mbox.install_host(orion_l2_mac(ru_id), p_ol2);
            mbox.install_host(orion_phy_mac(pri_id), p_opri);
            mbox.install_host(orion_phy_mac(sec_id), p_osec);
            mbox.enroll_failure_detection(pri_id);
            mbox.enroll_failure_detection(sec_id);
            let la = &mut leaf_attach[g];
            la.push((p_ru, ru));
            la.push((p_pri, primary_phy));
            la.push((p_sec, secondary_phy));
            la.push((p_ol2, orion_l2));
            la.push((p_opri, orion_primary));
            la.push((p_osec, orion_secondary));

            all_ues.extend(ues.iter().copied());
            cells.push(CellDeployment {
                ru,
                l2,
                orion_l2,
                primary_phy,
                secondary_phy,
                orion_primary,
                orion_secondary,
                ues,
                ru_id,
                cell_id: cell.cell_id,
                primary_phy_id: pri_id,
                secondary_phy_id: sec_id,
            });
        }

        // --- spine-side services: shared spare pool + orchestrator ---
        let mut spares: Vec<(u8, NodeId, NodeId)> = Vec::new();
        for j in 0..cfg.spare_pool {
            let id = (2 * n_cells + 1 + j) as u8;
            let mut pc = PhyConfig::new(id);
            pc.fec_iterations = cfg.cell.fec_iterations;
            let phy = engine.add_node(
                &format!("spare-phy{id}"),
                Box::new(PhyNode::new(
                    pc,
                    cfg.cell.clone(),
                    clock,
                    rng.fork(&format!("phy{id}")),
                )),
            );
            let orion = engine.add_node(
                &format!("spare-orion-phy{id}"),
                Box::new(OrionPhyNode::new(id, 0)),
            );
            lane_tag.push((phy, 0));
            lane_tag.push((orion, 0));
            spares.push((id, phy, orion));
        }
        let recovery = (cfg.spare_pool > 0).then(|| {
            let node = engine.add_node("recovery", Box::new(RecoveryOrchestrator::new(clock)));
            lane_tag.push((node, 0));
            node
        });

        // Leaf uplinks: every spine-side MAC a leaf's tenants talk to
        // (the orchestrator, every pooled spare PHY and its Orion)
        // resolves to the uplink port. This also covers post-grant
        // forwarding: InstallStandby fills the PHY/address directories
        // but not the port table, so the spare's MAC must already
        // route.
        let mut uplinks: Vec<PortId> = Vec::with_capacity(groups);
        for g in 0..groups {
            let up = leaf_ports[g].alloc("uplink->spine");
            let mbox = &mut mboxes[g];
            if cfg.spare_pool > 0 {
                mbox.install_host(recovery_mac(), up);
            }
            for (id, _, _) in &spares {
                mbox.install_host(MacAddr::for_phy(*id), up);
                mbox.install_host(orion_phy_mac(*id), up);
            }
            uplinks.push(up);
        }

        // Add the leaf switch nodes, then the spine (always last, like
        // the classic builds keep the switch last).
        let mut leaves: Vec<NodeId> = Vec::new();
        for (g, mbox) in mboxes.into_iter().enumerate() {
            let swn = SwitchNode::new(mbox, cfg.forwarding, rng.fork(&format!("leaf{g}")));
            let leaf = engine.add_node(&format!("leaf{g}"), Box::new(swn));
            lane_tag.push((leaf, (1 + g) as u32));
            leaves.push(leaf);
        }
        let mut spn = SpineSwitchNode::new(cfg.forwarding, rng.fork("spine"));
        let mut spine_ports = PortSpace::new("spine");
        let mut spine_attach: Vec<(PortId, NodeId)> = Vec::new();
        for (g, leaf) in leaves.iter().enumerate() {
            let port = spine_ports.alloc(&format!("leaf{g}"));
            spine_attach.push((port, *leaf));
            // Every MAC living behind this leaf routes to its port, and
            // switch-addressed control frames for its cells relay there.
            for cell in cells
                .iter()
                .filter(|c| group_of_cell[c.ru_id as usize] == g)
            {
                spn.install_host(MacAddr::for_ru(cell.ru_id), port);
                spn.install_host(MacAddr::for_phy(cell.primary_phy_id), port);
                spn.install_host(MacAddr::for_phy(cell.secondary_phy_id), port);
                spn.install_host(orion_phy_mac(cell.primary_phy_id), port);
                spn.install_host(orion_phy_mac(cell.secondary_phy_id), port);
                spn.install_host(orion_l2_mac(cell.ru_id), port);
                spn.install_ru_route(cell.ru_id, port);
            }
        }
        for (id, phy, orion) in &spares {
            let pp = spine_ports.alloc(&format!("spare-phy{id}"));
            let op = spine_ports.alloc(&format!("spare-orion-phy{id}"));
            spn.install_host(MacAddr::for_phy(*id), pp);
            spn.install_host(orion_phy_mac(*id), op);
            spine_attach.push((pp, *phy));
            spine_attach.push((op, *orion));
        }
        if let Some(rec) = recovery {
            let rp = spine_ports.alloc("recovery");
            spn.install_host(recovery_mac(), rp);
            spine_attach.push((rp, rec));
        }
        for (port, node) in spine_attach {
            spn.attach(port, node);
        }
        let spine = engine.add_node("spine", Box::new(spn));
        lane_tag.push((spine, 0));
        for (g, leaf) in leaves.iter().enumerate() {
            let sw = engine.node_mut::<SwitchNode>(*leaf).unwrap();
            for (port, node) in std::mem::take(&mut leaf_attach[g]) {
                sw.attach(port, node);
            }
            sw.attach(uplinks[g], spine);
        }

        // --- wiring (as build_multi, with each cell's switch = its
        // leaf and the spine-side services on the spine) ---
        let leaf_of = |ru_id: u8| leaves[group_of_cell[ru_id as usize]];
        let switch_mac = FhMbox::SWITCH_MAC;
        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        {
            let c = engine.node_mut::<CoreNode>(core).unwrap();
            c.wire(cells[0].l2, server);
            for (i, cell) in cells.iter().enumerate() {
                for u in &cell_ues[i] {
                    c.route_ue(u.rnti, cell.l2);
                }
            }
        }
        for cell in &cells {
            let leaf = leaf_of(cell.ru_id);
            engine
                .node_mut::<L2Node>(cell.l2)
                .unwrap()
                .wire(cell.orion_l2, core);
            engine
                .node_mut::<PhyNode>(cell.primary_phy)
                .unwrap()
                .wire(leaf, cell.orion_primary);
            engine
                .node_mut::<PhyNode>(cell.secondary_phy)
                .unwrap()
                .wire(leaf, cell.orion_secondary);
            for (orion, phy) in [
                (cell.orion_primary, cell.primary_phy),
                (cell.orion_secondary, cell.secondary_phy),
            ] {
                let o = engine.node_mut::<OrionPhyNode>(orion).unwrap();
                o.wire(leaf, phy);
                o.route_ru(cell.ru_id, orion_l2_mac(cell.ru_id));
            }
            {
                let o = engine.node_mut::<OrionL2Node>(cell.orion_l2).unwrap();
                o.wire(leaf, cell.l2, switch_mac);
                o.bind_ru(cell.ru_id, cell.primary_phy_id, Some(cell.secondary_phy_id));
            }
            engine
                .node_mut::<RuNode>(cell.ru)
                .unwrap()
                .wire(leaf, cell.ues.clone());
            for ue in &cell.ues {
                engine
                    .node_mut::<UeNode>(*ue)
                    .unwrap()
                    .wire(cell.ru, cell.l2);
            }
        }
        for (_, phy, orion) in &spares {
            engine
                .node_mut::<PhyNode>(*phy)
                .unwrap()
                .wire(spine, *orion);
            let o = engine.node_mut::<OrionPhyNode>(*orion).unwrap();
            o.wire(spine, *phy);
            for cell in &cells {
                o.route_ru(cell.ru_id, orion_l2_mac(cell.ru_id));
            }
        }
        if let Some(rec) = recovery {
            {
                let r = engine.node_mut::<RecoveryOrchestrator>(rec).unwrap();
                r.wire(spine, switch_mac);
                for (id, phy, _) in &spares {
                    r.add_spare(*id, *phy);
                }
                for cell in &cells {
                    r.register_cell(cell.ru_id, orion_l2_mac(cell.ru_id));
                    r.register_phy(cell.primary_phy_id, cell.primary_phy);
                    r.register_phy(cell.secondary_phy_id, cell.secondary_phy);
                }
            }
            for cell in &cells {
                engine
                    .node_mut::<OrionL2Node>(cell.orion_l2)
                    .unwrap()
                    .set_recovery_orchestrator(recovery_mac());
            }
        }

        // --- links ---
        engine.connect_duplex(server, core, cfg.backhaul_link.clone());
        for cell in &cells {
            let leaf = leaf_of(cell.ru_id);
            engine.connect_duplex(core, cell.l2, cfg.backhaul_link.clone());
            engine.connect_duplex(cell.l2, cell.orion_l2, LinkParams::ideal(Nanos(500)));
            engine.connect_duplex(cell.ru, leaf, cfg.fronthaul_link.clone());
            for node in [
                cell.primary_phy,
                cell.secondary_phy,
                cell.orion_primary,
                cell.orion_secondary,
                cell.orion_l2,
            ] {
                engine.connect_duplex(node, leaf, cfg.server_link.clone());
            }
            engine.connect_duplex(
                cell.primary_phy,
                cell.orion_primary,
                LinkParams::ideal(Nanos(500)),
            );
            engine.connect_duplex(
                cell.secondary_phy,
                cell.orion_secondary,
                LinkParams::ideal(Nanos(500)),
            );
        }
        for (_, phy, orion) in &spares {
            engine.connect_duplex(*phy, spine, cfg.server_link.clone());
            engine.connect_duplex(*orion, spine, cfg.server_link.clone());
            engine.connect_duplex(*phy, *orion, LinkParams::ideal(Nanos(500)));
        }
        if let Some(rec) = recovery {
            engine.connect_duplex(rec, spine, cfg.server_link.clone());
        }
        for leaf in &leaves {
            engine.connect_duplex(*leaf, spine, cfg.server_link.clone());
        }

        let mut phy_nodes = BTreeMap::new();
        let mut phy_orions = BTreeMap::new();
        for cell in &cells {
            phy_nodes.insert(cell.primary_phy_id, cell.primary_phy);
            phy_nodes.insert(cell.secondary_phy_id, cell.secondary_phy);
            phy_orions.insert(cell.primary_phy_id, cell.orion_primary);
            phy_orions.insert(cell.secondary_phy_id, cell.orion_secondary);
        }
        for (id, phy, orion) in &spares {
            phy_nodes.insert(*id, *phy);
            phy_orions.insert(*id, *orion);
        }

        // Lane map and fabric directories.
        let mut lane_of = vec![0u32; lane_tag.len()];
        for (id, lane) in &lane_tag {
            lane_of[id.0] = *lane;
        }
        let mut switch_of_ru = BTreeMap::new();
        let mut attached_switch = BTreeMap::new();
        for cell in &cells {
            let leaf = leaf_of(cell.ru_id);
            switch_of_ru.insert(cell.ru_id, leaf);
            for id in [
                cell.ru,
                cell.primary_phy,
                cell.secondary_phy,
                cell.orion_primary,
                cell.orion_secondary,
                cell.orion_l2,
            ] {
                attached_switch.insert(id, leaf);
            }
        }
        for (_, phy, orion) in &spares {
            attached_switch.insert(*phy, spine);
            attached_switch.insert(*orion, spine);
        }
        if let Some(rec) = recovery {
            attached_switch.insert(rec, spine);
        }

        let c0 = cells[0].clone();
        Deployment {
            engine,
            switch: spine,
            ru: c0.ru,
            primary_phy: c0.primary_phy,
            secondary_phy: c0.secondary_phy,
            spare_phy: None,
            orion_primary: c0.orion_primary,
            orion_secondary: c0.orion_secondary,
            orion_spare: None,
            orion_l2: c0.orion_l2,
            l2: c0.l2,
            core,
            server,
            ues: all_ues,
            cells,
            spare_phys: spares,
            recovery,
            phy_nodes,
            phy_orions,
            workers: 1,
            chaos: None,
            leaves,
            spine: Some(spine),
            switch_of_ru,
            attached_switch,
            fabric_lanes: Some((lane_of, groups + 1)),
            cfg,
        }
    }

    /// The switch whose middlebox serves `ru_id`: its leaf in a fabric
    /// build, the one shared switch otherwise.
    pub fn switch_for_ru(&self, ru_id: u8) -> NodeId {
        *self.switch_of_ru.get(&ru_id).unwrap_or(&self.switch)
    }

    /// The switch an endpoint node is cabled to: its leaf (or the
    /// spine, for spine-side services) in a fabric build, the one
    /// shared switch otherwise.
    pub fn switch_for_node(&self, node: NodeId) -> NodeId {
        *self.attached_switch.get(&node).unwrap_or(&self.switch)
    }

    /// Attach an app to a UE (by index into the flattened `ues` list)
    /// and its far end at the server.
    pub fn add_flow(
        &mut self,
        ue_idx: usize,
        rnti: u16,
        ue_app: Box<dyn UserApp>,
        server_app: Box<dyn UserApp>,
    ) {
        self.engine
            .node_mut::<UeNode>(self.ues[ue_idx])
            .unwrap()
            .add_app(ue_app);
        self.engine
            .node_mut::<AppServerNode>(self.server)
            .unwrap()
            .add_app(rnti, server_app);
    }

    /// Run the chaos scenario staged by [`DeploymentBuilder::chaos`],
    /// consuming it. Returns `None` when no scenario was staged.
    pub fn run_chaos(&mut self) -> Option<OracleReport> {
        let scenario = self.chaos.take()?;
        Some(crate::chaos::run_scenario(self, &scenario))
    }

    /// Publish every component's counters into the engine's metrics
    /// registry, scoped by node name, along with per-link stats. Each
    /// node reports through the [`Instrument`] trait. Idempotent —
    /// values are set, not accumulated — so it can be called at any
    /// point (or repeatedly) during a run.
    pub fn publish_metrics(&mut self) {
        self.engine.publish_link_metrics();

        let mut sink = MetricsCollector::default();
        let collect_node = |engine: &Engine<Msg>, id: NodeId, sink: &mut MetricsCollector| {
            let scope = engine.node_name(id).to_string();
            // Every instrumented node type is tried; exactly one
            // downcast succeeds per id.
            if let Some(n) = engine.node::<SwitchNode>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<SpineSwitchNode>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<PhyNode>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<OrionPhyNode>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<OrionL2Node>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<UeNode>(id) {
                n.instrument(&scope, sink);
            } else if let Some(n) = engine.node::<RecoveryOrchestrator>(id) {
                n.instrument(&scope, sink);
            }
        };

        collect_node(&self.engine, self.switch, &mut sink);
        for leaf in &self.leaves {
            collect_node(&self.engine, *leaf, &mut sink);
        }
        for cell in &self.cells {
            for id in [
                cell.primary_phy,
                cell.secondary_phy,
                cell.orion_primary,
                cell.orion_secondary,
                cell.orion_l2,
            ] {
                collect_node(&self.engine, id, &mut sink);
            }
        }
        for id in [self.spare_phy, self.orion_spare].into_iter().flatten() {
            collect_node(&self.engine, id, &mut sink);
        }
        for (_, phy, orion) in &self.spare_phys {
            collect_node(&self.engine, *phy, &mut sink);
            collect_node(&self.engine, *orion, &mut sink);
        }
        if let Some(rec) = self.recovery {
            collect_node(&self.engine, rec, &mut sink);
        }
        for ue in &self.ues {
            collect_node(&self.engine, *ue, &mut sink);
        }

        let reg = self.engine.metrics_mut();
        for (scope, name, v) in sink.counters {
            reg.set_counter(&scope, &name, v);
        }
        for (scope, name, v) in sink.gauges {
            reg.set_gauge(&scope, &name, v);
        }
        for (scope, name, h) in sink.hists {
            *reg.histogram_mut(&scope, &name) = h;
        }
    }

    /// SIGKILL the primary PHY at `at` (the §8 failover trigger).
    pub fn kill_primary_at(&mut self, at: Nanos) {
        // Killing is immediate from the engine; to do it at a future
        // time we use a one-shot control: run to `at` first.
        self.engine.run_until(at);
        self.engine.kill(self.primary_phy);
    }

    /// Request a planned migration of the RU to the secondary PHY.
    pub fn planned_migration_at(&mut self, at: Nanos) {
        self.engine.post(
            at,
            self.orion_l2,
            Msg::Ctl(CtlMsg::PlannedMigration { ru_id: RU_ID }),
        );
    }
}
