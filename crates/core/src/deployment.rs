//! Full Slingshot testbed builder: the paper's Figure 4(b) topology —
//! RU(s) and servers behind one programmable switch running the
//! fronthaul middlebox, a primary and hot-standby PHY each paired with
//! a PHY-side Orion, the L2 paired with the L2-side Orion, the core
//! network stub, the app server, and UEs. All links and latencies are
//! configurable; defaults approximate the paper's testbed (Table 1).

use slingshot_netsim::MacAddr;
use slingshot_ran::{
    AppServerNode, CellConfig, CoreNode, CtlMsg, L2Node, Msg, PhyConfig, PhyNode, RuNode, UeConfig,
    UeNode,
};
use slingshot_sim::{Engine, LinkParams, Nanos, NodeId, SimRng, SlotClock};
use slingshot_switch::{PktGenConfig, PortId};
use slingshot_transport::UserApp;

use crate::fh_mbox::FhMbox;
use crate::orion::{OrionL2Node, OrionPhyNode};
use crate::switch_node::{ForwardingModel, SwitchNode};

/// Deployment-wide configuration.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    pub cell: CellConfig,
    pub seed: u64,
    /// Failure-detector configuration (paper: T=450 µs, n=50).
    pub detector: PktGenConfig,
    /// Fronthaul link: RU ↔ switch (paper: fiber, sub-100 µs budget).
    pub fronthaul_link: LinkParams,
    /// Server links: PHY/L2 servers ↔ switch (100 GbE).
    pub server_link: LinkParams,
    /// Backhaul: core ↔ L2 and core ↔ app server.
    pub backhaul_link: LinkParams,
    /// Middlebox forwarding model (in-switch vs software ablation).
    pub forwarding: ForwardingModel,
    /// FEC iterations for the secondary PHY (≠ primary models the
    /// Fig. 11 upgraded build).
    pub secondary_fec_iterations: Option<usize>,
    /// Register one extra spare PHY server (replacement standby pool).
    pub with_spare_phy: bool,
}

impl Default for DeploymentConfig {
    fn default() -> DeploymentConfig {
        DeploymentConfig {
            cell: CellConfig::default(),
            seed: 1,
            detector: PktGenConfig::paper_default(),
            fronthaul_link: LinkParams::with_bandwidth(Nanos(20_000), 25_000_000_000),
            server_link: LinkParams::with_bandwidth(Nanos(2_000), 100_000_000_000),
            backhaul_link: LinkParams::with_bandwidth(Nanos::from_millis(4), 10_000_000_000),
            forwarding: ForwardingModel::InSwitch,
            secondary_fec_iterations: None,
            with_spare_phy: false,
        }
    }
}

/// Node ids of a built deployment.
pub struct Deployment {
    pub engine: Engine<Msg>,
    pub switch: NodeId,
    pub ru: NodeId,
    pub primary_phy: NodeId,
    pub secondary_phy: NodeId,
    pub spare_phy: Option<NodeId>,
    pub orion_primary: NodeId,
    pub orion_secondary: NodeId,
    pub orion_spare: Option<NodeId>,
    pub orion_l2: NodeId,
    pub l2: NodeId,
    pub core: NodeId,
    pub server: NodeId,
    pub ues: Vec<NodeId>,
    pub cfg: DeploymentConfig,
}

/// PHY ids used by the standard single-RU deployment.
pub const PRIMARY_PHY_ID: u8 = 1;
pub const SECONDARY_PHY_ID: u8 = 2;
pub const SPARE_PHY_ID: u8 = 3;
pub const RU_ID: u8 = 0;
pub const L2_ID: u8 = 0;

impl Deployment {
    /// Build the standard single-RU Slingshot deployment.
    pub fn build(cfg: DeploymentConfig, ue_cfgs: Vec<UeConfig>) -> Deployment {
        let mut engine: Engine<Msg> = Engine::new(cfg.seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(cfg.seed ^ 0x5113_6507);

        // --- nodes ---
        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        let core = engine.add_node("core", Box::new(CoreNode::new()));
        let mut l2n = L2Node::new(cfg.cell.clone(), clock, RU_ID);
        for u in &ue_cfgs {
            if u.preattached {
                l2n.preattach_ue(u.rnti, u.snr.mean_db);
            }
        }
        let l2 = engine.add_node("l2", Box::new(l2n));

        let mk_phy = |id: u8, iters: Option<usize>, rng: &mut SimRng| {
            let mut pc = PhyConfig::new(id);
            if let Some(it) = iters {
                pc.fec_iterations = it;
            } else {
                pc.fec_iterations = cfg.cell.fec_iterations;
            }
            PhyNode::new(pc, cfg.cell.clone(), clock, rng.fork(&format!("phy{id}")))
        };
        let primary_phy = engine.add_node(
            "phy-primary",
            Box::new(mk_phy(PRIMARY_PHY_ID, None, &mut rng)),
        );
        let secondary_phy = engine.add_node(
            "phy-secondary",
            Box::new(mk_phy(
                SECONDARY_PHY_ID,
                cfg.secondary_fec_iterations,
                &mut rng,
            )),
        );
        let spare_phy = cfg
            .with_spare_phy
            .then(|| engine.add_node("phy-spare", Box::new(mk_phy(SPARE_PHY_ID, None, &mut rng))));

        let orion_primary = engine.add_node(
            "orion-phy1",
            Box::new(OrionPhyNode::new(PRIMARY_PHY_ID, L2_ID)),
        );
        let orion_secondary = engine.add_node(
            "orion-phy2",
            Box::new(OrionPhyNode::new(SECONDARY_PHY_ID, L2_ID)),
        );
        let orion_spare = cfg.with_spare_phy.then(|| {
            engine.add_node(
                "orion-phy3",
                Box::new(OrionPhyNode::new(SPARE_PHY_ID, L2_ID)),
            )
        });
        let orion_l2 = engine.add_node("orion-l2", Box::new(OrionL2Node::new(L2_ID, clock)));

        let run = RuNode::new(RU_ID, clock);
        let ru_mac = run.mac();
        let ru = engine.add_node("ru", Box::new(run));

        let mut ues = Vec::new();
        for u in ue_cfgs {
            let name = u.name.clone();
            let node = UeNode::new(u, cfg.cell.clone(), clock, rng.fork(&name));
            ues.push(engine.add_node(&name, Box::new(node)));
        }

        // --- the switch + middlebox program ---
        let mut mbox = FhMbox::new(cfg.detector, crate::orion::orion_l2_mac(L2_ID));
        // Ports: 1=RU, 2=primary server, 3=secondary server, 4=L2
        // server, 5=spare server.
        mbox.install_ru(RU_ID, ru_mac, PortId(1), PRIMARY_PHY_ID);
        mbox.install_phy(PRIMARY_PHY_ID, MacAddr::for_phy(PRIMARY_PHY_ID), PortId(2));
        mbox.install_phy(
            SECONDARY_PHY_ID,
            MacAddr::for_phy(SECONDARY_PHY_ID),
            PortId(3),
        );
        mbox.install_host(crate::orion::orion_l2_mac(L2_ID), PortId(4));
        if cfg.with_spare_phy {
            mbox.install_phy(SPARE_PHY_ID, MacAddr::for_phy(SPARE_PHY_ID), PortId(5));
            mbox.install_host(crate::orion::orion_phy_mac(SPARE_PHY_ID), PortId(5));
        }
        mbox.enroll_failure_detection(PRIMARY_PHY_ID);
        mbox.enroll_failure_detection(SECONDARY_PHY_ID);
        // The Orion processes share a physical server with their PHY
        // but are distinct traffic endpoints; give each MAC its own
        // (virtual) switch port so egress resolves to the right node.
        mbox.install_host(crate::orion::orion_phy_mac(PRIMARY_PHY_ID), PortId(12));
        mbox.install_host(crate::orion::orion_phy_mac(SECONDARY_PHY_ID), PortId(13));
        if cfg.with_spare_phy {
            mbox.install_host(crate::orion::orion_phy_mac(SPARE_PHY_ID), PortId(15));
        }
        // Re-point the orion MACs (install_host above overrode the
        // earlier shared-port entries at ports 2/3/5).
        let switch_mac = mbox.switch_mac;
        let mut swn = SwitchNode::new(mbox, cfg.forwarding, rng.fork("switch"));
        swn.attach(PortId(1), ru);
        swn.attach(PortId(2), primary_phy);
        swn.attach(PortId(3), secondary_phy);
        swn.attach(PortId(4), orion_l2);
        swn.attach(PortId(12), orion_primary);
        swn.attach(PortId(13), orion_secondary);
        if let Some(p) = spare_phy {
            swn.attach(PortId(5), p);
        }
        if let Some(o) = orion_spare {
            swn.attach(PortId(15), o);
        }
        let switch = engine.add_node("switch", Box::new(swn));

        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        engine.node_mut::<CoreNode>(core).unwrap().wire(l2, server);
        engine.node_mut::<L2Node>(l2).unwrap().wire(orion_l2, core);
        engine
            .node_mut::<PhyNode>(primary_phy)
            .unwrap()
            .wire(switch, orion_primary);
        engine
            .node_mut::<PhyNode>(secondary_phy)
            .unwrap()
            .wire(switch, orion_secondary);
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.node_mut::<PhyNode>(p).unwrap().wire(switch, o);
            engine.node_mut::<OrionPhyNode>(o).unwrap().wire(switch, p);
        }
        engine
            .node_mut::<OrionPhyNode>(orion_primary)
            .unwrap()
            .wire(switch, primary_phy);
        engine
            .node_mut::<OrionPhyNode>(orion_secondary)
            .unwrap()
            .wire(switch, secondary_phy);
        {
            let ol2 = engine.node_mut::<OrionL2Node>(orion_l2).unwrap();
            ol2.wire(switch, l2, switch_mac);
            ol2.bind_ru(RU_ID, PRIMARY_PHY_ID, Some(SECONDARY_PHY_ID));
            if cfg.with_spare_phy {
                ol2.add_spare(SPARE_PHY_ID);
            }
        }
        engine
            .node_mut::<RuNode>(ru)
            .unwrap()
            .wire(switch, ues.clone());
        for ue in &ues {
            engine.node_mut::<UeNode>(*ue).unwrap().wire(ru, l2);
        }

        // --- links ---
        engine.connect_duplex(server, core, cfg.backhaul_link.clone());
        engine.connect_duplex(core, l2, cfg.backhaul_link.clone());
        engine.connect_duplex(l2, orion_l2, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(ru, switch, cfg.fronthaul_link.clone());
        for node in [
            primary_phy,
            secondary_phy,
            orion_primary,
            orion_secondary,
            orion_l2,
        ] {
            engine.connect_duplex(node, switch, cfg.server_link.clone());
        }
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.connect_duplex(p, switch, cfg.server_link.clone());
            engine.connect_duplex(o, switch, cfg.server_link.clone());
        }
        // PHY ↔ its Orion: same-host SHM.
        engine.connect_duplex(primary_phy, orion_primary, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(
            secondary_phy,
            orion_secondary,
            LinkParams::ideal(Nanos(500)),
        );
        if let (Some(p), Some(o)) = (spare_phy, orion_spare) {
            engine.connect_duplex(p, o, LinkParams::ideal(Nanos(500)));
        }

        Deployment {
            engine,
            switch,
            ru,
            primary_phy,
            secondary_phy,
            spare_phy,
            orion_primary,
            orion_secondary,
            orion_spare,
            orion_l2,
            l2,
            core,
            server,
            ues,
            cfg,
        }
    }

    /// Attach an app to a UE (by index) and its far end at the server.
    pub fn add_flow(
        &mut self,
        ue_idx: usize,
        rnti: u16,
        ue_app: Box<dyn UserApp>,
        server_app: Box<dyn UserApp>,
    ) {
        self.engine
            .node_mut::<UeNode>(self.ues[ue_idx])
            .unwrap()
            .add_app(ue_app);
        self.engine
            .node_mut::<AppServerNode>(self.server)
            .unwrap()
            .add_app(rnti, server_app);
    }

    /// Publish every component's counters into the engine's metrics
    /// registry, scoped by node name, along with per-link stats.
    /// Idempotent — values are set, not accumulated — so it can be
    /// called at any point (or repeatedly) during a run.
    pub fn publish_metrics(&mut self) {
        self.engine.publish_link_metrics();

        let mut counters: Vec<(String, &'static str, u64)> = Vec::new();
        let mut gauges: Vec<(String, &'static str, i64)> = Vec::new();
        let mut hists: Vec<(String, &'static str, slingshot_sim::LogHistogram)> = Vec::new();

        {
            let scope = self.engine.node_name(self.switch).to_string();
            let sw = self
                .engine
                .node::<SwitchNode>(self.switch)
                .expect("switch node");
            counters.push((scope.clone(), "forwarded_frames", sw.forwarded));
            counters.push((scope.clone(), "dropped_frames", sw.dropped));
            counters.push((
                scope.clone(),
                "cp_remaps_executed",
                sw.cp_remap_latencies.len() as u64,
            ));
            counters.push((
                scope.clone(),
                "migrations_executed",
                sw.mbox.migrations_executed,
            ));
            counters.push((scope.clone(), "dl_filtered", sw.mbox.dl_filtered));
            counters.push((
                scope.clone(),
                "failures_reported",
                sw.mbox.failures_reported,
            ));
            counters.push((scope.clone(), "ctl_packets", sw.mbox.ctl_packets));
            counters.push((scope, "trace_overflow", sw.mbox.trace_overflow));
        }

        let phys = [
            Some(self.primary_phy),
            Some(self.secondary_phy),
            self.spare_phy,
        ];
        for id in phys.into_iter().flatten() {
            let scope = self.engine.node_name(id).to_string();
            let Some(phy) = self.engine.node::<PhyNode>(id) else {
                continue;
            };
            counters.push((scope.clone(), "busy_ns_total", phy.busy_ns_total));
            counters.push((scope.clone(), "null_slots", phy.null_slots));
            counters.push((scope.clone(), "work_slots", phy.work_slots));
            counters.push((scope.clone(), "ul_tbs_decoded", phy.ul_tbs_decoded));
            counters.push((scope.clone(), "ul_crc_failures", phy.ul_crc_failures));
            counters.push((
                scope.clone(),
                "processed_ul_slots",
                phy.processed_ul_slots.len() as u64,
            ));
            // The PHY's own FlexRAN-style abort on missing FAPI;
            // external kills show up as node_killed trace events.
            gauges.push((scope, "self_crashed", phy.crash_time.is_some() as i64));
        }

        let orions = [
            Some(self.orion_primary),
            Some(self.orion_secondary),
            self.orion_spare,
        ];
        for id in orions.into_iter().flatten() {
            let scope = self.engine.node_name(id).to_string();
            let Some(o) = self.engine.node::<OrionPhyNode>(id) else {
                continue;
            };
            counters.push((scope.clone(), "forwarded_to_phy", o.forwarded_to_phy));
            counters.push((scope.clone(), "forwarded_to_l2", o.forwarded_to_l2));
            counters.push((scope.clone(), "loss_nulls_injected", o.loss_nulls_injected));
            counters.push((scope.clone(), "rx_bytes_from_l2", o.rx_bytes_from_l2));
            hists.push((scope, "fwd_latency_ns", o.fwd_latency.clone()));
        }

        {
            let scope = self.engine.node_name(self.orion_l2).to_string();
            let ol2 = self
                .engine
                .node::<OrionL2Node>(self.orion_l2)
                .expect("orion-l2 node");
            counters.push((scope.clone(), "failovers", ol2.failovers));
            counters.push((scope.clone(), "planned_migrations", ol2.planned_migrations));
            counters.push((
                scope.clone(),
                "dropped_standby_msgs",
                ol2.dropped_standby_msgs,
            ));
            counters.push((scope.clone(), "drained_late_msgs", ol2.drained_late_msgs));
            counters.push((scope, "null_fapi_sent", ol2.null_fapi_sent));
        }

        let reg = self.engine.metrics_mut();
        for (scope, name, v) in counters {
            reg.set_counter(&scope, name, v);
        }
        for (scope, name, v) in gauges {
            reg.set_gauge(&scope, name, v);
        }
        for (scope, name, h) in hists {
            *reg.histogram_mut(&scope, name) = h;
        }
    }

    /// SIGKILL the primary PHY at `at` (the §8 failover trigger).
    pub fn kill_primary_at(&mut self, at: Nanos) {
        // Killing is immediate from the engine; to do it at a future
        // time we use a one-shot control: run to `at` first.
        self.engine.run_until(at);
        self.engine.kill(self.primary_phy);
    }

    /// Request a planned migration of the RU to the secondary PHY.
    pub fn planned_migration_at(&mut self, at: Nanos) {
        self.engine.post(
            at,
            self.orion_l2,
            Msg::Ctl(CtlMsg::PlannedMigration { ru_id: RU_ID }),
        );
    }
}
