//! Slingshot control packets: the `migrate_on_slot` command (Orion →
//! switch, §5.1) and the failure-notification packet the switch
//! reformats a timer packet into when a PHY's heartbeat counter
//! saturates (§5.2.2). Carried in Ethernet frames with the
//! [`slingshot_netsim::EtherType::SlingshotCtl`] type.

use bytes::{Buf, BufMut, Bytes};

const TAG_MIGRATE_ON_SLOT: u8 = 1;
const TAG_FAILURE_NOTIFY: u8 = 2;

/// A Slingshot control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlPacket {
    /// Command the switch to remap `ru_id` to `dest_phy_id` for all
    /// fronthaul packets with slot ≥ `slot_scalar` (frame·20 +
    /// subframe·2 + slot, wrapping at 5120).
    MigrateOnSlot {
        ru_id: u8,
        dest_phy_id: u8,
        slot_scalar: u16,
    },
    /// The switch detected that `phy_id` stopped emitting downlink
    /// fronthaul packets.
    FailureNotify { phy_id: u8 },
}

impl CtlPacket {
    pub fn to_bytes(&self) -> Bytes {
        let mut v = Vec::with_capacity(8);
        match self {
            CtlPacket::MigrateOnSlot {
                ru_id,
                dest_phy_id,
                slot_scalar,
            } => {
                v.put_u8(TAG_MIGRATE_ON_SLOT);
                v.put_u8(*ru_id);
                v.put_u8(*dest_phy_id);
                v.put_u16(*slot_scalar);
            }
            CtlPacket::FailureNotify { phy_id } => {
                v.put_u8(TAG_FAILURE_NOTIFY);
                v.put_u8(*phy_id);
            }
        }
        Bytes::from(v)
    }

    pub fn from_bytes(payload: &[u8]) -> Option<CtlPacket> {
        let mut buf = payload;
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            TAG_MIGRATE_ON_SLOT => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(CtlPacket::MigrateOnSlot {
                    ru_id: buf.get_u8(),
                    dest_phy_id: buf.get_u8(),
                    slot_scalar: buf.get_u16(),
                })
            }
            TAG_FAILURE_NOTIFY => {
                if buf.remaining() < 1 {
                    return None;
                }
                Some(CtlPacket::FailureNotify {
                    phy_id: buf.get_u8(),
                })
            }
            _ => None,
        }
    }
}

/// Wrapping comparison in the 5120-slot scalar space: is `x` at or
/// after `boundary`? (Within half an epoch, as the paper's 8-bit frame
/// ids imply.)
pub fn scalar_at_or_after(x: u16, boundary: u16) -> bool {
    const EPOCH: i32 = 256 * 20;
    let mut d = x as i32 - boundary as i32;
    if d > EPOCH / 2 {
        d -= EPOCH;
    } else if d < -(EPOCH / 2) {
        d += EPOCH;
    }
    d >= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for pkt in [
            CtlPacket::MigrateOnSlot {
                ru_id: 3,
                dest_phy_id: 9,
                slot_scalar: 4777,
            },
            CtlPacket::FailureNotify { phy_id: 17 },
        ] {
            assert_eq!(CtlPacket::from_bytes(&pkt.to_bytes()), Some(pkt));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(CtlPacket::from_bytes(&[]).is_none());
        assert!(CtlPacket::from_bytes(&[99]).is_none());
        assert!(CtlPacket::from_bytes(&[1, 2]).is_none());
    }

    #[test]
    fn scalar_comparison_wraps() {
        assert!(scalar_at_or_after(100, 100));
        assert!(scalar_at_or_after(101, 100));
        assert!(!scalar_at_or_after(99, 100));
        // Wrap: 5 is "after" 5118 (epoch = 5120).
        assert!(scalar_at_or_after(5, 5118));
        assert!(!scalar_at_or_after(5118, 5));
    }
}
