//! Slingshot control packets: the `migrate_on_slot` command (Orion →
//! switch, §5.1) and the failure-notification packet the switch
//! reformats a timer packet into when a PHY's heartbeat counter
//! saturates (§5.2.2). Carried in Ethernet frames with the
//! [`slingshot_netsim::EtherType::SlingshotCtl`] type.

use bytes::{Buf, BufMut, Bytes};

const TAG_MIGRATE_ON_SLOT: u8 = 1;
const TAG_FAILURE_NOTIFY: u8 = 2;
const TAG_SPARE_REQUEST: u8 = 3;
const TAG_SPARE_GRANT: u8 = 4;
const TAG_INSTALL_STANDBY: u8 = 5;

/// A Slingshot control message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtlPacket {
    /// Command the switch to remap `ru_id` to `dest_phy_id` for all
    /// fronthaul packets with slot ≥ `slot_scalar` (frame·20 +
    /// subframe·2 + slot, wrapping at 5120).
    MigrateOnSlot {
        ru_id: u8,
        dest_phy_id: u8,
        slot_scalar: u16,
    },
    /// The switch detected that `phy_id` stopped emitting downlink
    /// fronthaul packets.
    FailureNotify { phy_id: u8 },
    /// An L2-side Orion with no local standby left asks the recovery
    /// orchestrator for a spare from the shared pool. `failed_phy_id`
    /// is the drained ex-primary (pool-accounting breadcrumb).
    SpareRequest { ru_id: u8, failed_phy_id: u8 },
    /// The recovery orchestrator assigns pooled spare `phy_id` to
    /// `ru_id`'s cell as its new hot standby.
    SpareGrant { ru_id: u8, phy_id: u8 },
    /// Command the switch to install spare `phy_id`'s virtual-PHY
    /// mapping (PHY/address directories + failure-detector enrollment)
    /// at the slot boundary `slot_scalar` — staged in the standby
    /// request store and executed in the data plane, like
    /// [`CtlPacket::MigrateOnSlot`].
    InstallStandby {
        ru_id: u8,
        phy_id: u8,
        slot_scalar: u16,
    },
}

impl CtlPacket {
    pub fn to_bytes(&self) -> Bytes {
        let mut v = Vec::with_capacity(8);
        match self {
            CtlPacket::MigrateOnSlot {
                ru_id,
                dest_phy_id,
                slot_scalar,
            } => {
                v.put_u8(TAG_MIGRATE_ON_SLOT);
                v.put_u8(*ru_id);
                v.put_u8(*dest_phy_id);
                v.put_u16(*slot_scalar);
            }
            CtlPacket::FailureNotify { phy_id } => {
                v.put_u8(TAG_FAILURE_NOTIFY);
                v.put_u8(*phy_id);
            }
            CtlPacket::SpareRequest {
                ru_id,
                failed_phy_id,
            } => {
                v.put_u8(TAG_SPARE_REQUEST);
                v.put_u8(*ru_id);
                v.put_u8(*failed_phy_id);
            }
            CtlPacket::SpareGrant { ru_id, phy_id } => {
                v.put_u8(TAG_SPARE_GRANT);
                v.put_u8(*ru_id);
                v.put_u8(*phy_id);
            }
            CtlPacket::InstallStandby {
                ru_id,
                phy_id,
                slot_scalar,
            } => {
                v.put_u8(TAG_INSTALL_STANDBY);
                v.put_u8(*ru_id);
                v.put_u8(*phy_id);
                v.put_u16(*slot_scalar);
            }
        }
        Bytes::from(v)
    }

    /// The RU (cell) a control packet concerns, when it carries one.
    /// Used by the spine switch to route switch-addressed control
    /// frames to the leaf that owns the cell. `FailureNotify` is
    /// destination-addressed (sent to a specific Orion/orchestrator
    /// MAC), so it has no routing RU and returns `None`.
    pub fn ru_id(&self) -> Option<u8> {
        match self {
            CtlPacket::MigrateOnSlot { ru_id, .. }
            | CtlPacket::SpareRequest { ru_id, .. }
            | CtlPacket::SpareGrant { ru_id, .. }
            | CtlPacket::InstallStandby { ru_id, .. } => Some(*ru_id),
            CtlPacket::FailureNotify { .. } => None,
        }
    }

    pub fn from_bytes(payload: &[u8]) -> Option<CtlPacket> {
        let mut buf = payload;
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            TAG_MIGRATE_ON_SLOT => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(CtlPacket::MigrateOnSlot {
                    ru_id: buf.get_u8(),
                    dest_phy_id: buf.get_u8(),
                    slot_scalar: buf.get_u16(),
                })
            }
            TAG_FAILURE_NOTIFY => {
                if buf.remaining() < 1 {
                    return None;
                }
                Some(CtlPacket::FailureNotify {
                    phy_id: buf.get_u8(),
                })
            }
            TAG_SPARE_REQUEST => {
                if buf.remaining() < 2 {
                    return None;
                }
                Some(CtlPacket::SpareRequest {
                    ru_id: buf.get_u8(),
                    failed_phy_id: buf.get_u8(),
                })
            }
            TAG_SPARE_GRANT => {
                if buf.remaining() < 2 {
                    return None;
                }
                Some(CtlPacket::SpareGrant {
                    ru_id: buf.get_u8(),
                    phy_id: buf.get_u8(),
                })
            }
            TAG_INSTALL_STANDBY => {
                if buf.remaining() < 4 {
                    return None;
                }
                Some(CtlPacket::InstallStandby {
                    ru_id: buf.get_u8(),
                    phy_id: buf.get_u8(),
                    slot_scalar: buf.get_u16(),
                })
            }
            _ => None,
        }
    }
}

/// Valid bit of a migration-request-store register entry.
const MIGRATION_ENTRY_VALID: u64 = 1 << 24;

/// Pack a pending `migrate_on_slot` request into the 32-bit register
/// format the switch data plane matches against (Fig. 5): `(valid <<
/// 24) | (dest_phy << 16) | slot_scalar`. The layout is owned here so
/// the switch program and any inspector (tests, chaos tooling) agree.
pub fn pack_migration_entry(dest_phy_id: u8, slot_scalar: u16) -> u64 {
    MIGRATION_ENTRY_VALID | ((dest_phy_id as u64) << 16) | slot_scalar as u64
}

/// Decode a migration-request-store entry; `None` when the valid bit is
/// clear (no request pending).
pub fn unpack_migration_entry(entry: u64) -> Option<(u8, u16)> {
    if entry & MIGRATION_ENTRY_VALID == 0 {
        return None;
    }
    Some((((entry >> 16) & 0xFF) as u8, (entry & 0xFFFF) as u16))
}

/// Wrapping comparison in the 5120-slot scalar space: is `x` at or
/// after `boundary`? (Within half an epoch, as the paper's 8-bit frame
/// ids imply.)
pub fn scalar_at_or_after(x: u16, boundary: u16) -> bool {
    const EPOCH: i32 = 256 * 20;
    let mut d = x as i32 - boundary as i32;
    if d > EPOCH / 2 {
        d -= EPOCH;
    } else if d < -(EPOCH / 2) {
        d += EPOCH;
    }
    d >= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for pkt in [
            CtlPacket::MigrateOnSlot {
                ru_id: 3,
                dest_phy_id: 9,
                slot_scalar: 4777,
            },
            CtlPacket::FailureNotify { phy_id: 17 },
            CtlPacket::SpareRequest {
                ru_id: 2,
                failed_phy_id: 5,
            },
            CtlPacket::SpareGrant {
                ru_id: 2,
                phy_id: 9,
            },
            CtlPacket::InstallStandby {
                ru_id: 3,
                phy_id: 10,
                slot_scalar: 5119,
            },
        ] {
            assert_eq!(CtlPacket::from_bytes(&pkt.to_bytes()), Some(pkt));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(CtlPacket::from_bytes(&[]).is_none());
        assert!(CtlPacket::from_bytes(&[99]).is_none());
        assert!(CtlPacket::from_bytes(&[1, 2]).is_none());
        assert!(CtlPacket::from_bytes(&[3, 1]).is_none());
        assert!(CtlPacket::from_bytes(&[4]).is_none());
        assert!(CtlPacket::from_bytes(&[5, 1, 2, 3]).is_none());
    }

    #[test]
    fn migration_entry_roundtrips() {
        let packed = pack_migration_entry(7, 4777);
        assert_eq!(unpack_migration_entry(packed), Some((7, 4777)));
        // Cleared entry (the switch writes 0 after executing) decodes
        // to "nothing pending".
        assert_eq!(unpack_migration_entry(0), None);
        // Stale scalar bits without the valid bit are also nothing.
        assert_eq!(unpack_migration_entry(0x0002_1299), None);
    }

    #[test]
    fn migration_entry_roundtrips_extreme_slots() {
        // Every corner of the scalar space: epoch start, epoch end, the
        // wrap neighbors, and the half-epoch ambiguity points — plus
        // the extreme PHY ids that share bits with the valid flag's
        // neighborhood in the packed word.
        for dest in [0u8, 1, 127, 128, 254, 255] {
            for scalar in [0u16, 1, 2559, 2560, 2561, 5118, 5119] {
                let packed = pack_migration_entry(dest, scalar);
                assert_eq!(
                    unpack_migration_entry(packed),
                    Some((dest, scalar)),
                    "dest={dest} scalar={scalar}"
                );
                // The packed word must fit the 32-bit register cell the
                // switch stores it in.
                assert!(packed <= u32::MAX as u64, "dest={dest} scalar={scalar}");
            }
        }
        // A raw scalar ≥ 5120 is out of the wire epoch; packing is a
        // pure bitfield so it still round-trips verbatim (the caller
        // owns reduction modulo 5120).
        let packed = pack_migration_entry(255, u16::MAX);
        assert_eq!(unpack_migration_entry(packed), Some((255, u16::MAX)));
    }

    #[test]
    fn scalar_comparison_extremes() {
        // Boundary 0: everything in the first half-epoch is "after".
        assert!(scalar_at_or_after(0, 0));
        assert!(scalar_at_or_after(2559, 0));
        assert!(!scalar_at_or_after(2561, 0));
        // Boundary at epoch end.
        assert!(scalar_at_or_after(5119, 5119));
        assert!(scalar_at_or_after(0, 5119));
        assert!(scalar_at_or_after(2558, 5119));
        assert!(!scalar_at_or_after(2558, 5118));
    }

    #[test]
    fn scalar_comparison_wraps() {
        assert!(scalar_at_or_after(100, 100));
        assert!(scalar_at_or_after(101, 100));
        assert!(!scalar_at_or_after(99, 100));
        // Wrap: 5 is "after" 5118 (epoch = 5120).
        assert!(scalar_at_or_after(5, 5118));
        assert!(!scalar_at_or_after(5118, 5));
    }
}
