//! Multi-RU deployment with **crossed** primary/secondary placement.
//!
//! The paper notes that real deployments do not dedicate servers to
//! standbys: "Slingshot will co-locate primary and secondary PHYs for
//! different RUs within PHY processes" (§8). This builder realizes
//! that: two cells (RU 0 and RU 1), each with its own L2 + L2-side
//! Orion, sharing two PHY processes —
//!
//! ```text
//!   RU 0: primary = PHY 1, secondary = PHY 2
//!   RU 1: primary = PHY 2, secondary = PHY 1
//! ```
//!
//! Each PHY process simultaneously runs real work for one RU and null
//! FAPIs for the other. Killing PHY 1 fails RU 0 over onto PHY 2 while
//! RU 1 (already on PHY 2) continues undisturbed — with both cells'
//! processing now co-resident on the surviving server.

use slingshot_netsim::MacAddr;
use slingshot_ran::{
    AppServerNode, CoreNode, L2Node, Msg, PhyConfig, PhyNode, RuNode, UeConfig, UeNode,
};
use slingshot_sim::{Engine, LinkParams, Nanos, NodeId, SimRng, SlotClock};
use slingshot_switch::PortId;
use slingshot_transport::UserApp;

use crate::deployment::DeploymentConfig;
use crate::fh_mbox::FhMbox;
use crate::orion::{orion_l2_mac, orion_phy_mac, OrionL2Node, OrionPhyNode};
use crate::switch_node::SwitchNode;

/// One cell's node handles inside a [`DualRuDeployment`].
pub struct CellNodes {
    pub ru: NodeId,
    pub l2: NodeId,
    pub orion_l2: NodeId,
    pub ues: Vec<NodeId>,
}

/// Two cells sharing two PHY servers with crossed roles.
pub struct DualRuDeployment {
    pub engine: Engine<Msg>,
    pub switch: NodeId,
    /// PHY 1 (primary for cell 0, standby for cell 1).
    pub phy1: NodeId,
    /// PHY 2 (primary for cell 1, standby for cell 0).
    pub phy2: NodeId,
    pub orion_phy1: NodeId,
    pub orion_phy2: NodeId,
    pub cells: [CellNodes; 2],
    pub core: NodeId,
    pub server: NodeId,
}

const PHY1: u8 = 1;
const PHY2: u8 = 2;

impl DualRuDeployment {
    pub fn build(
        cfg: DeploymentConfig,
        ues_cell0: Vec<UeConfig>,
        ues_cell1: Vec<UeConfig>,
    ) -> DualRuDeployment {
        assert!(ues_cell0.iter().all(|u| u.ru_id == 0));
        assert!(ues_cell1.iter().all(|u| u.ru_id == 1));
        let mut engine: Engine<Msg> = Engine::new(cfg.seed);
        let clock = SlotClock::new(Nanos::ZERO);
        let mut rng = SimRng::new(cfg.seed ^ 0x2CE1);

        let server = engine.add_node("server", Box::new(AppServerNode::new()));
        let core = engine.add_node("core", Box::new(CoreNode::new()));

        // Two L2 processes, one per cell, with distinct cell ids.
        let mut cell_cfgs = [cfg.cell.clone(), cfg.cell.clone()];
        cell_cfgs[1].cell_id = cfg.cell.cell_id + 1;
        let mut l2s = Vec::new();
        for (ru_id, (cell, ue_cfgs)) in cell_cfgs.iter().zip([&ues_cell0, &ues_cell1]).enumerate() {
            let mut l2n = L2Node::new(cell.clone(), clock, ru_id as u8);
            for u in ue_cfgs {
                if u.preattached {
                    l2n.preattach_ue(u.rnti, u.snr.mean_db);
                }
            }
            l2s.push(engine.add_node(&format!("l2-cell{ru_id}"), Box::new(l2n)));
        }

        let mk_phy = |id: u8, rng: &mut SimRng| {
            let mut pc = PhyConfig::new(id);
            pc.fec_iterations = cfg.cell.fec_iterations;
            // One PHY process serves both cells; it uses cell 0's
            // shared parameters (identical except cell_id, which comes
            // from each CONFIG.request).
            PhyNode::new(pc, cfg.cell.clone(), clock, rng.fork(&format!("phy{id}")))
        };
        let phy1 = engine.add_node("phy1", Box::new(mk_phy(PHY1, &mut rng)));
        let phy2 = engine.add_node("phy2", Box::new(mk_phy(PHY2, &mut rng)));
        let orion_phy1 = engine.add_node("orion-phy1", Box::new(OrionPhyNode::new(PHY1, 0)));
        let orion_phy2 = engine.add_node("orion-phy2", Box::new(OrionPhyNode::new(PHY2, 0)));

        let orion_l2_0 = engine.add_node("orion-l2-0", Box::new(OrionL2Node::new(0, clock)));
        let orion_l2_1 = engine.add_node("orion-l2-1", Box::new(OrionL2Node::new(1, clock)));

        let mut rus = Vec::new();
        let mut ue_ids: [Vec<NodeId>; 2] = [Vec::new(), Vec::new()];
        for (ru_id, ue_cfgs) in [&ues_cell0, &ues_cell1].into_iter().enumerate() {
            let run = RuNode::new(ru_id as u8, clock);
            rus.push((
                engine.add_node(&format!("ru{ru_id}"), Box::new(run)),
                MacAddr::for_ru(ru_id as u8),
            ));
            for u in ue_cfgs {
                let name = u.name.clone();
                let node = UeNode::new(u.clone(), cell_cfgs[ru_id].clone(), clock, rng.fork(&name));
                ue_ids[ru_id].push(engine.add_node(&name, Box::new(node)));
            }
        }

        // Switch: notify both L2-side Orions on failures.
        let mut mbox =
            FhMbox::with_notify_targets(cfg.detector, vec![orion_l2_mac(0), orion_l2_mac(1)]);
        mbox.install_ru(0, rus[0].1, PortId(1), PHY1);
        mbox.install_ru(1, rus[1].1, PortId(6), PHY2);
        mbox.install_phy(PHY1, MacAddr::for_phy(PHY1), PortId(2));
        mbox.install_phy(PHY2, MacAddr::for_phy(PHY2), PortId(3));
        mbox.install_host(orion_phy_mac(PHY1), PortId(12));
        mbox.install_host(orion_phy_mac(PHY2), PortId(13));
        mbox.install_host(orion_l2_mac(0), PortId(4));
        mbox.install_host(orion_l2_mac(1), PortId(5));
        mbox.enroll_failure_detection(PHY1);
        mbox.enroll_failure_detection(PHY2);
        let switch_mac = mbox.switch_mac;
        let mut swn = SwitchNode::new(mbox, cfg.forwarding, rng.fork("switch"));
        swn.attach(PortId(1), rus[0].0);
        swn.attach(PortId(6), rus[1].0);
        swn.attach(PortId(2), phy1);
        swn.attach(PortId(3), phy2);
        swn.attach(PortId(12), orion_phy1);
        swn.attach(PortId(13), orion_phy2);
        swn.attach(PortId(4), orion_l2_0);
        swn.attach(PortId(5), orion_l2_1);
        let switch = engine.add_node("switch", Box::new(swn));

        // Wiring: one core, routing each UE's downlink to its gNB.
        engine.node_mut::<AppServerNode>(server).unwrap().wire(core);
        {
            let c = engine.node_mut::<CoreNode>(core).unwrap();
            c.wire(l2s[0], server);
            for u in &ues_cell0 {
                c.route_ue(u.rnti, l2s[0]);
            }
            for u in &ues_cell1 {
                c.route_ue(u.rnti, l2s[1]);
            }
        }
        engine
            .node_mut::<L2Node>(l2s[0])
            .unwrap()
            .wire(orion_l2_0, core);
        engine
            .node_mut::<L2Node>(l2s[1])
            .unwrap()
            .wire(orion_l2_1, core);
        engine
            .node_mut::<PhyNode>(phy1)
            .unwrap()
            .wire(switch, orion_phy1);
        engine
            .node_mut::<PhyNode>(phy2)
            .unwrap()
            .wire(switch, orion_phy2);
        for op in [orion_phy1, orion_phy2] {
            let o = engine.node_mut::<OrionPhyNode>(op).unwrap();
            o.wire(switch, if op == orion_phy1 { phy1 } else { phy2 });
            o.route_ru(0, orion_l2_mac(0));
            o.route_ru(1, orion_l2_mac(1));
        }
        {
            let o = engine.node_mut::<OrionL2Node>(orion_l2_0).unwrap();
            o.wire(switch, l2s[0], switch_mac);
            o.bind_ru(0, PHY1, Some(PHY2));
        }
        {
            let o = engine.node_mut::<OrionL2Node>(orion_l2_1).unwrap();
            o.wire(switch, l2s[1], switch_mac);
            o.bind_ru(1, PHY2, Some(PHY1));
        }
        for (ru_id, (ru, _)) in rus.iter().enumerate() {
            engine
                .node_mut::<RuNode>(*ru)
                .unwrap()
                .wire(switch, ue_ids[ru_id].clone());
            for ue in &ue_ids[ru_id] {
                engine
                    .node_mut::<UeNode>(*ue)
                    .unwrap()
                    .wire(*ru, l2s[ru_id]);
            }
        }

        // Links.
        let backhaul = cfg.backhaul_link.clone();
        engine.connect_duplex(server, core, backhaul.clone());
        engine.connect_duplex(core, l2s[0], backhaul.clone());
        engine.connect_duplex(core, l2s[1], backhaul);
        engine.connect_duplex(l2s[0], orion_l2_0, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(l2s[1], orion_l2_1, LinkParams::ideal(Nanos(500)));
        for (ru, _) in &rus {
            engine.connect_duplex(*ru, switch, cfg.fronthaul_link.clone());
        }
        for n in [phy1, phy2, orion_phy1, orion_phy2, orion_l2_0, orion_l2_1] {
            engine.connect_duplex(n, switch, cfg.server_link.clone());
        }
        engine.connect_duplex(phy1, orion_phy1, LinkParams::ideal(Nanos(500)));
        engine.connect_duplex(phy2, orion_phy2, LinkParams::ideal(Nanos(500)));

        DualRuDeployment {
            engine,
            switch,
            phy1,
            phy2,
            orion_phy1,
            orion_phy2,
            cells: [
                CellNodes {
                    ru: rus[0].0,
                    l2: l2s[0],
                    orion_l2: orion_l2_0,
                    ues: ue_ids[0].clone(),
                },
                CellNodes {
                    ru: rus[1].0,
                    l2: l2s[1],
                    orion_l2: orion_l2_1,
                    ues: ue_ids[1].clone(),
                },
            ],
            core,
            server,
        }
    }

    /// Attach a flow for a UE in a given cell.
    pub fn add_flow(
        &mut self,
        cell: usize,
        ue_idx: usize,
        rnti: u16,
        ue_app: Box<dyn UserApp>,
        server_app: Box<dyn UserApp>,
    ) {
        self.engine
            .node_mut::<UeNode>(self.cells[cell].ues[ue_idx])
            .unwrap()
            .add_app(ue_app);
        self.engine
            .node_mut::<AppServerNode>(self.server)
            .unwrap()
            .add_app(rnti, server_app);
    }
}
