//! Orion, the L2↔PHY FAPI middlebox (paper §6).
//!
//! Two roles, each a node:
//!
//! - [`OrionPhyNode`] pairs with a PHY over "shared memory" and bridges
//!   it to the datacenter network with a lean, stateless UDP transport
//!   (§6.1) — no nFAPI/SCTP state, so nothing needs migrating.
//! - [`OrionL2Node`] pairs with the L2. It forwards real FAPI requests
//!   to the primary PHY and **null** requests to the hot standby
//!   (§6.2), filters the standby's responses, duplicates initialization
//!   (§6.3), initiates migration at a TTI boundary (`migrate_on_slot`
//!   to the switch), and — per §7/Fig. 7 — keeps accepting the old
//!   primary's pipelined uplink results for pre-boundary slots.
//!
//! Both roles model the busy-polling forwarding cost of the real C++
//! implementation (per-message + per-byte, FIFO through one core), so
//! the Fig. 12 latency measurements are produced by executed code.

use std::collections::BTreeMap;
use std::collections::HashMap;

use slingshot_fapi::{self as fapi, FapiMsg};
use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_ran::{CtlMsg, Msg};
use slingshot_sim::{
    Ctx, Instrument, InstrumentSink, Nanos, Node, NodeId, SlotClock, SlotId, TraceEventKind,
};

use crate::ctl::CtlPacket;

const TIMER_SLOT: u64 = 910;

/// MAC address of an Orion process co-located with PHY `id`.
pub fn orion_phy_mac(phy_id: u8) -> MacAddr {
    MacAddr([0x02, 0x4F, 0x52, 0x00, 0x01, phy_id])
}

/// MAC address of the Orion process co-located with L2 `id`.
pub fn orion_l2_mac(l2_id: u8) -> MacAddr {
    MacAddr([0x02, 0x4F, 0x52, 0x00, 0x02, l2_id])
}

/// Busy-poll forwarding cost model (one core, FIFO).
#[derive(Debug, Clone, Copy)]
pub struct OrionCost {
    pub per_msg: Nanos,
    pub per_byte_ns: f64,
}

impl Default for OrionCost {
    fn default() -> OrionCost {
        OrionCost {
            per_msg: Nanos(800),
            per_byte_ns: 0.2,
        }
    }
}

#[derive(Debug, Default)]
struct CostState {
    busy_until: Nanos,
}

impl CostState {
    /// FIFO service: returns the completion time for a message of
    /// `bytes` arriving at `now`.
    fn service(&mut self, now: Nanos, bytes: usize, cost: &OrionCost) -> Nanos {
        let start = self.busy_until.max(now);
        let dur = cost.per_msg + Nanos((bytes as f64 * cost.per_byte_ns) as u64);
        self.busy_until = start + dur;
        self.busy_until
    }
}

/// The PHY-side Orion.
pub struct OrionPhyNode {
    pub phy_id: u8,
    mac: MacAddr,
    peer_l2_orion: MacAddr,
    /// Per-RU peer override (a PHY process can serve RUs belonging to
    /// different L2 processes — the co-located multi-RU deployment).
    peer_by_ru: HashMap<u8, MacAddr>,
    switch: Option<NodeId>,
    phy: Option<NodeId>,
    clock: SlotClock,
    cost: OrionCost,
    state: CostState,
    /// Started RUs and the latest absolute slot each has TTI requests
    /// for — the §6.1 loss guard: if a datagram is lost, Orion injects
    /// null requests so the PHY never starves. (BTreeMap: iterated in
    /// an event-emitting path, so the order must be deterministic.)
    ru_last_slot: BTreeMap<u8, (bool, u64)>,
    /// Latency histogram: (enqueue→deliver) for L2→PHY requests. A
    /// log-bucketed histogram, not a raw sampler — this path records
    /// one entry per FAPI message and would otherwise grow with the
    /// run length.
    pub fwd_latency: slingshot_sim::LogHistogram,
    pub forwarded_to_phy: u64,
    pub forwarded_to_l2: u64,
    /// Null requests synthesized to cover lost datagrams (§6.1).
    pub loss_nulls_injected: u64,
    /// Bytes received from the L2-side Orion (null-FAPI overhead
    /// accounting, §8.5).
    pub rx_bytes_from_l2: u64,
}

impl OrionPhyNode {
    pub fn new(phy_id: u8, l2_id: u8) -> OrionPhyNode {
        OrionPhyNode {
            phy_id,
            mac: orion_phy_mac(phy_id),
            peer_l2_orion: orion_l2_mac(l2_id),
            peer_by_ru: HashMap::new(),
            switch: None,
            phy: None,
            clock: SlotClock::new(Nanos::ZERO),
            cost: OrionCost::default(),
            state: CostState::default(),
            ru_last_slot: BTreeMap::new(),
            fwd_latency: slingshot_sim::LogHistogram::new(),
            forwarded_to_phy: 0,
            forwarded_to_l2: 0,
            loss_nulls_injected: 0,
            rx_bytes_from_l2: 0,
        }
    }

    pub fn wire(&mut self, switch: NodeId, phy: NodeId) {
        self.switch = Some(switch);
        self.phy = Some(phy);
    }

    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Route a specific RU's indications to a specific L2-side Orion.
    pub fn route_ru(&mut self, ru_id: u8, l2_orion: MacAddr) {
        self.peer_by_ru.insert(ru_id, l2_orion);
    }

    fn peer_for(&self, ru_id: u8) -> MacAddr {
        self.peer_by_ru
            .get(&ru_id)
            .copied()
            .unwrap_or(self.peer_l2_orion)
    }
}

const TIMER_PHY_SIDE_SLOT: u64 = 911;

impl Instrument for OrionPhyNode {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "forwarded_to_phy", self.forwarded_to_phy);
        sink.counter(scope, "forwarded_to_l2", self.forwarded_to_l2);
        sink.counter(scope, "loss_nulls_injected", self.loss_nulls_injected);
        sink.counter(scope, "rx_bytes_from_l2", self.rx_bytes_from_l2);
        sink.histogram(scope, "fwd_latency_ns", &self.fwd_latency);
    }
}

impl Node<Msg> for OrionPhyNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer_at(self.clock.next_slot_start(ctx.now()), TIMER_PHY_SIDE_SLOT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token != TIMER_PHY_SIDE_SLOT {
            return;
        }
        // §6.1 loss guard: the FAPI spec requires the PHY to receive
        // slot requests every slot. If a datagram was lost on the
        // datacenter network, synthesize null requests for the gap so
        // the PHY does not starve (and crash).
        let now = ctx.now();
        let abs = self.clock.absolute_slot(now);
        let expect = abs + 1; // requests normally run ≥2 slots ahead
        let mut inject = Vec::new();
        for (ru_id, (started, last)) in self.ru_last_slot.iter_mut() {
            if !*started {
                continue;
            }
            while *last < expect {
                *last += 1;
                inject.push((*ru_id, *last));
            }
        }
        for (ru_id, slot_abs) in inject {
            let slot = SlotId::from_absolute(slot_abs);
            self.loss_nulls_injected += 2;
            if let Some(phy) = self.phy {
                ctx.send_in(
                    phy,
                    Nanos(1_000),
                    Msg::FapiShm(FapiMsg::UlTti(fapi::UlTtiRequest::null(ru_id, slot))),
                );
                ctx.send_in(
                    phy,
                    Nanos(1_000),
                    Msg::FapiShm(FapiMsg::DlTti(fapi::DlTtiRequest::null(ru_id, slot))),
                );
            }
        }
        ctx.timer_at(self.clock.slot_start(abs + 1), TIMER_PHY_SIDE_SLOT);
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            // Network → PHY (requests from the L2-side Orion).
            Msg::Eth(frame) => {
                if frame.ethertype != EtherType::Ipv4 || frame.dst != self.mac {
                    return;
                }
                let Some(fapi_msg) = fapi::decode(&frame.payload) else {
                    return;
                };
                let now = ctx.now();
                // Track request progress per RU for the loss guard.
                match &fapi_msg {
                    FapiMsg::Config(c) => {
                        self.ru_last_slot
                            .entry(c.ru_id)
                            .or_insert((false, self.clock.absolute_slot(now)));
                    }
                    FapiMsg::Start { ru_id } => {
                        let e = self
                            .ru_last_slot
                            .entry(*ru_id)
                            .or_insert((false, self.clock.absolute_slot(now)));
                        e.0 = true;
                        e.1 = self.clock.absolute_slot(now) + 1;
                    }
                    FapiMsg::Stop { ru_id } => {
                        if let Some(e) = self.ru_last_slot.get_mut(ru_id) {
                            e.0 = false;
                        }
                    }
                    FapiMsg::UlTti(r) => {
                        let abs = {
                            let now_abs = self.clock.absolute_slot(now);
                            let now_id = SlotId::from_absolute(now_abs);
                            now_abs.saturating_add_signed(now_id.wrapping_distance(r.slot))
                        };
                        // §6.1: a hole in the request stream means a
                        // datagram was lost on the way — fill it with
                        // nulls immediately so the PHY never misses a
                        // slot's worth of requests.
                        let mut holes = Vec::new();
                        if let Some(e) = self.ru_last_slot.get_mut(&r.ru_id) {
                            if e.0 {
                                while e.1 + 1 < abs {
                                    e.1 += 1;
                                    holes.push(e.1);
                                }
                            }
                            e.1 = e.1.max(abs);
                        }
                        for slot_abs in holes {
                            let slot = SlotId::from_absolute(slot_abs);
                            self.loss_nulls_injected += 2;
                            if let Some(phy) = self.phy {
                                ctx.send_in(
                                    phy,
                                    Nanos(500),
                                    Msg::FapiShm(FapiMsg::UlTti(fapi::UlTtiRequest::null(
                                        r.ru_id, slot,
                                    ))),
                                );
                                ctx.send_in(
                                    phy,
                                    Nanos(500),
                                    Msg::FapiShm(FapiMsg::DlTti(fapi::DlTtiRequest::null(
                                        r.ru_id, slot,
                                    ))),
                                );
                            }
                        }
                    }
                    _ => {}
                }
                self.rx_bytes_from_l2 += frame.wire_size() as u64;
                let done = self.state.service(now, frame.payload.len(), &self.cost);
                self.fwd_latency.record((done - now).0);
                self.forwarded_to_phy += 1;
                if let Some(phy) = self.phy {
                    ctx.send_in(phy, done - now, Msg::FapiShm(fapi_msg));
                }
            }
            // PHY → network (indications toward the L2-side Orion
            // owning this RU).
            Msg::FapiShm(fapi_msg) => {
                let peer = self.peer_for(fapi_msg.ru_id());
                let payload = fapi::encode(&fapi_msg);
                let now = ctx.now();
                let done = self.state.service(now, payload.len(), &self.cost);
                let frame = Frame::new(peer, self.mac, EtherType::Ipv4, payload);
                self.forwarded_to_l2 += 1;
                if let Some(sw) = self.switch {
                    ctx.send_link_in(sw, done - now, Msg::Eth(frame));
                }
            }
            _ => {}
        }
    }
}

/// Per-RU binding state at the L2-side Orion.
#[derive(Debug)]
struct RuBinding {
    primary: u8,
    secondary: Option<u8>,
    /// Slots ≥ this boundary are served by `secondary` (a migration in
    /// progress); `None` = no migration pending.
    migrate_at: Option<u64>,
    /// The in-progress migration is a failover (primary crashed), not
    /// a planned move — the old primary cannot become the new standby.
    failover: bool,
    /// Stored CONFIG.request, for initializing replacement standbys.
    config: Option<fapi::ConfigRequest>,
    started: bool,
}

/// The L2-side Orion.
pub struct OrionL2Node {
    pub l2_id: u8,
    mac: MacAddr,
    clock: SlotClock,
    switch: Option<NodeId>,
    l2: Option<NodeId>,
    switch_mac: MacAddr,
    cost: OrionCost,
    state: CostState,
    bindings: BTreeMap<u8, RuBinding>,
    /// PHY id → that server's Orion MAC (the deployment's server pool).
    phy_pool: BTreeMap<u8, MacAddr>,
    /// Spare (unassigned) PHY ids available as replacement standbys.
    spares: Vec<u8>,
    /// The shared-pool recovery orchestrator, if one is deployed: asked
    /// for a replacement standby when the local spare list is empty.
    recovery_mac: Option<MacAddr>,
    /// RU id → (granted spare, absolute slot boundary at which it is
    /// promoted to secondary and initialized).
    pending_standby: BTreeMap<u8, (u8, u64)>,
    /// Ablation switch: duplicate the primary's *real* FAPI requests to
    /// the standby instead of null ones (the naïve hot-standby design
    /// §6.2 argues against — it doubles PHY compute).
    pub duplicate_standby: bool,
    /// Instrumentation.
    pub events: Vec<(Nanos, String)>,
    pub failovers: u64,
    pub planned_migrations: u64,
    pub dropped_standby_msgs: u64,
    pub drained_late_msgs: u64,
    pub null_fapi_sent: u64,
    /// Time the most recent failure notification arrived (paper: "we
    /// record the PHY failure time as the time when the L2-side Orion
    /// receives a notification").
    pub last_failure_notified: Option<Nanos>,
}

impl OrionL2Node {
    pub fn new(l2_id: u8, clock: SlotClock) -> OrionL2Node {
        OrionL2Node {
            l2_id,
            mac: orion_l2_mac(l2_id),
            clock,
            switch: None,
            l2: None,
            switch_mac: MacAddr::ZERO,
            cost: OrionCost::default(),
            state: CostState::default(),
            bindings: BTreeMap::new(),
            phy_pool: BTreeMap::new(),
            spares: Vec::new(),
            recovery_mac: None,
            pending_standby: BTreeMap::new(),
            duplicate_standby: false,
            events: Vec::new(),
            failovers: 0,
            planned_migrations: 0,
            dropped_standby_msgs: 0,
            drained_late_msgs: 0,
            null_fapi_sent: 0,
            last_failure_notified: None,
        }
    }

    pub fn wire(&mut self, switch: NodeId, l2: NodeId, switch_mac: MacAddr) {
        self.switch = Some(switch);
        self.l2 = Some(l2);
        self.switch_mac = switch_mac;
    }

    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Register a PHY server in the pool (management-plane config).
    pub fn register_phy_server(&mut self, phy_id: u8) {
        self.phy_pool.insert(phy_id, orion_phy_mac(phy_id));
    }

    /// Mark a registered PHY as an unassigned spare standby.
    pub fn add_spare(&mut self, phy_id: u8) {
        self.register_phy_server(phy_id);
        self.spares.push(phy_id);
    }

    /// Point this Orion at a shared-pool recovery orchestrator: when a
    /// failover drains the last local standby, a
    /// [`CtlPacket::SpareRequest`] is sent there instead of leaving the
    /// cell unpaired.
    pub fn set_recovery_orchestrator(&mut self, mac: MacAddr) {
        self.recovery_mac = Some(mac);
    }

    /// Whether a pool grant is still waiting for its promotion boundary.
    pub fn standby_pending(&self, ru_id: u8) -> bool {
        self.pending_standby.contains_key(&ru_id)
    }

    /// Bind an RU to its primary and (optional) secondary PHY.
    pub fn bind_ru(&mut self, ru_id: u8, primary: u8, secondary: Option<u8>) {
        self.register_phy_server(primary);
        if let Some(s) = secondary {
            self.register_phy_server(s);
        }
        self.bindings.insert(
            ru_id,
            RuBinding {
                primary,
                secondary,
                migrate_at: None,
                failover: false,
                config: None,
                started: false,
            },
        );
    }

    /// The PHY currently bound as primary for `ru_id` (chaos targeting
    /// and test assertions).
    pub fn primary_of(&self, ru_id: u8) -> Option<u8> {
        self.bindings.get(&ru_id).map(|b| b.primary)
    }

    /// The PHY currently bound as hot standby for `ru_id`, if any.
    pub fn standby_of(&self, ru_id: u8) -> Option<u8> {
        self.bindings.get(&ru_id).and_then(|b| b.secondary)
    }

    /// Whether a migration is currently in flight for `ru_id`.
    pub fn migration_pending(&self, ru_id: u8) -> bool {
        self.bindings
            .get(&ru_id)
            .is_some_and(|b| b.migrate_at.is_some())
    }

    /// The PHY that owns slot `abs` for this RU.
    fn owner_of(b: &RuBinding, abs: u64) -> u8 {
        match (b.migrate_at, b.secondary) {
            (Some(boundary), Some(sec)) if abs >= boundary => sec,
            _ => b.primary,
        }
    }

    fn send_udp(&mut self, ctx: &mut Ctx<'_, Msg>, dst: MacAddr, msg: &FapiMsg) {
        let payload = fapi::encode(msg);
        let now = ctx.now();
        let done = self.state.service(now, payload.len(), &self.cost);
        let frame = Frame::new(dst, self.mac, EtherType::Ipv4, payload);
        if let Some(sw) = self.switch {
            ctx.send_link_in(sw, done - now, Msg::Eth(frame));
        }
    }

    fn orion_mac_of(&self, phy_id: u8) -> MacAddr {
        self.phy_pool
            .get(&phy_id)
            .copied()
            .unwrap_or_else(|| orion_phy_mac(phy_id))
    }

    fn abs_of(&self, now: Nanos, slot: SlotId) -> u64 {
        let now_abs = self.clock.absolute_slot(now);
        let now_id = SlotId::from_absolute(now_abs);
        now_abs.saturating_add_signed(now_id.wrapping_distance(slot))
    }

    /// Handle a request from the L2 (over SHM): real to the owner, null
    /// to the other PHY.
    fn on_l2_request(&mut self, ctx: &mut Ctx<'_, Msg>, msg: FapiMsg) {
        let ru_id = msg.ru_id();
        let Some(binding) = self.bindings.get_mut(&ru_id) else {
            return;
        };
        match &msg {
            FapiMsg::Config(c) => {
                binding.config = Some(c.clone());
                let (p, s) = (binding.primary, binding.secondary);
                self.send_udp(ctx, self.orion_mac_of(p), &msg);
                if let Some(s) = s {
                    self.send_udp(ctx, self.orion_mac_of(s), &msg);
                }
            }
            FapiMsg::Start { .. } | FapiMsg::Stop { .. } => {
                binding.started = matches!(msg, FapiMsg::Start { .. });
                let (p, s) = (binding.primary, binding.secondary);
                self.send_udp(ctx, self.orion_mac_of(p), &msg);
                if let Some(s) = s {
                    self.send_udp(ctx, self.orion_mac_of(s), &msg);
                }
            }
            FapiMsg::UlTti(req) => {
                let abs = self.abs_of(ctx.now(), req.slot);
                let b = self.bindings.get(&ru_id).expect("binding");
                let owner = Self::owner_of(b, abs);
                let other = if owner == b.primary {
                    b.secondary
                } else {
                    Some(b.primary)
                };
                self.send_udp(ctx, self.orion_mac_of(owner), &msg);
                if let Some(o) = other {
                    if self.duplicate_standby {
                        self.send_udp(ctx, self.orion_mac_of(o), &msg);
                    } else {
                        let null = FapiMsg::UlTti(fapi::UlTtiRequest::null(ru_id, req.slot));
                        self.null_fapi_sent += 1;
                        ctx.trace(TraceEventKind::NullFapiSent, ru_id as u64, abs);
                        self.send_udp(ctx, self.orion_mac_of(o), &null);
                    }
                }
            }
            FapiMsg::DlTti(req) => {
                let abs = self.abs_of(ctx.now(), req.slot);
                let b = self.bindings.get(&ru_id).expect("binding");
                let owner = Self::owner_of(b, abs);
                let other = if owner == b.primary {
                    b.secondary
                } else {
                    Some(b.primary)
                };
                self.send_udp(ctx, self.orion_mac_of(owner), &msg);
                if let Some(o) = other {
                    if self.duplicate_standby {
                        self.send_udp(ctx, self.orion_mac_of(o), &msg);
                    } else {
                        let null = FapiMsg::DlTti(fapi::DlTtiRequest::null(ru_id, req.slot));
                        self.null_fapi_sent += 1;
                        ctx.trace(TraceEventKind::NullFapiSent, ru_id as u64, abs);
                        self.send_udp(ctx, self.orion_mac_of(o), &null);
                    }
                }
            }
            FapiMsg::TxData(req) => {
                let abs = self.abs_of(ctx.now(), req.slot);
                let b = self.bindings.get(&ru_id).expect("binding");
                let owner = Self::owner_of(b, abs);
                let other = if owner == b.primary {
                    b.secondary
                } else {
                    Some(b.primary)
                };
                self.send_udp(ctx, self.orion_mac_of(owner), &msg);
                if self.duplicate_standby {
                    if let Some(o) = other {
                        self.send_udp(ctx, self.orion_mac_of(o), &msg);
                    }
                }
            }
            _ => {}
        }
    }

    /// Handle an indication arriving from a PHY-side Orion: forward to
    /// the L2 only from the PHY that owns the indication's slot —
    /// which, during a planned migration, keeps accepting the old
    /// primary's pipelined late results (§7, Fig. 7).
    fn on_phy_indication(&mut self, ctx: &mut Ctx<'_, Msg>, src: MacAddr, msg: FapiMsg) {
        let ru_id = msg.ru_id();
        let Some(b) = self.bindings.get(&ru_id) else {
            return;
        };
        let src_phy = self
            .phy_pool
            .iter()
            .find(|(_, m)| **m == src)
            .map(|(id, _)| *id);
        let Some(src_phy) = src_phy else {
            return;
        };
        let slot_abs = msg.slot().map(|s| self.abs_of(ctx.now(), s));
        let accept = match slot_abs {
            Some(abs) => {
                let owner = Self::owner_of(b, abs);
                if owner == src_phy {
                    // Late result from the old primary for a
                    // pre-boundary slot?
                    if b.migrate_at.is_some_and(|m| abs < m) && src_phy == b.primary {
                        self.drained_late_msgs += 1;
                        ctx.trace(TraceEventKind::PipelinedSlotDrained, src_phy as u64, abs);
                    }
                    true
                } else {
                    false
                }
            }
            None => src_phy == b.primary,
        };
        if accept {
            // Chaos-oracle checkpoint: exactly one PHY's uplink response
            // per slot may cross into L2, failover or not. CRC.indication
            // is the once-per-slot response the oracle keys on.
            if let (FapiMsg::CrcInd(_), Some(abs), Some(slot)) = (&msg, slot_abs, msg.slot()) {
                ctx.trace_at_slot(TraceEventKind::FapiToL2, slot, src_phy as u64, abs);
            }
            let now = ctx.now();
            let done = self.state.service(now, 64, &self.cost);
            if let Some(l2) = self.l2 {
                ctx.send_in(l2, done - now, Msg::FapiShm(msg));
            }
        } else {
            self.dropped_standby_msgs += 1;
            ctx.trace(
                TraceEventKind::DupResponseDropped,
                src_phy as u64,
                slot_abs.unwrap_or(0),
            );
        }
    }

    /// TDD cycle length (DDDSU): migration boundaries are aligned to
    /// the start of a cycle so that an uplink grant's DCI (carried in
    /// the preceding Special slot) is always emitted by the PHY that
    /// will be active when it radiates — otherwise the switch's
    /// downlink filter would discard the new primary's grant for the
    /// first post-boundary uplink slot.
    const TDD_CYCLE: u64 = 5;

    fn align_boundary(abs: u64) -> u64 {
        abs.div_ceil(Self::TDD_CYCLE) * Self::TDD_CYCLE
    }

    /// Begin migrating `ru_id`'s processing to its secondary at slot
    /// boundary `boundary_abs` (rounded up to a TDD-cycle start).
    /// Sends `migrate_on_slot` to the switch.
    fn start_migration(&mut self, ctx: &mut Ctx<'_, Msg>, ru_id: u8, boundary_abs: u64) {
        let boundary_abs = Self::align_boundary(boundary_abs);
        let Some(b) = self.bindings.get_mut(&ru_id) else {
            return;
        };
        let Some(sec) = b.secondary else {
            self.events
                .push((ctx.now(), format!("ru{ru_id}: no secondary available")));
            return;
        };
        if b.migrate_at.is_some() {
            return; // one migration at a time per RU
        }
        b.migrate_at = Some(boundary_abs);
        let scalar = (boundary_abs % (256 * 20)) as u16;
        let cmd = CtlPacket::MigrateOnSlot {
            ru_id,
            dest_phy_id: sec,
            slot_scalar: scalar,
        };
        let frame = Frame::new(
            self.switch_mac,
            self.mac,
            EtherType::SlingshotCtl,
            cmd.to_bytes(),
        );
        if let Some(sw) = self.switch {
            ctx.send(sw, Msg::Eth(frame));
        }
        self.events.push((
            ctx.now(),
            format!("ru{ru_id}: migrate to phy{sec} at abs slot {boundary_abs}"),
        ));
    }

    /// Finalize role swap once the pipeline has drained past the
    /// boundary; promote a spare to new standby if the old primary died.
    fn finalize_migrations(&mut self, ctx: &mut Ctx<'_, Msg>, now_abs: u64) {
        let ru_ids: Vec<u8> = self.bindings.keys().copied().collect();
        for ru_id in ru_ids {
            let Some(b) = self.bindings.get_mut(&ru_id) else {
                continue;
            };
            let Some(m) = b.migrate_at else { continue };
            if now_abs < m + 4 {
                continue;
            }
            let old_primary = b.primary;
            let sec = b.secondary.take().expect("migration had a secondary");
            b.primary = sec;
            b.migrate_at = None;
            let failed = b.failover;
            b.failover = false;
            // The old primary becomes the standby if it is still alive
            // (planned migration); on failover, promote a spare and
            // initialize it from the stored CONFIG (§6.3).
            let replacement = if failed {
                self.spares.pop()
            } else {
                Some(old_primary)
            };
            if let Some(b) = self.bindings.get_mut(&ru_id) {
                b.secondary = replacement;
            }
            if let (Some(new_sec), true) = (replacement, failed) {
                let b = self.bindings.get(&ru_id).expect("binding");
                if let Some(cfg) = b.config.clone() {
                    let started = b.started;
                    self.send_udp(ctx, self.orion_mac_of(new_sec), &FapiMsg::Config(cfg));
                    if started {
                        self.send_udp(ctx, self.orion_mac_of(new_sec), &FapiMsg::Start { ru_id });
                    }
                }
            }
            if failed && replacement.is_none() {
                // Local spare list exhausted: fall back to the shared
                // pool so the cell does not stay one-crash-from-outage.
                if let Some(rec) = self.recovery_mac {
                    let pkt = CtlPacket::SpareRequest {
                        ru_id,
                        failed_phy_id: old_primary,
                    };
                    let frame = Frame::new(rec, self.mac, EtherType::SlingshotCtl, pkt.to_bytes());
                    if let Some(sw) = self.switch {
                        ctx.send(sw, Msg::Eth(frame));
                    }
                    ctx.trace(
                        TraceEventKind::SpareRequested,
                        ru_id as u64,
                        old_primary as u64,
                    );
                    self.events.push((
                        ctx.now(),
                        format!("ru{ru_id}: requesting pool spare (phy{old_primary} drained)"),
                    ));
                }
            }
            self.events.push((
                ctx.now(),
                format!("ru{ru_id}: migration finalized; primary=phy{sec}"),
            ));
        }
    }

    /// Promote pool-granted spares whose boundary has arrived: bind as
    /// the RU's new secondary and initialize it from the stored CONFIG
    /// (§6.3) — the cell is survivable again once the standby's null
    /// FAPI keepalive starts flowing.
    fn promote_granted_standbys(&mut self, ctx: &mut Ctx<'_, Msg>, now_abs: u64) {
        let ready: Vec<(u8, u8)> = self
            .pending_standby
            .iter()
            .filter(|(_, (_, boundary))| now_abs >= *boundary)
            .map(|(ru, (phy, _))| (*ru, *phy))
            .collect();
        for (ru_id, phy) in ready {
            self.pending_standby.remove(&ru_id);
            let Some(b) = self.bindings.get_mut(&ru_id) else {
                continue;
            };
            if b.secondary.is_some() {
                continue; // already re-paired by other means
            }
            b.secondary = Some(phy);
            let cfg = b.config.clone();
            let started = b.started;
            self.register_phy_server(phy);
            if let Some(cfg) = cfg {
                self.send_udp(ctx, self.orion_mac_of(phy), &FapiMsg::Config(cfg));
                if started {
                    self.send_udp(ctx, self.orion_mac_of(phy), &FapiMsg::Start { ru_id });
                }
            }
            ctx.trace(TraceEventKind::StandbyRepaired, ru_id as u64, phy as u64);
            self.events.push((
                ctx.now(),
                format!("ru{ru_id}: re-paired with pooled phy{phy}"),
            ));
        }
    }
}

impl Instrument for OrionL2Node {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "failovers", self.failovers);
        sink.counter(scope, "planned_migrations", self.planned_migrations);
        sink.counter(scope, "dropped_standby_msgs", self.dropped_standby_msgs);
        sink.counter(scope, "drained_late_msgs", self.drained_late_msgs);
        sink.counter(scope, "null_fapi_sent", self.null_fapi_sent);
    }
}

impl Node<Msg> for OrionL2Node {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer_at(self.clock.next_slot_start(ctx.now()), TIMER_SLOT);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token == TIMER_SLOT {
            let abs = self.clock.absolute_slot(ctx.now());
            self.finalize_migrations(ctx, abs);
            self.promote_granted_standbys(ctx, abs);
            ctx.timer_at(self.clock.slot_start(abs + 1), TIMER_SLOT);
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        match msg {
            Msg::FapiShm(m) if m.is_request() => self.on_l2_request(ctx, m),
            Msg::FapiShm(_) => {}
            Msg::Eth(frame) => {
                if frame.dst != self.mac {
                    return;
                }
                match frame.ethertype {
                    EtherType::Ipv4 => {
                        if let Some(m) = fapi::decode(&frame.payload) {
                            self.on_phy_indication(ctx, frame.src, m);
                        }
                    }
                    EtherType::SlingshotCtl => {
                        match CtlPacket::from_bytes(&frame.payload) {
                            Some(CtlPacket::FailureNotify { phy_id }) => {
                                let now = ctx.now();
                                self.last_failure_notified = Some(now);
                                ctx.trace(TraceEventKind::FailureNotifyReceived, phy_id as u64, 0);
                                self.events
                                    .push((now, format!("failure notification: phy{phy_id}")));
                                // Failover every RU whose primary died: the
                                // next slot boundary is the migration point.
                                let next_abs = self.clock.absolute_slot(now) + 1;
                                let rus: Vec<u8> = self
                                    .bindings
                                    .iter()
                                    .filter(|(_, b)| b.primary == phy_id && b.migrate_at.is_none())
                                    .map(|(id, _)| *id)
                                    .collect();
                                for ru_id in rus {
                                    self.failovers += 1;
                                    if let Some(b) = self.bindings.get_mut(&ru_id) {
                                        b.failover = true;
                                    }
                                    self.start_migration(ctx, ru_id, next_abs);
                                }
                            }
                            Some(CtlPacket::SpareGrant { ru_id, phy_id }) => {
                                // The pool answered: promote at an aligned
                                // boundary a couple of slots out, same
                                // discipline as a migration.
                                let boundary =
                                    Self::align_boundary(self.clock.absolute_slot(ctx.now()) + 2);
                                self.pending_standby.insert(ru_id, (phy_id, boundary));
                                self.events.push((
                                ctx.now(),
                                format!("ru{ru_id}: pool granted phy{phy_id}, standby at {boundary}"),
                            ));
                            }
                            _ => {}
                        }
                    }
                    _ => {}
                }
            }
            Msg::Ctl(CtlMsg::AttachRequest { .. })
            | Msg::Ctl(CtlMsg::AttachAccept { .. })
            | Msg::Ctl(CtlMsg::Detach { .. }) => {}
            Msg::Ctl(CtlMsg::PlannedMigration { ru_id }) => {
                // Planned migration (operator/controller initiated):
                // pick a boundary a few slots out so the command beats
                // the first affected packet to the switch.
                let boundary = self.clock.absolute_slot(ctx.now()) + 3;
                self.planned_migrations += 1;
                self.start_migration(ctx, ru_id, boundary);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macs_distinct() {
        assert_ne!(orion_phy_mac(1), orion_l2_mac(1));
        assert_ne!(orion_phy_mac(1), orion_phy_mac(2));
        assert_ne!(orion_phy_mac(1), MacAddr::for_phy(1));
    }

    #[test]
    fn cost_state_fifo_queueing() {
        let cost = OrionCost {
            per_msg: Nanos(1_000),
            per_byte_ns: 1.0,
        };
        let mut st = CostState::default();
        // First message: 1000 + 500 ns.
        assert_eq!(st.service(Nanos(0), 500, &cost), Nanos(1_500));
        // Second, arriving immediately: queues behind the first.
        assert_eq!(st.service(Nanos(0), 500, &cost), Nanos(3_000));
        // Third, arriving after the queue drained: no wait.
        assert_eq!(st.service(Nanos(10_000), 100, &cost), Nanos(11_100));
    }

    #[test]
    fn boundary_aligns_to_tdd_cycle() {
        assert_eq!(OrionL2Node::align_boundary(0), 0);
        assert_eq!(OrionL2Node::align_boundary(1), 5);
        assert_eq!(OrionL2Node::align_boundary(4), 5);
        assert_eq!(OrionL2Node::align_boundary(5), 5);
        assert_eq!(OrionL2Node::align_boundary(2003), 2005);
    }

    #[test]
    fn owner_flips_at_boundary() {
        let b = RuBinding {
            primary: 1,
            secondary: Some(2),
            migrate_at: Some(100),
            failover: false,
            config: None,
            started: true,
        };
        assert_eq!(OrionL2Node::owner_of(&b, 99), 1);
        assert_eq!(OrionL2Node::owner_of(&b, 100), 2);
        assert_eq!(OrionL2Node::owner_of(&b, 101), 2);
        let no_mig = RuBinding {
            migrate_at: None,
            ..b
        };
        assert_eq!(OrionL2Node::owner_of(&no_mig, 1_000_000), 1);
    }
}
