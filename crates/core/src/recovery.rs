//! The shared-pool recovery orchestrator.
//!
//! The paper's resilience story ends after one failover: the cell runs
//! un-paired until an operator provisions a new standby. At production
//! scale (ROADMAP north star), N cells share M spare PHY servers and
//! must survive *sequences* of failures. This module is the control
//! loop that closes that gap:
//!
//! - Every L2-side Orion that drains its last local standby sends a
//!   [`CtlPacket::SpareRequest`] here (via the switch).
//! - The orchestrator pops a spare from its FIFO pool, commands the
//!   switch to install the spare's virtual-PHY mapping at a slot
//!   boundary ([`CtlPacket::InstallStandby`] → standby request store),
//!   and tells the cell's Orion which PHY it got
//!   ([`CtlPacket::SpareGrant`]); Orion then replays the duplicated
//!   init-FAPI (§6.3) and re-pairs the cell.
//! - Crashed ex-primaries are *scrubbed*: after a hold-off the
//!   orchestrator restarts the dead process, wipes its per-RU soft
//!   state (stateless PHY — §4.2 is what makes this safe), and returns
//!   it to the pool, so M spares absorb an unbounded failure sequence
//!   as long as crashes are spaced wider than the scrub time.
//!
//! Requests that arrive while the pool is dry queue FIFO and are served
//! as scrubs complete.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use slingshot_netsim::{EtherType, Frame, MacAddr};
use slingshot_ran::{CtlMsg, Msg};
use slingshot_sim::{
    Ctx, Instrument, InstrumentSink, Nanos, Node, NodeId, SlotClock, TraceEventKind,
};

use crate::ctl::CtlPacket;

/// Timer-token base for per-PHY scrub timers (token = base + phy id).
const TIMER_SCRUB_BASE: u64 = 920;

/// MAC address of the recovery orchestrator process.
pub fn recovery_mac() -> MacAddr {
    MacAddr([0x02, 0x4F, 0x52, 0x00, 0x03, 0x01])
}

/// The recovery orchestrator node.
pub struct RecoveryOrchestrator {
    mac: MacAddr,
    clock: SlotClock,
    switch: Option<NodeId>,
    switch_mac: MacAddr,
    /// Free spares, FIFO: grants cycle through the pool instead of
    /// hammering one server.
    pool: VecDeque<u8>,
    /// Requests that arrived while the pool was dry: (ru, failed phy).
    pending: VecDeque<(u8, u8)>,
    /// PHY id → engine node, for restart-and-scrub of dead processes.
    inventory: BTreeMap<u8, NodeId>,
    /// RU id → that cell's L2-side Orion MAC (where grants are sent).
    l2_macs: BTreeMap<u8, MacAddr>,
    /// PHYs with a scrub timer in flight.
    scrubbing: BTreeSet<u8>,
    /// Hold-off between a failure notification and the scrub-restart,
    /// in slots: long enough for the failover to finalize and for the
    /// dead primary's last pipelined results to be irrelevant.
    pub scrub_delay_slots: u64,
    /// Observability.
    pub grants: u64,
    pub requests_queued: u64,
    pub scrubs_completed: u64,
}

impl RecoveryOrchestrator {
    pub fn new(clock: SlotClock) -> RecoveryOrchestrator {
        RecoveryOrchestrator {
            mac: recovery_mac(),
            clock,
            switch: None,
            switch_mac: MacAddr::ZERO,
            pool: VecDeque::new(),
            pending: VecDeque::new(),
            inventory: BTreeMap::new(),
            l2_macs: BTreeMap::new(),
            scrubbing: BTreeSet::new(),
            scrub_delay_slots: 40,
            grants: 0,
            requests_queued: 0,
            scrubs_completed: 0,
        }
    }

    pub fn wire(&mut self, switch: NodeId, switch_mac: MacAddr) {
        self.switch = Some(switch);
        self.switch_mac = switch_mac;
    }

    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Register a PHY server the orchestrator may restart and scrub
    /// (every cell PHY and every pooled spare).
    pub fn register_phy(&mut self, phy_id: u8, node: NodeId) {
        self.inventory.insert(phy_id, node);
    }

    /// Add a free spare to the pool.
    pub fn add_spare(&mut self, phy_id: u8, node: NodeId) {
        self.register_phy(phy_id, node);
        self.pool.push_back(phy_id);
    }

    /// Register the cell owning `ru_id` (grants go to its L2 Orion).
    pub fn register_cell(&mut self, ru_id: u8, l2_orion: MacAddr) {
        self.l2_macs.insert(ru_id, l2_orion);
    }

    /// Free spares currently in the pool (test/oracle visibility).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Requests waiting for a spare to free up.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// TDD-cycle alignment, mirroring the Orion migration discipline.
    fn align_boundary(abs: u64) -> u64 {
        abs.div_ceil(5) * 5
    }

    fn send_ctl(&self, ctx: &mut Ctx<'_, Msg>, dst: MacAddr, pkt: &CtlPacket) {
        let frame = Frame::new(dst, self.mac, EtherType::SlingshotCtl, pkt.to_bytes());
        if let Some(sw) = self.switch {
            ctx.send(sw, Msg::Eth(frame));
        }
    }

    /// Grant a spare to `ru_id` if one is free, else queue the request.
    fn grant_or_queue(&mut self, ctx: &mut Ctx<'_, Msg>, ru_id: u8, failed_phy: u8) {
        let Some(phy) = self.pool.pop_front() else {
            self.pending.push_back((ru_id, failed_phy));
            self.requests_queued += 1;
            return;
        };
        let now_abs = self.clock.absolute_slot(ctx.now());
        let boundary = Self::align_boundary(now_abs + 2);
        let scalar = (boundary % (256 * 20)) as u16;
        // Data-plane half: the switch stages the install and executes it
        // at the boundary.
        self.send_ctl(
            ctx,
            self.switch_mac,
            &CtlPacket::InstallStandby {
                ru_id,
                phy_id: phy,
                slot_scalar: scalar,
            },
        );
        // Control-plane half: the cell's Orion replays init-FAPI and
        // binds the spare as its new secondary.
        let l2 = self
            .l2_macs
            .get(&ru_id)
            .copied()
            .unwrap_or_else(|| crate::orion::orion_l2_mac(ru_id));
        self.send_ctl(ctx, l2, &CtlPacket::SpareGrant { ru_id, phy_id: phy });
        self.grants += 1;
        ctx.trace(
            TraceEventKind::SpareGranted,
            ru_id as u64,
            ((phy as u64) << 16) | self.pool.len() as u64,
        );
    }

    /// Schedule the scrub-and-return of a failed PHY.
    fn schedule_scrub(&mut self, ctx: &mut Ctx<'_, Msg>, phy_id: u8) {
        if !self.inventory.contains_key(&phy_id)
            || self.scrubbing.contains(&phy_id)
            || self.pool.contains(&phy_id)
        {
            return;
        }
        self.scrubbing.insert(phy_id);
        let now_abs = self.clock.absolute_slot(ctx.now());
        ctx.timer_at(
            self.clock.slot_start(now_abs + self.scrub_delay_slots),
            TIMER_SCRUB_BASE + phy_id as u64,
        );
    }
}

impl Instrument for RecoveryOrchestrator {
    fn instrument(&self, scope: &str, sink: &mut dyn InstrumentSink) {
        sink.counter(scope, "grants", self.grants);
        sink.counter(scope, "requests_queued", self.requests_queued);
        sink.counter(scope, "scrubs_completed", self.scrubs_completed);
        sink.gauge(scope, "pool_size", self.pool.len() as i64);
        sink.gauge(scope, "pending_requests", self.pending.len() as i64);
    }
}

impl Node<Msg> for RecoveryOrchestrator {
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Msg>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let Some(phy) = token.checked_sub(TIMER_SCRUB_BASE) else {
            return;
        };
        let phy = phy as u8;
        if !self.scrubbing.remove(&phy) {
            return;
        }
        let Some(&node) = self.inventory.get(&phy) else {
            return;
        };
        // Restart the dead process, then scrub it. The scrub message is
        // sent at delay 0 *after* the restart's on_start, so the revived
        // node re-arms its slot-timer chain and then clears its crash
        // flags before the first tick fires — ordering the engine's
        // (time, seq) heap guarantees.
        if !ctx.is_alive(node) {
            ctx.restart(node);
        }
        ctx.send_in(node, Nanos(0), Msg::Ctl(CtlMsg::PhyScrub));
        self.pool.push_back(phy);
        self.scrubs_completed += 1;
        ctx.trace(
            TraceEventKind::SpareReturned,
            phy as u64,
            self.pool.len() as u64,
        );
        // A freed spare may unblock a queued request.
        while !self.pool.is_empty() {
            let Some((ru_id, failed)) = self.pending.pop_front() else {
                break;
            };
            self.grant_or_queue(ctx, ru_id, failed);
        }
    }

    fn on_msg(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Eth(frame) = msg else {
            return;
        };
        if frame.ethertype != EtherType::SlingshotCtl || frame.dst != self.mac {
            return;
        }
        match CtlPacket::from_bytes(&frame.payload) {
            Some(CtlPacket::FailureNotify { phy_id }) => {
                // The failed server will be scrubbed and recycled after
                // the hold-off.
                self.schedule_scrub(ctx, phy_id);
            }
            Some(CtlPacket::SpareRequest {
                ru_id,
                failed_phy_id,
            }) => {
                self.grant_or_queue(ctx, ru_id, failed_phy_id);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_alignment_matches_orion() {
        assert_eq!(RecoveryOrchestrator::align_boundary(0), 0);
        assert_eq!(RecoveryOrchestrator::align_boundary(7), 10);
        assert_eq!(RecoveryOrchestrator::align_boundary(10), 10);
    }

    #[test]
    fn pool_fifo_accounting() {
        let mut r = RecoveryOrchestrator::new(SlotClock::new(Nanos::ZERO));
        r.add_spare(9, NodeId(1));
        r.add_spare(10, NodeId(2));
        assert_eq!(r.pool_size(), 2);
        assert_eq!(r.pool.pop_front(), Some(9), "grants are FIFO");
    }
}
