//! Property test: no single fault, of any kind, at any slot, under any
//! deployment seed, may ever produce a split brain — two PHYs completing
//! uplink processing for the same absolute slot (§4.3's exactly-one
//! active PHY invariant).
//!
//! The other oracle invariants carry per-scenario damage budgets and are
//! exercised by the scenario tests and the soak harness; this one is
//! unconditional, so it gets the property treatment: draw a random
//! (fault kind, target, slot, parameters, deployment seed) tuple and
//! assert the invariant over the full event trace.

use proptest::prelude::*;
use slingshot::chaos::{chaos_deployment, ChaosRunner};
use slingshot_sim::chaos::{oracle, FaultKind, FaultTarget, Scenario};
use slingshot_sim::Nanos;

/// The supported single-fault universe: every (target, kind) pair the
/// randomized sampler can draw, plus the standby-PHY variants of the
/// process faults.
fn fault_from(idx: u8, p: f64, dur: u64, hold: Nanos) -> (FaultTarget, FaultKind) {
    match idx {
        0 => (FaultTarget::ActivePhy, FaultKind::PhyCrash),
        1 => (FaultTarget::ActivePhy, FaultKind::PhyHang { slots: dur }),
        2 => (FaultTarget::StandbyPhy, FaultKind::PhyCrash),
        3 => (FaultTarget::StandbyPhy, FaultKind::PhyHang { slots: dur }),
        4 => (
            FaultTarget::Fronthaul,
            FaultKind::BurstLoss { p, slots: dur },
        ),
        5 => (
            FaultTarget::Fronthaul,
            FaultKind::LinkPartition { slots: dur.min(12) },
        ),
        6 => (
            FaultTarget::FronthaulUplink,
            FaultKind::IqCorrupt {
                p: p * 0.4,
                slots: dur,
            },
        ),
        7 => (
            FaultTarget::Fronthaul,
            FaultKind::DupPackets { p, slots: dur },
        ),
        8 => (
            FaultTarget::Fronthaul,
            FaultKind::ReorderPackets {
                p,
                hold,
                slots: dur,
            },
        ),
        9 => (
            FaultTarget::OrionL2,
            FaultKind::OrionRestart {
                down_slots: dur.min(15),
            },
        ),
        10 => (
            FaultTarget::OrionL2,
            FaultKind::MigrationStorm {
                requests: 2 + (dur % 5) as u32,
            },
        ),
        _ => (FaultTarget::OrionL2, FaultKind::PlannedMigration),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn single_fault_never_splits_the_brain(
        idx in 0u8..12,
        at_slot in 600u64..1000,
        p in 0.05f64..0.30,
        dur in 8u64..48,
        hold_us in 20u64..120,
        seed in 0u64..1_000_000,
    ) {
        let (target, kind) = fault_from(idx, p, dur, Nanos(hold_us * 1000));
        let horizon = at_slot + dur + 300;
        let scenario = Scenario::new("prop-single", horizon).fault(at_slot, target, kind);

        let mut d = chaos_deployment(seed);
        let mut runner = ChaosRunner::new(&scenario);
        runner.run(&mut d, scenario.horizon_slots);

        // Judge only the unconditional invariant: detection latency,
        // TTI budgets and repair all depend on the scenario, but two
        // PHYs must never both own a slot.
        let exp = oracle::Expectations {
            max_detection_latency: Nanos(u64::MAX >> 1),
            max_dropped_ttis: u64::MAX,
            expect_repair: false,
            ..oracle::Expectations::default()
        };
        let report = oracle::check(d.engine.event_trace(), &exp);
        let split: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.invariant == "one-active-phy")
            .collect();
        prop_assert!(
            split.is_empty(),
            "seed={seed} scenario={} violations={split:?}",
            scenario.describe()
        );
    }
}
