//! The shared spare-pool acceptance battery: four cells, a two-deep
//! spare pool, three back-to-back primary crashes in distinct cells.
//!
//! Three crashes exceed the pool, so the run only survives if the
//! recovery orchestrator's full loop works: grant a spare, replay the
//! duplicated init-FAPI, promote it to secondary at a slot boundary,
//! *and* scrub/recycle the dead ex-primaries back into the pool in time
//! for the third request. Every crash must still meet the paper's
//! single-failure bounds (detection within 450 us, at most 3 dropped
//! TTIs), every affected cell must end re-paired, and the whole
//! sequence must be byte-identical between 1- and 4-worker runs.

use slingshot::{
    expectations_for, run_scenario_with, Deployment, DeploymentBuilder, DeploymentConfig,
    OrionL2Node, RecoveryOrchestrator, SwitchNode,
};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::chaos::{oracle, FaultKind, FaultTarget, Scenario};
use slingshot_sim::Nanos;
use slingshot_transport::{UdpCbrSource, UdpSink};

/// Crashes 60 slots apart: wider than the orchestrator's 40-slot scrub
/// hold-off, so the pool refills between failures — the provisioning
/// contract the sequence is sized to prove.
fn triple_crash() -> Scenario {
    Scenario::new("triple-crash-pool", 1700)
        .fault(700, FaultTarget::ActivePhyOf(0), FaultKind::PhyCrash)
        .fault(760, FaultTarget::ActivePhyOf(1), FaultKind::PhyCrash)
        .fault(820, FaultTarget::ActivePhyOf(2), FaultKind::PhyCrash)
}

fn pool_deployment(seed: u64, workers: usize) -> Deployment {
    let cfg = DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    };
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(4)
        .spare_pool(2)
        .workers(workers);
    for i in 0..4u8 {
        b = b.ue(UeConfig::new(100 + i as u16, i, &format!("ue{i}"), 22.0));
    }
    let mut d = b.build();
    for i in 0..4usize {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    d
}

/// Per-cell single-crash bounds, not the summed global budget: each
/// crash individually must cost no more than one crash is allowed to.
fn strict_expectations(d: &Deployment, scenario: &Scenario) -> oracle::Expectations {
    oracle::Expectations {
        max_dropped_ttis: 3,
        ..expectations_for(d, scenario)
    }
}

fn run(seed: u64, workers: usize) -> (Deployment, oracle::OracleReport) {
    let scenario = triple_crash();
    let mut d = pool_deployment(seed, workers);
    let exp = strict_expectations(&d, &scenario);
    let report = run_scenario_with(&mut d, &scenario, &exp);
    (d, report)
}

#[test]
fn three_sequential_crashes_all_recover() {
    let (mut d, report) = run(0x9001, 1);
    assert!(
        report.ok(),
        "oracle violations: {:#?}\nscenario: {}",
        report.violations,
        triple_crash().describe()
    );

    // Every crash was detected in-switch, each within the 450 us bound.
    assert_eq!(report.detections, 3, "one detection per crashed primary");
    assert!(
        report.max_detection_latency <= Nanos::from_micros(450),
        "worst detection latency {} us",
        report.max_detection_latency.0 / 1_000
    );

    // Every affected cell is re-paired at scenario end: a live primary
    // serving traffic and a live standby bound as its secondary.
    for ru in 0..3u8 {
        let active = d
            .engine
            .node_mut::<SwitchNode>(d.switch)
            .expect("switch node")
            .active_phy(ru);
        let active_node = d.phy_nodes[&active];
        assert!(
            d.engine.is_alive(active_node),
            "cell {ru}: active PHY {active} is dead"
        );
        let orion_l2 = d.cells[ru as usize].orion_l2;
        let standby = d
            .engine
            .node::<OrionL2Node>(orion_l2)
            .expect("orion node")
            .standby_of(ru)
            .unwrap_or_else(|| panic!("cell {ru}: no standby bound after recovery"));
        assert_ne!(active, standby, "cell {ru}: active and standby collide");
        assert!(
            d.engine.is_alive(d.phy_nodes[&standby]),
            "cell {ru}: standby PHY {standby} is dead"
        );
    }

    // The untouched cell still has its original pairing.
    let active3 = d
        .engine
        .node_mut::<SwitchNode>(d.switch)
        .expect("switch node")
        .active_phy(3);
    assert_eq!(
        active3, d.cells[3].primary_phy_id,
        "cell 3 must be unaffected"
    );

    // Pool accounting: 2 spares granted out, 3 dead primaries scrubbed
    // and returned, 1 re-granted -> 3 grants, 3 returns, pool back to 2.
    let recovery = d
        .engine
        .node::<RecoveryOrchestrator>(d.recovery.expect("pool deployment has an orchestrator"))
        .expect("recovery node");
    assert_eq!(recovery.grants, 3, "three spares granted");
    assert_eq!(recovery.scrubs_completed, 3, "three ex-primaries recycled");
    assert_eq!(recovery.pool_size(), 2, "pool refilled by scenario end");
    assert_eq!(recovery.pending_requests(), 0, "no request left starving");
}

/// The whole crash-and-recover sequence is invisible to the worker
/// pool: same seed, 1 vs 4 workers, byte-identical trace.
#[test]
fn pool_recovery_trace_is_worker_count_invariant() {
    let (d1, r1) = run(7, 1);
    let (d4, r4) = run(7, 4);
    assert!(r1.ok(), "serial run violations: {:?}", r1.violations);
    assert!(r4.ok(), "parallel run violations: {:?}", r4.violations);
    assert_eq!(
        d1.engine.event_trace().hash(),
        d4.engine.event_trace().hash(),
        "trace hash diverged between 1 and 4 workers"
    );
    assert_eq!(
        d1.engine.event_trace().to_bytes(),
        d4.engine.event_trace().to_bytes(),
        "trace bytes diverged between 1 and 4 workers"
    );
}
