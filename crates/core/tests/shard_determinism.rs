//! Sharded-engine determinism battery for leaf/spine fabric builds.
//!
//! The fabric contract: `cell_groups(g)` is a *structural* knob (it
//! changes the topology and therefore the trace), while `shards(k)` and
//! `workers(w)` are pure *execution* knobs — for a fixed topology and
//! seed, every (shards, workers) combination must produce byte-identical
//! traces and metrics. The battery pins that across seeds, and drives a
//! chaos crash whose spare grant crosses shards (leaf cell, spine-side
//! pool) to prove the recovery plane survives the lane split.

use slingshot::{DeploymentBuilder, DeploymentConfig};
use slingshot_ran::{CellConfig, Fidelity, UeConfig};
use slingshot_sim::{Nanos, TraceEventKind};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn small_cell() -> CellConfig {
    CellConfig {
        num_prbs: 51,
        fidelity: Fidelity::Sampled,
        ..CellConfig::default()
    }
}

/// A 4-cell / 2-leaf fabric with one uplink flow per cell, run to
/// `horizon_ms`. Returns trace bytes, trace hash, and the metrics dump.
fn run_fabric(
    seed: u64,
    groups: usize,
    shards: usize,
    workers: usize,
    spare_pool: usize,
    kill_primary_of_cell: Option<usize>,
    horizon_ms: u64,
) -> (Vec<u8>, u64, String) {
    let cfg = DeploymentConfig {
        cell: small_cell(),
        seed,
        spare_pool,
        ..DeploymentConfig::default()
    };
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(4)
        .cell_groups(groups)
        .shards(shards)
        .workers(workers);
    for i in 0..4u8 {
        b = b.ue(UeConfig::new(100 + i as u16, i, &format!("ue{i}"), 22.0));
    }
    let mut d = b.build();
    for i in 0..4usize {
        d.add_flow(
            i,
            100 + i as u16,
            Box::new(UdpCbrSource::new(3_000_000, 900, Nanos::ZERO)),
            Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
        );
    }
    if let Some(cell) = kill_primary_of_cell {
        let phy = d.cells[cell].primary_phy;
        d.engine.run_until(Nanos::from_millis(horizon_ms / 2));
        d.engine.kill(phy);
    }
    d.engine.run_until(Nanos::from_millis(horizon_ms));
    d.publish_metrics();
    let trace = d.engine.event_trace();
    (trace.to_bytes(), trace.hash(), d.engine.metrics().to_text())
}

/// Across 8 seeds: `shards=4` runs byte-identical to `shards=1`, with
/// the worker pool simultaneously at 1 vs 4 — the headline acceptance
/// criterion for the sharded engine.
#[test]
fn sharded_trace_invariant_across_seeds() {
    for seed in 1..=8u64 {
        let (b1, h1, m1) = run_fabric(seed, 2, 1, 1, 0, None, 100);
        let (b4, h4, m4) = run_fabric(seed, 2, 4, 4, 0, None, 100);
        assert!(!b1.is_empty(), "trace must not be empty (seed {seed})");
        assert_eq!(h1, h4, "trace hash diverged at seed {seed}");
        assert_eq!(b1, b4, "trace bytes diverged at seed {seed}");
        assert_eq!(m1, m4, "metrics diverged at seed {seed}");
    }
}

/// The full execution cross: shards {1, 4} × workers {1, 4} on a
/// 4-leaf fabric (5 lanes) all collapse to one trace.
#[test]
fn shard_worker_cross_product_is_identical() {
    for seed in [3u64, 11] {
        let reference = run_fabric(seed, 4, 1, 1, 0, None, 100);
        for shards in [1usize, 4] {
            for workers in [1usize, 4] {
                let got = run_fabric(seed, 4, shards, workers, 0, None, 100);
                assert_eq!(
                    reference, got,
                    "seed {seed}: shards={shards} workers={workers} diverged"
                );
            }
        }
    }
}

/// A primary crash in a leaf cell with the spare pool on the spine: the
/// SpareRequest, grant, InstallStandby, and init-FAPI replay all cross
/// the leaf↔spine boundary (and the lane barrier). The recovery loop
/// must complete — and stay byte-identical across shard counts.
#[test]
fn cross_shard_spare_grant_recovers_and_stays_deterministic() {
    let seed = 7u64;
    let (b1, _, m1) = run_fabric(seed, 2, 1, 1, 1, Some(3), 600);
    let (b4, _, m4) = run_fabric(seed, 2, 4, 4, 1, Some(3), 600);
    assert_eq!(b1, b4, "cross-shard recovery trace diverged");
    assert_eq!(m1, m4, "cross-shard recovery metrics diverged");

    // Re-run one config to inspect the trace events directly.
    let cfg = DeploymentConfig {
        cell: small_cell(),
        seed,
        spare_pool: 1,
        ..DeploymentConfig::default()
    };
    let mut b = DeploymentBuilder::new()
        .config(cfg)
        .cells(4)
        .cell_groups(2)
        .shards(4)
        .workers(1);
    for i in 0..4u8 {
        b = b.ue(UeConfig::new(100 + i as u16, i, &format!("ue{i}"), 22.0));
    }
    let mut d = b.build();
    let crashed_cell = 3usize;
    let phy = d.cells[crashed_cell].primary_phy;
    d.engine.run_until(Nanos::from_millis(300));
    d.engine.kill(phy);
    d.engine.run_until(Nanos::from_millis(600));

    let count = |kind: TraceEventKind| {
        d.engine
            .event_trace()
            .iter()
            .filter(|ev| ev.kind == kind)
            .count()
    };
    assert!(
        count(TraceEventKind::SpareRequested) >= 1,
        "no spare requested after draining the cell's standby"
    );
    assert!(
        count(TraceEventKind::SpareGranted) >= 1,
        "spine-side pool never granted a spare to the leaf cell"
    );
    assert!(
        count(TraceEventKind::StandbyRepaired) >= 1,
        "crashed cell never re-paired with the granted spare"
    );
}

/// Structural sanity: a fabric build exposes its leaves and spine, maps
/// each RU to its owning leaf, and the single-switch build still maps
/// everything to the one shared switch.
#[test]
fn fabric_directories_resolve_switches() {
    let mut b = DeploymentBuilder::new()
        .seed(1)
        .cell(small_cell())
        .cells(4)
        .cell_groups(2)
        .spare_pool(1);
    for i in 0..4u8 {
        b = b.ue(UeConfig::new(100 + i as u16, i, &format!("ue{i}"), 22.0));
    }
    let d = b.build();
    assert_eq!(d.leaves.len(), 2);
    assert_eq!(d.spine, Some(d.switch));
    assert!(d.engine.is_sharded());
    // Contiguous split: cells 0-1 on leaf0, cells 2-3 on leaf1.
    assert_eq!(d.switch_for_ru(0), d.leaves[0]);
    assert_eq!(d.switch_for_ru(1), d.leaves[0]);
    assert_eq!(d.switch_for_ru(2), d.leaves[1]);
    assert_eq!(d.switch_for_ru(3), d.leaves[1]);
    for cell in &d.cells {
        let leaf = d.switch_for_ru(cell.ru_id);
        assert_eq!(d.switch_for_node(cell.ru), leaf);
        assert_eq!(d.switch_for_node(cell.primary_phy), leaf);
    }
    for (_, phy, _) in &d.spare_phys {
        assert_eq!(d.switch_for_node(*phy), d.switch);
    }

    let single = DeploymentBuilder::new()
        .seed(1)
        .cell(small_cell())
        .cells(2)
        .ue(UeConfig::new(100, 0, "ue0", 22.0))
        .ue(UeConfig::new(101, 1, "ue1", 22.0))
        .build();
    assert!(single.leaves.is_empty());
    assert!(!single.engine.is_sharded());
    assert_eq!(single.switch_for_ru(1), single.switch);
    assert_eq!(single.switch_for_node(single.ru), single.switch);
}

/// The port-collision audit at city scale: a 128-cell single-switch
/// build and a 128-cell / 8-leaf fabric build must both allocate their
/// port spaces without a collision panic.
#[test]
fn port_allocation_audit_at_128_cells() {
    let d = DeploymentBuilder::new()
        .seed(1)
        .cell(small_cell())
        .cells(128)
        .spare_pool(2)
        .build();
    assert_eq!(d.cells.len(), 128);

    let d = DeploymentBuilder::new()
        .seed(1)
        .cell(small_cell())
        .cells(128)
        .cell_groups(8)
        .spare_pool(2)
        .build();
    assert_eq!(d.cells.len(), 128);
    assert_eq!(d.leaves.len(), 8);
}
