//! End-to-end Slingshot tests: PHY failover and planned migration on
//! the full deployment (switch middlebox + failure detector + Orion +
//! complete vRAN stack).

use slingshot::{
    Deployment, DeploymentBuilder, DeploymentConfig, OrionL2Node, SwitchNode, SECONDARY_PHY_ID,
};
use slingshot_ran::{CellConfig, Fidelity, PhyNode, RuNode, UeConfig, UeNode, UeState};
use slingshot_sim::trace::{delivered_ul_slots, detections, dropped_ttis};
use slingshot_sim::{Nanos, Sampler, TraceEventKind};
use slingshot_transport::{UdpCbrSource, UdpSink};

fn cfg(seed: u64) -> DeploymentConfig {
    DeploymentConfig {
        cell: CellConfig {
            num_prbs: 51,
            fidelity: Fidelity::Sampled,
            ..CellConfig::default()
        },
        seed,
        ..DeploymentConfig::default()
    }
}

fn one_ue() -> Vec<UeConfig> {
    vec![UeConfig::new(100, 0, "ue100", 22.0)]
}

/// Build a deployment with a 4 Mbps uplink UDP flow from the UE.
fn deployment_with_ul_flow(seed: u64) -> Deployment {
    let mut d = DeploymentBuilder::new()
        .config(cfg(seed))
        .ues(one_ue())
        .build();
    d.add_flow(
        0,
        100,
        Box::new(UdpCbrSource::new(4_000_000, 1000, Nanos::ZERO)),
        Box::new(UdpSink::new(Nanos::ZERO, Nanos::from_millis(10))),
    );
    d
}

#[test]
fn steady_state_traffic_flows_through_slingshot() {
    let mut d = deployment_with_ul_flow(1);
    d.engine.run_until(Nanos::from_millis(1000));
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    assert!(sink.total_rx > 300, "rx={}", sink.total_rx);
    assert!(sink.loss_rate() < 0.15, "loss={}", sink.loss_rate());
    // The secondary is alive on null FAPIs, its downlink filtered.
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert!(
        sw.mbox.dl_filtered > 1000,
        "filtered={}",
        sw.mbox.dl_filtered
    );
    let sec = d.engine.node::<PhyNode>(d.secondary_phy).unwrap();
    assert!(sec.crash_time.is_none(), "standby must stay alive");
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert!(orion.null_fapi_sent > 3000);
    assert!(orion.dropped_standby_msgs > 0);
}

#[test]
fn failover_keeps_ue_connected_and_traffic_flowing() {
    let mut d = deployment_with_ul_flow(2);
    let kill_at = Nanos::from_millis(500);
    d.kill_primary_at(kill_at);
    d.engine.run_until(Nanos::from_millis(1500));

    // 1. Failure detected within the detector bound (450 µs + tick +
    //    propagation) of the last heartbeat (≤ ~1 ms after the kill).
    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    let notified = orion.last_failure_notified.expect("failure detected");
    let detect_ms = (notified - kill_at).as_millis();
    assert!(detect_ms < 1.0, "detection took {detect_ms} ms");
    assert_eq!(orion.failovers, 1);

    // 2. The UE never saw RLF — the gap was far below 50 ms.
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0, "UE must not lose the cell");
    assert_eq!(ue.state, UeState::Connected);

    // 3. The switch remapped the RU to the secondary.
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.migrations_executed, 1);

    // 4. Traffic kept flowing: no 10 ms bin after recovery is empty,
    //    and the post-failover rate matches the offered rate.
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let mbps = sink.bins.mbps();
    let post: &[f64] = &mbps[60..min_idx(&mbps, 150)];
    let post_avg: f64 = post.iter().sum::<f64>() / post.len() as f64;
    assert!(
        (3.0..5.0).contains(&post_avg),
        "post-failover avg={post_avg}"
    );
    // Availability target: at most one zero 10 ms bin around failover.
    let zeros = sink
        .bins
        .zero_bins_between(Nanos::from_millis(480), Nanos::from_millis(600));
    assert!(zeros <= 1, "blackout bins={zeros}");
}

fn min_idx(v: &[f64], want: usize) -> usize {
    want.min(v.len())
}

#[test]
fn failover_drops_at_most_three_ttis() {
    // §8.2: Slingshot reduces dropped TTIs to at most 3.
    let mut d = deployment_with_ul_flow(3);
    let kill_at = Nanos::from_millis(500);
    d.kill_primary_at(kill_at);
    d.engine.run_until(Nanos::from_millis(1500));

    // Collect the union of uplink slots processed by both PHYs; UL
    // slots are every 5th (DDDSU), so consecutive processed UL slots
    // differ by 5 in steady state.
    let mut slots: Vec<u64> = Vec::new();
    for phy in [d.primary_phy, d.secondary_phy] {
        slots.extend(&d.engine.node::<PhyNode>(phy).unwrap().processed_ul_slots);
    }
    slots.sort_unstable();
    slots.dedup();
    let first = *slots.first().unwrap();
    let last = *slots.last().unwrap();
    let expected = (last - first) / 5 + 1;
    let missing = expected as usize - slots.len();
    assert!(
        missing <= 3,
        "missing {missing} uplink TTIs (expected ≤ 3): {expected} expected, {} seen",
        slots.len()
    );
}

#[test]
fn planned_migration_drops_zero_ttis_and_no_blackout() {
    let mut d = deployment_with_ul_flow(4);
    d.planned_migration_at(Nanos::from_millis(500));
    d.engine.run_until(Nanos::from_millis(1500));

    let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
    assert_eq!(orion.planned_migrations, 1);
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    assert_eq!(sw.mbox.migrations_executed, 1);

    // Zero dropped uplink TTIs: every UL slot processed by one PHY.
    let mut slots: Vec<u64> = Vec::new();
    for phy in [d.primary_phy, d.secondary_phy] {
        slots.extend(&d.engine.node::<PhyNode>(phy).unwrap().processed_ul_slots);
    }
    slots.sort_unstable();
    slots.dedup();
    let first = *slots.first().unwrap();
    let last = *slots.last().unwrap();
    let expected = (last - first) / 5 + 1;
    assert_eq!(
        slots.len(),
        expected as usize,
        "planned migration must drop zero TTIs"
    );

    // No blackout at all.
    let sink: &UdpSink = d
        .engine
        .node::<slingshot_ran::AppServerNode>(d.server)
        .unwrap()
        .app(100, 0)
        .unwrap();
    let zeros = sink
        .bins
        .zero_bins_between(Nanos::from_millis(480), Nanos::from_millis(600));
    assert_eq!(zeros, 0, "planned migration must not black out");
    let ue = d.engine.node::<UeNode>(d.ues[0]).unwrap();
    assert_eq!(ue.rlf_count, 0);

    // The old primary is still alive and is now the hot standby
    // receiving null FAPIs (roles swapped).
    let old_primary = d.engine.node::<PhyNode>(d.primary_phy).unwrap();
    assert!(old_primary.crash_time.is_none(), "old primary survives");
}

#[test]
fn ru_stays_lit_through_failover() {
    let mut d = deployment_with_ul_flow(5);
    d.kill_primary_at(Nanos::from_millis(500));
    d.engine.run_until(Nanos::from_millis(1500));
    let ru = d.engine.node::<RuNode>(d.ru).unwrap();
    // D/S slots per second = 4/5 × 2000 = 1600; over 1.5 s ≈ 2400.
    // A handful may go dark around the failover; the cell must not
    // stay dark (the §8.1 baseline's failure mode).
    assert!(ru.slots_dark < 10, "dark slots = {}", ru.slots_dark);
}

/// The paper's two headline §8.2 numbers, derived from the event trace
/// alone — not from ad-hoc counters: detection latency (detector
/// saturation − last heartbeat) ≤ 450 µs, and ≤ 3 dropped uplink TTIs
/// (gaps in the trace's delivered-slot sequence).
#[test]
fn trace_derives_detection_latency_and_dropped_ttis() {
    let mut d = deployment_with_ul_flow(6);
    let kill_at = Nanos::from_millis(500);
    d.kill_primary_at(kill_at);
    d.engine.run_until(Nanos::from_millis(1500));

    let trace = d.engine.event_trace();

    // Detection latency from the trace: the detector saturates at most
    // T = 450 µs after the last heartbeat it saw (n ticks of T/n each,
    // minus the sub-tick phase of the heartbeat's arrival).
    let dets = detections(trace.iter());
    assert_eq!(dets.len(), 1, "exactly one detection in the trace");
    let det = &dets[0];
    assert_eq!(det.phy, slingshot::PRIMARY_PHY_ID as u64);
    assert!(det.at > kill_at, "saturation after the kill");
    assert!(
        det.latency() <= Nanos(450_000),
        "detection latency {} ns exceeds the 450 µs detector timeout",
        det.latency().0
    );

    // Dropped TTIs from the trace: UlSlotProcessed events, deduped
    // across both PHYs, must have at most 3 holes in the stride-5
    // (DDDSU) sequence.
    let delivered = delivered_ul_slots(trace.iter());
    assert!(delivered.len() > 100, "delivered {} slots", delivered.len());
    let dropped = dropped_ttis(&delivered, 5);
    assert!(
        dropped <= 3,
        "trace shows {dropped} dropped TTIs (paper: ≤ 3)"
    );

    // The full failover lifecycle appears in causal order.
    let at_of = |kind: TraceEventKind| trace.of_kind(kind).next().map(|e| e.at);
    let saturated = at_of(TraceEventKind::DetectorSaturated).expect("saturation");
    let notified_rx = at_of(TraceEventKind::FailureNotifyReceived).expect("notify");
    let armed = at_of(TraceEventKind::MigrateArmed).expect("migrate armed");
    let flip = at_of(TraceEventKind::MapFlip).expect("map flip");
    assert!(saturated <= notified_rx && notified_rx <= armed && armed <= flip);
}

#[test]
fn deterministic_failover_runs() {
    let run = |seed| {
        let mut d = deployment_with_ul_flow(seed);
        d.kill_primary_at(Nanos::from_millis(300));
        d.engine.run_until(Nanos::from_millis(800));
        (d.engine.trace_hash(), d.engine.dispatched())
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn failure_detection_latency_distribution() {
    // Repeated failovers at varying offsets within the slot: detection
    // latency stays within T + tick + small propagation of the last
    // heartbeat — all well under two slots.
    let mut sampler = Sampler::new();
    for i in 0..8u64 {
        let mut d = deployment_with_ul_flow(100 + i);
        let kill_at = Nanos(Nanos::from_millis(400).0 + i * 137_000);
        d.kill_primary_at(kill_at);
        d.engine.run_until(kill_at + Nanos::from_millis(20));
        let orion = d.engine.node::<OrionL2Node>(d.orion_l2).unwrap();
        let notified = orion.last_failure_notified.expect("detected");
        sampler.record((notified - kill_at).0);
    }
    let max_us = sampler.max().unwrap() as f64 / 1e3;
    // Worst case: heartbeat just sent → full 450 µs timeout + 9 µs
    // precision + heartbeat spacing (~250 µs) + propagation.
    assert!(max_us < 800.0, "max detection latency {max_us} µs");
    let min_us = sampler.min().unwrap() as f64 / 1e3;
    assert!(min_us > 100.0, "suspiciously fast detection: {min_us} µs");
}

/// The switch's capture mirror reproduces §8.6's timestamp-and-mirror
/// measurement: inter-packet gaps in the primary's downlink stream.
#[test]
fn switch_capture_measures_heartbeat_gaps() {
    let mut d = deployment_with_ul_flow(42);
    let cap = d
        .engine
        .node_mut::<SwitchNode>(d.switch)
        .unwrap()
        .enable_capture();
    d.engine.run_until(Nanos::from_millis(500));
    let primary_mac = slingshot_netsim::MacAddr::for_phy(slingshot::PRIMARY_PHY_ID);
    let gaps = cap.inter_packet_gaps(|r| r.src == primary_mac);
    assert!(gaps.len() > 500, "captured {} gaps", gaps.len());
    let max_gap = *gaps.iter().max().unwrap();
    assert!(
        max_gap < 450_000,
        "healthy stream exceeded the detector timeout: {max_gap} ns"
    );
    // Consistent with the mbox's own in-pipeline measurement.
    let sw = d.engine.node::<SwitchNode>(d.switch).unwrap();
    let mbox_gap = sw.mbox.max_dl_gap(slingshot::PRIMARY_PHY_ID).0;
    assert!(
        (mbox_gap as i64 - max_gap as i64).abs() < 50_000,
        "capture {max_gap} vs mbox {mbox_gap}"
    );
    // Unused variable silence for SECONDARY id import coherence.
    let _ = SECONDARY_PHY_ID;
}

/// The fronthaul latency budget: one-way RU↔PHY must stay well under
/// 100 µs (the 5G fronthaul requirement §5 cites), including the
/// switch pipeline and serialization of full-size U-plane frames.
#[test]
fn fronthaul_one_way_stays_within_budget() {
    let mut d = deployment_with_ul_flow(55);
    let cap = d
        .engine
        .node_mut::<SwitchNode>(d.switch)
        .unwrap()
        .enable_capture();
    d.engine.run_until(Nanos::from_millis(200));
    // Path budget: RU→switch link (20 µs fiber + serialization at
    // 25 GbE) + pipeline (0.4 µs) + switch→PHY (2 µs at 100 GbE).
    // Largest captured frame sets the serialization worst case.
    let max_frame = cap
        .records()
        .iter()
        .map(|r| r.wire_size)
        .max()
        .expect("captured frames");
    let ser_ru_leg = Nanos((max_frame as u64 * 8 * 1_000_000_000) / 25_000_000_000);
    let ser_phy_leg = Nanos((max_frame as u64 * 8 * 1_000_000_000) / 100_000_000_000);
    let one_way = Nanos(20_000)
        + ser_ru_leg
        + slingshot_switch::PIPELINE_LATENCY
        + Nanos(2_000)
        + ser_phy_leg;
    assert!(
        one_way < Nanos::from_micros(100),
        "one-way fronthaul {} exceeds the 100 µs budget (frame {max_frame} B)",
        one_way
    );
}
